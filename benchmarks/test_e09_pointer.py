"""E9 (section 4.3 + the pointer figures): the pointer-chain proof.

The paper's worked Strong Dependency Induction example: with the
chain-closure constraint, phi is autonomous and invariant, no phi-state
has a pointer chain from beta to alpha, the Corollary 4-3 relation proof
goes through, and (positive control) dropping the constraint reopens the
flow.
"""

from repro.analysis.report import Table
from repro.core.induction import prove_via_relation
from repro.core.reachability import depends_ever
from repro.systems.pointer import PointerSystem, data_name


def _experiment():
    ps = PointerSystem(["alpha", "beta", "w"], data_domain=(0, 1))
    phi = ps.chain_constraint({"alpha"})
    facts = {
        "autonomous": phi.is_autonomous(),
        "invariant": phi.is_invariant(ps.system),
        "no_chain_beta_alpha": ps.no_chain_witness(phi, "beta", "alpha")
        is None,
        "no_chain_w_alpha": ps.no_chain_witness(phi, "w", "alpha") is None,
    }
    proof = prove_via_relation(
        ps.system, phi, ps.chain_relation({"alpha"}), q_name="Chain->Chain"
    )
    exact_blocked = not depends_ever(
        ps.system, {data_name("alpha")}, data_name("beta"), phi
    )
    control = bool(
        depends_ever(ps.system, {data_name("alpha")}, data_name("beta"))
    )
    return facts, proof, exact_blocked, control


def test_e9_pointer_chain_proof(benchmark, show):
    facts, proof, exact_blocked, control = benchmark.pedantic(
        _experiment, rounds=1, iterations=1
    )
    assert all(facts.values())
    assert proof.valid
    assert exact_blocked
    assert control  # without phi the flow is real

    table = Table(
        ["obligation", "holds?"],
        title="E9 (sec 4.3): pointer-chain Strong Dependency Induction",
    )
    for name, value in facts.items():
        table.add(name, value)
    table.add("Corollary 4-3 relation proof", proof.valid)
    table.add("exact: not data[alpha] |>_phi data[beta]", exact_blocked)
    table.add("control: data[alpha] |>_tt data[beta]", control)
    show(table)
