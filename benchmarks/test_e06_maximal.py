"""E6 (section 3.5): join-property failure and maximal solutions.

Three results, exactly as the section develops them:

1. ``alpha=13`` and ``alpha=74`` (scaled: two constants) both solve
   ``not alpha |> beta`` for ``if m then beta <- alpha``, but their join
   does not — the join property fails.
2. The threshold system has (at least) the paper's two distinct maximal
   solutions ``alpha <= 10`` and ``alpha > 10``.
3. The access-matrix problem with the alpha-independence requirement has
   the paper's unique maximal solution
   ``s not in <x,x> or r not in <x,alpha> or w not in <x,beta>``.
"""

from repro.analysis.report import Table
from repro.analysis.solver import (
    join_property_counterexample,
    maximal_solutions,
)
from repro.core.constraints import Constraint
from repro.core.problems import NoTransmissionProblem
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var



def _join_failure():
    b = SystemBuilder().booleans("m").integers("alpha", "beta", bits=2)
    b.op_if("delta", var("m"), "beta", var("alpha"))
    system = b.build()
    problem = NoTransmissionProblem(system, {"alpha"}, "beta")
    candidates = [
        Constraint.equals(system.space, "alpha", 1),
        Constraint.equals(system.space, "alpha", 2),
    ]
    return problem, join_property_counterexample(problem, candidates)


def _threshold_maximals():
    b = SystemBuilder().ranged("alpha", lo=0, hi=15).integers("beta", bits=1)
    b.op_if("delta", var("alpha") <= 10, "beta", 0, else_expr=1)
    system = b.build()
    problem = NoTransmissionProblem(system, {"alpha"}, "beta")
    solutions = maximal_solutions(problem, system.space)
    alpha_sets = [
        frozenset(s["alpha"] for s in phi.satisfying) for phi in solutions
    ]
    return solutions, alpha_sets


def _matrix_unique_maximal():
    """The section 3.5 guarded copy with the three relevant rights as
    boolean flags (the rest of the powerset matrix adds only size, not
    structure)::

        delta: if s_xx and r_xa and w_xb then beta <- alpha
    """
    b = SystemBuilder().booleans("s_xx", "r_xa", "w_xb").integers(
        "alpha", "beta", bits=1
    )
    b.op_if(
        "copy", var("s_xx") & var("r_xa") & var("w_xb"), "beta", var("alpha")
    )
    system = b.build()
    problem = NoTransmissionProblem(
        system, {"alpha"}, "beta", require_independent=True
    )
    paper_solution = Constraint(
        system.space,
        lambda s: not (s["s_xx"] and s["r_xa"] and s["w_xb"]),
        name="s not in <x,x> or r not in <x,alpha> or w not in <x,beta>",
    )
    found = maximal_solutions(
        problem,
        system.space,
        attempts=8,
        # A-independent solutions are unions of whole alpha-orbits.
        group_key=lambda s: s.restrict_away({"alpha"}),
    )
    matches = [phi.equivalent(paper_solution) for phi in found]
    return problem, paper_solution, found, matches


def test_e6_maximal_solutions(benchmark, show):
    def experiment():
        return (_join_failure(), _threshold_maximals(), _matrix_unique_maximal())

    (jp, (solutions, alpha_sets), (mp, paper_phi, found, matches)) = (
        benchmark.pedantic(experiment, rounds=1, iterations=1)
    )

    # 1. Join property fails for constant solutions.
    problem, pair = jp
    assert pair is not None
    phi1, phi2 = pair
    assert problem.is_solution(phi1) and problem.is_solution(phi2)
    assert not problem.is_solution(phi1 | phi2)

    # 2. The paper's two maximal solutions both appear.
    assert frozenset(range(0, 11)) in alpha_sets
    assert frozenset(range(11, 16)) in alpha_sets

    # 3. The access-matrix problem's unique maximal solution is the
    #    rights denial.
    assert mp.is_solution(paper_phi)
    assert all(matches)

    table = Table(
        ["result", "value"],
        title="E6 (sec 3.5): maximal solutions and the join property",
    )
    table.add("join of constant solutions still a solution?", False)
    table.add("distinct maximal solutions (threshold system)", len(solutions))
    table.add("alpha<=10 found as maximal?", frozenset(range(11)) in alpha_sets)
    table.add("alpha>10 found as maximal?",
              frozenset(range(11, 16)) in alpha_sets)
    table.add("matrix maximal == paper's rights denial?", all(matches))
    show(table)
