"""E1 (section 2.2): variety and information transmission.

Reproduces the section's three observations for ``delta: beta <- alpha``
and ``delta': if alpha < 10 then beta <- 0 else beta <- 1``:

- unconstrained, the copy conveys alpha's full variety;
- a constant constraint removes all variety and all transmission;
- the threshold operation conveys exactly the one bit the constraint
  ``alpha < 10`` then eliminates.
"""

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.dependency import transmits
from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var
from repro.quantitative import StateDistribution, bits_transmitted


def _build():
    copy = SystemBuilder().integers("alpha", "beta", bits=4)
    copy.op_assign("delta", "beta", var("alpha"))
    copy_system = copy.build()

    threshold = SystemBuilder().integers("alpha", bits=4).integers("beta", bits=1)
    threshold.op_if("delta", var("alpha") < 10, "beta", 0, else_expr=1)
    threshold_system = threshold.build()
    return copy_system, threshold_system


def _experiment():
    copy_system, threshold_system = _build()
    rows = []
    for system, label in (
        (copy_system, "beta <- alpha"),
        (threshold_system, "if alpha<10 then 0 else 1"),
    ):
        h = History.of(system.operation("delta"))
        for phi, phi_label in (
            (None, "tt"),
            (Constraint.equals(system.space, "alpha", 7), "alpha=7"),
            (
                Constraint(
                    system.space, lambda s: s["alpha"] < 10, name="alpha<10"
                ),
                "alpha<10",
            ),
        ):
            dep = bool(transmits(system, {"alpha"}, "beta", h, phi))
            dist = StateDistribution.uniform(
                phi if phi is not None else Constraint.true(system.space)
            )
            bits = bits_transmitted(dist, {"alpha"}, "beta", h)
            rows.append((label, phi_label, dep, bits))
    return rows


def test_e1_variety_and_transmission(benchmark, show):
    rows = benchmark(_experiment)
    by_key = {(r[0], r[1]): r for r in rows}

    # Copy: 4 bits unconstrained; dead under the constant.
    assert by_key[("beta <- alpha", "tt")][2] is True
    assert by_key[("beta <- alpha", "tt")][3] == 4.0
    assert by_key[("beta <- alpha", "alpha=7")][2] is False
    assert by_key[("beta <- alpha", "alpha=7")][3] == 0.0
    # Threshold: transmits one bit... until alpha<10 kills it.
    key = "if alpha<10 then 0 else 1"
    assert by_key[(key, "tt")][2] is True
    assert 0.0 < by_key[(key, "tt")][3] <= 1.0
    assert by_key[(key, "alpha<10")][2] is False
    assert by_key[(key, "alpha<10")][3] == 0.0

    table = Table(
        ["system", "constraint", "alpha |> beta?", "bits"],
        title="E1 (sec 2.2): constraint reduces variety, variety is transmission",
    )
    for row in rows:
        table.add(*row)
    show(table)
