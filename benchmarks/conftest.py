"""Shared helpers for the experiment benchmarks.

Each benchmark regenerates one of the paper's worked examples/figures
(see DESIGN.md's experiment index), asserts the paper's qualitative
result, and prints the rows the paper reports.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print a report table even under pytest's output capture."""

    def _show(table) -> None:
        with capsys.disabled():
            table.echo()

    return _show


def once(benchmark, fn):
    """Benchmark an expensive experiment with a single measured round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
