"""A3 (robustness): overhead of the execution governor on the hot loop.

PR 4 threads an optional :class:`~repro.core.budget.BudgetMeter` through
the compiled closure BFS.  The unmetered loop is untouched (``meter is
None`` keeps the pristine fast path), and the governed loop checks its
budget only every ``check_interval`` expansions — so a *generous* budget
(one that never trips) must cost nearly nothing.  This benchmark pins
that down on the xor ring, the dense-closure regime where per-expansion
costs dominate: the acceptance bar is **governed <= 1.05x ungoverned**
(<5% overhead) at the largest case, recorded in ``BENCH_budget.json``.

``REPRO_BENCH_QUICK=1`` shrinks the case and skips the bar/recording —
it checks the benchmark runs and the governed matrix agrees, not speed.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.report import Table
from repro.core.budget import ExecutionBudget
from repro.core.engine import DependencyEngine
from repro.core.system import System
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_budget.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
OVERHEAD_BAR = 1.05  # governed / ungoverned, largest case

CASES = [4] if QUICK else [7, 8]
ROUNDS = 1 if QUICK else 5
LARGEST = max(CASES)

#: A budget far beyond what any case needs: every check passes, no trip —
#: the measurement isolates pure metering overhead.
GENEROUS = ExecutionBudget(max_seconds=3600.0, max_expanded=10**12)


def _xor_ring(n: int) -> System:
    """Same mixing family as test_a3_compiled: dense closures, so the
    BFS inner loop — where the meter sits — dominates."""
    b = SystemBuilder()
    for i in range(n):
        b.integers(f"x{i}", bits=1)
    for i in range(n):
        nxt = f"x{(i + 1) % n}"
        b.op_assign(f"m{i}", nxt, (var(nxt) + var(f"x{i}")) % 2)
    return b.build()


def _time_matrix(n: int, budget: ExecutionBudget | None, rounds: int):
    """Best-of-``rounds`` cold matrix time (fresh engine per round, so
    compilation is inside the measurement on both sides of the ratio)."""
    best = float("inf")
    result: dict = {}
    for _ in range(rounds):
        engine = DependencyEngine(_xor_ring(n))
        start = time.perf_counter()
        result = engine.matrix(budget=budget)
        best = min(best, time.perf_counter() - start)
    return result, best


def _record(row: dict) -> None:
    data: dict = {
        "bench": "A3 budget overhead",
        "paths": ["ungoverned", "governed"],
        "rows": [],
    }
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            pass
    rows = [r for r in data.get("rows", []) if r.get("n") != row["n"]]
    rows.append(row)
    rows.sort(key=lambda r: r["n"])
    data["rows"] = rows
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


@pytest.mark.parametrize("n", CASES)
def test_a3_budget_overhead(benchmark, n, show):
    plain_result, plain_seconds = _time_matrix(n, None, ROUNDS)

    # The governed path goes through pytest-benchmark.
    def setup():
        return (DependencyEngine(_xor_ring(n)),), {}

    governed_result = benchmark.pedantic(
        lambda engine: engine.matrix(budget=GENEROUS),
        setup=setup,
        rounds=ROUNDS,
        iterations=1,
    )
    governed_seconds = benchmark.stats.stats.min

    # A budget that never trips changes nothing but the clock.
    assert governed_result == plain_result

    overhead = governed_seconds / plain_seconds
    row = {
        "n": n,
        "states": 2**n,
        "check_interval": GENEROUS.check_interval,
        "ungoverned_seconds": round(plain_seconds, 6),
        "governed_seconds": round(governed_seconds, 6),
        "overhead": round(overhead, 4),
    }
    if not QUICK:
        _record(row)

    table = Table(
        ["n", "states", "ungoverned (s)", "governed (s)", "overhead"],
        title=f"A3: budget governor overhead, xor_ring n={n}",
    )
    table.add(n, 2**n, f"{plain_seconds:.4f}", f"{governed_seconds:.4f}",
              f"{overhead:.3f}x")
    show(table)

    if not QUICK and n == LARGEST:
        assert overhead <= OVERHEAD_BAR, (
            f"budget governor costs {overhead:.3f}x on xor_ring n={n} "
            f"(bar {OVERHEAD_BAR}x)"
        )
