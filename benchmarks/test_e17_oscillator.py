"""E17 (section 6.4): the oscillating system — invariant envelope vs
inductive cover.

``delta: (beta <- alpha ; alpha <- -alpha)`` with ``phi: alpha = k``:
phi is not invariant; the tightest invariant envelope ``alpha in {k,-k}``
re-admits variety and leaks; the inductive cover {alpha=k, alpha=-k}
(Theorem 6-7) proves confinement, which the exact checker confirms.
This is the ablation the paper runs in prose.
"""

from repro.analysis.report import Table
from repro.analysis.explorer import reachable_constraint
from repro.core.reachability import depends_ever
from repro.systems.oscillator import build_oscillator


def _experiment():
    parts = build_oscillator(k=1, extra_values=1)
    system, phi = parts.system, parts.phi

    envelope_auto = reachable_constraint(system, phi)
    facts = {
        "phi invariant": phi.is_invariant(system),
        "envelope invariant": parts.envelope.is_invariant(system),
        "computed envelope matches alpha=+-k (on alpha)": (
            {s["alpha"] for s in envelope_auto.satisfying}
            == {s["alpha"] for s in parts.envelope.satisfying}
        ),
        "alpha |>_envelope beta (leak)": bool(
            depends_ever(system, {"alpha"}, "beta", parts.envelope)
        ),
        "cover is inductive for phi": parts.cover.check(system, phi).valid,
        "Thm 6-7 proof valid": parts.cover.prove_no_dependency(
            system, {"alpha"}, "beta", phi
        ).valid,
        "exact: alpha |>_phi beta": bool(
            depends_ever(system, {"alpha"}, "beta", phi)
        ),
    }
    return facts


def test_e17_oscillator(benchmark, show):
    facts = benchmark(_experiment)
    assert not facts["phi invariant"]
    assert facts["envelope invariant"]
    assert facts["computed envelope matches alpha=+-k (on alpha)"]
    assert facts["alpha |>_envelope beta (leak)"]  # the envelope fails
    assert facts["cover is inductive for phi"]
    assert facts["Thm 6-7 proof valid"]  # the cover succeeds
    assert not facts["exact: alpha |>_phi beta"]

    table = Table(
        ["fact", "value"],
        title="E17 (sec 6.4): oscillator — envelope fails, cover succeeds",
    )
    for name, value in facts.items():
        table.add(name, value)
    show(table)
