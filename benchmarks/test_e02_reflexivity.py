"""E2 (section 2.5): reflexivity of strong dependency.

- ``beta <- alpha`` keeps alpha's variety: alpha |> alpha;
- overwriting destroys it;
- the empty history is reflexive exactly when the object has variety
  (Theorems 2-4/2-5).
"""

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.dependency import transmits
from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


def _experiment():
    b = SystemBuilder().integers("alpha", "beta", bits=4)
    b.op_assign("copy", "beta", var("alpha"))
    b.op_assign("wipe", "alpha", 0)
    system = b.build()
    constant = Constraint.equals(system.space, "alpha", 7).renamed("alpha=7")

    cases = [
        ("copy", None, "alpha", "alpha"),
        ("wipe", None, "alpha", "alpha"),
        ("", None, "alpha", "alpha"),  # empty history, full variety
        ("", constant, "alpha", "alpha"),  # empty history, no variety
        ("", None, "alpha", "beta"),  # empty history is only reflexive
    ]
    rows = []
    for ops, phi, source, target in cases:
        history = (
            History.of(system.operation(ops)) if ops else History.empty()
        )
        dep = bool(transmits(system, {source}, target, history, phi))
        rows.append(
            (
                ops or "<lambda>",
                phi.name if phi else "tt",
                f"{source} |> {target}",
                dep,
            )
        )
    return rows


def test_e2_reflexivity(benchmark, show):
    rows = benchmark(_experiment)
    verdicts = [r[3] for r in rows]
    # Copy preserves alpha; wipe destroys it; lambda reflexive with
    # variety, dead without; lambda never transmits across objects.
    assert verdicts == [True, False, True, False, False]

    table = Table(
        ["history", "constraint", "query", "holds?"],
        title="E2 (sec 2.5): reflexivity and its two failure modes",
    )
    for row in rows:
        table.add(*row)
    show(table)
