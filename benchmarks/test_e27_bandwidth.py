"""E27 (section 1.8): bandwidth reduction by noise injection.

"One might simply be satisfied to introduce enough noise to guarantee
that the bandwidth from the user to the disk is sufficiently low."

We model a user-observable residue channel (the disk-arm position after
a request) and sweep the amount of injected noise, reporting the
channel's Shannon capacity at each level — the quantitative complement
to the qualitative elimination results of chapters 2-6.
"""

import math

import pytest

from repro.analysis.report import Table
from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.expr import apply, var
from repro.quantitative.bandwidth import capacity
from repro.quantitative.distributions import StateDistribution


def _build_disk(noise_levels: int):
    """disk <- (request + jitter) mod 4, jitter uniform over
    0..noise_levels-1 (noise_levels = 1 means no noise)."""
    mix = lambda r, j: (r + j) % 4
    b = SystemBuilder().integers("request", "disk", bits=2)
    b.obj("jitter", tuple(range(noise_levels)))
    b.op_assign(
        "seek", "disk", apply(mix, var("request"), var("jitter"), symbol="mix")
    )
    return b.build()


def _experiment():
    rows = []
    for noise_levels in (1, 2, 3, 4):
        system = _build_disk(noise_levels)
        dist = StateDistribution.uniform_over_space(system.space)
        bits = capacity(
            dist, {"request"}, "disk", History.of(system.operation("seek"))
        )
        rows.append((noise_levels, bits))
    return rows


def test_e27_noise_vs_bandwidth(benchmark, show):
    rows = benchmark(_experiment)
    capacities = [bits for _levels, bits in rows]
    # No noise: the full 2 bits leak.
    assert capacities[0] == pytest.approx(2.0, abs=1e-6)
    # Monotone decrease with noise...
    assert all(a >= b - 1e-9 for a, b in zip(capacities, capacities[1:]))
    # ...down to exactly zero at a full one-time pad (jitter uniform on
    # the whole residue group).
    assert capacities[-1] == pytest.approx(0.0, abs=1e-6)
    # Intermediate level sanity: uniform jitter over k of 4 symbols
    # leaves log2(4/k) bits.
    assert capacities[1] == pytest.approx(1.0, abs=1e-5)
    assert capacities[2] == pytest.approx(math.log2(4 / 3), abs=1e-5)

    table = Table(
        ["jitter symbols", "capacity (bits/use)"],
        title="E27 (sec 1.8): noise injection vs covert bandwidth",
    )
    for levels, bits in rows:
        table.add(levels, bits)
    show(table)
