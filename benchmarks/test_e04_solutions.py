"""E4 (section 3.2): constraint as solution, and the alpha-independence
filter.

For ``delta: if m then beta <- alpha`` both ``~m`` and ``alpha = 13``
solve ``not alpha |> beta``; requiring alpha-independence (Def 3-1)
rejects the degenerate freeze-the-source solution, exactly as the paper
prescribes.
"""

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.problems import NoTransmissionProblem
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


def _experiment():
    b = SystemBuilder().booleans("m").ranged("alpha", lo=0, hi=15).integers(
        "beta", bits=4
    )
    b.op_if("delta", var("m"), "beta", var("alpha"))
    system = b.build()
    sp = system.space

    candidates = [
        Constraint(sp, lambda s: not s["m"], name="~m"),
        Constraint.equals(sp, "alpha", 13),
        Constraint.true(sp),
    ]
    plain = NoTransmissionProblem(system, {"alpha"}, "beta")
    independent = NoTransmissionProblem(
        system, {"alpha"}, "beta", require_independent=True
    )
    rows = []
    for phi in candidates:
        rows.append(
            (
                phi.name,
                plain.is_solution(phi),
                independent.is_solution(phi),
                phi.is_independent_of({"alpha"}),
            )
        )
    return rows


def test_e4_solutions(benchmark, show):
    rows = benchmark(_experiment)
    by_name = {r[0]: r for r in rows}
    assert by_name["~m"][1] and by_name["~m"][2]
    assert by_name["alpha=13"][1] and not by_name["alpha=13"][2]
    assert not by_name["tt"][1]

    table = Table(
        ["candidate phi", "solves chi?", "solves chi + independence?",
         "alpha-independent?"],
        title="E4 (sec 3.2): solutions to 'no alpha |> beta' for "
        "'if m then beta <- alpha'",
    )
    for row in rows:
        table.add(*row)
    show(table)
