"""A8 (perf): warm-session service vs cold-process CLI, and overload
behavior under a deadline storm.

Two cases:

1. **Warm vs cold latency** (the acceptance bar).  The same
   gate-program query answered (a) by a running :mod:`repro.serve`
   server whose session already holds the compiled system and closure
   memos, and (b) by a fresh ``python -m repro program`` subprocess per
   query — interpreter start, parse, compile, BFS every time.  Reports
   p50/p99 for both; the warm p50 must beat the cold p50 by >= 10x
   (the whole point of keeping engines resident).

2. **Deadline storm throughput.**  A burst of concurrent queries with
   tight mixed deadlines against a small admission window: reports
   achieved qps and the status mix.  Every response must be a correct
   verdict or an honest shed/UNKNOWN — counted, not assumed — and the
   server must answer a normal query immediately afterwards.

Rows append to ``BENCH_serve.json``.  ``REPRO_BENCH_QUICK=1`` shrinks
sizes, skips recording and the bars.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.analysis.report import Table

from tests.serve.helpers import PROGRAM, VARS, create_session, rpc, serving

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
SRC = str(Path(__file__).resolve().parent.parent / "src")

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
WARM_TARGET = 10.0  # warm-session p50 vs cold-process p50
WARM_QUERIES = 10 if QUICK else 50
COLD_QUERIES = 2 if QUICK else 5
STORM_REQUESTS = 8 if QUICK else 48


def _percentiles(samples: list[float]) -> tuple[float, float]:
    ordered = sorted(samples)
    mid = ordered[len(ordered) // 2]
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    return mid, p99


def _record(case: str, row: dict) -> None:
    """Append/replace one measurement row in BENCH_serve.json."""
    data: dict = {"bench": "A8 serve layer", "rows": []}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            pass
    rows = [r for r in data.get("rows", []) if r.get("case") != case]
    rows.append({"case": case, **row})
    rows.sort(key=lambda r: r["case"])
    data["rows"] = rows
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _cold_process_seconds(tmp_path) -> list[float]:
    """One full CLI subprocess per query: the price of not serving."""
    prog = tmp_path / "bench.prog"
    prog.write_text(PROGRAM)
    argv = [sys.executable, "-m", "repro", "program", str(prog),
            "--source", "secret", "--target", "out"]
    for name, spec in VARS.items():
        argv += ["--var", f"{name}={spec}"]
    env = dict(os.environ, PYTHONPATH=SRC)
    samples = []
    for _ in range(COLD_QUERIES):
        start = time.perf_counter()
        proc = subprocess.run(argv, env=env, capture_output=True, timeout=180)
        samples.append(time.perf_counter() - start)
        assert proc.returncode == 1, proc.stderr  # FLOW
    return samples


def test_a8_warm_session_vs_cold_process(tmp_path, show):
    cold = _cold_process_seconds(tmp_path)

    async def warm_leg() -> list[float]:
        async with serving() as server:
            key = await create_session(server, prewarm=True)
            samples = []
            for _ in range(WARM_QUERIES):
                start = time.perf_counter()
                status, doc = await rpc(
                    server.port, "POST", "/v1/query",
                    {"session": key, "source": "secret", "target": "out"},
                )
                samples.append(time.perf_counter() - start)
                assert (status, doc["verdict"]) == (200, "flow")
            return samples

    warm = asyncio.run(warm_leg())

    warm_p50, warm_p99 = _percentiles(warm)
    cold_p50, cold_p99 = _percentiles(cold)
    speedup = cold_p50 / warm_p50

    table = Table(
        ["leg", "queries", "p50 (ms)", "p99 (ms)"],
        title="A8: warm session vs cold process, gate program",
    )
    table.add("warm session", len(warm), f"{warm_p50 * 1e3:.2f}",
              f"{warm_p99 * 1e3:.2f}")
    table.add("cold process", len(cold), f"{cold_p50 * 1e3:.2f}",
              f"{cold_p99 * 1e3:.2f}")
    show(table)

    if not QUICK:
        _record("warm_vs_cold", {
            "warm_queries": len(warm),
            "cold_queries": len(cold),
            "warm_p50_ms": round(warm_p50 * 1e3, 3),
            "warm_p99_ms": round(warm_p99 * 1e3, 3),
            "cold_p50_ms": round(cold_p50 * 1e3, 3),
            "cold_p99_ms": round(cold_p99 * 1e3, 3),
            "speedup_warm_vs_cold_p50": round(speedup, 2),
        })
        assert speedup >= WARM_TARGET, (
            f"warm session only {speedup:.1f}x faster than a cold process "
            f"(target {WARM_TARGET}x)"
        )


def test_a8_deadline_storm_throughput(show):
    async def storm():
        async with serving(max_concurrency=4, max_queue=8,
                           default_queue_wait_ms=200.0) as server:
            key = await create_session(server, prewarm=True)
            deadlines = (1, 5, 50, 5000)

            async def one(i: int):
                status, doc = await rpc(
                    server.port, "POST", "/v1/query",
                    {"session": key, "source": "secret", "target": "out",
                     "quota": {"deadline_ms": deadlines[i % len(deadlines)]}},
                )
                if status == 200 and doc.get("verdict") != "unknown":
                    assert doc["verdict"] == "flow", doc
                else:
                    assert status in (200, 429, 503, 504), (status, doc)
                return status

            start = time.perf_counter()
            statuses = await asyncio.gather(
                *[one(i) for i in range(STORM_REQUESTS)]
            )
            elapsed = time.perf_counter() - start
            # Recovery: a normal query answers immediately afterwards.
            status, doc = await rpc(
                server.port, "POST", "/v1/query",
                {"session": key, "source": "secret", "target": "out"},
            )
            assert (status, doc["verdict"]) == (200, "flow")
            return statuses, elapsed

    statuses, elapsed = asyncio.run(storm())
    qps = len(statuses) / elapsed
    mix = {code: statuses.count(code) for code in sorted(set(statuses))}
    served = mix.get(200, 0)

    table = Table(
        ["requests", "seconds", "qps", "status mix"],
        title="A8: deadline storm, mixed 1-5000ms deadlines",
    )
    table.add(len(statuses), f"{elapsed:.3f}", f"{qps:.1f}",
              " ".join(f"{k}:{v}" for k, v in mix.items()))
    show(table)

    assert served >= 1  # the generous deadlines always make it through
    if not QUICK:
        _record("deadline_storm", {
            "requests": len(statuses),
            "seconds": round(elapsed, 4),
            "qps": round(qps, 1),
            "status_mix": {str(k): v for k, v in mix.items()},
        })
