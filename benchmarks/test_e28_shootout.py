"""E28 (capstone): analyzer shootout over the paper's example corpus.

Every flow analysis in the repertoire, run against the same queries on
the paper's own systems.  The table shows exactly where each baseline
diverges from the exact strong-dependency decision — the precision
landscape the paper's chapter 1 surveys in prose.
"""

from repro.analysis.compare import comparison_matrix
from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, when
from repro.lang.expr import var


def _corpus():
    cases = []

    # 1. The plain relay: everyone should find this flow.
    b = SystemBuilder().booleans("a", "m", "bb")
    b.op_assign("d1", "m", var("a"))
    b.op_assign("d2", "bb", var("m"))
    cases.append(("relay", b.build(), "a", "bb", None))

    # 2. The q-guarded relay (sec 4.4): no real flow; transitive
    #    baselines cry wolf.
    b = SystemBuilder().booleans("q", "a", "m", "bb")
    b.op_cmd("d1", when(var("q"), assign("m", var("a"))))
    b.op_cmd("d2", when(~var("q"), assign("bb", var("m"))))
    cases.append(("q-relay (sec 4.4)", b.build(), "a", "bb", None))

    # 3. Guarded copy under ~m (sec 3.2): the constraint closes the path;
    #    constraint-blind analyses still flag it.
    b = SystemBuilder().booleans("m", "a", "bb")
    b.op_if("copy", var("m"), "bb", var("a"))
    system = b.build()
    phi = Constraint(system.space, lambda s: not s["m"], name="~m")
    cases.append(("guarded copy + ~m", system, "a", "bb", phi))

    # 4. The arming system (E26): non-invariant constraint; the naive
    #    constraint-aware analysis is unsound here.
    b = SystemBuilder().booleans("flag", "a", "bb")
    b.op_cmd("arm", assign("flag", True))
    b.op_if("copy", var("flag"), "bb", var("a"))
    system = b.build()
    phi = Constraint(system.space, lambda s: not s["flag"], name="~flag")
    cases.append(("arming (non-invariant phi)", system, "a", "bb", phi))

    # 5. Self-rewrite (syntax vs semantics): no flow, syntax disagrees.
    b = SystemBuilder().booleans("m", "bb")
    b.op_cmd("rewrite", when(var("m"), assign("bb", var("bb"))))
    cases.append(("self-rewrite", b.build(), "m", "bb", None))

    return cases


def test_e28_analyzer_shootout(benchmark, show):
    results = benchmark.pedantic(
        lambda: comparison_matrix(_corpus()), rounds=1, iterations=1
    )
    by_name = dict(results)

    # Ground truths.
    assert by_name["relay"].truth
    assert not by_name["q-relay (sec 4.4)"].truth
    assert not by_name["guarded copy + ~m"].truth
    assert by_name["arming (non-invariant phi)"].truth
    assert not by_name["self-rewrite"].truth

    # The documented divergences.
    assert by_name["q-relay (sec 4.4)"].false_positive("transitive")
    assert by_name["q-relay (sec 4.4)"].false_positive("taint")
    assert by_name["guarded copy + ~m"].false_positive("transitive")
    assert not by_name["guarded copy + ~m"].false_positive("millen-initial")
    assert by_name["arming (non-invariant phi)"].sound("millen-initial") is False
    assert by_name["arming (non-invariant phi)"].sound("millen-envelope")
    assert by_name["self-rewrite"].false_positive("static")

    # Soundness sweep: every analyzer except millen-initial never misses
    # a real flow (None = not applicable is allowed).
    for name, comparison in results:
        for verdict in comparison.verdicts:
            if verdict.analyzer in ("millen-initial", "jones-lipton"):
                continue
            assert comparison.sound(verdict.analyzer) in (True, None), (
                name,
                verdict.analyzer,
            )

    analyzers = [v.analyzer for v in results[0][1].verdicts]
    table = Table(
        ["system / query", "truth"] + analyzers,
        title="E28: analyzer shootout (flow = claims a->b flows)",
    )
    for name, comparison in results:
        table.add(
            name,
            comparison.truth,
            *[v.label for v in comparison.verdicts],
        )
    show(table)
