"""E5 (section 3.3): initial vs invariant constraints.

The paper's system::

    delta1: if flag then beta <- alpha else beta <- 0
    delta2: (flag <- tt ; alpha <- x)

``phi == ~flag`` is NOT invariant (delta2 sets the flag), yet it still
solves ``not alpha |> beta``: delta2 also destroys alpha's initial
variety, so only alpha's *later* values (x's information) reach beta.
"""

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.reachability import depends_ever
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, seq
from repro.lang.expr import var


def _experiment():
    b = SystemBuilder().booleans("flag", "alpha", "x", "beta")
    b.op_if("delta1", var("flag"), "beta", var("alpha"), else_expr=False)
    b.op_cmd("delta2", seq(assign("flag", True), assign("alpha", var("x"))))
    system = b.build()
    phi = Constraint(system.space, lambda s: not s["flag"], name="~flag")

    return {
        "phi_invariant": phi.is_invariant(system),
        "alpha_leaks": bool(depends_ever(system, {"alpha"}, "beta", phi)),
        "x_leaks": bool(depends_ever(system, {"x"}, "beta", phi)),
        "alpha_leaks_unconstrained": bool(
            depends_ever(system, {"alpha"}, "beta")
        ),
    }


def test_e5_initial_vs_invariant(benchmark, show):
    facts = benchmark(_experiment)
    # The paper's four facts, in order.
    assert not facts["phi_invariant"]
    assert not facts["alpha_leaks"]  # initial alpha is protected...
    assert facts["x_leaks"]  # ...but later values (from x) do reach beta
    assert facts["alpha_leaks_unconstrained"]

    table = Table(
        ["fact", "value"],
        title="E5 (sec 3.3): an initial, non-invariant solution",
    )
    table.add("~flag invariant under delta2?", facts["phi_invariant"])
    table.add("alpha |>_{~flag} beta (initial value protected)?",
              facts["alpha_leaks"])
    table.add("x |>_{~flag} beta (later values flow)?", facts["x_leaks"])
    table.add("alpha |>_tt beta (control)?",
              facts["alpha_leaks_unconstrained"])
    show(table)
