"""A3 (perf): the compiled integer kernel vs the PR-1 object engine.

Three generations of the same exact decision procedure, measured on the
same systems in the same run:

- **seed** — one independent ordered-pair BFS per ``(A, phi, beta)``
  query, re-executing semantic operation lambdas at every step
  (``reachability._seed_depends_ever``);
- **engine** — PR 1's shared object-mode engine
  (``DependencyEngine(system, compiled=False)``): tabulated transitions,
  one memoized ordered-pair closure per ``(A, phi)``;
- **compiled** — the integer kernel (``DependencyEngine(system)``):
  dense state ids, flat successor arrays, canonical unordered pairs.

Families:

- the A1 *relay chain* (x0 -> x1 -> ... -> x{n-1}): sparse closures, so
  compile cost is a visible fraction — the honest lower bound;
- the *xor ring* (``x_{i+1} += x_i mod 2`` cyclically): a mixing system
  whose closures approach all ``n_states^2 / 2`` canonical pairs — the
  BFS-bound regime the kernel exists for, and where the >= 5x
  acceptance bar is asserted (at the largest case);
- one seeded *random system* for an unstructured middle ground.

Each case appends one row to ``BENCH_compiled.json`` carrying all three
timings plus the pairwise speedups, and asserts cell-for-cell matrix
agreement across all three paths.  ``REPRO_BENCH_QUICK=1`` (the CI
bench-smoke job / ``make bench-quick``) shrinks the sizes, runs a single
round, and skips recording and the speedup bar — it checks that the
benchmark itself still runs and agrees, not the machine's speed.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.analysis.random_systems import random_system
from repro.analysis.report import Table
from repro.core.engine import DependencyEngine
from repro.core.reachability import _seed_depends_ever
from repro.core.system import System
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_compiled.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
SPEEDUP_TARGET = 5.0  # compiled over the PR-1 engine, largest case

# (family, n) cases; the lexicographically-largest xor_ring is the one
# the acceptance threshold is asserted at.
CASES = (
    [("relay", 4), ("xor_ring", 4), ("random", 3)]
    if QUICK
    else [("relay", 8), ("relay", 10), ("xor_ring", 7), ("xor_ring", 8), ("random", 4)]
)
ROUNDS = 1 if QUICK else 3
LARGEST = ("xor_ring", max(n for f, n in CASES if f == "xor_ring"))


def _relay(n: int) -> System:
    b = SystemBuilder()
    for i in range(n):
        b.integers(f"x{i}", bits=1)
    for i in range(n - 1):
        b.op_assign(f"d{i}", f"x{i + 1}", var(f"x{i}"))
    return b.build()


def _xor_ring(n: int) -> System:
    """n one-bit objects; operation m_i mixes x_i into x_{i+1} (mod n).

    Unlike the relay, information circulates, so every (A, phi) closure
    is dense — the regime where per-pair costs dominate compile costs.
    """
    b = SystemBuilder()
    for i in range(n):
        b.integers(f"x{i}", bits=1)
    for i in range(n):
        nxt = f"x{(i + 1) % n}"
        b.op_assign(f"m{i}", nxt, (var(nxt) + var(f"x{i}")) % 2)
    return b.build()


def _random(n: int) -> System:
    return random_system(
        random.Random(1977), n_objects=n, domain_size=3, n_operations=4
    )


FAMILIES = {"relay": _relay, "xor_ring": _xor_ring, "random": _random}


def _seed_matrix(system: System) -> dict[str, dict[str, bool]]:
    """The pre-engine dependency_matrix: one BFS per cell."""
    names = system.space.names
    return {
        x: {y: bool(_seed_depends_ever(system, {x}, y)) for y in names}
        for x in names
    }


def _time_matrix(make_engine, rounds: int) -> tuple[dict, float]:
    """Best-of-``rounds`` cold matrix time (fresh engine per round, so
    tabulation / compilation costs are inside the measurement)."""
    best = float("inf")
    result: dict = {}
    for _ in range(rounds):
        engine = make_engine()
        start = time.perf_counter()
        result = engine.matrix()
        best = min(best, time.perf_counter() - start)
    return result, best


def _closure_pairs(system: System) -> int:
    """Total canonical pairs across all single-source closures — the
    work the BFS actually does, recorded for the scaling curve."""
    engine = DependencyEngine(system)
    return sum(
        len(engine._closure(frozenset({name}), None))
        for name in system.space.names
    )


def _record(case: str, row: dict) -> None:
    """Append/replace one measurement row in BENCH_compiled.json."""
    data: dict = {
        "bench": "A3 compiled kernel",
        "paths": ["seed", "engine", "compiled"],
        "rows": [],
    }
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            pass
    rows = [
        r
        for r in data.get("rows", [])
        if not (r.get("case") == case and r.get("n") == row["n"])
    ]
    rows.append({"case": case, **row})
    rows.sort(key=lambda r: (r["case"], r["n"]))
    data["rows"] = rows
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


@pytest.mark.parametrize("family,n", CASES)
def test_a3_compiled_vs_engine_vs_seed(benchmark, family, n, show):
    build = FAMILIES[family]
    system = build(n)

    start = time.perf_counter()
    seed_result = _seed_matrix(system)
    seed_seconds = time.perf_counter() - start

    engine_result, engine_seconds = _time_matrix(
        lambda: DependencyEngine(build(n), compiled=False), ROUNDS
    )

    # The headline path goes through pytest-benchmark; fresh system +
    # engine per round keeps the compile step inside the measurement.
    def setup():
        return (DependencyEngine(build(n)),), {}

    compiled_result = benchmark.pedantic(
        lambda engine: engine.matrix(), setup=setup, rounds=ROUNDS, iterations=1
    )
    compiled_seconds = benchmark.stats.stats.min

    assert compiled_result == engine_result == seed_result

    pairs = _closure_pairs(system)
    vs_engine = engine_seconds / compiled_seconds
    row = {
        "n": n,
        "states": system.space.size,
        "pairs": pairs,
        "seed_seconds": round(seed_seconds, 6),
        "engine_seconds": round(engine_seconds, 6),
        "compiled_seconds": round(compiled_seconds, 6),
        "speedup_engine_vs_seed": round(seed_seconds / engine_seconds, 2),
        "speedup_compiled_vs_engine": round(vs_engine, 2),
        "speedup_compiled_vs_seed": round(seed_seconds / compiled_seconds, 2),
    }
    if not QUICK:
        _record(family, row)

    table = Table(
        ["family", "n", "states", "pairs", "seed (s)", "engine (s)",
         "compiled (s)", "vs engine"],
        title=f"A3: compiled kernel, {family} n={n}",
    )
    table.add(family, n, system.space.size, pairs, f"{seed_seconds:.4f}",
              f"{engine_seconds:.4f}", f"{compiled_seconds:.4f}",
              f"{vs_engine:.1f}x")
    show(table)

    if not QUICK and (family, n) == LARGEST:
        assert vs_engine >= SPEEDUP_TARGET, (
            f"compiled kernel only {vs_engine:.1f}x faster than the PR-1 "
            f"engine on {family} n={n} (target {SPEEDUP_TARGET}x)"
        )
