"""E19 (section 6.5, second flowchart): the history-observer discussion.

::

    delta1: if pc=1 then (if alpha then pc <- 2 else pc <- 3)
    delta2: if pc=2 then (beta <- 0; pc <- 4)
    delta3: if pc=3 then (beta <- 0; pc <- 4)

Looking at the program, beta is 0 either way — whole-program semantic
noninterference holds.  Yet strong dependency on the flowchart system
reports ``alpha |>_phi beta``: the formalism's observer sees the history,
and *when* the write fires reveals the branch.  The paper's witness
(alpha = tt, beta = 37 vs alpha = ff) is reproduced exactly.
"""

from repro.analysis.report import Table
from repro.lang.expr import var
from repro.systems.program import (
    AssignNode,
    Flowchart,
    TestNode,
    build_program_system,
    parse,
    program_transmits,
    semantic_noninterference,
)


def _experiment():
    fc = Flowchart(
        [
            TestNode(1, var("alpha"), 2, 3),
            AssignNode(2, "beta", 0, 4),
            AssignNode(3, "beta", 0, 4),
        ],
        entry=1,
        halt=4,
    )
    ps = build_program_system(
        fc, {"alpha": (False, True), "beta": (0, 37)}
    )
    result = program_transmits(ps, {"alpha"}, "beta", None)

    stmt = parse("if alpha then beta := 0 else beta := 0")
    semantic = semantic_noninterference(stmt, ps.space, "alpha", "beta")

    witness_info = None
    if result:
        w = result.witness
        a1, a2 = w.after
        witness_info = {
            "history": [op.name for op in w.history],
            "sigma1.alpha": w.sigma1["alpha"],
            "sigma2.alpha": w.sigma2["alpha"],
            "final beta 1": a1["beta"],
            "final beta 2": a2["beta"],
        }
    return bool(result), semantic is None, witness_info


def test_e19_observer_discussion(benchmark, show):
    strong_dep, semantic_ni, witness = benchmark.pedantic(
        _experiment, rounds=1, iterations=1
    )
    # Strong dependency (history-observing) sees a flow...
    assert strong_dep
    # ...while whole-program observation does not.
    assert semantic_ni
    # The witness matches the paper's construction: one run's write fires
    # before the observation point, the other's does not (final betas
    # differ, one of them the untouched 37).
    assert witness is not None
    finals = {witness["final beta 1"], witness["final beta 2"]}
    assert 0 in finals and 37 in finals

    table = Table(
        ["observer model", "alpha -> beta flow?"],
        title="E19 (sec 6.5): what the observer can see decides the flow",
    )
    table.add("strong dependency (history observable)", strong_dep)
    table.add("whole-program noninterference", not semantic_ni)
    show(table)

    table2 = Table(["witness field", "value"], title="E19: the paper's witness")
    for name, value in witness.items():
        table2.add(name, value)
    show(table2)
