"""E20 (section 7.4): the quantitative measures on the mod-sum channel.

``delta: beta <- (alpha1 + alpha2) mod N`` with uniform inputs (the paper
uses N = 128 = 7 bits; we run N = 8 = 3 bits — identical structure):

- the pair transmits log2 N bits;
- the equivocation measure gives alpha1 alone ZERO bits (equivocation =
  full initial entropy);
- the averaged measure gives alpha1 alone the full log2 N bits;
- the interference b(A1)+b(A2)-b(A1 u A2) is -log2 N (purely contingent
  transmission);
- monotonicity: adding constraint never increases the pair's bits.
"""

import math

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var
from repro.quantitative import (
    StateDistribution,
    bits_transmitted,
    bits_transmitted_averaged,
    equivocation,
    interference,
    source_entropy,
)

N = 8
WIDTH = int(math.log2(N))


def _experiment():
    b = SystemBuilder().integers("alpha1", "alpha2", "beta", bits=WIDTH)
    b.op_assign("delta", "beta", (var("alpha1") + var("alpha2")) % N)
    system = b.build()
    h = History.of(system.operation("delta"))
    uniform = StateDistribution.uniform_over_space(system.space)

    measures = {
        "H(alpha1)": source_entropy(uniform, {"alpha1"}),
        "b({a1,a2} -> beta) equivocation": bits_transmitted(
            uniform, {"alpha1", "alpha2"}, "beta", h
        ),
        "b(a1 -> beta) equivocation": bits_transmitted(
            uniform, {"alpha1"}, "beta", h
        ),
        "equivocation(a1 | beta)": equivocation(
            uniform, {"alpha1"}, "beta", h
        ),
        "b(a1 -> beta) averaged": bits_transmitted_averaged(
            uniform, {"alpha1"}, "beta", h
        ),
        "interference(a1, a2)": interference(
            uniform, {"alpha1"}, {"alpha2"}, "beta", h
        ),
    }
    # Constraint monotonicity of the pair channel.
    halved = StateDistribution.uniform(
        Constraint(system.space, lambda s: s["alpha1"] < N // 2, name="a1<N/2")
    )
    measures["b({a1,a2}) under a1 < N/2"] = bits_transmitted(
        halved, {"alpha1", "alpha2"}, "beta", h
    )
    return measures


def test_e20_quantitative(benchmark, show):
    m = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    close = lambda a, b: abs(a - b) < 1e-9
    assert close(m["H(alpha1)"], WIDTH)
    assert close(m["b({a1,a2} -> beta) equivocation"], WIDTH)
    assert close(m["b(a1 -> beta) equivocation"], 0.0)
    assert close(m["equivocation(a1 | beta)"], WIDTH)
    assert close(m["b(a1 -> beta) averaged"], WIDTH)
    assert close(m["interference(a1, a2)"], -WIDTH)
    assert m["b({a1,a2}) under a1 < N/2"] <= WIDTH + 1e-9

    table = Table(
        ["measure", "bits"],
        title=f"E20 (sec 7.4): beta <- (a1 + a2) mod {N} "
        f"(paper: mod 128, same shape)",
    )
    for name, value in m.items():
        table.add(name, value)
    show(table)
