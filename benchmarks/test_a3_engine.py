"""A3 (perf): the shared pair-graph dependency engine vs the seed path.

The seed decision procedure runs one independent pair-graph BFS per
``(A, phi, beta)`` query, re-executing semantic operation lambdas at every
step.  The :class:`~repro.core.engine.DependencyEngine` tabulates each
operation once and computes one memoized closure per ``(A, phi)``, from
which *every* target is answered.  This bench measures both paths on the
A1 relay-chain scaling family for the two batched analyses the Worth data
needs — ``dependency_matrix`` and ``dependency_closure`` — asserts
cell-for-cell agreement and the >= 5x speedup target, and appends the
measurements to ``BENCH_engine.json`` (the start of the repo's perf
trajectory).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.report import Table
from repro.core.engine import DependencyEngine
from repro.core.reachability import (
    _seed_dependency_closure,
    _seed_depends_ever,
)
from repro.core.system import System
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

# REPRO_BENCH_QUICK=1 (the CI bench-smoke job / `make bench-quick`)
# shrinks the sizes and skips recording and the speedup bar — agreement
# asserts still run.
QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

# The largest size is the one the acceptance threshold is asserted at;
# smaller sizes are recorded for the scaling curve.
SIZES = [4, 5] if QUICK else [6, 8]
ROUNDS = 1 if QUICK else 3
SPEEDUP_TARGET = 5.0


def _chain_system(n: int) -> System:
    b = SystemBuilder()
    for i in range(n):
        b.integers(f"x{i}", bits=1)
    for i in range(n - 1):
        b.op_assign(f"d{i}", f"x{i + 1}", var(f"x{i}"))
    return b.build()


def _seed_matrix(system: System) -> dict[str, dict[str, bool]]:
    """The pre-engine dependency_matrix: one BFS per cell."""
    names = system.space.names
    return {
        x: {
            y: bool(_seed_depends_ever(system, {x}, y))
            for y in names
        }
        for x in names
    }


def _record(case: str, row: dict) -> None:
    """Append/replace one measurement row in BENCH_engine.json."""
    data: dict = {"bench": "A3 engine", "family": "A1 relay chain", "rows": []}
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            pass
    rows = [
        r
        for r in data.get("rows", [])
        if not (r.get("case") == case and r.get("n") == row["n"])
    ]
    rows.append({"case": case, **row})
    rows.sort(key=lambda r: (r["case"], r["n"]))
    data["rows"] = rows
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


@pytest.mark.parametrize("n", SIZES)
def test_a3_matrix_engine_vs_seed(benchmark, n, show):
    """dependency_matrix: n cold engine builds (tabulation included) vs
    the seed per-cell BFS, measured on the same chain."""
    system = _chain_system(n)

    start = time.perf_counter()
    seed_result = _seed_matrix(system)
    seed_seconds = time.perf_counter() - start

    # Fresh system + engine per round: measure a *cold* engine, so the
    # tabulation and closure costs are inside the measurement.
    def setup():
        return (DependencyEngine(_chain_system(n)),), {}

    engine_result = benchmark.pedantic(
        lambda engine: engine.matrix(), setup=setup, rounds=ROUNDS, iterations=1
    )
    engine_seconds = benchmark.stats.stats.mean

    assert engine_result == seed_result
    speedup = seed_seconds / engine_seconds
    row = {
        "n": n,
        "states": system.space.size,
        "seed_seconds": round(seed_seconds, 6),
        "engine_seconds": round(engine_seconds, 6),
        "speedup": round(speedup, 2),
    }
    if not QUICK:
        _record("dependency_matrix", row)

    table = Table(
        ["objects", "states", "seed (s)", "engine (s)", "speedup"],
        title=f"A3: dependency_matrix, n={n}",
    )
    table.add(n, system.space.size, f"{seed_seconds:.4f}",
              f"{engine_seconds:.4f}", f"{speedup:.1f}x")
    show(table)

    if not QUICK and n == max(SIZES):
        assert speedup >= SPEEDUP_TARGET, (
            f"engine only {speedup:.1f}x faster than seed at n={n} "
            f"(target {SPEEDUP_TARGET}x)"
        )


@pytest.mark.parametrize("n", SIZES)
def test_a3_closure_engine_vs_seed(benchmark, n, show):
    """dependency_closure (Worth raw data, witnesses included): engine vs
    the seed per-cell BFS, with verdict agreement and witness replay."""
    system = _chain_system(n)

    start = time.perf_counter()
    seed_result = _seed_dependency_closure(system)
    seed_seconds = time.perf_counter() - start

    def setup():
        return (DependencyEngine(_chain_system(n)),), {}

    engine_result = benchmark.pedantic(
        lambda engine: engine.closure(), setup=setup, rounds=ROUNDS, iterations=1
    )
    engine_seconds = benchmark.stats.stats.mean

    assert set(engine_result) == set(seed_result)
    for key, seed_cell in seed_result.items():
        engine_cell = engine_result[key]
        assert bool(engine_cell) == bool(seed_cell), key
        if engine_cell:
            witness = engine_cell.witness
            after1 = witness.history(witness.sigma1)
            after2 = witness.history(witness.sigma2)
            assert all(after1[t] != after2[t] for t in witness.targets)
            # Both BFS orders are shortest-path, so lengths must agree.
            assert len(witness.history) == len(seed_cell.witness.history)

    speedup = seed_seconds / engine_seconds
    row = {
        "n": n,
        "states": system.space.size,
        "seed_seconds": round(seed_seconds, 6),
        "engine_seconds": round(engine_seconds, 6),
        "speedup": round(speedup, 2),
    }
    if not QUICK:
        _record("dependency_closure", row)

    table = Table(
        ["objects", "states", "seed (s)", "engine (s)", "speedup"],
        title=f"A3: dependency_closure, n={n}",
    )
    table.add(n, system.space.size, f"{seed_seconds:.4f}",
              f"{engine_seconds:.4f}", f"{speedup:.1f}x")
    show(table)

    if not QUICK and n == max(SIZES):
        assert speedup >= SPEEDUP_TARGET, (
            f"engine only {speedup:.1f}x faster than seed at n={n} "
            f"(target {SPEEDUP_TARGET}x)"
        )
