"""E7 (section 3.6): comparing solutions by Worth.

The two-operation rights system::

    delta1: if s,r,w rights then beta <- alpha
    delta2: if s,r,w rights then beta <- m

phi1 (deny only the alpha read) is as worthy as phi_max; phi2 (deny the
subject/write rights) also solves the problem but kills the m channel too
— strictly less worthy.  The measure is monotonic (Def 3-2).
"""

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.reachability import depends_ever
from repro.core.worth import WorthMeasure, WorthOrder
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


def _build():
    b = SystemBuilder().booleans("s_xx", "r_xa", "r_xm", "w_xb")
    b.integers("alpha", "m", "beta", bits=1)
    b.op_if(
        "delta1", var("s_xx") & var("r_xa") & var("w_xb"), "beta", var("alpha")
    )
    b.op_if(
        "delta2", var("s_xx") & var("r_xm") & var("w_xb"), "beta", var("m")
    )
    return b.build()


def _experiment():
    system = _build()
    sp = system.space
    phi_max = Constraint(
        sp,
        lambda s: not (s["s_xx"] and s["r_xa"] and s["w_xb"]),
        name="phi_max",
    )
    phi1 = Constraint(sp, lambda s: not s["r_xa"], name="phi1: r not in <x,alpha>")
    phi2 = Constraint(
        sp,
        lambda s: not s["s_xx"] and not s["w_xb"],
        name="phi2: no s,w",
    )
    measure = WorthMeasure(
        system, sources=[frozenset({"alpha"}), frozenset({"m"})]
    )
    rows = []
    worths = {}
    for phi in (phi_max, phi1, phi2):
        assert not depends_ever(system, {"alpha"}, "beta", phi)
        w = measure.worth(phi)
        worths[phi.name] = w
        rows.append(
            (
                phi.name,
                w.permits({"alpha"}, "beta"),
                w.permits({"m"}, "beta"),
                len(w.paths),
            )
        )
    comparisons = {
        "phi1 vs phi_max": worths["phi1: r not in <x,alpha>"].compare(
            worths["phi_max"]
        ),
        "phi2 vs phi_max": worths["phi2: no s,w"].compare(worths["phi_max"]),
        "phi2 vs phi1": worths["phi2: no s,w"].compare(
            worths["phi1: r not in <x,alpha>"]
        ),
    }
    mono = WorthMeasure(system).monotonicity_counterexample(
        [phi_max, phi1, phi2, Constraint.true(sp)]
    )
    return rows, comparisons, mono


def _quantitative_discomfort():
    """Section 3.6's t1/t2 system (the paper's 16-bit t's scale to 2 and
    3 bits so the asymmetry survives enumeration)::

        delta1: m1 <- t1
        delta2: m2 <- t2
        delta3: if t1 >= 2 and t2 >= 4 then beta <- alpha

    phi1 (t1 <= 1) and phi2 (t2 <= 3) both solve ``not alpha |> beta``
    while leaving different amounts of variety (1 vs 2 bits) — the
    comparison the paper deems "uncomfortable".  The Worth measure calls
    them equally worthy: both eliminate exactly the alpha path.
    """
    import math

    b = SystemBuilder().ranged("t1", lo=0, hi=3).ranged("t2", lo=0, hi=7)
    b.integers("m1", bits=2).integers("m2", bits=3)
    b.integers("alpha", "beta", bits=1)
    b.op_assign("delta1", "m1", var("t1"))
    b.op_assign("delta2", "m2", var("t2"))
    b.op_if(
        "delta3", (var("t1") >= 2) & (var("t2") >= 4), "beta", var("alpha")
    )
    system = b.build()
    sp = system.space
    phi1 = Constraint(sp, lambda s: s["t1"] <= 1, name="t1<=1")
    phi2 = Constraint(sp, lambda s: s["t2"] <= 3, name="t2<=3")
    measure = WorthMeasure(
        system,
        sources=[
            frozenset({"alpha"}),
            frozenset({"t1"}),
            frozenset({"t2"}),
        ],
    )
    rows = []
    worths = {}
    for phi, kept_count in ((phi1, 2), (phi2, 4)):
        assert not depends_ever(system, {"alpha"}, "beta", phi)
        worths[phi.name] = measure.worth(phi)
        rows.append(
            (phi.name, math.log2(kept_count), len(worths[phi.name].paths))
        )
    order = worths["t1<=1"].compare(worths["t2<=3"])
    return rows, order


def test_e7_worth_comparison(benchmark, show):
    rows, comparisons, mono = benchmark.pedantic(
        _experiment, rounds=1, iterations=1
    )
    dis_rows, dis_order = _quantitative_discomfort()
    # phi1 is as worthy as phi_max; phi2 strictly less worthy.
    assert comparisons["phi1 vs phi_max"] is WorthOrder.EQUAL
    assert comparisons["phi2 vs phi_max"] is WorthOrder.LESS
    assert comparisons["phi2 vs phi1"] is WorthOrder.LESS
    # All three keep alpha out of beta; only phi2 loses the m channel.
    for name, alpha_path, m_path, _count in rows:
        assert not alpha_path, name
        assert m_path == (not name.startswith("phi2")), name
    assert mono is None  # Def 3-2 monotonicity

    table = Table(
        ["solution", "alpha|>beta kept?", "m|>beta kept?", "total paths"],
        title="E7 (sec 3.6): Worth of three solutions",
    )
    for row in rows:
        table.add(*row)
    show(table)

    table2 = Table(["comparison", "order"], title="E7: Worth ordering")
    for name, order in comparisons.items():
        table2.add(name, order.value)
    show(table2)

    # The quantitative-discomfort coda (the t1/t2 system).
    assert dis_order is WorthOrder.EQUAL
    table3 = Table(
        ["solution", "bits of variety left in the gate", "paths kept"],
        title="E7: sec 3.6's 'uncomfortable' bit comparison — Worth "
        "calls both solutions equal",
    )
    for row in dis_rows:
        table3.add(*row)
    show(table3)
