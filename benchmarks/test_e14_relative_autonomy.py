"""E14 (sections 5.3/5.4): relative autonomy.

- The subtraction system ``beta <- alpha1 - alpha2`` under
  ``alpha1 = alpha2``: not even the clump transmits (delta always writes
  0), matching the Relative Autonomy Hypothesis.
- The two-pair constraint ``a1=a2 and m1=m2`` is {a1,a2}-, {m1,m2}-, and
  q-autonomous, and Theorem 5-1's substitution characterization agrees
  with the decomposition on all of them.
- Theorem 5-2: the union of autonomous clumps decomposes.
"""

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.dependency import transmits
from repro.core.theorems import thm_5_1_autonomy_characterizations
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


def _subtraction():
    b = SystemBuilder().integers("alpha1", "alpha2", bits=2)
    b.obj("beta", tuple(range(-3, 4)))
    b.op_assign("delta", "beta", var("alpha1") - var("alpha2"))
    system = b.build()
    phi = Constraint(
        system.space, lambda s: s["alpha1"] == s["alpha2"], name="a1=a2"
    )
    delta = system.operation("delta")
    return {
        "clump {a1,a2} |>_phi beta": bool(
            transmits(system, {"alpha1", "alpha2"}, "beta", delta, phi)
        ),
        "clump |>_tt beta (control)": bool(
            transmits(system, {"alpha1", "alpha2"}, "beta", delta)
        ),
    }


def _two_pair_classification():
    b = SystemBuilder().integers("a1", "a2", "m1", "m2", "q", bits=1)
    sp = b.space()
    phi = Constraint(
        sp,
        lambda s: s["a1"] == s["a2"] and s["m1"] == s["m2"],
        name="a1=a2 & m1=m2",
    )
    clumps = {
        "{a1,a2}": {"a1", "a2"},
        "{m1,m2}": {"m1", "m2"},
        "{q}": {"q"},
        "{a1}": {"a1"},
        "{a1,m1}": {"a1", "m1"},
    }
    rows = []
    for label, names in clumps.items():
        relative = phi.is_autonomous_relative_to(names)
        thm = thm_5_1_autonomy_characterizations(phi, frozenset(names))
        rows.append((label, relative, thm.ok))
    return rows


def _theorem_5_2():
    b = SystemBuilder().integers("a1", "a2", "m", "beta", bits=1)
    b.op_assign("delta", "beta", var("a1"))
    system = b.build()
    phi = Constraint(
        system.space, lambda s: s["a1"] == s["a2"], name="a1=a2"
    )
    delta = system.operation("delta")
    union = bool(
        transmits(system, {"a1", "a2", "m"}, "beta", delta, phi)
    )
    clump = bool(transmits(system, {"a1", "a2"}, "beta", delta, phi))
    single_m = bool(transmits(system, {"m"}, "beta", delta, phi))
    return union, clump, single_m


def test_e14_relative_autonomy(benchmark, show):
    sub, rows, (union, clump, single_m) = benchmark(
        lambda: (_subtraction(), _two_pair_classification(), _theorem_5_2())
    )
    # Subtraction: constrained, delta always writes 0.
    assert not sub["clump {a1,a2} |>_phi beta"]
    assert sub["clump |>_tt beta (control)"]
    # Classification matches section 5.4's discussion.
    expected = {
        "{a1,a2}": True,
        "{m1,m2}": True,
        "{q}": True,
        "{a1}": False,
        "{a1,m1}": False,
    }
    for label, relative, thm_ok in rows:
        assert relative == expected[label], label
        assert thm_ok, label
    # Theorem 5-2: union transmits, so some clump does — here {a1,a2}.
    assert union and clump and not single_m

    table = Table(
        ["clump A", "phi A-autonomous?", "Thm 5-1 agrees?"],
        title="E14 (sec 5.3/5.4): relative autonomy of a1=a2 & m1=m2",
    )
    for row in rows:
        table.add(*row)
    show(table)

    table2 = Table(["query", "answer"], title="E14: subtraction system")
    for name, value in sub.items():
        table2.add(name, value)
    show(table2)
