"""A3 (perf): induction provers on the batched fixed-history kernel.

The paper's scalability story is Strong Dependency Induction: reduce the
for-all-histories question to per-operation obligations (Cor 4-3,
Thm 6-7).  Before PR 3 those obligations were the *slow* path — one
``transmits`` call per (operation, source, target) triple, each
re-enumerating sat(phi) and re-executing operation lambdas.  This bench
measures the two certification workloads the issue names, seed vs
batched, on the same systems in the same run:

- **lattice** — Corollary 4-3 over all object pairs on an n-object xor
  *chain* (``x_{i+1} += x_i``) with the level order
  ``q(x_i, x_j) = i <= j``: the multilevel-security argument.  The seed
  path replays the pre-PR-3 prover loop verbatim with
  ``dependency._seed_transmits``; the batched path is
  :func:`~repro.core.induction.prove_via_relation`, whose closure
  obligations now read the engine's ``operation_flows`` matrix (one
  bucket pass per source object, all operations and targets at once).
  The >= 10x acceptance bar is asserted here, at the largest case.
- **floyd** — the section 6.5 technique end to end on a scaled
  chain-of-temps program (``t1 <- q>10; t_i <- t_{i-1}; beta <- t_n ?
  alpha : beta`` with entry assertion ``q < 10``): Floyd VCs, inductive
  cover, then Theorem 6-7's per-(member, operation) obligations.  The
  seed path replays the pre-PR-3 cover-prover loop with
  ``_seed_transmits``; the batched path is
  :func:`~repro.systems.program.prove_program_no_flow`, riding the
  engine's per-(A, op, member) fixed-history tables.

Each case appends one row to ``BENCH_induction.json`` with both timings
and the speedup, and asserts the two paths reach identical verdicts
(valid proofs, identical failing-obligation sets).  ``REPRO_BENCH_QUICK=1``
(the CI bench-smoke job / ``make bench-quick``) shrinks sizes, runs one
round and skips recording and the speedup bar.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.dependency import _seed_transmits
from repro.core.induction import prove_via_relation
from repro.core.system import History, System
from repro.lang.builders import SystemBuilder
from repro.lang.expr import if_expr, var
from repro.systems.program import (
    AssignNode,
    Flowchart,
    FloydAssertions,
    build_program_system,
    prove_program_no_flow,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_induction.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
SPEEDUP_TARGET = 10.0  # batched over seed, lattice workload, largest case

LATTICE_CASES = [4] if QUICK else [8, 10, 11]
FLOYD_CASES = [2] if QUICK else [3, 4]
ROUNDS = 1 if QUICK else 3
LATTICE_LARGEST = max(LATTICE_CASES)


# -- lattice certification (Cor 4-3) ------------------------------------------


def _xor_chain(n: int) -> System:
    """n one-bit objects; d_i mixes x_i upward into x_{i+1} — information
    only climbs, so the level order certifies."""
    b = SystemBuilder()
    for i in range(n):
        b.integers(f"x{i}", bits=1)
    for i in range(n - 1):
        nxt = f"x{i + 1}"
        b.op_assign(f"d{i}", nxt, (var(nxt) + var(f"x{i}")) % 2)
    return b.build()


def _level_order(x: str, y: str) -> bool:
    return int(x[1:]) <= int(y[1:])


def _seed_certify_lattice(system: System) -> tuple[bool, set]:
    """The pre-PR-3 Corollary 4-3 prover, verbatim: precondition checks
    plus one ``_seed_transmits`` per (operation, x, y) triple outside q."""
    phi = Constraint.true(system.space)
    names = system.space.names
    ok = phi.is_invariant(system) and phi.is_autonomous()
    ok = ok and all(_level_order(x, x) for x in names)
    failures: set = set()
    for op in system.operations:
        for x in names:
            for y in names:
                if _level_order(x, y):
                    continue
                if _seed_transmits(system, {x}, y, History.of(op), phi):
                    failures.add((op.name, x, y))
    return (ok and not failures), failures


@pytest.mark.parametrize("n", LATTICE_CASES)
def test_a3_lattice_certification(benchmark, n, show):
    system = _xor_chain(n)

    start = time.perf_counter()
    seed_valid, seed_failures = _seed_certify_lattice(system)
    seed_seconds = time.perf_counter() - start

    # Fresh system per round: shared_engine is keyed per instance, so the
    # compile + operation_flows cost stays inside the measurement.
    def setup():
        return (_xor_chain(n),), {}

    proof = benchmark.pedantic(
        lambda sys_: prove_via_relation(sys_, None, _level_order, q_name="<="),
        setup=setup,
        rounds=ROUNDS,
        iterations=1,
    )
    batched_seconds = benchmark.stats.stats.min

    assert proof.valid, "the xor chain must certify against the level order"
    assert proof.valid == seed_valid
    assert not seed_failures
    # Both paths agree obligation-for-obligation, not just on the verdict.
    batched_failures = {
        ob.description for ob in proof.obligations if not ob.ok
    }
    assert not batched_failures

    speedup = seed_seconds / batched_seconds
    row = {
        "n": n,
        "states": system.space.size,
        "obligations": len(proof.obligations),
        "seed_seconds": round(seed_seconds, 6),
        "batched_seconds": round(batched_seconds, 6),
        "speedup": round(speedup, 2),
    }
    if not QUICK:
        _record("lattice", row)

    table = Table(
        ["workload", "n", "states", "obligations", "seed (s)",
         "batched (s)", "speedup"],
        title=f"A3: lattice certification (Cor 4-3), n={n}",
    )
    table.add("lattice", n, system.space.size, len(proof.obligations),
              f"{seed_seconds:.4f}", f"{batched_seconds:.4f}",
              f"{speedup:.1f}x")
    show(table)

    if not QUICK and n == LATTICE_LARGEST:
        assert speedup >= SPEEDUP_TARGET, (
            f"batched induction only {speedup:.1f}x faster than the seed "
            f"transmits path on lattice n={n} (target {SPEEDUP_TARGET}x)"
        )


# -- Floyd-assertion program analysis (Thm 6-7) -------------------------------


def _chain_program(n: int):
    """E18's flowchart scaled: the secret test propagates through n temps
    before guarding the copy into beta; ``q < 10`` keeps every temp ff."""
    nodes = [AssignNode(1, "t1", if_expr(var("q") > 10, True, False), 2)]
    for i in range(2, n + 1):
        nodes.append(AssignNode(i, f"t{i}", var(f"t{i - 1}"), i + 1))
    nodes.append(
        AssignNode(
            n + 1, "beta", if_expr(var(f"t{n}"), var("alpha"), var("beta")),
            n + 2,
        )
    )
    fc = Flowchart(nodes, entry=1, halt=n + 2)
    domains = {"q": range(8, 13), "alpha": (0, 1), "beta": (0, 1)}
    for i in range(1, n + 1):
        domains[f"t{i}"] = (False, True)
    return build_program_system(fc, domains)


def _chain_assertions(ps, n: int) -> dict[int, Constraint]:
    sp = ps.space
    assertions = {1: Constraint(sp, lambda s: s["q"] < 10, name="q<10")}
    for i in range(2, n + 2):
        assertions[i] = Constraint(
            sp,
            lambda s, j=i - 1: not s[f"t{j}"],
            name=f"~t{i - 1}",
        )
    assertions[n + 2] = Constraint.true(sp)
    return assertions


def _seed_certify_floyd(ps, assertions) -> bool:
    """The pre-PR-3 Theorem 6-7 cover prover, verbatim: Floyd VCs and the
    Def 6-2 cover check, then one ``_seed_transmits`` per
    (member, intermediate object, operation) for alternative (a) and per
    (member, operation) for alternative (b)."""
    system = ps.system
    network = FloydAssertions(ps.flowchart, ps.space, assertions)
    vc_ok = network.check(system).valid
    cover = network.global_cover()
    phi = network.entry_constraint()
    cover_ok = cover.check(system, phi).valid
    source_set = system.space.check_names({"alpha"})
    alt_a_ok = True
    for member in cover.members:
        for m in system.space.names:
            if m in source_set:
                continue
            for op in system.operations:
                if _seed_transmits(system, source_set, m, op, member):
                    alt_a_ok = False
    everything_else = frozenset(system.space.names) - {"beta"}
    alt_b_ok = True
    for member in cover.members:
        for op in system.operations:
            if _seed_transmits(system, everything_else, "beta", op, member):
                alt_b_ok = False
                break
        if not alt_b_ok:
            break
    return vc_ok and cover_ok and (alt_a_ok or alt_b_ok)


@pytest.mark.parametrize("n", FLOYD_CASES)
def test_a3_floyd_certification(benchmark, n, show):
    ps = _chain_program(n)
    assertions = _chain_assertions(ps, n)

    start = time.perf_counter()
    seed_valid = _seed_certify_floyd(ps, assertions)
    seed_seconds = time.perf_counter() - start

    def setup():
        fresh = _chain_program(n)
        return (fresh, _chain_assertions(fresh, n)), {}

    proof = benchmark.pedantic(
        lambda fresh, asserts: prove_program_no_flow(
            fresh, asserts, {"alpha"}, "beta", cover_style="global"
        ),
        setup=setup,
        rounds=ROUNDS,
        iterations=1,
    )
    batched_seconds = benchmark.stats.stats.min

    assert proof.valid, "the guarded chain program must certify"
    assert proof.valid == seed_valid

    speedup = seed_seconds / batched_seconds
    row = {
        "n": n,
        "states": ps.space.size,
        "obligations": len(proof.obligations),
        "seed_seconds": round(seed_seconds, 6),
        "batched_seconds": round(batched_seconds, 6),
        "speedup": round(speedup, 2),
    }
    if not QUICK:
        _record("floyd", row)

    table = Table(
        ["workload", "n", "states", "obligations", "seed (s)",
         "batched (s)", "speedup"],
        title=f"A3: Floyd-assertion analysis (Thm 6-7), {n} temps",
    )
    table.add("floyd", n, ps.space.size, len(proof.obligations),
              f"{seed_seconds:.4f}", f"{batched_seconds:.4f}",
              f"{speedup:.1f}x")
    show(table)


def _record(workload: str, row: dict) -> None:
    """Append/replace one measurement row in BENCH_induction.json."""
    data: dict = {
        "bench": "A3 batched induction",
        "paths": ["seed", "batched"],
        "rows": [],
    }
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            pass
    rows = [
        r
        for r in data.get("rows", [])
        if not (r.get("workload") == workload and r.get("n") == row["n"])
    ]
    rows.append({"workload": workload, **row})
    rows.sort(key=lambda r: (r["workload"], r["n"]))
    data["rows"] = rows
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")
