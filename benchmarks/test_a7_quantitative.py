"""A7 (perf): the compiled quantitative substrate vs the object path.

Three cases:

1. **Measure bundle speedup** (the acceptance bar).  The E20 mod-sum
   channel scaled to N = 16 (4096 states >= the 1024-state bar): the
   equivocation measure (singleton and pair), the equivocation itself,
   and the averaged measure, computed by the object path (per-state
   ``history(state)`` replay, per-z-slice ``condition`` loop) and by
   :class:`~repro.quantitative.compiled.QuantEngine` (one composed-array
   gather, one bucket-grouped pass).  Results must agree — the
   single-joint measures to the last float bit (both paths reduce the
   *same* exact ``Fraction`` table with the same deterministic
   summation), the averaged measure to float dust — and the compiled
   bundle must run >= 20x faster.

2. **Channel capacity speedup**, the E27 workload scaled up (request and
   disk 5 bits wide, one-time-pad jitter, 32768 states): one batched
   composed-history sweep for the whole channel matrix vs per-input
   replay, then vectorized Blahut-Arimoto.  The transition matrices must
   be identical cell-for-cell as exact fractions-of-unity floats.

3. **Bits-per-operation curves** (compiled path): the access-matrix
   guarded-copy system (2048 states) and a two-statement accumulator
   program (12288 states), reporting equivocation-measure and
   averaged-measure bits after k operations — the section 7.4 numbers at
   a scale the object path would crawl on.

Rows append to ``BENCH_quantitative.json``.  ``REPRO_BENCH_QUICK=1``
shrinks sizes, skips recording and the bars.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

from repro.analysis.report import Table
from repro.core.engine import shared_engine
from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.expr import apply, var
from repro.quantitative import (
    QuantEngine,
    StateDistribution,
    bits_transmitted,
    bits_transmitted_averaged,
    equivocation,
)
from repro.quantitative.bandwidth import capacity as object_capacity
from repro.quantitative.bandwidth import channel_matrix as object_channel_matrix
from repro.systems.access_matrix import AccessMatrixSystem
from repro.systems.program import build_program_system

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_quantitative.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
SPEEDUP_TARGET = 20.0  # compiled vs object path, >= 1024-state systems
MOD_N = 8 if QUICK else 16  # mod-sum channel: space = MOD_N ** 3 states
DISK_BITS = 3 if QUICK else 5  # disk channel: space = 2 ** (3 * DISK_BITS)
COMPILED_ROUNDS = 3
CURVE_LENGTH = 3


def _mod_sum(n: int):
    width = int(math.log2(n))
    b = SystemBuilder().integers("alpha1", "alpha2", "beta", bits=width)
    b.op_assign("delta", "beta", (var("alpha1") + var("alpha2")) % n)
    return b.build()


def _disk(bits: int):
    residue = 2**bits
    mix = lambda r, j: (r + j) % residue
    b = SystemBuilder().integers("request", "disk", bits=bits)
    b.obj("jitter", tuple(range(residue)))
    b.op_assign(
        "seek", "disk", apply(mix, var("request"), var("jitter"), symbol="mix")
    )
    return b.build()


def _record(case: str, row: dict) -> None:
    """Append/replace one measurement row in BENCH_quantitative.json."""
    data: dict = {
        "bench": "A7 compiled quantitative substrate",
        "rows": [],
    }
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            pass
    rows = [
        r
        for r in data.get("rows", [])
        if not (r.get("case") == case and r.get("n") == row["n"])
    ]
    rows.append({"case": case, **row})
    rows.sort(key=lambda r: (r["case"], r["n"]))
    data["rows"] = rows
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_a7_measures_compiled_vs_object(show):
    system = _mod_sum(MOD_N)
    states = system.space.size
    h = History.of(system.operation("delta"))
    width = int(math.log2(MOD_N))

    def object_bundle():
        dist = StateDistribution.uniform_over_space(system.space)
        return {
            "pair": bits_transmitted(
                dist, {"alpha1", "alpha2"}, "beta", h
            ),
            "single": bits_transmitted(dist, {"alpha1"}, "beta", h),
            "equivocation": equivocation(dist, {"alpha1"}, "beta", h),
            "averaged": bits_transmitted_averaged(
                dist, {"alpha1"}, "beta", h
            ),
        }

    quant = QuantEngine(system)
    shared_engine(system).compiled_system()  # compile outside both legs

    def compiled_bundle():
        dist = quant.uniform()
        return {
            "pair": quant.bits_transmitted(
                dist, {"alpha1", "alpha2"}, "beta", h
            ),
            "single": quant.bits_transmitted(dist, {"alpha1"}, "beta", h),
            "equivocation": quant.equivocation(dist, {"alpha1"}, "beta", h),
            "averaged": quant.bits_transmitted_averaged(
                dist, {"alpha1"}, "beta", h
            ),
        }

    start = time.perf_counter()
    object_result = object_bundle()
    object_seconds = time.perf_counter() - start

    compiled_seconds = float("inf")
    compiled_result: dict = {}
    for _ in range(COMPILED_ROUNDS):
        start = time.perf_counter()
        compiled_result = compiled_bundle()
        compiled_seconds = min(
            compiled_seconds, time.perf_counter() - start
        )

    # Single-joint measures reduce the same exact Fraction table with the
    # same deterministic summation — the floats must be identical bits.
    for key in ("pair", "single", "equivocation"):
        assert compiled_result[key] == object_result[key], key
    # The averaged measure's per-slice terms come from integer-count
    # entropies and sum in bucket order — float dust only.
    assert math.isclose(
        compiled_result["averaged"], object_result["averaged"], abs_tol=1e-9
    )
    assert compiled_result["pair"] == float(width)
    assert compiled_result["single"] == 0.0

    speedup = object_seconds / compiled_seconds
    if not QUICK:
        _record("mod_sum_measures", {
            "n": MOD_N,
            "states": states,
            "object_seconds": round(object_seconds, 6),
            "compiled_seconds": round(compiled_seconds, 6),
            "speedup_compiled_vs_object": round(speedup, 2),
        })

    table = Table(
        ["family", "states", "object (s)", "compiled (s)", "speedup"],
        title=f"A7: sec 7.4 measure bundle, mod-sum N={MOD_N}",
    )
    table.add("mod_sum", states, f"{object_seconds:.4f}",
              f"{compiled_seconds:.4f}", f"{speedup:.1f}x")
    show(table)

    if not QUICK:
        assert states >= 1024
        assert speedup >= SPEEDUP_TARGET, (
            f"compiled quantitative bundle only {speedup:.1f}x faster "
            f"than the object path on {states} states "
            f"(target {SPEEDUP_TARGET}x)"
        )


def test_a7_capacity_compiled_vs_object(show):
    system = _disk(DISK_BITS)
    states = system.space.size
    h = History.of(system.operation("seek"))

    start = time.perf_counter()
    dist = StateDistribution.uniform_over_space(system.space)
    obj_inputs, obj_outputs, obj_matrix = object_channel_matrix(
        dist, {"request"}, "disk", h
    )
    obj_capacity = object_capacity(dist, {"request"}, "disk", h)
    object_seconds = time.perf_counter() - start

    quant = QuantEngine(system)
    shared_engine(system).compiled_system()

    compiled_seconds = float("inf")
    for _ in range(COMPILED_ROUNDS):
        start = time.perf_counter()
        cdist = quant.uniform()
        cmp_inputs, cmp_outputs, cmp_matrix = quant.channel_matrix(
            cdist, {"request"}, "disk", h
        )
        cmp_capacity = quant.capacity(cdist, {"request"}, "disk", h)
        compiled_seconds = min(
            compiled_seconds, time.perf_counter() - start
        )

    # Cell-for-cell identity, independent of output enumeration order.
    as_cells = lambda inputs, outputs, matrix: {
        (i, o): matrix[a][b]
        for a, i in enumerate(inputs)
        for b, o in enumerate(outputs)
    }
    assert as_cells(cmp_inputs, cmp_outputs, cmp_matrix) == as_cells(
        obj_inputs, obj_outputs, obj_matrix
    )
    assert math.isclose(cmp_capacity, obj_capacity, abs_tol=1e-9)
    # One-time-pad jitter: the channel carries nothing.
    assert math.isclose(cmp_capacity, 0.0, abs_tol=1e-6)

    speedup = object_seconds / compiled_seconds
    if not QUICK:
        _record("disk_capacity", {
            "n": DISK_BITS,
            "states": states,
            "inputs": len(cmp_inputs),
            "object_seconds": round(object_seconds, 6),
            "compiled_seconds": round(compiled_seconds, 6),
            "speedup_compiled_vs_object": round(speedup, 2),
        })

    table = Table(
        ["family", "states", "inputs", "object (s)", "compiled (s)",
         "speedup"],
        title=f"A7: channel matrix + capacity, disk bits={DISK_BITS}",
    )
    table.add("disk", states, len(cmp_inputs), f"{object_seconds:.4f}",
              f"{compiled_seconds:.4f}", f"{speedup:.1f}x")
    show(table)

    if not QUICK:
        assert speedup >= SPEEDUP_TARGET, (
            f"batched channel layer only {speedup:.1f}x faster than "
            f"per-input replay on {states} states "
            f"(target {SPEEDUP_TARGET}x)"
        )


def test_a7_bits_per_operation_curves(show):
    # Access-matrix family: the guarded copy transmits alpha -> beta
    # only where the rights allow it (2048 states).
    ams = AccessMatrixSystem(
        subjects=["x"],
        files={"alpha": (0, 1), "beta": (0, 1)},
        entries=[("x", "x"), ("x", "alpha"), ("x", "beta")],
        copy_operations=[("x", "beta", "alpha")],
    )
    copy = ams.system.operation("copy(x,beta,alpha)")
    quant = QuantEngine(ams.system)
    dist = quant.uniform()

    am_rows = []
    start = time.perf_counter()
    for k in range(CURVE_LENGTH + 1):
        h = History([copy] * k)
        am_rows.append((
            k,
            quant.bits_transmitted(dist, {"alpha"}, "beta", h),
            quant.bits_transmitted_averaged(dist, {"alpha"}, "beta", h),
        ))
    am_seconds = time.perf_counter() - start
    assert am_rows[0][1] == 0.0 and am_rows[0][2] == 0.0
    assert am_rows[1][2] > 0.0  # the copy does transmit where allowed
    # The guarded copy is idempotent: the curve is flat after one use.
    assert all(row[1] == am_rows[1][1] for row in am_rows[1:])

    # Program family: two-statement accumulator (12288 states, support
    # 4096 at the entry pc).
    ps = build_program_system(
        "beta := (beta + alpha1) % 16; beta := (beta + alpha2) % 16",
        {"alpha1": range(16), "alpha2": range(16), "beta": range(16)},
    )
    pq = QuantEngine(ps.system)
    pdist = pq.uniform(ps.entry_constraint())
    ops = ps.system.operations

    prog_rows = []
    start = time.perf_counter()
    for k in range(len(ops) + 1):
        h = History(ops[:k])
        prog_rows.append((
            k,
            pq.bits_transmitted(pdist, {"alpha1"}, "beta", h),
            pq.bits_transmitted_averaged(pdist, {"alpha1"}, "beta", h),
        ))
    prog_seconds = time.perf_counter() - start
    assert prog_rows[0][1] == 0.0 and prog_rows[0][2] == 0.0
    # One accumulation: beta holds beta0 + alpha1 — all 4 bits under the
    # averaged measure, zero under the equivocation measure (beta0 pads).
    assert prog_rows[1][1] == 0.0
    assert math.isclose(prog_rows[1][2], 4.0, abs_tol=1e-9)
    assert math.isclose(prog_rows[2][2], 4.0, abs_tol=1e-9)

    if not QUICK:
        for k, bits, averaged in am_rows:
            _record("access_matrix_curve", {
                "n": k,
                "states": ams.space.size,
                "bits_equivocation_measure": round(bits, 6),
                "bits_averaged_measure": round(averaged, 6),
                "seconds_total": round(am_seconds, 6),
            })
        for k, bits, averaged in prog_rows:
            _record("program_curve", {
                "n": k,
                "states": ps.space.size,
                "bits_equivocation_measure": round(bits, 6),
                "bits_averaged_measure": round(averaged, 6),
                "seconds_total": round(prog_seconds, 6),
            })

    table = Table(
        ["family", "states", "|H|", "equivocation measure", "averaged"],
        title="A7: bits per operation (compiled path)",
    )
    for k, bits, averaged in am_rows:
        table.add("access_matrix", ams.space.size, k,
                  f"{bits:.4f}", f"{averaged:.4f}")
    for k, bits, averaged in prog_rows:
        table.add("program", ps.space.size, k,
                  f"{bits:.4f}", f"{averaged:.4f}")
    show(table)
