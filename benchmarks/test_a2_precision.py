"""A2 (ablation): aggregate baseline precision over random systems.

E28 compares the analyzers on the paper's curated corpus; this ablation
measures them statistically: over N random guarded-command systems, how
often does each sound baseline flag a (source, target) pair the exact
decision clears?  (Soundness — zero false negatives — is asserted, not
just measured.)
"""

import random

from repro.analysis.random_systems import random_system
from repro.analysis.report import Table
from repro.baselines.denning import TransitiveFlowAnalysis
from repro.baselines.static_flow import StaticFlowAnalysis
from repro.baselines.taint import taint_closure
from repro.core.reachability import depends_ever

ROUNDS = 40


def _experiment():
    rng = random.Random(19760801)
    stats = {
        "transitive": {"fp": 0, "fn": 0},
        "static": {"fp": 0, "fn": 0},
        "taint": {"fp": 0, "fn": 0},
    }
    pairs_total = 0
    flows_total = 0
    for _ in range(ROUNDS):
        system = random_system(rng, n_objects=3, domain_size=2, n_operations=2)
        names = system.space.names
        transitive = TransitiveFlowAnalysis(system)
        static = StaticFlowAnalysis(system)
        taint_by_source = {
            source: taint_closure(system, {source}) for source in names
        }
        for source in names:
            for target in names:
                if source == target:
                    continue
                pairs_total += 1
                truth = bool(depends_ever(system, {source}, target))
                flows_total += int(truth)
                verdicts = {
                    "transitive": transitive.flows_ever(source, target),
                    "static": static.flows_ever(source, target),
                    "taint": target in taint_by_source[source],
                }
                for analyzer, claimed in verdicts.items():
                    if claimed and not truth:
                        stats[analyzer]["fp"] += 1
                    if truth and not claimed:
                        stats[analyzer]["fn"] += 1
    return stats, pairs_total, flows_total


def test_a2_aggregate_precision(benchmark, show):
    stats, pairs_total, flows_total = benchmark.pedantic(
        _experiment, rounds=1, iterations=1
    )
    # Soundness: no baseline ever misses a real flow.
    for analyzer, counts in stats.items():
        assert counts["fn"] == 0, analyzer
    # The syntax-only analysis is at most as precise as the semantic
    # transitive baseline (its per-op flows are a superset).
    assert stats["static"]["fp"] >= stats["transitive"]["fp"]

    table = Table(
        ["analyzer", "false positives", "false negatives",
         "precision on absent pairs"],
        title=f"A2: baseline precision over {ROUNDS} random systems "
        f"({pairs_total} pairs, {flows_total} real flows)",
    )
    absent = pairs_total - flows_total
    for analyzer, counts in stats.items():
        table.add(
            analyzer,
            counts["fp"],
            counts["fn"],
            (absent - counts["fp"]) / absent if absent else 1.0,
        )
    show(table)
