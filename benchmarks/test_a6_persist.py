"""A6 (perf): persistent warm starts and incremental `repro diff`.

Two claims, two cases:

1. **Warm start.**  A process that attaches a populated
   :class:`~repro.core.store.PersistentStore` answers a repeat
   ``matrix()`` by deserializing stored closures instead of running the
   pair-graph BFS.  Cold and warm legs are *explicit*: every cold round
   gets a brand-new store path and asserts ``hits == 0`` (a cold leg
   that accidentally reads a populated store would invalidate the
   comparison — the store counters prove which leg was which).  The
   acceptance bar is warm >= 10x cold on the xor_ring n=10 matrix.
   Table compilation runs outside both measurements, as in A5: the
   tables are identical either way and the store swap only changes the
   closure phase.

2. **Incremental diff.**  The *gated ring* family: a read-only gate
   ``g`` in 0..7 plus a xor ring whose version-2 delta perturbs one
   operation only where ``g = 7``.  Per-gate constraints partition the
   closures, so the one-operation delta invalidates exactly the
   ``g = 7`` slice — 1/8 of the closures — and
   :func:`~repro.analysis.diff.diff_systems` must reuse the rest
   (recompute fraction < 20% bar) while reporting verdict changes
   identical to a from-scratch comparison of the two versions.

Rows append to ``BENCH_persist.json``; every row carries the store's
``schema_version`` stamp so bars are only ever compared within one
on-disk format.  ``REPRO_BENCH_QUICK=1`` shrinks sizes, runs one round,
and skips recording and the bars.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.diff import diff_systems
from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.engine import DependencyEngine
from repro.core.store import SCHEMA_VERSION, PersistentStore
from repro.lang.builders import SystemBuilder
from repro.lang.expr import if_expr, var

pytest.importorskip("numpy")

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_persist.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
WARM_SPEEDUP_TARGET = 10.0  # warm start over cold compute, xor_ring matrix
DIFF_RECOMPUTE_BAR = 0.20  # closures recomputed on a one-op gated delta
RING_N = 6 if QUICK else 10
WARM_ROUNDS = 1 if QUICK else 3
GATES = 8
GATED_RING = 3 if QUICK else 4


def _xor_ring(n: int):
    b = SystemBuilder()
    for i in range(n):
        b.integers(f"x{i}", bits=1)
    for i in range(n):
        nxt = f"x{(i + 1) % n}"
        b.op_assign(f"m{i}", nxt, (var(nxt) + var(f"x{i}")) % 2)
    return b.build()


def _gated_ring(ring: int, perturbed: bool):
    """Gate ``g`` in 0..GATES-1 (read-only) plus a xor ring.  The
    version-2 delta flips operation ``m0``'s effect only where
    ``g = GATES-1``, so per-gate closures elsewhere are untouched."""
    b = SystemBuilder()
    b.ranged("g", lo=0, hi=GATES - 1)
    for i in range(ring):
        b.integers(f"x{i}", bits=1)
    for i in range(ring):
        nxt = f"x{(i + 1) % ring}"
        bump = (
            if_expr(var("g") == GATES - 1, 1, 0)
            if perturbed and i == 0
            else 0
        )
        b.op_assign(f"m{i}", nxt, (var(nxt) + var(f"x{i}") + bump) % 2)
    return b.build()


def _record(case: str, row: dict) -> None:
    """Append/replace one measurement row in BENCH_persist.json."""
    data: dict = {
        "bench": "A6 persistent store",
        "rows": [],
    }
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            pass
    rows = [
        r
        for r in data.get("rows", [])
        if not (r.get("case") == case and r.get("n") == row["n"])
    ]
    rows.append({"case": case, "schema_version": SCHEMA_VERSION, **row})
    rows.sort(key=lambda r: (r["case"], r["n"]))
    data["rows"] = rows
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


def test_a6_warm_start_vs_cold(tmp_path, show):
    n = RING_N
    store_path = tmp_path / "memo.sqlite"

    # Cold leg: brand-new store, full BFS, everything persisted.
    cold_store = PersistentStore(store_path)
    engine = DependencyEngine(_xor_ring(n), store=cold_store)
    engine.compiled_system()
    start = time.perf_counter()
    cold_result = engine.matrix()
    cold_seconds = time.perf_counter() - start
    assert cold_store.hits == 0, "cold leg accidentally read a warm store"
    assert cold_store.writes > 0
    cold_store.close()

    # Warm legs: new engine + new store handle on the populated file.
    warm_seconds = float("inf")
    warm_result: dict = {}
    for _ in range(WARM_ROUNDS):
        warm_store = PersistentStore(store_path)
        warm_engine = DependencyEngine(_xor_ring(n), store=warm_store)
        warm_engine.compiled_system()
        start = time.perf_counter()
        warm_result = warm_engine.matrix()
        warm_seconds = min(warm_seconds, time.perf_counter() - start)
        assert warm_store.misses == 0, "warm leg recomputed a closure"
        assert warm_store.hits > 0
        warm_store.close()

    assert warm_result == cold_result
    speedup = cold_seconds / warm_seconds
    states = 2**n

    if not QUICK:
        _record("xor_ring_warm", {
            "n": n,
            "states": states,
            "store_bytes": store_path.stat().st_size,
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
            "speedup_warm_vs_cold": round(speedup, 2),
        })

    table = Table(
        ["family", "n", "states", "cold (s)", "warm (s)", "speedup"],
        title=f"A6: warm start, xor_ring n={n}",
    )
    table.add("xor_ring", n, states, f"{cold_seconds:.4f}",
              f"{warm_seconds:.4f}", f"{speedup:.1f}x")
    show(table)

    if not QUICK:
        assert speedup >= WARM_SPEEDUP_TARGET, (
            f"warm start only {speedup:.1f}x faster than cold on "
            f"xor_ring n={n} (target {WARM_SPEEDUP_TARGET}x)"
        )


def test_a6_diff_incremental(tmp_path, show):
    ring = GATED_RING
    old = _gated_ring(ring, perturbed=False)
    new = _gated_ring(ring, perturbed=True)
    ring_names = [f"x{i}" for i in range(ring)]
    constraints = [
        Constraint.equals(old.space, "g", v).renamed(f"g={v}")
        for v in range(GATES)
    ]
    sources = [[name] for name in ring_names]

    store = PersistentStore(tmp_path / "memo.sqlite")
    start = time.perf_counter()
    report = diff_systems(
        old, new, constraints=constraints, sources=sources, store=store
    )
    diff_seconds = time.perf_counter() - start
    store.close()

    # A from-scratch comparison (fresh engines, no store) must see the
    # same verdict flips.
    e_old = DependencyEngine(old)
    e_new = DependencyEngine(new)
    full_changed = set()
    start = time.perf_counter()
    for phi in constraints:
        for name in ring_names:
            before = e_old._closure(frozenset({name}), phi).first_differing()
            after = e_new._closure(frozenset({name}), phi).first_differing()
            for target in old.space.names:
                if (target in before) != (target in after):
                    full_changed.add((name, target, phi.name))
    full_seconds = time.perf_counter() - start

    assert {
        (change.sources[0], change.target, change.constraint)
        for change in report.changed
    } == full_changed
    assert report.closures_total == GATES * len(sources)
    assert report.closures_recomputed == len(sources)  # the g=7 slice only

    fraction = report.recompute_fraction
    if not QUICK:
        _record("gated_ring_diff", {
            "n": ring,
            "states": GATES * 2**ring,
            "closures_total": report.closures_total,
            "closures_reused": report.closures_reused,
            "closures_recomputed": report.closures_recomputed,
            "recompute_fraction": round(fraction, 4),
            "verdicts_changed": len(report.changed),
            "diff_seconds": round(diff_seconds, 6),
            "full_recompute_seconds": round(full_seconds, 6),
        })

    table = Table(
        ["family", "states", "closures", "reused", "recomputed",
         "fraction", "diff (s)", "full (s)"],
        title=f"A6: one-op delta diff, gated_ring ring={ring}",
    )
    table.add("gated_ring", GATES * 2**ring, report.closures_total,
              report.closures_reused, report.closures_recomputed,
              f"{fraction:.1%}", f"{diff_seconds:.4f}",
              f"{full_seconds:.4f}")
    show(table)

    assert fraction < DIFF_RECOMPUTE_BAR, (
        f"one-operation delta recomputed {fraction:.1%} of closures "
        f"(bar {DIFF_RECOMPUTE_BAR:.0%})"
    )
