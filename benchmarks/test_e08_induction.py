"""E8 (section 4.2): transmission through intermediate objects.

``delta1: m <- alpha ; delta2: beta <- m`` — Theorem 4-1's decomposition
is found, and Corollary 4-2 proves a no-flow result from per-operation
obligations only.
"""

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.induction import find_intermediate, prove_no_dependency
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


def _experiment():
    b = SystemBuilder().booleans("alpha", "m", "beta")
    b.op_assign("delta1", "m", var("alpha"))
    b.op_assign("delta2", "beta", var("m"))
    system = b.build()

    found = find_intermediate(
        system,
        None,
        "alpha",
        "beta",
        system.history("delta1"),
        system.history("delta2"),
    )

    # A constraint that kills the relay at its first hop...
    phi = Constraint.equals(system.space, "m", False) & Constraint(
        system.space, lambda s: not s["alpha"], name="~alpha"
    )
    # ...is autonomous+invariant? No: delta1 writes m from alpha=False,
    # keeping m False — and alpha never changes.  Check and prove.
    proof = prove_no_dependency(
        system, phi.renamed("~alpha & ~m"), "alpha", "beta"
    )
    return found, proof


def test_e8_intermediate_objects(benchmark, show):
    found, proof = benchmark(_experiment)
    assert found is not None
    m, first, second = found
    assert m == "m"
    assert first and second
    assert proof.valid

    table = Table(
        ["question", "answer"],
        title="E8 (sec 4.2): Strong Dependency Induction on the relay",
    )
    table.add("intermediate object for alpha |>^{d1 d2} beta", m)
    table.add("alpha |>^{d1} m", bool(first))
    table.add("m |>^{d2} beta", bool(second))
    table.add("Corollary 4-2 proof under ~alpha&~m valid", proof.valid)
    show(table)
