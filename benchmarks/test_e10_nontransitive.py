"""E10 (section 4.4 + section 1.5): strong dependency is not transitive;
transitive baselines over-approximate.

``delta1: if q then m <- alpha ; delta2: if ~q then beta <- m``:
alpha |> m and m |> beta per-operation, yet alpha never reaches beta over
any history.  The Denning/Case transitive model and taint tracking both
report the false positive.
"""

from repro.analysis.report import Table
from repro.baselines.denning import TransitiveFlowAnalysis, precision_report
from repro.baselines.taint import taint_reaches
from repro.core.dependency import transmits
from repro.core.reachability import dependency_closure, depends_ever
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, when
from repro.lang.expr import var


def _build():
    b = SystemBuilder().booleans("q", "alpha", "m", "beta")
    b.op_cmd("delta1", when(var("q"), assign("m", var("alpha"))))
    b.op_cmd("delta2", when(~var("q"), assign("beta", var("m"))))
    return b.build()


def _experiment():
    system = _build()
    h = system.history("delta1", "delta2")
    legs = {
        "alpha |>^{d1} m": bool(
            transmits(system, {"alpha"}, "m", system.history("delta1"))
        ),
        "m |>^{d2} beta": bool(
            transmits(system, {"m"}, "beta", system.history("delta2"))
        ),
        "alpha |>^{d1 d2} beta": bool(
            transmits(system, {"alpha"}, "beta", h)
        ),
        "alpha |> beta (any history)": bool(
            depends_ever(system, {"alpha"}, "beta")
        ),
    }
    baseline = TransitiveFlowAnalysis(system)
    baselines = {
        "transitive model: alpha -(d1 d2)-> beta": baseline.flows_over_history(
            {"alpha"}, "beta", h
        ),
        "taint: alpha reaches beta over d1 d2": taint_reaches(
            h, {"alpha"}, "beta"
        ),
    }
    exact_paths = frozenset(
        (next(iter(src)), tgt)
        for (src, tgt), res in dependency_closure(system).items()
        if res
    )
    report = precision_report(system, exact_paths)
    return legs, baselines, report


def test_e10_nontransitivity(benchmark, show):
    legs, baselines, report = benchmark.pedantic(
        _experiment, rounds=1, iterations=1
    )
    # Both legs real, composite dead — the non-transitivity headline.
    assert legs["alpha |>^{d1} m"]
    assert legs["m |>^{d2} beta"]
    assert not legs["alpha |>^{d1 d2} beta"]
    assert not legs["alpha |> beta (any history)"]
    # Both syntactic baselines report the phantom flow.
    assert all(baselines.values())
    # Baselines stay sound (no false negatives), lose precision.
    assert report["false_negatives"] == []
    assert ("alpha", "beta") in report["false_positives"]

    table = Table(
        ["query", "answer"],
        title="E10 (sec 4.4): non-transitivity of strong dependency",
    )
    for name, value in {**legs, **baselines}.items():
        table.add(name, value)
    table.add("baseline false positives", len(report["false_positives"]))
    table.add("baseline false negatives", len(report["false_negatives"]))
    table.add("baseline precision", report["precision"])
    show(table)
