"""E26 (section 1.5): the limits of constraint-aware flow certification.

The paper credits Millen 76 with ignoring information paths "in the face
of appropriate constraints" and says its own constraint analysis
"determin[es] ... its limits".  This bench makes the limit concrete:

- for an invariant constraint the Millen-style analysis is sound and
  precise on the guarded-copy system;
- for a NON-invariant constraint (an arming operation invalidates it),
  the analysis certifies a flow absent that is real — unsound;
- re-evaluating the per-operation flows under the reachability envelope
  (the union of every [H]phi, chapter 6's object) restores soundness.
"""

from repro.analysis.report import Table
from repro.baselines.millen import MillenAnalysis, soundness_violations
from repro.core.constraints import Constraint
from repro.core.reachability import depends_ever
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign
from repro.lang.expr import var


def _experiment():
    rows = []

    # Invariant case: sound and useful.
    b1 = SystemBuilder().booleans("g", "a", "bb")
    b1.op_if("copy", var("g"), "bb", var("a"))
    guarded = b1.build()
    phi_g = Constraint(guarded.space, lambda s: not s["g"], name="~g")
    analysis = MillenAnalysis(guarded, phi_g, mode="initial")
    rows.append(
        (
            "invariant ~g",
            "initial",
            analysis.flows_ever("a", "bb"),
            bool(depends_ever(guarded, {"a"}, "bb", phi_g)),
            len(soundness_violations(analysis)),
        )
    )

    # Non-invariant case: the arming trap.
    b2 = SystemBuilder().booleans("flag", "a", "bb")
    b2.op_cmd("arm", assign("flag", True))
    b2.op_if("copy", var("flag"), "bb", var("a"))
    arming = b2.build()
    phi_f = Constraint(arming.space, lambda s: not s["flag"], name="~flag")
    for mode in ("initial", "envelope"):
        analysis = MillenAnalysis(arming, phi_f, mode=mode)
        rows.append(
            (
                "NON-invariant ~flag",
                mode,
                analysis.flows_ever("a", "bb"),
                bool(depends_ever(arming, {"a"}, "bb", phi_f)),
                len(soundness_violations(analysis)),
            )
        )
    return rows


def test_e26_millen_limits(benchmark, show):
    rows = benchmark(_experiment)
    by_key = {(r[0], r[1]): r for r in rows}
    # Invariant: analysis says no flow, truth agrees, no violations.
    inv = by_key[("invariant ~g", "initial")]
    assert not inv[2] and not inv[3] and inv[4] == 0
    # Non-invariant, initial mode: analysis says no, truth says YES.
    trap = by_key[("NON-invariant ~flag", "initial")]
    assert not trap[2] and trap[3] and trap[4] > 0
    # Envelope mode: sound again.
    fixed = by_key[("NON-invariant ~flag", "envelope")]
    assert fixed[2] and fixed[3] and fixed[4] == 0

    table = Table(
        ["constraint", "mode", "analysis: a->bb?", "truth: a->bb?",
         "unsound certificates"],
        title="E26 (sec 1.5): Millen-style certification and its limit",
    )
    for row in rows:
        table.add(*row)
    show(table)
