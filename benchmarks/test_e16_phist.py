"""E16 (section 6.2): constraint after a history.

``delta: beta <- alpha - 4`` with ``phi: alpha < 10``:
``[delta]phi == alpha < 10 and beta = alpha - 4`` — stricter than phi,
non-autonomous even though phi is autonomous, and sound for images
(Theorems 6-1/6-2).
"""

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


def _experiment():
    b = SystemBuilder().ranged("alpha", lo=0, hi=12).ranged(
        "beta", lo=-4, hi=8
    )
    b.op_assign("delta", "beta", var("alpha") - 4)
    system = b.build()
    sp = system.space
    phi = Constraint(sp, lambda s: s["alpha"] < 10, name="alpha<10")
    h = History.of(system.operation("delta"))
    after = phi.after(h)
    expected = Constraint(
        sp,
        lambda s: s["alpha"] < 10 and s["beta"] == s["alpha"] - 4,
        name="alpha<10 & beta=alpha-4",
    )
    facts = {
        "[delta]phi == paper's formula": after.equivalent(expected),
        "[delta]phi implies phi (Thm 6-2)": after.implies(phi),
        "[delta]phi strictly stricter": after.count() < phi.count(),
        "phi autonomous": phi.is_autonomous(),
        "[delta]phi autonomous": after.is_autonomous(),
        "images land in [delta]phi (Thm 6-1)": all(
            after(h(s)) for s in phi.states()
        ),
        "phi invariant": phi.is_invariant(system),
    }
    return facts, phi.count(), after.count()


def test_e16_constraint_after_history(benchmark, show):
    facts, phi_count, after_count = benchmark(_experiment)
    assert facts["[delta]phi == paper's formula"]
    assert facts["[delta]phi implies phi (Thm 6-2)"]
    assert facts["[delta]phi strictly stricter"]
    assert facts["phi autonomous"]
    assert not facts["[delta]phi autonomous"]  # the section's remark
    assert facts["images land in [delta]phi (Thm 6-1)"]
    assert facts["phi invariant"]

    table = Table(
        ["fact", "value"],
        title="E16 (sec 6.2): [H]phi for beta <- alpha - 4",
    )
    for name, value in facts.items():
        table.add(name, value)
    table.add("|sat(phi)|", phi_count)
    table.add("|sat([delta]phi)|", after_count)
    show(table)
