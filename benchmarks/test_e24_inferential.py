"""E24 (section 7.2): Inferential Dependency.

The paper's work-in-progress model, reproduced on its own examples:

- ``beta <- alpha1`` under ``alpha1 = alpha2``: Inferential Dependency
  indicates transmission from BOTH alpha1 and alpha2 (where strong
  dependency denies both) — exactly the behavior section 7.2 specifies;
- the tag-coupled variant: imposing the constraint **adds** an
  inferential path from alpha2, demonstrating the predicted monotonicity
  failure ("more restrictive constraints might increase the sources of
  information");
- the mod-sum system separates the two inferential variants: the
  non-contingent one reports nothing from alpha1 alone, the contingent
  one (== strong dependency) reports transmission.
"""

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.dependency import transmits
from repro.core.inferential import (
    contingently_depends,
    inferential_paths,
    inferentially_depends,
)
from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


def _coupled_copy():
    b = SystemBuilder().integers("alpha1", "alpha2", "beta", bits=1)
    b.op_assign("delta", "beta", var("alpha1"))
    system = b.build()
    delta = system.operation("delta")
    phi = Constraint(
        system.space, lambda s: s["alpha1"] == s["alpha2"], name="a1=a2"
    )
    rows = []
    for source in ("alpha1", "alpha2"):
        rows.append(
            (
                source,
                bool(transmits(system, {source}, "beta", delta, phi)),
                inferentially_depends(system, {source}, "beta", delta, phi)
                is not None,
            )
        )
    return rows


def _tag_monotonicity():
    b = SystemBuilder().integers("alpha1", "alpha2", "beta", bits=2)
    b.op_assign("delta", "beta", var("alpha1"))
    system = b.build()
    h = History.of(system.operation("delta"))
    tag = lambda v: v >> 1
    phi = Constraint(
        system.space,
        lambda s: tag(s["alpha1"]) == tag(s["alpha2"]),
        name="a1.tag=a2.tag",
    )
    before = inferential_paths(system, h, None)
    after = inferential_paths(system, h, phi)
    return before, after


def _modsum_variants():
    b = SystemBuilder().integers("a1", "a2", "beta", bits=2)
    b.op_assign("delta", "beta", (var("a1") + var("a2")) % 4)
    system = b.build()
    delta = system.operation("delta")
    return {
        "non-contingent: a1 ~> beta": inferentially_depends(
            system, {"a1"}, "beta", delta
        )
        is not None,
        "contingent: a1 ~> beta": contingently_depends(
            system, {"a1"}, "beta", delta
        )
        is not None,
        "strong: a1 |> beta": bool(
            transmits(system, {"a1"}, "beta", delta)
        ),
        "non-contingent: {a1,a2} ~> beta": inferentially_depends(
            system, {"a1", "a2"}, "beta", delta
        )
        is not None,
    }


def test_e24_inferential_dependency(benchmark, show):
    coupled_rows, (before, after), modsum = benchmark(
        lambda: (_coupled_copy(), _tag_monotonicity(), _modsum_variants())
    )
    # Section 5.2/7.2 divergence: strong no, inferential yes, both sources.
    for source, strong, inferential in coupled_rows:
        assert not strong and inferential, source
    # Monotonicity failure: the constraint ADDS the alpha2 path.
    assert ("alpha2", "beta") not in before
    assert ("alpha2", "beta") in after
    # Contingent-transmission split on the mod-sum system.
    assert not modsum["non-contingent: a1 ~> beta"]
    assert modsum["contingent: a1 ~> beta"]
    assert modsum["strong: a1 |> beta"]
    assert modsum["non-contingent: {a1,a2} ~> beta"]

    table = Table(
        ["source (given a1=a2)", "strong |>?", "inferential ~>?"],
        title="E24 (sec 7.2): inferential vs strong under coupling",
    )
    for row in coupled_rows:
        table.add(*row)
    show(table)

    table2 = Table(
        ["query", "answer"],
        title="E24: monotonicity failure + contingent transmission",
    )
    table2.add("paths before tag constraint", len(before))
    table2.add("paths after tag constraint", len(after))
    table2.add("alpha2 -> beta added by constraint",
               ("alpha2", "beta") in after - before)
    for name, value in modsum.items():
        table2.add(name, value)
    show(table2)
