"""E3 (section 2.6 + Theorem 2-6): the autonomy classification table and
the set-source decomposition guarantee.

The four example constraints of section 2.6 are classified exactly as the
paper does, and Theorem 2-6 is exercised: under an autonomous constraint,
a transmitting set always contains a transmitting singleton.
"""

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.dependency import sources_transmitting, transmits
from repro.core.state import Space
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


def _classification_rows():
    sp = Space({"alpha": range(16), "beta": range(16)})
    examples = [
        (
            "alpha<=10 and beta==6 mod 11",
            Constraint(
                sp, lambda s: s["alpha"] <= 10 and s["beta"] % 11 == 6
            ),
            True,
        ),
        (
            "alpha<=10 and beta<=10",
            Constraint(sp, lambda s: s["alpha"] <= 10 and s["beta"] <= 10),
            True,
        ),
        (
            "beta == alpha+10",
            Constraint(sp, lambda s: s["beta"] == s["alpha"] + 10),
            False,
        ),
        (
            "alpha<=10 implies beta==4",
            Constraint(
                sp, lambda s: s["beta"] == 4 if s["alpha"] <= 10 else True
            ),
            False,
        ),
    ]
    return [
        (label, phi.is_autonomous(), expected)
        for label, phi, expected in examples
    ]


def _decomposition_row():
    b = SystemBuilder().integers("alpha1", "alpha2", bits=2).obj(
        "beta", range(7)
    )
    b.op_assign("delta", "beta", var("alpha1") + var("alpha2"))
    system = b.build()
    delta = system.operation("delta")
    phi = Constraint(
        system.space, lambda s: s["alpha1"] < 4 and s["alpha2"] < 4, name="aut"
    )
    pair = bool(transmits(system, {"alpha1", "alpha2"}, "beta", delta, phi))
    singles = sources_transmitting(
        system, {"alpha1", "alpha2"}, "beta", delta, phi
    )
    return pair, singles


def test_e3_autonomy_classification(benchmark, show):
    rows, (pair, singles) = benchmark(
        lambda: (_classification_rows(), _decomposition_row())
    )
    for label, got, expected in rows:
        assert got == expected, label

    # Theorem 2-6: the pair transmits and so does each singleton.
    assert pair
    assert singles == frozenset({"alpha1", "alpha2"})

    table = Table(
        ["constraint (sec 2.6)", "autonomous?", "paper says"],
        title="E3: autonomy classification",
    )
    for label, got, expected in rows:
        table.add(label, got, expected)
    show(table)

    table2 = Table(
        ["query", "result"],
        title="E3: Theorem 2-6 on beta <- alpha1 + alpha2",
    )
    table2.add("{alpha1, alpha2} |> beta", pair)
    table2.add("transmitting singletons", singles)
    show(table2)
