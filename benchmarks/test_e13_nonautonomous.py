"""E13 (section 5.2): the Strong Dependency Hypothesis and its failed
converse.

``delta: beta <- alpha1`` with ``phi: alpha1 = alpha2``: strong
dependency denies the singleton path (not alpha1 |>_phi beta) even though
information is plainly transmitted — the documented limit of the
formalism for non-autonomous constraints, resolved by the clump
{alpha1, alpha2} (section 5.3's Relative Autonomy Hypothesis).
"""

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.dependency import transmits
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


def _experiment():
    b = SystemBuilder().integers("alpha1", "alpha2", "beta", bits=2)
    b.op_assign("delta", "beta", var("alpha1"))
    system = b.build()
    delta = system.operation("delta")
    phi = Constraint(
        system.space, lambda s: s["alpha1"] == s["alpha2"], name="a1=a2"
    )
    return {
        "phi autonomous": phi.is_autonomous(),
        "phi {a1,a2}-autonomous": phi.is_autonomous_relative_to(
            {"alpha1", "alpha2"}
        ),
        "alpha1 |>_phi beta": bool(
            transmits(system, {"alpha1"}, "beta", delta, phi)
        ),
        "alpha2 |>_phi beta": bool(
            transmits(system, {"alpha2"}, "beta", delta, phi)
        ),
        "{alpha1,alpha2} |>_phi beta": bool(
            transmits(system, {"alpha1", "alpha2"}, "beta", delta, phi)
        ),
        "alpha1 |>_tt beta (control)": bool(
            transmits(system, {"alpha1"}, "beta", delta)
        ),
    }


def test_e13_nonautonomous_limit(benchmark, show):
    facts = benchmark(_experiment)
    assert not facts["phi autonomous"]
    assert facts["phi {a1,a2}-autonomous"]
    # The troubling denial...
    assert not facts["alpha1 |>_phi beta"]
    assert not facts["alpha2 |>_phi beta"]
    # ...resolved at the clump, where phi is relatively autonomous.
    assert facts["{alpha1,alpha2} |>_phi beta"]
    assert facts["alpha1 |>_tt beta (control)"]

    table = Table(
        ["query", "answer"],
        title="E13 (sec 5.2): strong dependency under alpha1 = alpha2",
    )
    for name, value in facts.items():
        table.add(name, value)
    show(table)
