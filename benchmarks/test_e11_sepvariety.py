"""E11 (section 4.5 + the three cover figures): separation of variety.

The section's three diagrams become three rows each: for
``delta: if alpha then beta <- tt else beta <- ff`` a cover that splits
*alpha's* variety blocks transmission in every cell; splitting an
unrelated object m does not; and for ``delta: if m then beta <- alpha``
the m-split blocks exactly one cell (phi1 = m still transmits) —
Theorem 4-4/4-5's guarantee that some cell always survives a split
independent of the source.
"""

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.covers import IndependentCover, partition_by_value
from repro.core.dependency import transmits
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


def _experiment():
    rows = []

    # Figure 1: delta: if alpha then beta <- tt else beta <- ff;
    # cover on alpha itself (NOT alpha-independent; the degenerate case
    # the paper begins with).
    b1 = SystemBuilder().booleans("alpha", "beta", "m")
    b1.op_if("delta", var("alpha"), "beta", True, else_expr=False)
    s1 = b1.build()
    for value in (True, False):
        phi = Constraint.equals(s1.space, "alpha", value)
        rows.append(
            (
                "if alpha then beta<-tt else ff",
                phi.name,
                "alpha-split",
                bool(transmits(s1, {"alpha"}, "beta", s1.operation("delta"), phi)),
            )
        )

    # Figure 2: same system, cover on m (alpha-independent): every cell
    # still transmits.
    for value in (True, False):
        phi = Constraint.equals(s1.space, "m", value)
        rows.append(
            (
                "if alpha then beta<-tt else ff",
                phi.name,
                "m-split",
                bool(transmits(s1, {"alpha"}, "beta", s1.operation("delta"), phi)),
            )
        )

    # Figure 3: delta: if m then beta <- alpha; m-split blocks one cell.
    b2 = SystemBuilder().booleans("alpha", "beta", "m")
    b2.op_if("delta", var("m"), "beta", var("alpha"))
    s2 = b2.build()
    for value in (True, False):
        phi = Constraint.equals(s2.space, "m", value)
        rows.append(
            (
                "if m then beta<-alpha",
                phi.name,
                "m-split",
                bool(transmits(s2, {"alpha"}, "beta", s2.operation("delta"), phi)),
            )
        )

    # Theorem 4-5's guarantee, checked for the m-split on system 2:
    cover = partition_by_value(s2.space, "m")
    cover_ok = cover.check({"alpha"}).valid
    survives = any(
        transmits(s2, {"alpha"}, "beta", s2.operation("delta"), member)
        for member in cover
    )
    return rows, cover_ok, survives


def test_e11_separation_of_variety(benchmark, show):
    rows, cover_ok, survives = benchmark(_experiment)
    verdicts = [r[3] for r in rows]
    # Figure 1: both alpha-cells silent; Figure 2: both m-cells transmit;
    # Figure 3: m=tt transmits, m=ff silent.
    assert verdicts == [False, False, True, True, True, False]
    assert cover_ok
    assert survives  # some cell always keeps the flow (Thm 4-4)

    table = Table(
        ["system", "cover member", "split on", "alpha |> beta?"],
        title="E11 (sec 4.5): the three cover figures",
    )
    for row in rows:
        table.add(*row)
    show(table)
