"""E18 (section 6.5, first flowchart): Floyd assertions as an inductive
cover.

The paper's program, transcribed node for node::

    delta1: if pc=1 then (if q > 10 then t <- tt else t <- ff; pc <- 2)
    delta2: if pc=2 then (if t then beta <- alpha; pc <- 3)

With entry assertion ``q < 10`` and the inductive assertion ``~t`` at
statement 2, Theorem 6-7 proves ``not alpha |>_phi beta``; without the
entry assertion the flow is real.
"""

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.lang.expr import if_expr, var
from repro.systems.program import (
    AssignNode,
    Flowchart,
    FloydAssertions,
    build_program_system,
    program_transmits,
    prove_program_no_flow,
)


def _build():
    fc = Flowchart(
        [
            AssignNode(1, "t", if_expr(var("q") > 10, True, False), 2),
            AssignNode(
                2, "beta", if_expr(var("t"), var("alpha"), var("beta")), 3
            ),
        ],
        entry=1,
        halt=3,
    )
    return build_program_system(
        fc,
        {
            "q": range(8, 13),
            "t": (False, True),
            "alpha": (0, 1),
            "beta": (0, 1),
        },
    )


def _experiment():
    ps = _build()
    sp = ps.space
    assertions = {
        1: Constraint(sp, lambda s: s["q"] < 10, name="q<10"),
        2: Constraint(sp, lambda s: not s["t"], name="~t"),
        3: Constraint.true(sp),
    }
    network = FloydAssertions(ps.flowchart, sp, assertions)
    facts = {
        "verification conditions hold": network.check(ps.system).valid,
        "{phi_i*} is an inductive cover": network.per_pc_cover()
        .check(ps.system, network.entry_constraint())
        .valid,
        "per-pc proof (Thm 6-7) valid": prove_program_no_flow(
            ps, assertions, {"alpha"}, "beta", cover_style="per-pc"
        ).valid,
        "global-cover proof valid": prove_program_no_flow(
            ps, assertions, {"alpha"}, "beta", cover_style="global"
        ).valid,
        "exact: alpha |>_{q<10} beta": bool(
            program_transmits(
                ps,
                {"alpha"},
                "beta",
                Constraint(sp, lambda s: s["q"] < 10, name="q<10"),
            )
        ),
        "exact: alpha |>_tt beta (control)": bool(
            program_transmits(ps, {"alpha"}, "beta", None)
        ),
    }
    return facts


def test_e18_floyd_assertions(benchmark, show):
    facts = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    assert facts["verification conditions hold"]
    assert facts["{phi_i*} is an inductive cover"]
    assert facts["per-pc proof (Thm 6-7) valid"]
    assert facts["global-cover proof valid"]
    assert not facts["exact: alpha |>_{q<10} beta"]
    assert facts["exact: alpha |>_tt beta (control)"]

    table = Table(
        ["fact", "value"],
        title="E18 (sec 6.5): Floyd-assertion flow proof, first flowchart",
    )
    for name, value in facts.items():
        table.add(name, value)
    show(table)
