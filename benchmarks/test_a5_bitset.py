"""A5 (perf): the bulk bitset frontier kernel vs the scalar compiled path.

Same decision procedure, same integer tables — the only change is how
the pair-graph BFS walks them: the scalar kernel expands one pair per
inner-loop iteration, the bitset kernel (``kernel="bitset"``) expands
whole frontier chunks through NumPy successor gathers and resolves the
Def 5-5 / 5-7 column tests with vectorized scans.  Because the bulk
path is witness-identical (``tests/property/test_bitset_agreement.py``),
the timing comparison is apples-to-apples: both sides produce the same
closures, parents, and matrix cells.

Cases are the dense *xor ring* family — the regime the bulk kernel
exists for, where closures approach all ``n_states^2 / 2`` canonical
pairs.  Both sides pay table compilation (``CompiledSystem``) *outside*
the measurement: the tables are byte-identical and shared, so including
that fixed cost would only dilute the kernel comparison; the row records
it separately as ``compile_seconds``.  The >= 10x acceptance bar is
asserted at the largest matrix case, and one n=12 closure (4096 states,
~8.4M pairs) demonstrates a size the scalar inner loop cannot reach
interactively.  Rows append to ``BENCH_bitset.json``;
``REPRO_BENCH_QUICK=1`` shrinks sizes, runs one round, and skips
recording and the bar.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.report import Table
from repro.core.engine import DependencyEngine
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var

pytest.importorskip("numpy")

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_bitset.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
SPEEDUP_TARGET = 10.0  # bitset over the scalar compiled path, largest matrix
MATRIX_CASES = [5] if QUICK else [7, 8, 10]
ROUNDS = 1 if QUICK else 3
LARGEST = max(MATRIX_CASES)
LARGE_RING = 12  # closure-only case: beyond interactive scalar reach


def _xor_ring(n: int):
    b = SystemBuilder()
    for i in range(n):
        b.integers(f"x{i}", bits=1)
    for i in range(n):
        nxt = f"x{(i + 1) % n}"
        b.op_assign(f"m{i}", nxt, (var(nxt) + var(f"x{i}")) % 2)
    return b.build()


def _time_matrix(make_engine, rounds: int) -> tuple[dict, float, float]:
    """Best-of-``rounds`` matrix time on a freshly compiled engine.

    ``compiled_system()`` runs before the clock starts — the successor
    tables are identical for both kernels, so the comparison measures
    the BFS/query phase the kernel swap actually changes.  The compile
    cost is returned separately for the record.
    """
    best = float("inf")
    compile_seconds = float("inf")
    result: dict = {}
    for _ in range(rounds):
        engine = make_engine()
        start = time.perf_counter()
        engine.compiled_system()
        compile_seconds = min(compile_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        result = engine.matrix()
        best = min(best, time.perf_counter() - start)
    return result, best, compile_seconds


def _record(case: str, row: dict) -> None:
    """Append/replace one measurement row in BENCH_bitset.json."""
    data: dict = {
        "bench": "A5 bitset kernel",
        "paths": ["scalar", "bitset"],
        "rows": [],
    }
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            pass
    rows = [
        r
        for r in data.get("rows", [])
        if not (r.get("case") == case and r.get("n") == row["n"])
    ]
    rows.append({"case": case, **row})
    rows.sort(key=lambda r: (r["case"], r["n"]))
    data["rows"] = rows
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


@pytest.mark.parametrize("n", MATRIX_CASES)
def test_a5_bitset_vs_scalar_matrix(benchmark, n, show):
    scalar_result, scalar_seconds, compile_seconds = _time_matrix(
        lambda: DependencyEngine(_xor_ring(n), kernel="scalar"), ROUNDS
    )

    def setup():
        engine = DependencyEngine(_xor_ring(n), kernel="bitset")
        engine.compiled_system()
        return (engine,), {}

    bitset_result = benchmark.pedantic(
        lambda engine: engine.matrix(), setup=setup, rounds=ROUNDS, iterations=1
    )
    bitset_seconds = benchmark.stats.stats.min

    assert bitset_result == scalar_result

    system = _xor_ring(n)
    pairs = sum(
        len(DependencyEngine(system, kernel="bitset")._closure(
            frozenset({name}), None
        ))
        for name in system.space.names
    )
    speedup = scalar_seconds / bitset_seconds
    row = {
        "n": n,
        "states": system.space.size,
        "pairs": pairs,
        "compile_seconds": round(compile_seconds, 6),
        "scalar_seconds": round(scalar_seconds, 6),
        "bitset_seconds": round(bitset_seconds, 6),
        "speedup_bitset_vs_scalar": round(speedup, 2),
    }
    if not QUICK:
        _record("xor_ring", row)

    table = Table(
        ["family", "n", "states", "pairs", "scalar (s)", "bitset (s)",
         "speedup"],
        title=f"A5: bitset kernel, xor_ring n={n}",
    )
    table.add("xor_ring", n, system.space.size, pairs,
              f"{scalar_seconds:.4f}", f"{bitset_seconds:.4f}",
              f"{speedup:.1f}x")
    show(table)

    if not QUICK and n == LARGEST:
        assert speedup >= SPEEDUP_TARGET, (
            f"bitset kernel only {speedup:.1f}x faster than the scalar "
            f"compiled path on xor_ring n={n} (target {SPEEDUP_TARGET}x)"
        )


def test_a5_bitset_large_ring(show):
    """One n=12 closure — 4096 states, ~8.4M canonical pairs.

    No scalar comparison: at this size the scalar inner loop is minutes
    of Python bytecode.  The row records that the bulk kernel finishes
    the closure (and the Def 5-5 verdict on top of it) in seconds.
    """
    if QUICK:
        pytest.skip("large-ring case is skipped in quick mode")
    n = LARGE_RING
    engine = DependencyEngine(_xor_ring(n), kernel="bitset")
    engine.compiled_system()
    start = time.perf_counter()
    result = engine.depends_ever({"x0"}, f"x{n // 2}")
    seconds = time.perf_counter() - start
    assert bool(result)  # information circulates the whole ring
    assert result.provenance.kernel == "compiled-bitset"
    pairs = result.provenance.closure_pairs

    _record("xor_ring_closure", {
        "n": n,
        "states": engine.system.space.size,
        "pairs": pairs,
        "bitset_seconds": round(seconds, 6),
        "query": f"depends_ever({{x0}}, x{n // 2})",
    })

    table = Table(
        ["family", "n", "states", "pairs", "bitset (s)"],
        title=f"A5: bitset kernel, xor_ring n={n} single closure",
    )
    table.add("xor_ring", n, engine.system.space.size, pairs, f"{seconds:.4f}")
    show(table)
