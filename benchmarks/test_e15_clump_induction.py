"""E15 (section 5.5): induction with non-autonomous constraints needs
*set-valued* intermediates.

The fan-out system::

    delta1: (m1 <- alpha ; m2 <- alpha)
    delta2: beta <- m1

under the invariant non-autonomous ``phi: m1 = m2``: no single
intermediate works (neither m1 nor m2 alone transmits to beta under phi),
but the clump {m1, m2} does — Theorem 5-4's decomposition, with
Theorem 5-5's M read off the witness.
"""

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.dependency import transmits, transmits_to_set
from repro.core.induction import decompose_dependency
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, seq
from repro.lang.expr import var


def _experiment():
    b = SystemBuilder().booleans("alpha", "m1", "m2", "beta")
    b.op_cmd(
        "delta1", seq(assign("m1", var("alpha")), assign("m2", var("alpha")))
    )
    b.op_assign("delta2", "beta", var("m1"))
    system = b.build()
    phi = Constraint(
        system.space, lambda s: s["m1"] == s["m2"], name="m1=m2"
    )
    h = system.history("delta1", "delta2")
    d1 = system.history("delta1")
    d2 = system.history("delta2")

    facts = {
        "phi invariant": phi.is_invariant(system),
        "phi autonomous": phi.is_autonomous(),
        "alpha |>_phi^{d1 d2} beta": bool(
            transmits(system, {"alpha"}, "beta", h, phi)
        ),
        "m1 |>_phi^{d2} beta": bool(
            transmits(system, {"m1"}, "beta", d2, phi)
        ),
        "m2 |>_phi^{d2} beta": bool(
            transmits(system, {"m2"}, "beta", d2, phi)
        ),
        "{m1,m2} |>_phi^{d2} beta": bool(
            transmits(system, {"m1", "m2"}, "beta", d2, phi)
        ),
        "alpha |>_phi^{d1} {m1,m2}": bool(
            transmits_to_set(system, {"alpha"}, {"m1", "m2"}, d1, phi)
        ),
    }

    # Theorem 5-4/5-5: decompose the composite witness at the split.
    result = transmits(system, {"alpha"}, "beta", h, phi)
    decomp = decompose_dependency(
        system, phi, result.witness, split_at=1, target="beta"
    )
    return facts, decomp


def test_e15_clump_induction(benchmark, show):
    facts, decomp = benchmark(_experiment)
    assert facts["phi invariant"] and not facts["phi autonomous"]
    assert facts["alpha |>_phi^{d1 d2} beta"]
    # No single intermediate; the clump carries the flow.
    assert not facts["m1 |>_phi^{d2} beta"]
    assert not facts["m2 |>_phi^{d2} beta"]
    assert facts["{m1,m2} |>_phi^{d2} beta"]
    assert facts["alpha |>_phi^{d1} {m1,m2}"]
    # The decomposition's M contains both m's.
    assert {"m1", "m2"} <= set(decomp.intermediates)

    table = Table(
        ["query", "answer"],
        title="E15 (sec 5.5): set-valued intermediates under m1=m2",
    )
    for name, value in facts.items():
        table.add(name, value)
    table.add("Theorem 5-4 intermediate set M",
              sorted(decomp.intermediates))
    show(table)
