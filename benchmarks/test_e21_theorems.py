"""E21: theorem fuzzing — the reproduction's analogue of the appendix.

Every executable theorem statement is model-checked over seeded random
finite systems, histories, and constraints (including autonomous,
coupled, and invariant flavours).  The paper proves these by hand;
violations here would mean a library bug.  An ablation row compares the
exact pair-graph decision against bounded search.
"""

import random

from repro.analysis.random_systems import (
    random_constraint,
    random_history,
    random_invariant_constraint,
    random_system,
)
from repro.analysis.report import Table
from repro.core import theorems as T
from repro.core.dependency import depends_within
from repro.core.reachability import depends_ever

ROUNDS = 60


def _fuzz():
    rng = random.Random(20260707)
    failures: dict[str, int] = {}
    runs: dict[str, int] = {}

    def record(name: str, check) -> None:
        runs[name] = runs.get(name, 0) + 1
        if not check.ok:
            failures[name] = failures.get(name, 0) + 1

    agree = 0
    for _ in range(ROUNDS):
        system = random_system(rng, n_objects=3, domain_size=2, n_operations=2)
        names = list(system.space.names)
        history = random_history(rng, system, max_length=3)
        subset_phi = random_constraint(rng, system.space, "subset")
        autonomous_phi = random_constraint(rng, system.space, "autonomous")
        coupled_phi = random_constraint(rng, system.space, "coupled")
        invariant_phi = random_invariant_constraint(rng, system)
        a1 = frozenset(names[:1])
        a2 = frozenset(names[:2])
        target = names[-1]
        mid = len(history) // 2
        prefix, suffix = history[:mid], history[mid:]

        record("Thm 2-2", T.thm_2_2_source_monotonicity(
            system, a1, a2, target, history, subset_phi))
        record("Thm 2-3", T.thm_2_3_constraint_monotonicity(
            system, invariant_phi & subset_phi, subset_phi
            if invariant_phi.implies(subset_phi) else subset_phi,
            a1, target, history))
        record("Thm 2-4", T.thm_2_4_no_variety_no_transmission(
            system, subset_phi, a1, history))
        record("Thm 2-5", T.thm_2_5_empty_history_reflexive(
            system, subset_phi, a1))
        record("Thm 2-6", T.thm_2_6_autonomous_decomposition(
            system, autonomous_phi, frozenset(names), target, history))
        record("Thm 4-1", T.thm_4_1_intermediate_object(
            system, autonomous_phi, names[0], target, prefix, suffix))
        record("Thm 4-2", T.thm_4_2_endpoints(
            system, autonomous_phi, names[0], target))
        ranks = {name: i % 2 for i, name in enumerate(names)}
        record("Thm 4-3", T.thm_4_3_relation_bound(
            system, autonomous_phi,
            lambda x, y: ranks[x] <= ranks[y], history))
        record("Thm 5-1", T.thm_5_1_autonomy_characterizations(
            coupled_phi, frozenset(names[:2])))
        record("Thm 5-3", T.thm_5_3_set_target_projection(
            system, subset_phi, a1, frozenset(names), history))
        record("Thm 5-5", T.thm_5_5_witness_decomposition(
            system, invariant_phi, a1, target, prefix, suffix))
        record("Thm 6-1", T.thm_6_1_image_soundness(
            system, subset_phi, history))
        record("Thm 6-2", T.thm_6_2_invariant_strictness(
            system, invariant_phi, history))
        record("Thm 6-3", T.thm_6_3_noninvariant_decomposition(
            system, subset_phi, a1, target, prefix, suffix))

        # Ablation: exact fixpoint vs bounded search at pair-graph scale.
        exact = bool(depends_ever(system, a1, target, subset_phi))
        bounded = bool(depends_within(
            system, a1, target, system.space.size, subset_phi))
        agree += int(exact == bounded)

    return runs, failures, agree


def test_e21_theorem_fuzzing(benchmark, show):
    runs, failures, agree = benchmark.pedantic(_fuzz, rounds=1, iterations=1)
    assert not failures, failures
    assert agree == ROUNDS

    table = Table(
        ["theorem", "instances checked", "violations"],
        title=f"E21: theorem fuzzing over {ROUNDS} random systems",
    )
    for name in sorted(runs):
        table.add(name, runs[name], failures.get(name, 0))
    table.add("exact-vs-bounded agreement", agree, ROUNDS - agree)
    show(table)
