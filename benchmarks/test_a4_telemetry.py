"""A4 (observability): overhead of the telemetry layer on the hot loop.

PR 5 instruments the dependency stack with spans, counters and verdict
provenance.  The contract is **off by default, and free when off**: every
instrumentation point is one module-flag read, the compiled BFS keeps its
pristine loop when no stats dict is requested, and provenance is a single
frozen-dataclass allocation per public answer.  This benchmark pins that
down on the xor ring (the dense-closure regime where per-expansion costs
dominate) by timing the full dependency matrix three ways:

- ``baseline`` — the instrumentation entry points monkeypatched to bare
  no-ops, approximating the pre-PR-5 uninstrumented code;
- ``disabled`` — the real code with telemetry off (the default);
- ``enabled`` — collector live, spans/counters recorded.

Acceptance bar: **disabled <= 1.05x baseline** (<5% overhead) at the
largest case, recorded in ``BENCH_telemetry.json``.  The enabled ratio
is recorded for information — collection is allowed to cost, it is
opt-in.

``REPRO_BENCH_QUICK=1`` shrinks the case and skips the bar/recording.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro import obs
from repro.analysis.report import Table
from repro.core.engine import DependencyEngine
from repro.core.system import System
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var
from repro.obs import telemetry

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
OVERHEAD_BAR = 1.05  # disabled / baseline, largest case

CASES = [4] if QUICK else [7, 8]
ROUNDS = 1 if QUICK else 5
LARGEST = max(CASES)


def _xor_ring(n: int) -> System:
    """Same mixing family as test_a3_*: dense closures, so the BFS inner
    loop — the code telemetry must not slow down — dominates."""
    b = SystemBuilder()
    for i in range(n):
        b.integers(f"x{i}", bits=1)
    for i in range(n):
        nxt = f"x{(i + 1) % n}"
        b.op_assign(f"m{i}", nxt, (var(nxt) + var(f"x{i}")) % 2)
    return b.build()


def _one_matrix(n: int):
    """One cold matrix run (fresh engine, so compilation is inside the
    measurement on every side of the ratio)."""
    engine = DependencyEngine(_xor_ring(n))
    start = time.perf_counter()
    result = engine.matrix()
    return result, time.perf_counter() - start


def _noop(*args, **kwargs):
    return None


def _null_span(*args, **kwargs):
    return telemetry.NULL_SPAN


def _baseline_matrix(n: int, monkeypatch):
    """One matrix run with the uninstrumented approximation: every obs
    entry point the hot paths call becomes a bare no-op (is_enabled stays
    False-returning, so the stats-dict branches stay off exactly as in
    the disabled run)."""
    with monkeypatch.context() as patch:
        patch.setattr(obs, "span", _null_span)
        patch.setattr(obs, "count", _noop)
        patch.setattr(obs, "gauge_max", _noop)
        patch.setattr(obs, "observe", _noop)
        patch.setattr(obs, "is_enabled", lambda: False)
        return _one_matrix(n)


def _enabled_matrix(n: int):
    """One matrix run with the collector live."""
    obs.enable(reset=True)
    try:
        result, seconds = _one_matrix(n)
        return result, seconds, len(obs.snapshot().spans)
    finally:
        obs.disable()
        obs.reset()


def _record(row: dict) -> None:
    data: dict = {
        "bench": "A4 telemetry overhead",
        "paths": ["baseline", "disabled", "enabled"],
        "rows": [],
    }
    if BENCH_PATH.exists():
        try:
            data = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            pass
    rows = [r for r in data.get("rows", []) if r.get("n") != row["n"]]
    rows.append(row)
    rows.sort(key=lambda r: r["n"])
    data["rows"] = rows
    BENCH_PATH.write_text(json.dumps(data, indent=2) + "\n")


@pytest.mark.parametrize("n", CASES)
def test_a4_telemetry_overhead(benchmark, n, show, monkeypatch):
    assert not obs.is_enabled(), "telemetry must be off for the benchmark"

    # The three paths are timed *interleaved*, one of each per round, so
    # slow clock drift (thermal throttling, background load) hits all
    # three equally instead of biasing whichever path ran last; the
    # ratios are taken best-of-rounds per path.
    baseline_seconds = disabled_seconds = enabled_seconds = float("inf")
    baseline_result = disabled_result = enabled_result = None
    spans = 0
    for _ in range(ROUNDS):
        baseline_result, seconds = _baseline_matrix(n, monkeypatch)
        baseline_seconds = min(baseline_seconds, seconds)
        disabled_result, seconds = _one_matrix(n)
        disabled_seconds = min(disabled_seconds, seconds)
        enabled_result, seconds, spans = _enabled_matrix(n)
        enabled_seconds = min(enabled_seconds, seconds)

    # One extra disabled round through pytest-benchmark for its table.
    assert benchmark.pedantic(
        lambda: _one_matrix(n)[0], rounds=1, iterations=1
    ) == disabled_result

    # Telemetry never changes verdicts, on or off or absent.
    assert disabled_result == baseline_result == enabled_result
    assert spans > 0, "the enabled run must actually have collected"

    disabled_overhead = disabled_seconds / baseline_seconds
    enabled_overhead = enabled_seconds / baseline_seconds
    row = {
        "n": n,
        "states": 2**n,
        "baseline_seconds": round(baseline_seconds, 6),
        "disabled_seconds": round(disabled_seconds, 6),
        "enabled_seconds": round(enabled_seconds, 6),
        "disabled_overhead": round(disabled_overhead, 4),
        "enabled_overhead": round(enabled_overhead, 4),
    }
    if not QUICK:
        _record(row)

    table = Table(
        ["n", "states", "baseline (s)", "disabled (s)", "enabled (s)",
         "off overhead", "on overhead"],
        title=f"A4: telemetry overhead, xor_ring n={n}",
    )
    table.add(n, 2**n, f"{baseline_seconds:.4f}", f"{disabled_seconds:.4f}",
              f"{enabled_seconds:.4f}", f"{disabled_overhead:.3f}x",
              f"{enabled_overhead:.3f}x")
    show(table)

    if not QUICK and n == LARGEST:
        assert disabled_overhead <= OVERHEAD_BAR, (
            f"disabled telemetry costs {disabled_overhead:.3f}x on "
            f"xor_ring n={n} (bar {OVERHEAD_BAR}x)"
        )
