"""E22 (sections 1.4/3.4): the Confinement and Security Problems on
access-matrix systems, with baseline comparison.

- Confinement: the relay through a scratch file defeats per-operation
  enforcement thinking; the information-problem solution (rights denial)
  closes both hops, and the section 7.5 declassifier exemption works.
- Security: a three-level system proved secure by Corollary 4-3; adding a
  downgrade operation breaks it with a concrete witness.
- Baseline: the transitive model is sound but strictly less precise on
  the confinement system.
"""

from repro.analysis.report import Table
from repro.baselines.denning import precision_report
from repro.core.constraints import Constraint
from repro.core.induction import prove_via_relation
from repro.core.problems import ConfinementProblem, SecurityProblem
from repro.core.reachability import dependency_closure, depends_ever
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var
from repro.systems.access_matrix import AccessMatrixSystem
from repro.systems.security import TotalOrderLattice, classification_relation


def _confinement():
    ams = AccessMatrixSystem(
        subjects=["svc"],
        files={"secret": (0, 1), "scratch": (0, 1), "drop": (0, 1)},
        entries=[("svc", "secret"), ("svc", "scratch"), ("svc", "drop")],
        copy_operations=[
            ("svc", "scratch", "secret"),
            ("svc", "drop", "scratch"),
        ],
        fixed_rights={("svc", "svc"): frozenset({"s"})},
    )
    problem = ConfinementProblem(
        ams.system, confined={"secret"}, spies={"drop"}
    )
    tt = Constraint.true(ams.space)
    deny_first_hop = ams.deny_constraint(
        [("svc", "secret", "scratch")], name="deny secret->scratch"
    )
    declassified = ConfinementProblem(
        ams.system,
        confined={"secret"},
        spies={"drop"},
        declassifiers={("secret", "drop")},
    )
    facts = {
        "unconstrained confined?": problem.is_solution(tt),
        "deny-first-hop solves?": problem.is_solution(deny_first_hop),
        "declassifier exempts path?": declassified.is_solution(tt),
    }
    exact_paths = frozenset(
        (next(iter(src)), tgt)
        for (src, tgt), res in dependency_closure(ams.system).items()
        if res
    )
    report = precision_report(ams.system, exact_paths)
    return facts, report


def _security():
    def build(with_downgrade: bool):
        b = SystemBuilder().booleans("lo", "mid", "hi")
        b.op_assign("up1", "mid", var("lo"))
        b.op_assign("up2", "hi", var("mid"))
        if with_downgrade:
            b.op_assign("down", "lo", var("hi"))
        return b.build()

    lattice = TotalOrderLattice([0, 1, 2])
    cls = {"lo": 0, "mid": 1, "hi": 2}
    q = classification_relation(cls, lattice)

    secure = build(False)
    broken = build(True)
    facts = {
        "Cor 4-3 proof (secure system)": prove_via_relation(
            secure, None, q, q_name="Cls<="
        ).valid,
        "SecurityProblem verdict (secure)": SecurityProblem(
            secure, cls
        ).is_solution(Constraint.true(secure.space)),
        "SecurityProblem verdict (with downgrade)": SecurityProblem(
            broken, cls
        ).is_solution(Constraint.true(broken.space)),
        "witness: hi |> lo in broken system": bool(
            depends_ever(broken, {"hi"}, "lo")
        ),
    }
    return facts


def test_e22_confinement_and_security(benchmark, show):
    (conf_facts, report), sec_facts = benchmark.pedantic(
        lambda: (_confinement(), _security()), rounds=1, iterations=1
    )
    assert not conf_facts["unconstrained confined?"]
    assert conf_facts["deny-first-hop solves?"]
    assert conf_facts["declassifier exempts path?"]
    assert report["false_negatives"] == []  # baseline sound
    assert sec_facts["Cor 4-3 proof (secure system)"]
    assert sec_facts["SecurityProblem verdict (secure)"]
    assert not sec_facts["SecurityProblem verdict (with downgrade)"]
    assert sec_facts["witness: hi |> lo in broken system"]

    table = Table(
        ["fact", "value"],
        title="E22: Confinement & Security Problems end to end",
    )
    for name, value in {**conf_facts, **sec_facts}.items():
        table.add(name, value)
    table.add("baseline predicted paths", report["predicted"])
    table.add("actual paths", report["actual"])
    table.add("baseline precision", report["precision"])
    show(table)
