"""E12 (section 4.6): the two worked separation-of-variety proofs.

1. The q-guarded relay, proved with the cover {q, ~q}.
2. The left/right component system::

       delta1: m.left <- alpha
       delta2: beta <- m.right

   proved with the |domain|-member cover {m.right = i} — each member
   freezes m.right, so delta2 conveys no variety to beta.
"""

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.covers import IndependentCover
from repro.core.reachability import depends_ever
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, when
from repro.lang.expr import var


def _relay_proof():
    b = SystemBuilder().booleans("q", "alpha", "m", "beta")
    b.op_cmd("delta1", when(var("q"), assign("m", var("alpha"))))
    b.op_cmd("delta2", when(~var("q"), assign("beta", var("m"))))
    system = b.build()
    cover = IndependentCover(
        [
            Constraint(system.space, lambda s: s["q"], name="q"),
            Constraint(system.space, lambda s: not s["q"], name="~q"),
        ]
    )
    proof = cover.prove_no_dependency(system, {"alpha"}, "beta")
    exact = not depends_ever(system, {"alpha"}, "beta")
    return proof, exact


def _component_proof():
    # m's left/right components are separate objects; delta1 touches only
    # the left, delta2 reads only the right.
    b = SystemBuilder().integers("alpha", "m_left", "m_right", "beta", bits=1)
    b.op_assign("delta1", "m_left", var("alpha"))
    b.op_assign("delta2", "beta", var("m_right"))
    system = b.build()
    members = [
        Constraint.equals(system.space, "m_right", i)
        for i in system.space.domain("m_right")
    ]
    cover = IndependentCover(members)
    checks = {
        "alpha-independent cover": cover.check({"alpha"}).valid,
        "members autonomous": all(m.is_autonomous() for m in members),
        "members invariant": all(m.is_invariant(system) for m in members),
    }
    proof = cover.prove_no_dependency(system, {"alpha"}, "beta")
    exact = not depends_ever(system, {"alpha"}, "beta")
    return checks, proof, exact


def test_e12_cover_proofs(benchmark, show):
    (relay_proof, relay_exact), (checks, comp_proof, comp_exact) = benchmark(
        lambda: (_relay_proof(), _component_proof())
    )
    assert relay_proof.valid and relay_exact
    assert all(checks.values())
    assert comp_proof.valid and comp_exact

    table = Table(
        ["proof step", "holds?"],
        title="E12 (sec 4.6): the two worked cover proofs",
    )
    table.add("relay: {q, ~q} cover proof valid", relay_proof.valid)
    table.add("relay: exact agrees (no flow)", relay_exact)
    for name, value in checks.items():
        table.add(f"components: {name}", value)
    table.add("components: cover proof valid", comp_proof.valid)
    table.add("components: exact agrees (no flow)", comp_exact)
    show(table)
