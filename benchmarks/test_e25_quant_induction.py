"""E25 (section 7.4's open question): quantitative induction.

The paper asks whether ``b`` can be defined so that transmission over
``H H'`` implies an intermediate set M carrying at least as many bits on
each leg, with the set-valued form *defined as a sum* of per-object bits.
This bench settles the question computationally:

- **No** for the summed form: a one-time-pad split (H stores a XOR r and
  r in two cells and destroys the originals) delivers the secret to beta
  over H H' (k = 1 bit) while every per-object channel out of H carries
  0 bits — so every candidate M sums to 0 < k.
- **Yes** for the joint form: with ``b(A -> M) = I(A ; M-after-H)``
  (joint, not summed), ``M = all objects`` always works — a
  data-processing inequality, verified exactly here and fuzzed over
  random systems.
"""

import random

from repro.analysis.random_systems import random_history, random_system
from repro.analysis.report import Table
from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, seq
from repro.lang.expr import apply, var
from repro.quantitative.distributions import StateDistribution
from repro.quantitative.induction import (
    joint_induction_holds,
    summed_induction_gap,
)


def _xor_counterexample():
    xor = lambda a, b: a ^ b
    b = SystemBuilder().integers("a", "r", "m1", "m2", "beta", bits=1)
    b.op_cmd(
        "split",
        seq(
            assign("m1", var("r")),
            assign("m2", apply(xor, var("a"), var("r"), symbol="xor")),
            assign("a", 0),
            assign("r", 0),
        ),
    )
    b.op_cmd(
        "join", assign("beta", apply(xor, var("m1"), var("m2"), symbol="xor"))
    )
    system = b.build()
    prefix = History.of(system.operation("split"))
    suffix = History.of(system.operation("join"))
    dist = StateDistribution.uniform_over_space(system.space)
    k, best_first, best_m = summed_induction_gap(
        dist, {"a"}, "beta", prefix, suffix
    )
    joint = joint_induction_holds(dist, {"a"}, "beta", prefix, suffix)
    return (k, best_first, best_m), joint


def _fuzz_joint(rounds: int = 25):
    rng = random.Random(7_4_1977)
    holds_count = 0
    for _ in range(rounds):
        system = random_system(rng, n_objects=3, domain_size=2, n_operations=2)
        prefix = random_history(rng, system, max_length=2)
        suffix = random_history(rng, system, max_length=2)
        dist = StateDistribution.uniform_over_space(system.space)
        names = system.space.names
        holds, _k, _f, _s = joint_induction_holds(
            dist, {names[0]}, names[-1], prefix, suffix
        )
        holds_count += int(holds)
    return holds_count, rounds


def test_e25_quantitative_induction(benchmark, show):
    (summed, joint), (holds_count, rounds) = benchmark.pedantic(
        lambda: (_xor_counterexample(), _fuzz_joint()),
        rounds=1,
        iterations=1,
    )
    k, best_first, best_m = summed
    # The negative answer to the summed form...
    assert abs(k - 1.0) < 1e-9
    assert best_first < k - 0.5
    # ...and the positive answer to the joint form.
    holds, k2, first, second = joint
    assert holds and first >= k2 - 1e-9 and second >= k2 - 1e-9
    assert holds_count == rounds  # DPI: no random violation either

    table = Table(
        ["quantity", "value"],
        title="E25 (sec 7.4): can b satisfy quantitative induction?",
    )
    table.add("composite bits k = b(a -(HH')-> beta)", k)
    table.add("best SUMMED first leg over all M", best_first)
    table.add("best M for the summed form", sorted(best_m))
    table.add("summed-form property holds", best_first >= k - 1e-9)
    table.add("JOINT first leg I(a; state-after-H)", first)
    table.add("JOINT second leg", second)
    table.add("joint-form property holds", holds)
    table.add(f"joint form over {rounds} random systems", f"{holds_count}/{rounds}")
    show(table)
