"""E23 (section 7.3): mechanisms, observers, and label systems.

The paper's work-in-progress claims, discharged by enumeration:

- the star-property mechanism (fixed classifications, upward writes)
  prevents downward transmission without covert channels (Denning 75) —
  proved by Corollary 4-3;
- Adept-50-style varying classifications leak covertly when the label is
  raised conditionally on the data observed (Denning 76); raising on
  *attempt* closes the channel, and the high-water invariant holds under
  the paper's initial-constraint remedy in both styles;
- the sequential control mechanism (a single 'step' operation) plus a
  time-only observer removes the section 6.5 flowchart's alpha->beta
  path that the history observer sees.
"""

from repro.analysis.report import Table
from repro.core.induction import prove_via_relation
from repro.core.reachability import depends_ever
from repro.lang.expr import var
from repro.systems.labels import (
    HighWaterMarkSystem,
    StaticLabelSystem,
    label_name,
)
from repro.systems.mechanism import (
    history_observer,
    observed_transmits_ever,
    timed_observer,
)
from repro.systems.program import (
    AssignNode,
    Flowchart,
    TestNode,
    build_program_system,
)
from repro.systems.security import TotalOrderLattice


def _star_property():
    lattice = TotalOrderLattice([0, 1, 2])
    s = StaticLabelSystem({"lo": 0, "mid": 1, "hi": 2}, lattice)
    proof = prove_via_relation(s.system, None, s.relation(), "Cls<=")
    downward = bool(depends_ever(s.system, {"hi"}, "lo"))
    upward = bool(depends_ever(s.system, {"lo"}, "hi"))
    return proof.valid, downward, upward


def _high_water_mark():
    lattice = TotalOrderLattice([0, 1])
    rows = []
    for style in ("observe", "safe"):
        hwm = HighWaterMarkSystem(["lo", "hi"], lattice, style=style)
        phi = hwm.constrained_start({"lo": 0, "hi": 1})
        covert = bool(
            depends_ever(hwm.system, {"hi"}, label_name("lo"), phi)
        )
        tracked = bool(depends_ever(hwm.system, {"hi"}, "lo", phi))
        invariant_ok = hwm.high_water_invariant({"lo": 0, "hi": 1}) is None
        rows.append((style, covert, tracked, invariant_ok))
    return rows


def _observers():
    fc = Flowchart(
        [
            TestNode(1, var("alpha"), 2, 3),
            AssignNode(2, "beta", 0, 4),
            AssignNode(3, "beta", 0, 4),
        ],
        entry=1,
        halt=4,
    )
    domains = {"alpha": (False, True), "beta": (0, 37)}
    ps = build_program_system(fc, domains)
    step_system = fc.to_step_system(domains)
    entry = ps.entry_constraint()
    return {
        "raw nodes + history observer": observed_transmits_ever(
            ps.system, {"alpha"}, history_observer("beta"), 2, entry
        )
        is not None,
        "raw nodes + timed observer": observed_transmits_ever(
            ps.system, {"alpha"}, timed_observer("beta"), 2, entry
        )
        is not None,
        "step mechanism + timed observer": observed_transmits_ever(
            step_system, {"alpha"}, timed_observer("beta"), 4, entry
        )
        is not None,
    }


def test_e23_mechanisms(benchmark, show):
    (star_proof, downward, upward), hwm_rows, observer_facts = (
        benchmark.pedantic(
            lambda: (_star_property(), _high_water_mark(), _observers()),
            rounds=1,
            iterations=1,
        )
    )
    # Star property: secure, upward-only.
    assert star_proof and not downward and upward
    # HWM: observe-style leaks through the label; safe-style does not;
    # data flows are tracked and the invariant holds in both.
    by_style = {r[0]: r for r in hwm_rows}
    assert by_style["observe"][1] and not by_style["safe"][1]
    assert by_style["observe"][2] and by_style["safe"][2]
    assert by_style["observe"][3] and by_style["safe"][3]
    # Observers: mechanism + time-only observation closes the path.
    assert observer_facts["raw nodes + history observer"]
    assert observer_facts["raw nodes + timed observer"]
    assert not observer_facts["step mechanism + timed observer"]

    table = Table(
        ["mechanism fact", "value"],
        title="E23 (sec 7.3): mechanisms and observers",
    )
    table.add("star-property Cor 4-3 proof", star_proof)
    table.add("star-property: hi |> lo", downward)
    table.add("star-property: lo |> hi", upward)
    for style, covert, tracked, inv in hwm_rows:
        table.add(f"HWM[{style}]: secret |> lbl[lo] (covert)", covert)
        table.add(f"HWM[{style}]: secret |> lo (tracked flow)", tracked)
        table.add(f"HWM[{style}]: high-water invariant", inv)
    for name, value in observer_facts.items():
        table.add(name, value)
    show(table)
