"""A1 (ablation): checker algorithmics.

Two ablations called out in DESIGN.md:

1. The dependency checker partitions sat(phi) by the values outside A
   (Def 1-1 equivalence classes) instead of scanning all state pairs.
   This bench compares it against a naive quadratic reference on the same
   query and asserts they agree.
2. The exact pair-graph fixpoint (depends_ever) versus bounded history
   search (depends_within) at the bound that makes bounded search exact.
"""

import pytest

from repro.core.constraints import Constraint
from repro.core.dependency import depends_within, transmits
from repro.core.reachability import depends_ever
from repro.core.state import State
from repro.core.system import History, System
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


def naive_transmits(
    system: System,
    sources: frozenset[str],
    target: str,
    history: History,
    phi: Constraint,
) -> bool:
    """Reference implementation: the literal Def 2-10 pair scan."""
    states = [s for s in system.space.states() if phi(s)]
    for i, s1 in enumerate(states):
        for s2 in states[i + 1 :]:
            if not s1.equal_except_at(s2, sources):
                continue
            if history(s1)[target] != history(s2)[target]:
                return True
    return False


def _chain_system(n: int) -> System:
    b = SystemBuilder()
    for i in range(n):
        b.integers(f"x{i}", bits=1)
    for i in range(n - 1):
        b.op_assign(f"d{i}", f"x{i + 1}", var(f"x{i}"))
    return b.build()


@pytest.mark.parametrize("n", [6, 8, 10])
def test_a1_partitioned_vs_naive(benchmark, n, show):
    """The partitioned checker agrees with the quadratic reference and is
    what the benchmark measures (the reference is timed once alongside
    for the printed comparison)."""
    import time

    system = _chain_system(n)
    phi = Constraint.true(system.space)
    h = system.history(*(f"d{i}" for i in range(n - 1)))
    sources = frozenset({"x0"})
    target = f"x{n - 1}"

    fast = benchmark(
        lambda: bool(transmits(system, sources, target, h, phi))
    )
    start = time.perf_counter()
    slow = naive_transmits(system, sources, target, h, phi)
    naive_seconds = time.perf_counter() - start
    assert fast == slow is True

    from repro.analysis.report import Table

    table = Table(
        ["objects", "states", "partitioned agrees w/ naive", "naive (s)"],
        title=f"A1.1: partition optimization, n={n}",
    )
    table.add(n, system.space.size, fast == slow, f"{naive_seconds:.4f}")
    show(table)


@pytest.mark.parametrize("mode", ["pair-graph", "bounded"])
def test_a1_exact_vs_bounded(benchmark, mode, show):
    """depends_ever's BFS versus depth-bounded history enumeration on the
    relay chain (where the shortest witness has length n-1)."""
    n = 5
    system = _chain_system(n)
    sources = frozenset({"x0"})
    target = f"x{n - 1}"
    bound = n  # bounded search must reach the full chain

    if mode == "pair-graph":
        result = benchmark(
            lambda: bool(depends_ever(system, sources, target))
        )
    else:
        result = benchmark(
            lambda: bool(depends_within(system, sources, target, bound))
        )
    assert result is True
