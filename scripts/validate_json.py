#!/usr/bin/env python3
"""Validate any JSON document against a checked-in schema.

Usage::

    PYTHONPATH=src python scripts/validate_json.py DOC.json SCHEMA.json

Generic sibling of ``validate_trace.py``: same subset validator
(``repro.obs.schema``), but the schema is a required argument, so one
script covers every JSON contract the repo ships (``repro diff --json``
reports against ``docs/diff.schema.json``, cache-stats dumps, future
formats).  Exits 0 when the document satisfies the schema, 1 with a
violation listing otherwise.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
)

from repro.obs import schema  # noqa: E402


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as handle:
        document = json.load(handle)
    with open(argv[2], encoding="utf-8") as handle:
        contract = json.load(handle)
    errors = schema.validate(document, contract)
    if errors:
        print(f"{argv[1]}: {len(errors)} schema violation(s)")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"{argv[1]}: valid against {argv[2]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
