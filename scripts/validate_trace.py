#!/usr/bin/env python3
"""Validate a Chrome trace written by ``repro ... --trace`` against the
checked-in schema (``docs/trace.schema.json``).

Usage::

    PYTHONPATH=src python scripts/validate_trace.py TRACE.json [SCHEMA.json]

Exits 0 when the trace satisfies the schema, 1 with a violation listing
otherwise.  CI runs this on every trace artifact it uploads.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
)

from repro.obs import schema  # noqa: E402

DEFAULT_SCHEMA = (
    pathlib.Path(__file__).resolve().parents[1] / "docs" / "trace.schema.json"
)


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    trace_path = pathlib.Path(argv[1])
    schema_path = pathlib.Path(argv[2]) if len(argv) == 3 else DEFAULT_SCHEMA
    trace = json.loads(trace_path.read_text(encoding="utf-8"))
    trace_schema = json.loads(schema_path.read_text(encoding="utf-8"))
    errors = schema.validate(trace, trace_schema)
    if errors:
        print(f"{trace_path}: INVALID against {schema_path}")
        for error in errors:
            print(f"  {error}")
        return 1
    events = trace.get("traceEvents", [])
    print(
        f"{trace_path}: valid ({len(events)} events, "
        f"{len(trace.get('otherData', {}).get('counters', {}))} counters)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
