#!/usr/bin/env python3
"""Validate Prometheus text exposition scraped from ``GET /metrics``.

Thin CLI over :func:`repro.obs.metrics.lint` for the CI metrics-smoke
job and ad-hoc checks::

    curl -s http://127.0.0.1:8080/metrics > metrics.txt
    PYTHONPATH=src python scripts/validate_metrics.py metrics.txt \
        --require repro_serve_request_seconds \
        --require repro_serve_requests_total

Exit 0 when the exposition parses cleanly and every ``--require``-d
family is present with at least one sample; exit 1 with one problem per
line otherwise.  ``-`` reads from stdin.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs import metrics


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "file", help="scraped exposition text, or - for stdin"
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="FAMILY",
        help="metric family that must be present (repeatable); "
        "histograms go by their base name, e.g. "
        "repro_serve_request_seconds",
    )
    args = parser.parse_args(argv)
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, encoding="utf-8") as handle:
            text = handle.read()
    problems = metrics.lint(text, require=args.require)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    samples = sum(
        1
        for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    )
    print(f"metrics ok: {samples} samples")
    return 0


if __name__ == "__main__":
    sys.exit(main())
