#!/usr/bin/env python3
"""Worked-example client for ``repro serve`` (stdlib only).

Start a server, then talk to it::

    PYTHONPATH=src python -m repro serve --port 8080 --store memo.sqlite &
    printf 'gate := secret > limit;\\nif gate then out := 1 else out := 0' \
        > gate.prog
    python scripts/serve_client.py health --port 8080
    python scripts/serve_client.py session --port 8080 --program gate.prog \
        --var secret=0..3 --var limit=0,1 --var gate=bool --var out=0,1 \
        --prewarm
    python scripts/serve_client.py query --port 8080 \
        --session <key> --source secret --target out
    python scripts/serve_client.py stats --port 8080

``query`` mirrors the CLI's exit-code convention so scripts can compare
the two paths directly: 0 = NO FLOW, 1 = FLOW, 3 = UNKNOWN, 2 = error
(HTTP error, shed, or unreachable server).
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request

EXIT_NO_FLOW = 0
EXIT_FLOW = 1
EXIT_ERROR = 2
EXIT_UNKNOWN = 3


def call(host: str, port: int, method: str, path: str,
         doc: dict | None = None, timeout: float = 60.0) -> tuple[int, dict]:
    """One HTTP round-trip; returns (status, parsed JSON body)."""
    body = None if doc is None else json.dumps(doc).encode()
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=body, method=method,
        headers={"Content-Type": "application/json"} if body else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _read_port(args) -> int:
    if args.port is not None:
        return args.port
    if args.port_file:
        return int(open(args.port_file).read().strip())
    raise SystemExit("need --port or --port-file")


def cmd_health(args) -> int:
    status, doc = call(args.host, _read_port(args), "GET", "/healthz")
    print(json.dumps(doc, indent=2))
    return EXIT_NO_FLOW if status == 200 and doc.get("status") == "ok" \
        else EXIT_ERROR


def cmd_stats(args) -> int:
    _, doc = call(args.host, _read_port(args), "GET", "/stats")
    print(json.dumps(doc, indent=2))
    return EXIT_NO_FLOW


def cmd_metrics(args) -> int:
    """GET /metrics — raw Prometheus text exposition."""
    port = _read_port(args)
    request = urllib.request.Request(
        f"http://{args.host}:{port}/metrics", method="GET"
    )
    with urllib.request.urlopen(request, timeout=60.0) as response:
        sys.stdout.write(response.read().decode("utf-8"))
    return EXIT_NO_FLOW


def cmd_flight(args) -> int:
    """GET /stats?flight=1 — retained failure span trees."""
    _, doc = call(args.host, _read_port(args), "GET", "/stats?flight=1")
    print(json.dumps(doc, indent=2))
    return EXIT_NO_FLOW


def cmd_session(args) -> int:
    program = open(args.program).read()
    variables = dict(v.split("=", 1) for v in args.var)
    status, doc = call(
        args.host, _read_port(args), "POST", "/v1/sessions",
        {"program": program, "vars": variables, "prewarm": args.prewarm},
    )
    print(json.dumps(doc, indent=2))
    return EXIT_NO_FLOW if status == 200 else EXIT_ERROR


def cmd_query(args) -> int:
    doc: dict = {"session": args.session, "source": args.source,
                 "target": args.target}
    quota = {}
    if args.deadline_ms is not None:
        quota["deadline_ms"] = args.deadline_ms
    if args.max_states is not None:
        quota["max_states"] = args.max_states
    if quota:
        doc["quota"] = quota
    status, body = call(args.host, _read_port(args), "POST", "/v1/query", doc)
    print(json.dumps(body, indent=2))
    verdict = body.get("verdict")
    if verdict == "flow":
        return EXIT_FLOW
    if verdict == "no_flow":
        return EXIT_NO_FLOW
    if verdict == "unknown":
        return EXIT_UNKNOWN
    return EXIT_ERROR


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--host", default="127.0.0.1")
    common.add_argument("--port", type=int)
    common.add_argument("--port-file",
                        help="file holding the port (repro serve --port-file)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("health", help="GET /healthz",
                   parents=[common]).set_defaults(fn=cmd_health)
    sub.add_parser("stats", help="GET /stats",
                   parents=[common]).set_defaults(fn=cmd_stats)
    sub.add_parser("metrics", help="GET /metrics (Prometheus text)",
                   parents=[common]).set_defaults(fn=cmd_metrics)
    sub.add_parser("flight", help="GET /stats?flight=1 (post-mortems)",
                   parents=[common]).set_defaults(fn=cmd_flight)

    session = sub.add_parser("session", help="POST /v1/sessions",
                             parents=[common])
    session.add_argument("--program", required=True,
                         help="program file (mini-language)")
    session.add_argument("--var", action="append", default=[],
                         metavar="NAME=SPEC", help="domain, e.g. x=0..3")
    session.add_argument("--prewarm", action="store_true",
                         help="compute all singleton closures now")
    session.set_defaults(fn=cmd_session)

    query = sub.add_parser("query", help="POST /v1/query", parents=[common])
    query.add_argument("--session", required=True)
    query.add_argument("--source", required=True)
    query.add_argument("--target", required=True)
    query.add_argument("--deadline-ms", type=float)
    query.add_argument("--max-states", type=int)
    query.set_defaults(fn=cmd_query)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
