"""Unit + property tests for the syntactic flow extraction."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.random_systems import random_history, random_system
from repro.baselines.denning import TransitiveFlowAnalysis
from repro.baselines.static_flow import (
    StaticFlowAnalysis,
    command_flows,
    operation_flows,
)
from repro.core.dependency import transmits
from repro.core.errors import OperationError
from repro.core.system import Operation
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, seq, when
from repro.lang.expr import var


class TestCommandFlows:
    def test_assignment_explicit_flow(self):
        flows = command_flows(assign("b", var("a") + var("c")))
        assert ("a", "b") in flows and ("c", "b") in flows
        assert ("b", "b") not in flows  # certainly overwritten

    def test_guard_implicit_flow(self):
        flows = command_flows(when(var("m"), assign("b", var("a"))))
        assert ("m", "b") in flows
        assert ("a", "b") in flows
        assert ("b", "b") in flows  # may survive (guard false)

    def test_both_branches_overwrite_drops_identity(self):
        cmd = when(var("m"), assign("b", 0), assign("b", 1))
        flows = command_flows(cmd)
        assert ("b", "b") not in flows
        assert ("m", "b") in flows

    def test_sequence_composes_through_intermediate(self):
        cmd = seq(assign("m", var("a")), assign("b", var("m")))
        flows = command_flows(cmd)
        assert ("a", "b") in flows  # via m
        assert ("a", "m") in flows
        assert ("m", "b") not in flows  # m was rebound before the read

    def test_oscillator_flows(self):
        cmd = seq(assign("b", var("a")), assign("a", 0 - var("a")))
        flows = command_flows(cmd)
        assert ("a", "b") in flows and ("a", "a") in flows
        assert ("b", "a") not in flows

    def test_false_positive_self_rewrite(self):
        """Syntax cannot see that 'b <- b' conveys nothing from m."""
        cmd = when(var("m"), assign("b", var("b")))
        flows = command_flows(cmd)
        assert ("m", "b") in flows  # syntactic imprecision, by design

    def test_requires_structured_operation(self):
        with pytest.raises(OperationError):
            operation_flows(Operation("raw", lambda s: s))


class TestStaticFlowAnalysis:
    def test_matches_denning_on_relay(self):
        b = SystemBuilder().booleans("a", "m", "bb")
        b.op_assign("d1", "m", var("a"))
        b.op_assign("d2", "bb", var("m"))
        system = b.build()
        static = StaticFlowAnalysis(system)
        assert static.flows_ever("a", "bb")
        assert not static.flows_ever("bb", "a")
        h = system.history("d1", "d2")
        assert static.flows_over_history({"a"}, "bb", h)
        assert not static.flows_over_history({"a"}, "bb", system.history("d2", "d1"))

    def test_static_at_least_as_coarse_as_semantic(self):
        """Per-operation: every semantic flow is a syntactic flow; the
        self-rewrite shows the inclusion is strict."""
        b = SystemBuilder().booleans("m", "bb")
        b.op_cmd("rewrite", when(var("m"), assign("bb", var("bb"))))
        system = b.build()
        static = StaticFlowAnalysis(system)
        semantic = TransitiveFlowAnalysis(system)
        assert semantic.operation_flows("rewrite") <= static.operation_flows(
            "rewrite"
        )
        assert ("m", "bb") in static.operation_flows("rewrite")
        assert ("m", "bb") not in semantic.operation_flows("rewrite")


class TestLatticeCertification:
    def test_upward_system_certified(self):
        from repro.baselines.static_flow import certify_lattice

        b = SystemBuilder().booleans("lo", "hi")
        b.op_assign("up", "hi", var("lo"))
        system = b.build()
        cls = {"lo": 0, "hi": 1}
        assert certify_lattice(system, cls, lambda a, b: a <= b) == []

    def test_downward_flow_rejected_with_location(self):
        from repro.baselines.static_flow import certify_lattice

        b = SystemBuilder().booleans("lo", "hi")
        b.op_assign("down", "lo", var("hi"))
        system = b.build()
        cls = {"lo": 0, "hi": 1}
        violations = certify_lattice(system, cls, lambda a, b: a <= b)
        assert ("down", "hi", "lo") in violations

    def test_incompleteness_rejects_secure_self_rewrite(self):
        """Certification's known conservatism: 'if hi then lo <- lo' is
        semantically silent but syntactically rejected — the Corollary
        4-3 semantic proof accepts it."""
        from repro.baselines.static_flow import certify_lattice
        from repro.core.induction import prove_via_relation

        b = SystemBuilder().booleans("lo", "hi")
        b.op_cmd("rewrite", when(var("hi"), assign("lo", var("lo"))))
        system = b.build()
        cls = {"lo": 0, "hi": 1}
        leq = lambda a, b: a <= b
        assert certify_lattice(system, cls, leq) != []  # rejected
        semantic = prove_via_relation(
            system, None, lambda x, y: leq(cls[x], cls[y])
        )
        assert semantic.valid  # yet provably secure


RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSoundnessProperty:
    @RELAXED
    @given(seed=st.integers(0, 10_000))
    def test_syntactic_covers_semantic_per_history(self, seed):
        """alpha |>^H beta implies the syntactic relation contains
        (alpha, beta) for that history."""
        rng = random.Random(seed)
        system = random_system(rng, n_objects=3, domain_size=2)
        history = random_history(rng, system, max_length=3)
        static = StaticFlowAnalysis(system)
        relation = static.flow_over_history(history)
        for alpha in system.space.names:
            for beta in system.space.names:
                if transmits(system, {alpha}, beta, history):
                    assert (alpha, beta) in relation, (alpha, beta)
