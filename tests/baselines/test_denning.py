"""Unit tests for the transitive flow baseline (section 1.5's model)."""

import pytest

from repro.core.constraints import Constraint
from repro.core.reachability import dependency_closure, depends_ever
from repro.baselines.denning import TransitiveFlowAnalysis, precision_report
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, when
from repro.lang.expr import var


@pytest.fixture
def relay():
    b = SystemBuilder().booleans("a", "m", "b")
    b.op_assign("d1", "m", var("a"))
    b.op_assign("d2", "b", var("m"))
    return b.build()


@pytest.fixture
def nontransitive():
    b = SystemBuilder().booleans("q", "a", "m", "b")
    b.op_cmd("d1", when(var("q"), assign("m", var("a"))))
    b.op_cmd("d2", when(~var("q"), assign("b", var("m"))))
    return b.build()


class TestPerOperation:
    def test_per_op_flows_are_semantic(self, relay):
        analysis = TransitiveFlowAnalysis(relay)
        assert ("a", "m") in analysis.operation_flows("d1")
        assert ("a", "b") not in analysis.operation_flows("d1")
        # Reflexive survival: 'a' is never overwritten by d1.
        assert ("a", "a") in analysis.operation_flows("d1")
        # 'm' IS overwritten by d1, so it does not flow to itself there.
        assert ("m", "m") not in analysis.operation_flows("d1")

    def test_constrained_flows(self, nontransitive):
        phi = Constraint(
            nontransitive.space, lambda s: not s["q"], name="~q"
        )
        analysis = TransitiveFlowAnalysis(nontransitive, phi)
        assert ("a", "m") not in analysis.operation_flows("d1")
        assert ("m", "b") in analysis.operation_flows("d2")


class TestHistoryComposition:
    def test_relay_history(self, relay):
        analysis = TransitiveFlowAnalysis(relay)
        h = relay.history("d1", "d2")
        assert analysis.flows_over_history({"a"}, "b", h)

    def test_empty_history_is_identity(self, relay):
        analysis = TransitiveFlowAnalysis(relay)
        relation = analysis.flow_over_history(relay.history())
        assert relation == frozenset(
            {(n, n) for n in relay.space.names}
        )

    def test_false_positive_on_nontransitive_example(self, nontransitive):
        """The paper's headline complaint: the baseline assumes
        transitivity and reports a -> b over d1 d2, but no information
        flows (no state can satisfy both guards)."""
        analysis = TransitiveFlowAnalysis(nontransitive)
        h = nontransitive.history("d1", "d2")
        assert analysis.flows_over_history({"a"}, "b", h)  # baseline: yes
        assert not depends_ever(nontransitive, {"a"}, "b")  # truth: no


class TestClosure:
    def test_flows_ever_reachability(self, relay):
        analysis = TransitiveFlowAnalysis(relay)
        assert analysis.flows_ever("a", "b")
        assert not analysis.flows_ever("b", "a")
        assert analysis.flows_ever("a", "a")

    def test_soundness_no_false_negatives(self, nontransitive):
        """Everything strong dependency finds, the baseline also finds."""
        analysis = TransitiveFlowAnalysis(nontransitive)
        exact = dependency_closure(nontransitive)
        for (source, target), result in exact.items():
            if result:
                (alpha,) = source
                assert analysis.flows_ever(alpha, target)

    def test_precision_report(self, nontransitive):
        exact = frozenset(
            (next(iter(src)), tgt)
            for (src, tgt), res in dependency_closure(nontransitive).items()
            if res
        )
        report = precision_report(nontransitive, exact)
        assert report["false_negatives"] == []
        assert ("a", "b") in report["false_positives"]
        assert 0 < report["precision"] < 1
