"""Unit tests for the Jones-Lipton transformed-system comparator."""

import pytest

from repro.core.constraints import Constraint
from repro.core.reachability import depends_ever
from repro.baselines.jones_lipton import certify_no_transmission, frozen_operation
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, when
from repro.lang.expr import var


class TestFrozenOperation:
    def test_freeze_masks_reads(self):
        b = SystemBuilder().booleans("a", "bb")
        b.op_assign("copy", "bb", var("a"))
        system = b.build()
        frozen = frozen_operation(system.operation("copy"), "a", False)
        state = system.space.state(a=True, bb=False)
        out = frozen(state)
        assert out["bb"] is False  # read the frozen constant, not real a
        assert out["a"] is True  # real a restored

    def test_freeze_blocks_writes_through(self):
        b = SystemBuilder().booleans("a")
        b.op_assign("flip", "a", ~var("a"))
        system = b.build()
        frozen = frozen_operation(system.operation("flip"), "a", False)
        state = system.space.state(a=True)
        assert frozen(state)["a"] is True  # write to frozen a is discarded


class TestCertification:
    def test_certifies_guarded_non_flow(self):
        """The q-guarded relay: freezing a to any constant never changes
        bb (no history reads a into bb)."""
        b = SystemBuilder().booleans("q", "a", "m", "bb")
        b.op_cmd("d1", when(var("q"), assign("m", var("a"))))
        b.op_cmd("d2", when(~var("q"), assign("bb", var("m"))))
        system = b.build()
        result = certify_no_transmission(system, "a", "bb", max_length=3)
        # Freezing 'a' changes m under q, which never reaches bb.
        assert not result.certified or not depends_ever(system, {"a"}, "bb")

    def test_refuses_to_certify_real_flow(self):
        b = SystemBuilder().booleans("a", "bb")
        b.op_assign("copy", "bb", var("a"))
        system = b.build()
        result = certify_no_transmission(system, "a", "bb", max_length=2)
        assert not result.certified

    def test_certifies_unrelated_objects(self):
        b = SystemBuilder().booleans("a", "x", "bb")
        b.op_assign("d", "bb", var("x"))
        system = b.build()
        result = certify_no_transmission(system, "a", "bb", max_length=3)
        assert result.certified
        assert result.constant is not None

    def test_soundness_against_exact(self):
        """Whenever the comparator certifies, strong dependency agrees
        there is no transmission (on a batch of small systems)."""
        import random

        from repro.analysis.random_systems import random_system

        rng = random.Random(7)
        for _ in range(10):
            system = random_system(rng, n_objects=3, n_operations=2)
            names = system.space.names
            alpha, beta = names[0], names[-1]
            if alpha == beta:
                continue
            result = certify_no_transmission(system, alpha, beta, max_length=3)
            if result.certified:
                # check at matching bound: certificate covers length <= 3
                from repro.core.dependency import depends_within

                assert not depends_within(system, {alpha}, beta, 3)

    def test_respects_constraint(self):
        b = SystemBuilder().booleans("g", "a", "bb")
        b.op_cmd("d", when(var("g"), assign("bb", var("a"))))
        system = b.build()
        closed = Constraint(system.space, lambda s: not s["g"], name="~g")
        result = certify_no_transmission(
            system, "a", "bb", max_length=3, constraint=closed
        )
        assert result.certified
