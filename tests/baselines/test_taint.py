"""Unit tests for the dynamic taint baseline."""

import pytest

from repro.core.errors import OperationError
from repro.core.system import History, Operation
from repro.baselines.taint import taint_after, taint_closure, taint_reaches
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, seq, when
from repro.lang.expr import var
from repro.lang.ops import assign_op, op


class TestPropagation:
    def test_explicit_flow(self):
        d = assign_op("d", "b", var("a"))
        assert taint_after(d, {"a"}) == frozenset({"a", "b"})

    def test_untainting_by_constant_overwrite(self):
        d = assign_op("d", "b", 0)
        assert taint_after(d, {"a", "b"}) == frozenset({"a"})

    def test_relay_chain(self):
        d1 = assign_op("d1", "m", var("a"))
        d2 = assign_op("d2", "b", var("m"))
        assert taint_reaches(History.of(d1, d2), {"a"}, "b")
        assert not taint_reaches(History.of(d2, d1), {"a"}, "b")

    def test_implicit_flow_via_guard(self):
        d = op("d", when(var("secret"), assign("out", 1)))
        assert "out" in taint_after(d, {"secret"})

    def test_branch_join_is_conservative(self):
        d = op(
            "d",
            when(var("g"), assign("x", var("a")), assign("x", 0)),
        )
        # Either branch may execute; x must be considered tainted.
        assert "x" in taint_after(d, {"a"})

    def test_seq_inside_guard(self):
        d = op(
            "d",
            when(var("g"), seq(assign("x", 1), assign("y", var("x")))),
        )
        tainted = taint_after(d, {"g"})
        assert {"x", "y"} <= tainted

    def test_requires_structured_operation(self):
        raw = Operation("raw", lambda s: s)
        with pytest.raises(OperationError):
            taint_after(History.of(raw), {"a"})


class TestImprecision:
    def test_false_positive_on_nontransitive_system(self):
        """Taint, like the transitive baseline, flags the q-guarded
        relay even though no information can flow."""
        b = SystemBuilder().booleans("q", "a", "m", "bb")
        b.op_cmd("d1", when(var("q"), assign("m", var("a"))))
        b.op_cmd("d2", when(~var("q"), assign("bb", var("m"))))
        system = b.build()
        assert taint_reaches(system.history("d1", "d2"), {"a"}, "bb")

    def test_constant_write_in_both_branches_still_tainted(self):
        """Taint cannot see that both branches write the same constant."""
        d = op("d", when(var("a"), assign("bb", 0), assign("bb", 0)))
        assert "bb" in taint_after(d, {"a"})


class TestClosure:
    def test_closure_fixpoint(self):
        b = SystemBuilder().booleans("a", "m", "bb", "clean")
        b.op_assign("d1", "m", var("a"))
        b.op_assign("d2", "bb", var("m"))
        b.op_assign("d3", "clean", 1)
        system = b.build()
        closure = taint_closure(system, {"a"})
        assert closure == frozenset({"a", "m", "bb"})
