"""Unit tests for the Millen-style constrained flow baseline and its
documented limits (section 1.5)."""

import pytest

from repro.core.constraints import Constraint
from repro.core.errors import ConstraintError
from repro.core.reachability import depends_ever
from repro.baselines.millen import MillenAnalysis, soundness_violations
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign
from repro.lang.expr import var


@pytest.fixture
def arming_system():
    """delta1 arms the guard; delta2 copies under it.  The constraint
    ~flag is NOT invariant — the classic trap."""
    b = SystemBuilder().booleans("flag", "a", "bb")
    b.op_cmd("arm", assign("flag", True))
    b.op_if("copy", var("flag"), "bb", var("a"))
    return b.build()


class TestInvariantCase:
    def test_sound_and_useful_for_invariant_phi(self):
        b = SystemBuilder().booleans("g", "a", "bb")
        b.op_if("copy", var("g"), "bb", var("a"))
        system = b.build()
        phi = Constraint(system.space, lambda s: not s["g"], name="~g")
        assert phi.is_invariant(system)
        analysis = MillenAnalysis(system, phi)
        assert not analysis.flows_ever("a", "bb")
        assert soundness_violations(analysis) == []


class TestNonInvariantLimit:
    def test_initial_mode_is_unsound(self, arming_system):
        """Millen under the initial constraint certifies a -> bb absent,
        but arm;copy transmits — the paper's predicted limit."""
        phi = Constraint(
            arming_system.space, lambda s: not s["flag"], name="~flag"
        )
        assert not phi.is_invariant(arming_system)
        analysis = MillenAnalysis(arming_system, phi, mode="initial")
        assert not analysis.flows_ever("a", "bb")  # certified absent...
        assert depends_ever(arming_system, {"a"}, "bb", phi)  # ...yet real
        assert ("a", "bb") in soundness_violations(analysis)

    def test_envelope_mode_restores_soundness(self, arming_system):
        phi = Constraint(
            arming_system.space, lambda s: not s["flag"], name="~flag"
        )
        analysis = MillenAnalysis(arming_system, phi, mode="envelope")
        assert analysis.flows_ever("a", "bb")
        assert soundness_violations(analysis) == []

    def test_envelope_loses_precision_gracefully(self, arming_system):
        """The envelope mode can only over-approximate: everything the
        initial mode flags, it flags too."""
        phi = Constraint(
            arming_system.space, lambda s: not s["flag"], name="~flag"
        )
        initial = MillenAnalysis(arming_system, phi, mode="initial")
        envelope = MillenAnalysis(arming_system, phi, mode="envelope")
        assert initial.per_operation_flows() <= envelope.per_operation_flows()


class TestValidation:
    def test_bad_mode_rejected(self, arming_system):
        with pytest.raises(ConstraintError):
            MillenAnalysis(
                arming_system,
                Constraint.true(arming_system.space),
                mode="nope",
            )

    def test_cross_space_rejected(self, arming_system):
        other = SystemBuilder().booleans("x").space()
        with pytest.raises(ConstraintError):
            MillenAnalysis(arming_system, Constraint.true(other))

    def test_reflexive_flow_always_reported(self, arming_system):
        analysis = MillenAnalysis(
            arming_system, Constraint.true(arming_system.space)
        )
        assert analysis.flows_ever("a", "a")
