"""Import hygiene: every subpackage imports standalone.

Circular imports hide behind test-session import order; these tests
import each public module in a *fresh interpreter* so a cycle fails
loudly (regression guard for the baselines <-> analysis cycle fixed by
deferring `reachable_constraint` in `baselines.millen`).
"""

import subprocess
import sys

import pytest

MODULES = [
    "repro",
    "repro.core",
    "repro.lang",
    "repro.systems",
    "repro.systems.program",
    "repro.baselines",
    "repro.baselines.millen",
    "repro.quantitative",
    "repro.analysis",
    "repro.analysis.compare",
    "repro.obs",
    "repro.obs.export",
    "repro.cli",
]


@pytest.mark.parametrize("module", MODULES)
def test_standalone_import(module):
    result = subprocess.run(
        [sys.executable, "-c", f"import {module}"],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr
