"""Run every docstring example in the library as a test.

Keeps the API documentation honest: a changed return value or renamed
parameter breaks the corresponding doctest here.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _module_names():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


@pytest.mark.parametrize("module_name", sorted(_module_names()))
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
