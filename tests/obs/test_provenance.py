"""Verdict provenance: every public engine answer says how it was made."""

import dataclasses

import pytest

from repro.analysis.audit import audit_system
from repro.core.budget import (
    BudgetExceededError,
    ExecutionBudget,
    PartialResult,
)
from repro.core.dependency import transmits, transmits_to_set
from repro.core.engine import DependencyEngine, shared_engine
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var
from repro.obs.provenance import (
    BUDGET_STATES,
    KERNEL_PATHS,
    MEMO_OUTCOMES,
    Provenance,
)


@pytest.fixture
def relay():
    b = SystemBuilder().booleans("a", "m", "bb")
    b.op_assign("d1", "m", var("a"))
    b.op_assign("d2", "bb", var("m"))
    return b.build()


class TestProvenanceRecord:
    def test_describe_includes_optional_fields_only_when_set(self):
        p = Provenance(kernel="compiled", memo="fresh", budget="none")
        assert p.describe() == "kernel=compiled memo=fresh budget=none"
        q = Provenance(
            kernel="compiled",
            memo="hit",
            budget="governed",
            witness_length=2,
            closure_pairs=7,
        )
        assert q.describe() == (
            "kernel=compiled memo=hit budget=governed "
            "witness_len=2 closure_pairs=7"
        )

    def test_short_form(self):
        assert Provenance(kernel="object", memo="hit").short() == "object/hit"

    def test_vocabularies(self):
        assert "compiled" in KERNEL_PATHS and "seed-fallback" in KERNEL_PATHS
        assert MEMO_OUTCOMES == ("hit", "fresh", "n/a")
        assert "exhausted" in BUDGET_STATES


class TestEngineProvenance:
    def test_depends_ever_fresh_then_memo_hit(self, relay):
        engine = DependencyEngine(relay)
        first = engine.depends_ever({"a"}, "bb")
        p = first.provenance
        assert p is not None
        assert p.kernel == "compiled" and p.memo == "fresh"
        assert p.budget == "none"
        assert p.witness_length == 2  # d1 then d2 is the shortest witness
        assert p.closure_pairs is not None and p.closure_pairs > 0
        second = engine.depends_ever({"a"}, "m")  # same (A, phi) closure
        assert second.provenance.memo == "hit"

    def test_negative_verdict_has_provenance_without_witness(self, relay):
        result = DependencyEngine(relay).depends_ever({"bb"}, "a")
        assert not result
        p = result.provenance
        assert p.kernel == "compiled" and p.witness_length is None

    def test_object_engine_reports_object_kernel(self, relay):
        result = DependencyEngine(relay, compiled=False).depends_ever(
            {"a"}, "bb"
        )
        assert result.provenance.kernel == "object"

    def test_depends_ever_set_provenance(self, relay):
        engine = DependencyEngine(relay)
        result = engine.depends_ever_set({"a"}, {"m", "bb"})
        p = result.provenance
        assert p is not None and p.kernel == "compiled"
        assert engine.depends_ever_set({"a"}, {"m"}).provenance.memo == "hit"

    def test_depends_history_fresh_then_hit(self, relay):
        engine = DependencyEngine(relay)
        d1 = relay.operation("d1")
        first = engine.depends_history({"a"}, "m", d1)
        assert first.provenance.memo == "fresh"
        assert first.provenance.witness_length == 1
        assert engine.depends_history({"a"}, "m", d1).provenance.memo == "hit"

    def test_depends_history_set_fresh_then_hit(self, relay):
        engine = DependencyEngine(relay)
        d1 = relay.operation("d1")
        first = engine.depends_history_set({"a"}, {"m"}, d1)
        assert first.provenance.memo == "fresh"
        again = engine.depends_history_set({"a"}, {"m"}, d1)
        assert again.provenance.memo == "hit"

    def test_governed_query_reports_governed_budget(self, relay):
        result = DependencyEngine(relay).depends_ever(
            {"a"}, "bb", budget=ExecutionBudget(max_expanded=10**9)
        )
        assert result.provenance.budget == "governed"

    def test_provenance_never_affects_equality_or_repr(self, relay):
        result = DependencyEngine(relay).depends_ever({"a"}, "m")
        stripped = dataclasses.replace(result, provenance=None)
        assert stripped == result
        assert "provenance" not in repr(result)

    def test_describe_renders_the_provenance_line(self, relay):
        result = DependencyEngine(relay).depends_ever({"a"}, "m")
        text = result.describe()
        assert "[kernel=compiled memo=fresh" in text


class TestSeedFallbackProvenance:
    def test_foreign_history_positive(self, relay):
        d1 = relay.operation("d1")
        d2 = relay.operation("d2")
        composite = d1.then(d2)  # not owned by the system: seed path
        result = transmits(relay, {"a"}, "bb", composite)
        assert result
        p = result.provenance
        assert p.kernel == "seed-fallback" and p.witness_length == 1

    def test_foreign_history_negative(self, relay):
        d1 = relay.operation("d1")
        d2 = relay.operation("d2")
        result = transmits(relay, {"bb"}, "a", d1.then(d2))
        assert not result
        assert result.provenance.kernel == "seed-fallback"
        assert result.provenance.witness_length is None

    def test_foreign_history_set_target(self, relay):
        d1 = relay.operation("d1")
        d2 = relay.operation("d2")
        result = transmits_to_set(relay, {"a"}, {"bb"}, d1.then(d2))
        assert result.provenance.kernel == "seed-fallback"


class TestAuditProvenance:
    def test_every_cell_carries_provenance(self, relay):
        report = audit_system(relay)
        assert report.findings
        for finding in report.findings:
            assert finding.provenance is not None
            assert finding.provenance.kernel in KERNEL_PATHS

    def test_flowing_cells_carry_witness_length(self, relay):
        report = audit_system(relay)
        flowing = [f for f in report.findings if f.flows]
        assert flowing
        for finding in flowing:
            assert finding.provenance.witness_length == len(
                finding.witness_history
            )

    def test_describe_shows_the_via_column(self, relay):
        text = audit_system(relay).describe()
        assert "via" in text
        assert "compiled/" in text

    def test_budget_degraded_cells_report_their_kernel(self, relay, monkeypatch):
        engine = shared_engine(relay)
        partial = PartialResult(
            label="test",
            reason="max_expanded",
            expanded=0,
            discovered=0,
            frontier=1,
            elapsed=0.0,
        )

        def trip(*args, **kwargs):
            raise BudgetExceededError(partial)

        monkeypatch.setattr(engine, "depends_ever", trip)
        report = audit_system(relay)
        by_cell = {(f.source, f.target): f for f in report.findings}
        one_step = by_cell[("a", "m")]
        assert one_step.verdict == "one-step" and one_step.flows
        assert one_step.provenance == Provenance(
            kernel="one-step", budget="exhausted", witness_length=1
        )
        unknown = by_cell[("a", "bb")]
        assert unknown.verdict == "unknown"
        assert unknown.provenance == Provenance(
            kernel="unknown", budget="exhausted"
        )
        # the via column renders the degraded kernels too
        text = report.describe()
        assert "one-step/" in text and "unknown/" in text
