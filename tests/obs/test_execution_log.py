"""The bounded ExecutionLog ring buffer and its telemetry feed."""

import pytest

from repro import obs
from repro.core.budget import (
    ExecutionLog,
    ExecutionReport,
    PartialResult,
)


def _report(k: int, **kwargs) -> ExecutionReport:
    return ExecutionReport(label=f"run{k}", **kwargs)


class TestRingBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ExecutionLog(capacity=0)

    def test_newest_reports_always_fit(self):
        log = ExecutionLog(capacity=3)
        for k in range(5):
            log.record(_report(k))
        assert [r.label for r in log.reports] == ["run2", "run3", "run4"]
        assert log.dropped == 2
        assert log.recorded == 5

    def test_summary_counts_drops_and_capacity(self):
        log = ExecutionLog(capacity=2)
        for k in range(4):
            log.record(_report(k, expansions=10))
        s = log.summary()
        assert s["runs"] == 2 and s["capacity"] == 2 and s["dropped"] == 2
        assert s["expansions"] == 20  # only retained reports are summed

    def test_clear_resets_drop_accounting(self):
        log = ExecutionLog(capacity=1)
        log.record(_report(0))
        log.record(_report(1))
        log.clear()
        assert log.dropped == 0 and log.recorded == 0 and not log.reports


class TestDescribe:
    def test_empty_log_keeps_exact_sentinel_line(self):
        assert ExecutionLog().describe() == (
            "execution: no governed runs recorded"
        )

    def test_describe_mentions_ring_drops(self):
        log = ExecutionLog(capacity=2)
        for k in range(5):
            log.record(_report(k))
        text = log.describe()
        assert "ring capacity 2" in text
        assert "3 older report(s) dropped" in text

    def test_describe_without_drops_stays_quiet_about_the_ring(self):
        log = ExecutionLog(capacity=8)
        log.record(_report(0))
        assert "ring capacity" not in log.describe()

    def test_incomplete_report_renders_budget_exceeded(self):
        partial = PartialResult(
            label="run0",
            reason="deadline",
            expanded=5,
            discovered=9,
            frontier=2,
            elapsed=0.01,
        )
        report = _report(0, completed=False, partial=partial)
        assert "BUDGET EXCEEDED (deadline)" in report.describe()
        log = ExecutionLog()
        log.record(report)
        assert "1 incomplete" in log.describe()


class TestPartialResult:
    def test_describe_carries_the_snapshot(self):
        partial = PartialResult(
            label="closure a/tt",
            reason="max_expanded",
            expanded=128,
            discovered=200,
            frontier=31,
            elapsed=0.25,
        )
        text = partial.describe()
        assert "UNKNOWN" in text and "max_expanded" in text
        assert "128 expanded / 200 discovered" in text
        assert "frontier 31" in text


class TestTelemetryFeed:
    def test_record_feeds_counters_and_gauges(self):
        obs.enable(reset=True)
        log = ExecutionLog(capacity=2)
        partial = PartialResult(
            label="x", reason="deadline", expanded=0, discovered=0,
            frontier=1, elapsed=0.0,
        )
        log.record(_report(0, retries=2, degradations=("process->thread",)))
        log.record(_report(1, completed=False, partial=partial))
        log.record(_report(2))  # evicts run0
        counters = obs.snapshot().counters
        assert counters["execution.reports"] == 3
        assert counters["execution.reports_dropped"] == 1
        assert counters["budget.trips"] == 1
        assert counters["pool.retries"] == 2
        assert counters["pool.degradations"] == 1
        assert obs.snapshot().gauges["execution.log_size"] == 2

    def test_disabled_telemetry_records_silently(self):
        log = ExecutionLog()
        log.record(_report(0, retries=1))
        assert obs.snapshot().counters == {}
        assert log.recorded == 1
