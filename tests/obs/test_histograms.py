"""PR-10 unit tests: fixed-bucket latency histograms (merge semantics,
absorb across the pool boundary, percentiles, Prometheus render/lint)
and trace-context propagation — including across the engine's
process→thread→serial degradation ladder."""

from __future__ import annotations

import contextvars
import functools
import re
import threading

import pytest

from repro import obs
from repro.core import faults
from repro.core.engine import DependencyEngine
from repro.core.faults import FaultPlan, FaultSpec
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var
from repro.obs import metrics, telemetry
from repro.obs.telemetry import HIST_BUCKETS, Histogram


class TestHistogram:
    def test_observe_lands_in_the_right_bucket(self):
        obs.enable()
        obs.observe("serve.request.seconds", 0.003)  # between 0.0025 and 0.005
        hist = obs.snapshot().hists["serve.request.seconds"]
        assert hist.count == 1
        assert hist.counts[HIST_BUCKETS.index(0.005)] == 1
        assert hist.sum_seconds == pytest.approx(0.003)

    def test_overflow_observation_uses_the_inf_slot(self):
        obs.enable()
        obs.observe("serve.request.seconds", 100.0)  # past the 30s bound
        hist = obs.snapshot().hists["serve.request.seconds"]
        assert hist.counts[len(HIST_BUCKETS)] == 1

    def test_disabled_observe_is_a_noop(self):
        obs.observe("serve.request.seconds", 0.1)
        assert obs.snapshot().hists == {}

    def test_percentile_reports_bucket_upper_bounds(self):
        obs.enable()
        for _ in range(99):
            obs.observe("serve.request.seconds", 0.002)
        obs.observe("serve.request.seconds", 4.0)
        hist = obs.snapshot().hists["serve.request.seconds"]
        assert hist.percentile(0.50) == 0.0025
        assert hist.percentile(0.95) == 0.0025
        assert hist.percentile(1.00) == 5.0

    def test_percentile_of_empty_histogram_is_none(self):
        empty = Histogram(
            counts=(0,) * (len(HIST_BUCKETS) + 1), sum_seconds=0.0
        )
        assert empty.percentile(0.5) is None

    def test_overflow_percentile_reports_largest_finite_bound(self):
        obs.enable()
        obs.observe("serve.request.seconds", 100.0)
        hist = obs.snapshot().hists["serve.request.seconds"]
        assert hist.percentile(0.5) == HIST_BUCKETS[-1]

    def test_merge_is_exact_elementwise_addition(self):
        obs.enable()
        obs.observe("x.seconds", 0.002)
        obs.observe("x.seconds", 0.2)
        a = obs.snapshot().hists["x.seconds"]
        obs.enable(reset=True)
        obs.observe("x.seconds", 0.002)
        b = obs.snapshot().hists["x.seconds"]
        merged = a.merge(b)
        assert merged.count == 3
        assert merged.sum_seconds == pytest.approx(a.sum_seconds + b.sum_seconds)
        assert merged.counts == tuple(
            x + y for x, y in zip(a.counts, b.counts)
        )

    def test_span_exit_feeds_its_mapped_histogram(self):
        obs.enable()
        with obs.span("engine.closure"):
            pass
        hist = obs.snapshot().hists["engine.closure.seconds"]
        (record,) = obs.snapshot().spans
        assert hist.count == 1
        assert hist.sum_seconds == pytest.approx(record.duration_ns / 1e9)

    def test_unmapped_span_feeds_no_histogram(self):
        obs.enable()
        with obs.span("engine.history_set"):
            pass
        assert obs.snapshot().hists == {}


class TestAbsorbHistograms:
    def _worker_batch(self):
        """A batch as a process-pool worker would produce it: one
        worker.closure span (which feeds its histogram on exit) plus an
        explicit observation."""
        obs.enable(reset=True)
        with obs.span("worker.closure", task=0):
            pass
        obs.observe("serve.query.seconds", 0.3)
        return obs.export_batch()

    def test_absorb_merges_histograms_across_the_pool_boundary(self):
        batch = self._worker_batch()
        obs.enable(reset=True)
        obs.observe("serve.query.seconds", 0.002)
        obs.absorb_batch(batch)
        hists = obs.snapshot().hists
        assert hists["serve.query.seconds"].count == 2
        assert hists["worker.closure.seconds"].count == 1

    def test_worker_clock_rebasing_leaves_histograms_exact(self):
        # absorb_batch re-anchors the worker's monotonic clock so spans
        # render in the parent's timeline; bucket counts and duration
        # sums are clock-free and must come through bit-identical.
        batch = self._worker_batch()
        _, _, _, batch_hists = batch
        obs.enable(reset=True)
        obs.absorb_batch(batch)
        snap = obs.snapshot()
        for name, (counts, sum_seconds) in batch_hists.items():
            assert snap.hists[name].counts == tuple(counts)
            assert snap.hists[name].sum_seconds == sum_seconds
        # ...while the spans themselves were re-based into our timeline.
        worker_span = next(
            s for s in snap.spans if s.name == "worker.closure"
        )
        assert snap.hists["worker.closure.seconds"].sum_seconds == (
            pytest.approx(worker_span.duration_ns / 1e9)
        )

    def test_absorb_stamps_worker_spans_with_the_ambient_trace(self):
        batch = self._worker_batch()
        spans, _, _, _ = batch
        assert all(s[-1] is None for s in spans), "workers ship no trace"
        obs.enable(reset=True)
        with obs.trace_context("req-42"):
            obs.absorb_batch(batch)
        assert {s.trace_id for s in obs.snapshot().spans} == {"req-42"}

    def test_absorb_without_a_trace_leaves_spans_unstamped(self):
        batch = self._worker_batch()
        obs.enable(reset=True)
        obs.absorb_batch(batch)
        assert {s.trace_id for s in obs.snapshot().spans} == {None}


class TestTraceContext:
    def test_new_trace_id_shape(self):
        tid = obs.new_trace_id()
        assert re.fullmatch(r"[0-9a-f]{16}", tid)
        assert tid != obs.new_trace_id()

    def test_trace_context_works_with_telemetry_disabled(self):
        # Provenance and access-log stamping must not depend on the
        # collector being on.
        assert not obs.is_enabled()
        assert obs.current_trace() is None
        with obs.trace_context("abc"):
            assert obs.current_trace() == "abc"
        assert obs.current_trace() is None

    def test_set_reset_token_pair(self):
        token = obs.set_trace("t1")
        assert obs.current_trace() == "t1"
        obs.reset_trace(token)
        assert obs.current_trace() is None

    def test_spans_are_stamped_with_the_current_trace(self):
        obs.enable()
        with obs.trace_context("t-span"):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        with obs.span("untraced"):
            pass
        traces = {s.name: s.trace_id for s in obs.snapshot().spans}
        assert traces == {"outer": "t-span", "inner": "t-span",
                          "untraced": None}

    def test_plain_thread_does_not_inherit_copied_context_does(self):
        obs.enable()
        seen = {}

        def work(label):
            with obs.span(label):
                seen[label] = obs.current_trace()

        with obs.trace_context("t-thread"):
            bare = threading.Thread(target=work, args=("bare",))
            bare.start()
            bare.join()
            ctx = contextvars.copy_context()
            copied = threading.Thread(
                target=ctx.run, args=(work, "copied")
            )
            copied.start()
            copied.join()
        assert seen == {"bare": None, "copied": "t-thread"}


def _probe(x: int) -> int:
    return x + 1


@functools.lru_cache(maxsize=1)
def _process_pool_works() -> bool:
    from concurrent.futures import ProcessPoolExecutor

    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(_probe, 1).result(timeout=60) == 2
    except Exception:
        return False


@pytest.fixture
def relay():
    b = SystemBuilder().booleans("a", "m", "b")
    b.op_assign("d1", "m", var("a"))
    b.op_assign("d2", "b", var("m"))
    return b.build()


class TestLadderTraceStability:
    """The same trace id must land on every span a warm fan-out
    produces, whichever rung of the process→thread→serial ladder
    actually ran the closures."""

    def _warm_under_trace(self, relay, tid, **kwargs):
        obs.enable(reset=True)
        engine = DependencyEngine(relay)
        with obs.trace_context(tid):
            engine.matrix(**kwargs)
        spans = obs.snapshot().spans
        assert spans, "warm produced no spans"
        assert {s.trace_id for s in spans} == {tid}
        return engine

    def test_serial_spans_carry_the_trace(self, relay):
        self._warm_under_trace(relay, "t-serial")

    def test_thread_fanout_spans_carry_the_trace(self, relay):
        self._warm_under_trace(
            relay, "t-thread", max_workers=2, executor="thread"
        )

    def test_process_fanout_worker_spans_carry_the_trace(self, relay):
        if not _process_pool_works():
            pytest.skip("platform cannot spawn pool processes")
        engine = self._warm_under_trace(
            relay, "t-process", max_workers=2, executor="process"
        )
        report = next(
            r for r in engine.execution_log.reports
            if r.label.startswith("warm")
        )
        if report.executor == "process":
            # Spans absorbed from pool workers were stamped at absorb
            # time with the same trace.
            names = {
                s.name for s in obs.snapshot().spans
                if s.trace_id == "t-process"
            }
            assert "worker.closure" in names

    def test_degraded_thread_to_serial_keeps_one_trace(self, relay):
        plan = FaultPlan(specs=(FaultSpec(kind="err", point="task", task=0),))
        obs.enable(reset=True)
        engine = DependencyEngine(relay)
        with obs.trace_context("t-degrade"):
            with faults.active_plan(plan):
                engine.matrix(max_workers=2, executor="thread")
        spans = obs.snapshot().spans
        assert spans and {s.trace_id for s in spans} == {"t-degrade"}
        report = next(
            r for r in engine.execution_log.reports
            if r.label.startswith("warm")
        )
        assert "thread->serial" in report.degradations


class TestMetricsExposition:
    def _snapshot(self):
        obs.enable(reset=True)
        obs.count("serve.requests", 3)
        obs.gauge_max("serve.queue_depth", 2)
        obs.observe("serve.request.seconds", 0.002)
        obs.observe("serve.request.seconds", 0.3)
        obs.observe("serve.request.seconds", 99.0)  # overflow bucket
        return obs.snapshot()

    def test_render_lints_clean_with_required_families(self):
        text = metrics.render(self._snapshot())
        assert metrics.lint(
            text,
            require=[
                "repro_serve_request_seconds",
                "repro_serve_requests_total",
            ],
        ) == []

    def test_render_shapes(self):
        text = metrics.render(self._snapshot())
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 3" in text
        assert "repro_serve_queue_depth 2" in text
        assert '# TYPE repro_serve_request_seconds histogram' in text
        assert 'repro_serve_request_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_serve_request_seconds_count 3" in text

    def test_extra_gauges_ride_along(self):
        text = metrics.render(self._snapshot(),
                              extra_gauges={"serve.inflight.current": 1})
        assert "repro_serve_inflight_current 1" in text
        assert metrics.lint(text) == []

    def test_bucket_counts_are_cumulative(self):
        text = metrics.render(self._snapshot())
        values = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_serve_request_seconds_bucket")
        ]
        assert values == sorted(values)
        assert values[-1] == 3

    def test_lint_rejects_missing_type_and_broken_cumulative(self):
        assert metrics.lint("repro_orphan 1\n") == [
            "line 1: sample repro_orphan has no preceding TYPE"
        ]
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1.0\n"
            "h_count 3\n"
        )
        problems = metrics.lint(bad)
        assert any("not cumulative" in p for p in problems)

    def test_lint_rejects_missing_inf_and_count_mismatch(self):
        no_inf = "# TYPE h histogram\n" 'h_bucket{le=\"0.1\"} 1\n'
        assert any("missing +Inf" in p for p in metrics.lint(no_inf))
        mismatch = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 2\n'
            "h_count 3\n"
        )
        assert any("_count" in p for p in metrics.lint(mismatch))

    def test_lint_flags_missing_required_family(self):
        assert metrics.lint("", require=["repro_nope"]) == [
            "required metric missing: repro_nope"
        ]

    def test_metric_name_sanitizes(self):
        assert metrics.metric_name("serve.request.seconds") == (
            "repro_serve_request_seconds"
        )
