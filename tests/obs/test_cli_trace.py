"""CLI observability surface: --trace, provenance lines, and `repro
stats` — including the budget-exhausted exit-3 path."""

import json

import pytest

from repro.cli import main
from repro.obs import schema


@pytest.fixture
def leaky_program(tmp_path):
    path = tmp_path / "leaky.prog"
    path.write_text("if secret > 0 then public := 1 else public := 0")
    return str(path)


def _program_args(leaky_program, *extra):
    return [
        "program",
        leaky_program,
        "--var",
        "secret=0..1",
        "--var",
        "public=0..1",
        "--source",
        "secret",
        "--target",
        "public",
        *extra,
    ]


def _load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


class TestProgramTrace:
    def test_trace_written_on_flow_verdict(self, leaky_program, tmp_path, capsys):
        trace = str(tmp_path / "trace.json")
        code = main(_program_args(leaky_program, "--trace", trace))
        captured = capsys.readouterr()
        assert code == 1
        assert f"trace written: {trace}" in captured.err
        data = _load(trace)
        names = {e["name"] for e in data["traceEvents"] if e["ph"] == "X"}
        assert "engine.closure" in names and "kernel.closure" in names
        assert data["otherData"]["counters"]["engine.closure.memo_miss"] >= 1

    def test_trace_validates_against_checked_in_schema(
        self, leaky_program, tmp_path
    ):
        import pathlib

        trace = str(tmp_path / "trace.json")
        main(_program_args(leaky_program, "--trace", trace))
        schema_path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "docs"
            / "trace.schema.json"
        )
        schema.check(_load(trace), json.loads(schema_path.read_text()))

    def test_verdict_prints_provenance_line(self, leaky_program, capsys):
        code = main(_program_args(leaky_program))
        out = capsys.readouterr().out
        assert code == 1
        assert "[kernel=compiled memo=" in out

    def test_exit_3_path_still_writes_trace(
        self, leaky_program, tmp_path, capsys
    ):
        trace = str(tmp_path / "trace.json")
        code = main(
            _program_args(
                leaky_program, "--budget-states", "0", "--trace", trace
            )
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "UNKNOWN" in captured.out
        data = _load(trace)
        assert data["otherData"]["counters"]["budget.trips"] >= 1

    def test_untraced_run_leaves_no_file(self, leaky_program, tmp_path):
        code = main(_program_args(leaky_program))
        assert code == 1
        assert not list(tmp_path.glob("*.json"))


class TestTaintTrace:
    def test_taint_trace_and_execution_report(
        self, leaky_program, tmp_path, capsys
    ):
        trace = str(tmp_path / "taint.json")
        code = main(
            [
                "taint",
                leaky_program,
                "--var",
                "secret=0..1",
                "--var",
                "public=0..1",
                "--source",
                "secret",
                "--trace",
                trace,
                "--execution-report",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "execution:" in captured.out or "no governed runs" in captured.out
        names = {
            e["name"]
            for e in _load(trace)["traceEvents"]
            if e["ph"] == "X"
        }
        assert "taint.closure" in names


class TestStatsCommand:
    def _write_trace(self, leaky_program, tmp_path):
        trace = str(tmp_path / "trace.json")
        main(_program_args(leaky_program, "--trace", trace))
        return trace

    def test_stats_summarizes_a_trace(self, leaky_program, tmp_path, capsys):
        trace = self._write_trace(leaky_program, tmp_path)
        capsys.readouterr()
        code = main(["stats", trace])
        out = capsys.readouterr().out
        assert code == 0
        assert "span" in out and "engine.closure" in out
        assert "counter" in out and "engine.closure.memo_miss" in out
        assert "gauge" in out and "engine.closure.pairs" in out

    def test_stats_top_limits_span_rows(self, leaky_program, tmp_path, capsys):
        trace = self._write_trace(leaky_program, tmp_path)
        capsys.readouterr()
        code = main(["stats", trace, "--top", "1"])
        out = capsys.readouterr().out
        assert code == 0
        span_section = out.split("counter")[0]
        rows = [
            line
            for line in span_section.splitlines()
            if line.strip() and not line.lstrip().startswith(("span", "-"))
        ]
        assert len(rows) == 1

    def test_stats_missing_file_is_a_cli_error(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "absent.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err
