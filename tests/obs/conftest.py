"""Telemetry test isolation: the collector is module-global state, so
every test in this package starts disabled and empty and restores the
entry state on exit (other suites run with telemetry off)."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_telemetry():
    was_enabled = obs.is_enabled()
    obs.disable()
    obs.reset()
    yield
    obs.reset()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()
