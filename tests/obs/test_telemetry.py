"""Unit tests for the telemetry core: spans, counters, gauges, batches,
and the exporters (Chrome trace / JSONL / aggregate / schema)."""

import json
import threading

import pytest

from repro import obs
from repro.obs import export, schema, telemetry


class TestEnableDisable:
    def test_disabled_by_default_in_tests(self):
        assert not obs.is_enabled()

    def test_enable_disable_roundtrip(self):
        obs.enable()
        assert obs.is_enabled()
        obs.disable()
        assert not obs.is_enabled()

    def test_disable_keeps_collected_data(self):
        obs.enable()
        obs.count("x")
        obs.disable()
        assert obs.snapshot().counters == {"x": 1}

    def test_enable_reset_clears_prior_state(self):
        obs.enable()
        obs.count("x")
        obs.enable(reset=True)
        assert obs.snapshot().counters == {}

    def test_reset_drops_everything(self):
        obs.enable()
        with obs.span("s"):
            pass
        obs.count("c")
        obs.gauge_max("g", 3)
        obs.reset()
        snap = obs.snapshot()
        assert snap.spans == () and snap.counters == {} and snap.gauges == {}


class TestSpans:
    def test_disabled_span_is_the_shared_null_singleton(self):
        s = obs.span("anything", attr="ignored")
        assert s is telemetry.NULL_SPAN
        with s as inner:
            inner.set("k", "v")  # no-op, no error
        assert obs.snapshot().spans == ()

    def test_span_records_name_attrs_and_duration(self):
        obs.enable()
        with obs.span("work", source="a,b", constraint="tt"):
            pass
        (record,) = obs.snapshot().spans
        assert record.name == "work"
        assert record.attrs == {"source": "a,b", "constraint": "tt"}
        assert record.duration_ns >= 0
        assert record.parent_id is None

    def test_nested_spans_parent_correctly(self):
        obs.enable()
        with obs.span("outer") as outer:
            with obs.span("inner"):
                pass
        spans = {s.name: s for s in obs.snapshot().spans}
        assert spans["inner"].parent_id == outer.span_id
        assert spans["outer"].parent_id is None

    def test_sibling_spans_share_a_parent(self):
        obs.enable()
        with obs.span("outer") as outer:
            with obs.span("first"):
                pass
            with obs.span("second"):
                pass
        spans = {s.name: s for s in obs.snapshot().spans}
        assert spans["first"].parent_id == outer.span_id
        assert spans["second"].parent_id == outer.span_id

    def test_set_attaches_attribute_mid_span(self):
        obs.enable()
        with obs.span("work") as s:
            s.set("memo", "hit")
        (record,) = obs.snapshot().spans
        assert record.attrs["memo"] == "hit"

    def test_span_records_on_exception(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("boom")
        assert [s.name for s in obs.snapshot().spans] == ["failing"]

    def test_thread_spans_are_roots_not_children(self):
        # contextvar parenting: a fresh thread has no current span, so
        # its spans must not attach under the main thread's.
        obs.enable()

        def work():
            with obs.span("in_thread"):
                pass

        with obs.span("main"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        spans = {s.name: s for s in obs.snapshot().spans}
        assert spans["in_thread"].parent_id is None


class TestTraced:
    def test_traced_passthrough_when_disabled(self):
        @obs.traced("fn.span")
        def double(x):
            return 2 * x

        assert double(21) == 42
        assert obs.snapshot().spans == ()
        assert double.__name__ == "double"

    def test_traced_emits_span_when_enabled(self):
        obs.enable()

        @obs.traced("fn.span")
        def double(x):
            return 2 * x

        assert double(21) == 42
        assert [s.name for s in obs.snapshot().spans] == ["fn.span"]


class TestCountersAndGauges:
    def test_counters_accumulate(self):
        obs.enable()
        obs.count("hits")
        obs.count("hits", 4)
        assert obs.snapshot().counters == {"hits": 5}

    def test_gauges_keep_high_water_mark(self):
        obs.enable()
        obs.gauge_max("frontier", 10)
        obs.gauge_max("frontier", 3)
        obs.gauge_max("frontier", 12)
        assert obs.snapshot().gauges == {"frontier": 12}

    def test_disabled_metrics_are_noops(self):
        obs.count("hits")
        obs.gauge_max("frontier", 10)
        snap = obs.snapshot()
        assert snap.counters == {} and snap.gauges == {}


class TestBatches:
    def _worker_batch(self):
        """A batch as a process-pool worker would produce it."""
        obs.enable(reset=True)
        with obs.span("worker.closure", task=0):
            with obs.span("kernel.closure"):
                pass
        obs.count("kernel.pair_expansions", 7)
        obs.gauge_max("kernel.frontier_high_water", 4)
        return obs.export_batch()

    def test_export_batch_clears_by_default(self):
        self._worker_batch()
        snap = obs.snapshot()
        assert snap.spans == () and snap.counters == {}

    def test_batch_is_plain_picklable_data(self):
        import pickle

        batch = self._worker_batch()
        spans, counters, gauges, hists = pickle.loads(pickle.dumps(batch))
        assert counters == {"kernel.pair_expansions": 7}
        assert gauges == {"kernel.frontier_high_water": 4}
        assert {s[0] for s in spans} == {"worker.closure", "kernel.closure"}
        assert "worker.closure.seconds" in hists
        counts, sum_seconds = hists["worker.closure.seconds"]
        assert sum(counts) == 1 and sum_seconds >= 0.0

    def test_absorb_merges_spans_counters_and_gauges(self):
        batch = self._worker_batch()
        obs.enable(reset=True)
        obs.count("kernel.pair_expansions", 1)
        obs.absorb_batch(batch)
        snap = obs.snapshot()
        assert snap.counters["kernel.pair_expansions"] == 8
        assert snap.gauges["kernel.frontier_high_water"] == 4
        assert {s.name for s in snap.spans} == {
            "worker.closure",
            "kernel.closure",
        }

    def test_absorb_preserves_parent_links_and_remaps_ids(self):
        batch = self._worker_batch()
        obs.enable(reset=True)
        with obs.span("engine.warm"):
            obs.absorb_batch(batch)
        spans = {s.name: s for s in obs.snapshot().spans}
        assert (
            spans["kernel.closure"].parent_id
            == spans["worker.closure"].span_id
        )
        ids = [s.span_id for s in obs.snapshot().spans]
        assert len(ids) == len(set(ids)), "absorbed ids must not collide"

    def test_absorb_rebases_worker_clock(self):
        import time

        batch = self._worker_batch()
        obs.enable(reset=True)
        obs.absorb_batch(batch)
        now = time.perf_counter_ns()
        for s in obs.snapshot().spans:
            assert s.start_ns + s.duration_ns <= now

    def test_absorb_is_noop_when_disabled_or_empty(self):
        batch = self._worker_batch()
        obs.enable(reset=True)
        obs.disable()
        obs.absorb_batch(batch)
        obs.enable()
        obs.absorb_batch(None)
        assert obs.snapshot().spans == ()


class TestExporters:
    def _collect(self):
        obs.enable(reset=True)
        with obs.span("engine.closure", constraint="tt"):
            with obs.span("kernel.closure"):
                pass
        obs.count("engine.closure.memo_miss")
        obs.gauge_max("engine.closure.pairs", 7)
        return obs.snapshot()

    def test_chrome_trace_shape(self):
        snap = self._collect()
        trace = export.chrome_trace(snap)
        events = trace["traceEvents"]
        assert [e["ph"] for e in events if e["ph"] == "M"], "process metadata"
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {
            "engine.closure",
            "kernel.closure",
        }
        counters = [e for e in events if e["ph"] == "C"]
        assert counters[0]["args"] == {"value": 1}
        assert trace["otherData"]["counters"] == {"engine.closure.memo_miss": 1}
        assert trace["otherData"]["gauges"] == {"engine.closure.pairs": 7}

    def test_chrome_trace_timestamps_rebased_to_zero(self):
        trace = export.chrome_trace(self._collect())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in spans) == 0.0

    def test_chrome_trace_is_json_serializable(self):
        json.dumps(export.chrome_trace(self._collect()))

    def test_write_and_load_chrome_trace(self, tmp_path):
        snap = self._collect()
        path = str(tmp_path / "trace.json")
        export.write_chrome_trace(path, snap)
        events = export.load_trace(path)
        kinds = {e["type"] for e in events}
        assert kinds == {"span", "counter", "gauge", "hist"}

    def test_write_and_load_jsonl(self, tmp_path):
        snap = self._collect()
        path = str(tmp_path / "trace.jsonl")
        export.write_jsonl(path, snap)
        events = export.load_trace(path)
        assert {e["type"] for e in events} == {
            "span", "counter", "gauge", "hist",
        }
        spans = [e for e in events if e["type"] == "span"]
        assert {s["name"] for s in spans} == {
            "engine.closure",
            "kernel.closure",
        }

    def test_aggregate_over_both_formats_agrees(self, tmp_path):
        snap = self._collect()
        chrome = str(tmp_path / "t.json")
        jsonl = str(tmp_path / "t.jsonl")
        export.write_chrome_trace(chrome, snap)
        export.write_jsonl(jsonl, snap)
        agg_chrome = export.aggregate(export.load_trace(chrome))
        agg_jsonl = export.aggregate(export.load_trace(jsonl))
        assert agg_chrome["counters"] == agg_jsonl["counters"]
        assert agg_chrome["gauges"] == agg_jsonl["gauges"]
        assert set(agg_chrome["spans"]) == set(agg_jsonl["spans"])
        for name, stat in agg_chrome["spans"].items():
            assert stat["count"] == agg_jsonl["spans"][name]["count"]
            assert stat["total_us"] >= stat["max_us"] >= 0

    def test_emitted_trace_validates_against_checked_in_schema(self, tmp_path):
        import pathlib

        schema_path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "docs"
            / "trace.schema.json"
        )
        trace_schema = json.loads(schema_path.read_text())
        trace = export.chrome_trace(self._collect())
        # round-trip through JSON so tuples etc. become plain data
        instance = json.loads(json.dumps(trace, default=str))
        assert schema.validate(instance, trace_schema) == []


class TestSchemaValidator:
    SCHEMA = {
        "type": "object",
        "required": ["name", "ph"],
        "properties": {
            "name": {"type": "string"},
            "ph": {"type": "string", "enum": ["M", "X", "C"]},
            "ts": {"type": "number", "minimum": 0},
        },
        "additionalProperties": False,
    }

    def test_valid_instance_has_no_errors(self):
        ok = {"name": "a", "ph": "X", "ts": 1.5}
        assert schema.validate(ok, self.SCHEMA) == []

    def test_each_violation_is_reported_with_its_path(self):
        bad = {"ph": "Q", "ts": -1, "extra": True}
        errors = schema.validate(bad, self.SCHEMA)
        text = "\n".join(errors)
        assert "missing required property 'name'" in text
        assert "not in enum" in text
        assert "minimum" in text
        assert "unexpected property 'extra'" in text

    def test_type_mismatch_short_circuits(self):
        errors = schema.validate("not an object", self.SCHEMA)
        assert len(errors) == 1 and "expected type object" in errors[0]

    def test_items_are_validated_with_indices(self):
        arr_schema = {"type": "array", "items": {"type": "integer"}}
        errors = schema.validate([1, "x", 3], arr_schema)
        assert len(errors) == 1 and "$[1]" in errors[0]

    def test_check_raises_value_error(self):
        with pytest.raises(ValueError, match="schema validation failed"):
            schema.check({}, self.SCHEMA)
        schema.check({"name": "a", "ph": "M"}, self.SCHEMA)  # silent
