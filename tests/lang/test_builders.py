"""Unit tests for SystemBuilder."""

import pytest

from repro.core.errors import SpaceError
from repro.core.system import Operation
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign
from repro.lang.expr import var


class TestObjects:
    def test_domains(self):
        b = SystemBuilder().booleans("p").integers("x", bits=3).ranged(
            "r", lo=-2, hi=2
        ).obj("e", ("red", "green"))
        sp = b.space()
        assert sp.domain("p") == (False, True)
        assert sp.domain("x") == tuple(range(8))
        assert sp.domain("r") == (-2, -1, 0, 1, 2)
        assert sp.domain("e") == ("red", "green")

    def test_duplicate_rejected(self):
        b = SystemBuilder().booleans("p")
        with pytest.raises(SpaceError):
            b.booleans("p")


class TestOperations:
    def test_op_variants(self):
        b = SystemBuilder().booleans("g").integers("x", "y", bits=1)
        b.op_assign("copy", "y", var("x"))
        b.op_if("guarded", var("g"), "y", var("x"))
        b.op_if("branch", var("g"), "y", 0, else_expr=1)
        b.op_seq("both", assign("x", 0), assign("y", 0))
        b.operation(Operation("ext", lambda s: s))
        system = b.build()
        assert set(system.operation_names) == {
            "copy",
            "guarded",
            "branch",
            "both",
            "ext",
        }

    def test_semantics_of_op_if_else(self):
        b = SystemBuilder().booleans("g").integers("y", bits=1)
        b.op_if("branch", var("g"), "y", 0, else_expr=1)
        system = b.build()
        branch = system.operation("branch")
        assert branch(system.space.state(g=True, y=1))["y"] == 0
        assert branch(system.space.state(g=False, y=0))["y"] == 1

    def test_constraint_helper(self):
        b = SystemBuilder().integers("x", bits=2)
        phi = b.constraint(lambda s: s["x"] < 2, name="small")
        assert phi.count() == 2
        assert phi.name == "small"

    def test_state_helper(self):
        b = SystemBuilder().booleans("p")
        assert b.state(p=True)["p"] is True

    def test_build_requires_objects(self):
        with pytest.raises(SpaceError):
            SystemBuilder().build()
