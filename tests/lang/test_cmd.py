"""Unit tests for the command AST."""

import pytest

from repro.core.state import Space
from repro.lang.cmd import Skip, assign, seq, skip, when
from repro.lang.expr import var


@pytest.fixture
def space():
    return Space({"a": range(4), "b": range(4), "g": (False, True)})


class TestExecution:
    def test_skip(self, space):
        s = space.state(a=1, b=2, g=True)
        assert skip().run(s) == s

    def test_assign(self, space):
        s = space.state(a=1, b=2, g=True)
        assert assign("b", var("a")).run(s)["b"] == 1

    def test_assign_constant(self, space):
        s = space.state(a=1, b=2, g=True)
        assert assign("b", 3).run(s)["b"] == 3

    def test_seq_later_sees_earlier_writes(self, space):
        # b <- a ; a <- b + 1: second assignment sees the new b.
        cmd = seq(assign("b", var("a")), assign("a", var("b") + 1))
        s = cmd.run(space.state(a=1, b=0, g=False))
        assert s["b"] == 1 and s["a"] == 2

    def test_oscillator_semantics(self, space):
        # (b <- a ; a <- 3 - a): b receives the OLD a.
        cmd = seq(assign("b", var("a")), assign("a", 3 - var("a")))
        s = cmd.run(space.state(a=1, b=0, g=False))
        assert s["b"] == 1 and s["a"] == 2

    def test_when_true_branch(self, space):
        cmd = when(var("g"), assign("b", 1), assign("b", 2))
        assert cmd.run(space.state(a=0, b=0, g=True))["b"] == 1
        assert cmd.run(space.state(a=0, b=0, g=False))["b"] == 2

    def test_when_default_else_is_skip(self, space):
        cmd = when(var("g"), assign("b", 1))
        s = space.state(a=0, b=0, g=False)
        assert cmd.run(s) == s

    def test_seq_empty_and_singleton(self, space):
        assert isinstance(seq(), Skip)
        single = assign("b", 1)
        assert seq(single) is single


class TestStructure:
    def test_writes(self):
        cmd = seq(assign("a", 1), when(var("g"), assign("b", 2)))
        assert cmd.writes() == frozenset({"a", "b"})

    def test_reads_include_guard(self):
        cmd = when(var("g"), assign("b", var("a")))
        assert cmd.reads() == frozenset({"g", "a"})

    def test_skip_reads_writes_nothing(self):
        assert skip().writes() == frozenset()
        assert skip().reads() == frozenset()

    def test_repr_readable(self):
        cmd = when(var("g"), assign("b", var("a")))
        assert repr(cmd) == "if g then b <- a"
