"""Unit tests for the operation combinators."""

import pytest

from repro.core.state import Space
from repro.lang.cmd import assign, seq, when
from repro.lang.expr import var
from repro.lang.ops import (
    StructuredOperation,
    assign_op,
    guarded_assign_op,
    op,
)


@pytest.fixture
def space():
    return Space({"a": (0, 1), "b": (0, 1), "g": (False, True)})


class TestConstructors:
    def test_op_wraps_command(self, space):
        operation = op("both", seq(assign("a", 1), assign("b", var("a"))))
        out = operation(space.state(a=0, b=0, g=False))
        assert out["a"] == 1 and out["b"] == 1
        assert isinstance(operation, StructuredOperation)

    def test_assign_op(self, space):
        operation = assign_op("copy", "b", var("a"))
        assert operation(space.state(a=1, b=0, g=False))["b"] == 1
        assert operation.writes() == frozenset({"b"})
        assert operation.reads() == frozenset({"a"})

    def test_guarded_assign_op(self, space):
        operation = guarded_assign_op("maybe", var("g"), "b", var("a"))
        blocked = operation(space.state(a=1, b=0, g=False))
        assert blocked["b"] == 0
        fired = operation(space.state(a=1, b=0, g=True))
        assert fired["b"] == 1
        assert operation.reads() == frozenset({"g", "a"})

    def test_repr_shows_body(self):
        operation = guarded_assign_op("maybe", var("g"), "b", var("a"))
        assert "if g then b <- a" in repr(operation)

    def test_description_defaults_to_body(self):
        operation = assign_op("copy", "b", var("a"))
        assert operation.description == "b <- a"
