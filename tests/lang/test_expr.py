"""Unit tests for the expression DSL."""

import pytest

from repro.core.errors import EvaluationError
from repro.core.state import Space, State
from repro.lang.expr import apply, coerce, const, if_expr, var


@pytest.fixture
def state():
    return State({"a": 3, "b": 5, "flag": True})


class TestEvaluation:
    def test_var_and_const(self, state):
        assert var("a").eval(state) == 3
        assert const(42).eval(state) == 42

    def test_unknown_var(self, state):
        with pytest.raises(EvaluationError):
            var("zzz").eval(state)

    def test_arithmetic(self, state):
        assert (var("a") + var("b")).eval(state) == 8
        assert (var("b") - var("a")).eval(state) == 2
        assert (var("a") * 2).eval(state) == 6
        assert (var("b") % 2).eval(state) == 1
        assert (var("b") // 2).eval(state) == 2
        assert (-var("a")).eval(state) == -3

    def test_comparisons(self, state):
        assert (var("a") < var("b")).eval(state) is True
        assert (var("a") >= 4).eval(state) is False
        assert (var("a") == 3).eval(state) is True
        assert (var("a") != 3).eval(state) is False
        assert (var("a") <= 3).eval(state) is True
        assert (var("b") > 10).eval(state) is False

    def test_boolean_connectives(self, state):
        assert (var("flag") & (var("a") < 4)).eval(state) is True
        assert (var("flag") & (var("a") > 4)).eval(state) is False
        assert ((var("a") > 4) | var("flag")).eval(state) is True
        assert (~var("flag")).eval(state) is False

    def test_if_expr(self, state):
        e = if_expr(var("flag"), var("a"), var("b"))
        assert e.eval(state) == 3
        assert if_expr(~var("flag"), var("a"), var("b")).eval(state) == 5

    def test_apply(self, state):
        e = apply(lambda x, y: max(x, y), var("a"), var("b"), symbol="max")
        assert e.eval(state) == 5

    def test_coerce(self):
        assert coerce(7).value == 7
        e = var("x")
        assert coerce(e) is e

    def test_raw_values_lift_in_operators(self, state):
        assert (var("a") + 1).eval(state) == 4

    def test_type_error_wrapped(self, state):
        with pytest.raises(EvaluationError):
            (var("flag") + "x").eval(state)


class TestReads:
    def test_var_reads(self):
        assert var("a").reads() == frozenset({"a"})
        assert const(1).reads() == frozenset()

    def test_composite_reads(self):
        e = (var("a") + var("b")) < var("c")
        assert e.reads() == frozenset({"a", "b", "c"})

    def test_if_expr_reads_all_parts(self):
        e = if_expr(var("g"), var("t"), var("f"))
        assert e.reads() == frozenset({"g", "t", "f"})

    def test_apply_reads(self):
        e = apply(lambda x, y: x, var("p"), var("q"))
        assert e.reads() == frozenset({"p", "q"})


class TestRepr:
    def test_reprs_are_readable(self):
        e = (var("a") + 1) < var("b")
        assert repr(e) == "((a + 1) < b)"
        assert repr(~var("q")) == "(not q)"
