"""Engine/seed agreement: the shared closure must change nothing but speed.

The :class:`~repro.core.engine.DependencyEngine` answers every target from
one pair-graph closure per ``(A, phi)``; the seed path
(``reachability._seed_depends_ever`` / ``_seed_depends_ever_set``) runs an
independent BFS per query and is kept as the executable specification.
Over seeded random systems (:mod:`repro.analysis.random_systems`) these
tests assert:

- identical ``holds`` verdicts for every (source, target) query, for
  single and set targets, across constraint flavours;
- every positive engine witness *replays*: the state pair satisfies phi,
  is equal except at A, and running the witness history produces a genuine
  difference at the target(s);
- witness histories are shortest (same length as the seed BFS's);
- the engine's tabulated single-step flows match per-operation
  ``transmits`` exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.random_systems import random_constraint, random_system
from repro.core.constraints import Constraint
from repro.core.dependency import DependencyResult, transmits
from repro.core.engine import DependencyEngine
from repro.core.reachability import _seed_depends_ever, _seed_depends_ever_set
from repro.core.system import System

FLAVOURS = [None, "subset", "autonomous", "coupled"]


def _random_case(seed: int) -> tuple[System, Constraint | None, random.Random]:
    rng = random.Random(seed)
    system = random_system(
        rng,
        n_objects=rng.choice([2, 3]),
        domain_size=2,
        n_operations=rng.choice([1, 2]),
    )
    flavour = FLAVOURS[seed % len(FLAVOURS)]
    phi = (
        random_constraint(rng, system.space, flavour)
        if flavour is not None
        else None
    )
    return system, phi, rng


def _assert_witness_replays(
    result: DependencyResult, phi: Constraint | None
) -> None:
    witness = result.witness
    s1, s2 = witness.sigma1, witness.sigma2
    if phi is not None:
        assert phi(s1) and phi(s2), "witness states must satisfy phi"
    assert s1.equal_except_at(s2, witness.sources), (
        "witness states must be equal except at the source set"
    )
    after1 = witness.history(s1)
    after2 = witness.history(s2)
    for target in witness.targets:
        assert after1[target] != after2[target], (
            f"witness history does not produce a difference at {target!r}"
        )


@pytest.mark.parametrize("seed", range(24))
def test_engine_matches_seed_depends_ever(seed):
    system, phi, _ = _random_case(seed)
    engine = DependencyEngine(system)
    for source in system.space.names:
        for target in system.space.names:
            seed_result = _seed_depends_ever(system, {source}, target, phi)
            engine_result = engine.depends_ever({source}, target, phi)
            assert bool(engine_result) == bool(seed_result), (
                f"verdict mismatch for {source} |> {target} "
                f"under {phi.name if phi else 'tt'}"
            )
            if engine_result:
                _assert_witness_replays(engine_result, phi)
                assert len(engine_result.witness.history) == len(
                    seed_result.witness.history
                ), "engine witness must be shortest, like the seed BFS's"


@pytest.mark.parametrize("seed", range(24))
def test_engine_matches_seed_depends_ever_set(seed):
    system, phi, rng = _random_case(seed)
    engine = DependencyEngine(system)
    names = list(system.space.names)
    for _ in range(6):
        sources = frozenset(rng.sample(names, rng.randint(1, len(names))))
        targets = frozenset(rng.sample(names, rng.randint(1, len(names))))
        seed_result = _seed_depends_ever_set(system, sources, targets, phi)
        engine_result = engine.depends_ever_set(sources, targets, phi)
        assert bool(engine_result) == bool(seed_result), (
            f"set-target verdict mismatch for {sorted(sources)} |> "
            f"{sorted(targets)} under {phi.name if phi else 'tt'}"
        )
        if engine_result:
            _assert_witness_replays(engine_result, phi)
            assert len(engine_result.witness.history) == len(
                seed_result.witness.history
            )


@pytest.mark.parametrize("seed", range(12))
def test_engine_single_step_flows_match_transmits(seed):
    system, phi, _ = _random_case(seed)
    engine = DependencyEngine(system)
    flows = engine.operation_flows(phi)
    for op in system.operations:
        expected = frozenset(
            (x, y)
            for x in system.space.names
            for y in system.space.names
            if transmits(system, {x}, y, op, phi)
        )
        assert flows[op.name] == expected, (
            f"single-step flows for {op.name!r} diverge from transmits"
        )
