"""Batched fixed-history agreement: composed arrays must change nothing
but speed.

:meth:`DependencyEngine.depends_history` / :meth:`depends_history_set`
answer Def 2-10 / Def 5-6 queries from one sweep of the composed
successor array of H over the Def 1-1 buckets of sat(phi), memoized per
``(A, H, phi)``; ``dependency._seed_transmits`` /
``_seed_transmits_to_set`` remain the direct per-state executable
specification.  Over seeded random systems and random multi-operation
histories these tests assert, across constraint flavours:

- identical ``holds`` verdicts on *both* engine paths (compiled integer
  kernel and the ``compiled=False`` object path) against the seed
  reference, for single and set targets;
- witness pairs are not merely valid but *identical* to the seed
  checker's (both scan the same buckets in enumeration order and
  compare to the bucket's first member), and every witness replays;
- the public :func:`transmits` / :func:`transmits_to_set` wrappers route
  through the shared engine without observable change, and fall back to
  the seed path for histories built from foreign operation objects
  (``Operation.then`` composites);
- the step-flow memo is keyed by the *resolved* constraint: ``None`` and
  any trivially-true instance share one entry.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.random_systems import random_constraint, random_system
from repro.core.constraints import Constraint
from repro.core.dependency import (
    DependencyResult,
    _seed_transmits,
    _seed_transmits_to_set,
    transmits,
    transmits_to_set,
)
from repro.core.engine import DependencyEngine, shared_engine
from repro.core.errors import ForeignOperationError
from repro.core.system import History, System

FLAVOURS = [None, "subset", "autonomous", "coupled"]


def _random_case(seed: int) -> tuple[System, Constraint | None, random.Random]:
    rng = random.Random(seed)
    system = random_system(
        rng,
        n_objects=rng.choice([2, 3, 4]),
        domain_size=rng.choice([2, 3]),
        n_operations=rng.choice([1, 2, 3]),
    )
    flavour = FLAVOURS[seed % len(FLAVOURS)]
    phi = (
        random_constraint(rng, system.space, flavour)
        if flavour is not None
        else None
    )
    return system, phi, rng


def _random_history(system: System, rng: random.Random) -> History:
    length = rng.randint(0, 4)
    return History(rng.choice(system.operations) for _ in range(length))


def _assert_witness_replays(
    result: DependencyResult, phi: Constraint | None
) -> None:
    witness = result.witness
    s1, s2 = witness.sigma1, witness.sigma2
    if phi is not None:
        assert phi(s1) and phi(s2), "witness states must satisfy phi"
    assert s1.equal_except_at(s2, witness.sources), (
        "witness states must be equal except at the source set"
    )
    after1 = witness.history(s1)
    after2 = witness.history(s2)
    for target in witness.targets:
        assert after1[target] != after2[target], (
            f"witness history does not produce a difference at {target!r}"
        )


def _assert_same_witness(
    batched: DependencyResult, seed_result: DependencyResult
) -> None:
    assert batched.witness.sigma1 == seed_result.witness.sigma1
    assert batched.witness.sigma2 == seed_result.witness.sigma2
    assert batched.witness.history == seed_result.witness.history


@pytest.mark.parametrize("seed", range(24))
def test_depends_history_matches_seed_single_target(seed):
    system, phi, rng = _random_case(seed)
    compiled = DependencyEngine(system, compiled=True)
    objects = DependencyEngine(system, compiled=False)
    for _ in range(3):
        history = _random_history(system, rng)
        for source in system.space.names:
            for target in system.space.names:
                seed_result = _seed_transmits(
                    system, {source}, target, history, phi
                )
                for engine in (compiled, objects):
                    batched = engine.depends_history(
                        {source}, target, history, phi
                    )
                    assert bool(batched) == bool(seed_result), (
                        f"verdict mismatch for {source} |>^{history!r} "
                        f"{target} under {phi.name if phi else 'tt'}"
                    )
                    if batched:
                        _assert_witness_replays(batched, phi)
                        _assert_same_witness(batched, seed_result)


@pytest.mark.parametrize("seed", range(24))
def test_depends_history_set_matches_seed(seed):
    system, phi, rng = _random_case(seed)
    compiled = DependencyEngine(system, compiled=True)
    objects = DependencyEngine(system, compiled=False)
    names = list(system.space.names)
    for _ in range(6):
        history = _random_history(system, rng)
        sources = frozenset(rng.sample(names, rng.randint(1, len(names))))
        targets = frozenset(rng.sample(names, rng.randint(1, len(names))))
        seed_result = _seed_transmits_to_set(
            system, sources, targets, history, phi
        )
        for engine in (compiled, objects):
            batched = engine.depends_history_set(sources, targets, history, phi)
            assert bool(batched) == bool(seed_result), (
                f"set-target verdict mismatch for {sorted(sources)} "
                f"|>^{history!r} {sorted(targets)} under "
                f"{phi.name if phi else 'tt'}"
            )
            if batched:
                _assert_witness_replays(batched, phi)
                _assert_same_witness(batched, seed_result)


@pytest.mark.parametrize("seed", range(12))
def test_routed_public_api_matches_seed(seed):
    """transmits/transmits_to_set route through shared_engine invisibly."""
    system, phi, rng = _random_case(seed)
    names = list(system.space.names)
    for _ in range(4):
        history = _random_history(system, rng)
        source = rng.choice(names)
        target = rng.choice(names)
        routed = transmits(system, {source}, target, history, phi)
        seed_result = _seed_transmits(system, {source}, target, history, phi)
        assert bool(routed) == bool(seed_result)
        if routed:
            _assert_same_witness(routed, seed_result)
        sources = frozenset(rng.sample(names, rng.randint(1, len(names))))
        targets = frozenset(rng.sample(names, rng.randint(1, len(names))))
        routed_set = transmits_to_set(system, sources, targets, history, phi)
        seed_set = _seed_transmits_to_set(system, sources, targets, history, phi)
        assert bool(routed_set) == bool(seed_set)
        if routed_set:
            _assert_same_witness(routed_set, seed_set)


@pytest.mark.parametrize("seed", range(8))
def test_memoized_requery_is_stable(seed):
    """A second identical query must return the same verdict and witness
    pair (served from the memoized table, not recomputed)."""
    system, phi, rng = _random_case(seed)
    engine = DependencyEngine(system, compiled=True)
    history = _random_history(system, rng)
    for source in system.space.names:
        for target in system.space.names:
            first = engine.depends_history({source}, target, history, phi)
            second = engine.depends_history({source}, target, history, phi)
            assert bool(first) == bool(second)
            if first:
                _assert_same_witness(second, first)


@pytest.mark.parametrize("seed", range(6))
def test_foreign_operations_fall_back_to_seed(seed):
    """Histories of ad-hoc composites (Operation.then) are not the
    system's own operations: the engine refuses them and the public
    wrapper falls back to the direct checker, verdict unchanged."""
    system, phi, rng = _random_case(seed)
    ops = system.operations
    composite = ops[0].then(ops[-1])
    engine = DependencyEngine(system, compiled=True)
    names = list(system.space.names)
    source, target = rng.choice(names), rng.choice(names)
    with pytest.raises(ForeignOperationError):
        engine.depends_history({source}, target, composite, phi)
    routed = transmits(system, {source}, target, composite, phi)
    seed_result = _seed_transmits(system, {source}, target, composite, phi)
    assert bool(routed) == bool(seed_result)
    if routed:
        _assert_same_witness(routed, seed_result)


def test_step_flow_memo_keyed_by_resolved_constraint():
    """operation_flows(None) and any trivially-true constraint instance
    share one memo entry (and one computation)."""
    rng = random.Random(5)
    system = random_system(rng, n_objects=3, domain_size=2, n_operations=2)
    engine = shared_engine(system)
    tt = Constraint.true(system.space)
    everything = Constraint(system.space, lambda s: True, name="custom-true")
    flows = engine.operation_flows(None)
    assert engine.operation_flows(tt) is flows
    assert engine.operation_flows(everything) is flows
    # A genuinely restrictive constraint still gets its own entry.
    some_state = next(iter(system.space.states()))
    narrow = Constraint.from_states(system.space, [some_state], name="narrow")
    assert engine.operation_flows(narrow) is not flows
