"""Bitset-kernel agreement: bulk expansion must change nothing but speed.

The bulk frontier kernel (:mod:`repro.core.bitset`) claims something
stronger than verdict agreement with the scalar compiled kernel: its
``order`` sequence and parent pointers are *byte-identical*, so every
shortest witness — not just every verdict — survives the kernel swap.
Over seeded random systems these tests assert, across constraint
flavours and for both the NumPy and the pure bulk paths:

- identical closure ``order`` and ``parents`` (compared as dicts — the
  bulk kernel returns an array-backed
  :class:`~repro.core.bitset.PackedParents` mapping);
- identical verdicts *and identical witness histories* for every
  (source, target) single and set query;
- zero-expansion budgets trip identically, and a tripped bulk run
  memoizes nothing (soundness: the memo only ever holds complete
  closures);
- agreement is unchanged with telemetry enabled;
- the process-pool warm path in bitset mode produces closures identical
  to the in-process scalar ones.
"""

from __future__ import annotations

import random

import pytest

pytest.importorskip("numpy")

from repro import obs
from repro.analysis.random_systems import random_constraint, random_system
from repro.core.bitset import ENV_NUMPY_FLAG
from repro.core.budget import BudgetExceededError, ExecutionBudget
from repro.core.constraints import Constraint
from repro.core.engine import DependencyEngine
from repro.core.system import System

FLAVOURS = [None, "subset", "autonomous", "coupled"]


def _random_case(seed: int) -> tuple[System, Constraint | None]:
    rng = random.Random(seed)
    system = random_system(
        rng,
        n_objects=rng.choice([2, 3, 4]),
        domain_size=rng.choice([2, 3]),
        n_operations=rng.choice([1, 2, 3]),
    )
    flavour = FLAVOURS[seed % len(FLAVOURS)]
    phi = (
        random_constraint(rng, system.space, flavour)
        if flavour is not None
        else None
    )
    return system, phi


def _witness_ops(result) -> tuple[str, ...] | None:
    if result.witness is None:
        return None
    return tuple(op.name for op in result.witness.history)


@pytest.mark.parametrize("seed", range(16))
@pytest.mark.parametrize("numpy_path", [True, False])
def test_closures_and_witnesses_identical(seed, numpy_path, monkeypatch):
    if not numpy_path:
        monkeypatch.setenv(ENV_NUMPY_FLAG, "0")
    system, phi = _random_case(seed)
    scalar = DependencyEngine(system, kernel="scalar")
    bulk = DependencyEngine(system, kernel="bitset")
    for source in system.space.names:
        s_closure = scalar._closure({source}, phi)
        b_closure = bulk._closure({source}, phi)
        assert list(b_closure.order) == list(s_closure.order)
        assert dict(b_closure.parents) == dict(s_closure.parents)
        assert b_closure.kernel_path == "compiled-bitset"
        for target in system.space.names:
            s_result = scalar.depends_ever({source}, target, phi)
            b_result = bulk.depends_ever({source}, target, phi)
            assert bool(b_result) == bool(s_result)
            assert _witness_ops(b_result) == _witness_ops(s_result)
            assert b_result.provenance.kernel == "compiled-bitset"


@pytest.mark.parametrize("seed", range(8))
def test_set_targets_identical(seed):
    system, phi = _random_case(seed)
    scalar = DependencyEngine(system, kernel="scalar")
    bulk = DependencyEngine(system, kernel="bitset")
    names = sorted(system.space.names)
    target_sets = [set(names[:2]), set(names)]
    for source in names:
        for targets in target_sets:
            s_result = scalar.depends_ever_set({source}, targets, phi)
            b_result = bulk.depends_ever_set({source}, targets, phi)
            assert bool(b_result) == bool(s_result)
            assert _witness_ops(b_result) == _witness_ops(s_result)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("numpy_path", [True, False])
def test_zero_budget_trips_identically(seed, numpy_path, monkeypatch):
    if not numpy_path:
        monkeypatch.setenv(ENV_NUMPY_FLAG, "0")
    system, phi = _random_case(seed)
    budget = ExecutionBudget(max_expanded=0)
    source = system.space.names[0]
    target = system.space.names[-1]
    outcomes = []
    for mode in ("scalar", "bitset"):
        engine = DependencyEngine(system, kernel=mode)
        try:
            engine.depends_ever({source}, target, phi, budget=budget)
            outcomes.append("completed")
        except BudgetExceededError as exc:
            outcomes.append(("tripped", exc.partial.expanded))
            # Soundness: a tripped run memoizes nothing.
            assert engine.cache_stats()["closures"]["size"] == 0
    assert outcomes[0] == outcomes[1]


@pytest.mark.parametrize("seed", range(4))
def test_agreement_with_telemetry_enabled(seed):
    system, phi = _random_case(seed)
    obs.enable(reset=True)
    try:
        scalar = DependencyEngine(system, kernel="scalar")
        bulk = DependencyEngine(system, kernel="bitset")
        for source in system.space.names:
            for target in system.space.names:
                s_result = scalar.depends_ever({source}, target, phi)
                b_result = bulk.depends_ever({source}, target, phi)
                assert bool(b_result) == bool(s_result)
                assert _witness_ops(b_result) == _witness_ops(s_result)
        snap = obs.snapshot()
        # A non-empty bulk closure must have reported its level count;
        # degenerate systems (no seed pairs) legitimately report none.
        any_pairs = any(
            len(bulk._closure({source}, phi)) > 0
            for source in system.space.names
        )
        if any_pairs:
            assert snap.counters.get("kernel.bitset.levels", 0) >= 1
    finally:
        obs.disable()


@pytest.mark.parametrize("seed", [0, 5, 10])
def test_pool_bitset_closures_identical_to_serial_scalar(seed):
    system, phi = _random_case(seed)
    pooled = DependencyEngine(system, kernel="bitset")
    serial = DependencyEngine(system, kernel="scalar")
    family = [frozenset([n]) for n in system.space.names]
    pooled._warm(family, phi, max_workers=2, executor="process")
    for source_set in family:
        p_closure = pooled._closure(source_set, phi)
        s_closure = serial._closure(source_set, phi)
        assert list(p_closure.order) == list(s_closure.order)
        assert dict(p_closure.parents) == dict(s_closure.parents)
