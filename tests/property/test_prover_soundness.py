"""Property tests: the inductive provers never certify a false absence.

A `Proof` with ``valid=True`` is a *certificate*; these tests fuzz the
provers against the exact pair-graph decision to confirm certificates are
always truthful (the converse — completeness — is not expected: induction
is deliberately conservative).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.random_systems import (
    random_constraint,
    random_invariant_constraint,
    random_system,
)
from repro.core.covers import IndependentCover, partition_by_value
from repro.core.errors import ProofError
from repro.core.induction import (
    prove_no_dependency,
    prove_no_dependency_nonautonomous,
    prove_via_relation,
)
from repro.core.reachability import depends_ever

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _make(seed: int):
    rng = random.Random(seed)
    system = random_system(rng, n_objects=3, domain_size=2, n_operations=2)
    names = list(system.space.names)
    return rng, system, names


class TestCorollary42Soundness:
    @RELAXED
    @given(seed=st.integers(0, 10_000))
    def test_valid_proof_implies_no_flow(self, seed):
        rng, system, names = _make(seed)
        phi = random_constraint(rng, system.space, "autonomous")
        alpha, beta = names[0], names[-1]
        if alpha == beta:
            return
        proof = prove_no_dependency(system, phi, alpha, beta)
        if proof.valid:
            assert not depends_ever(system, {alpha}, beta, phi)


class TestCorollary56Soundness:
    @RELAXED
    @given(seed=st.integers(0, 10_000))
    def test_valid_proof_implies_no_flow(self, seed):
        rng, system, names = _make(seed)
        phi = random_invariant_constraint(rng, system)
        alpha, beta = names[0], names[-1]
        if alpha == beta:
            return
        proof = prove_no_dependency_nonautonomous(
            system, phi, {alpha}, beta
        )
        if proof.valid:
            assert not depends_ever(system, {alpha}, beta, phi)


class TestCorollary43Soundness:
    @RELAXED
    @given(seed=st.integers(0, 10_000))
    def test_valid_relation_proof_bounds_all_flows(self, seed):
        rng, system, names = _make(seed)
        phi = random_constraint(rng, system.space, "autonomous")
        # A random preorder from a random rank function.
        ranks = {name: rng.randint(0, 2) for name in names}
        q = lambda x, y: ranks[x] <= ranks[y]
        proof = prove_via_relation(system, phi, q)
        if proof.valid:
            for x in names:
                for y in names:
                    if not q(x, y):
                        assert not depends_ever(system, {x}, y, phi)


class TestCoverProverSoundness:
    @RELAXED
    @given(seed=st.integers(0, 10_000))
    def test_valid_cover_proof_implies_no_flow(self, seed):
        _rng, system, names = _make(seed)
        alpha, beta = names[0], names[-1]
        if alpha == beta or len(names) < 2:
            return
        split = names[1]
        if split == alpha:
            return
        cover = partition_by_value(system.space, split)
        proof = cover.prove_no_dependency(system, {alpha}, beta)
        if proof.valid:
            assert not depends_ever(system, {alpha}, beta)
