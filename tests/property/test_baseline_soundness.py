"""Property tests: the syntactic baselines are sound over-approximations
of strong dependency (they may cry wolf, never miss a flow).

Structured random systems come from the seeded generator (taint needs
command bodies, which the table-based hypothesis systems lack).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.random_systems import random_history, random_system
from repro.baselines.denning import TransitiveFlowAnalysis
from repro.baselines.taint import taint_reaches
from repro.core.dependency import transmits
from repro.core.reachability import depends_ever

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _make(seed: int):
    rng = random.Random(seed)
    system = random_system(rng, n_objects=3, domain_size=2, n_operations=2)
    history = random_history(rng, system, max_length=3)
    return system, history


class TestTaintSoundness:
    @RELAXED
    @given(seed=st.integers(0, 10_000))
    def test_taint_covers_per_history_dependency(self, seed):
        """alpha |>^H beta  implies  taint(alpha) reaches beta over H."""
        system, history = _make(seed)
        names = system.space.names
        for alpha in names:
            for beta in names:
                if transmits(system, {alpha}, beta, history):
                    assert taint_reaches(history, {alpha}, beta), (
                        alpha,
                        beta,
                        [op.name for op in history],
                    )


class TestTransitiveBaselineSoundness:
    @RELAXED
    @given(seed=st.integers(0, 10_000))
    def test_baseline_covers_exact_dependency(self, seed):
        """alpha |> beta (over any history) implies baseline reachability."""
        system, _history = _make(seed)
        analysis = TransitiveFlowAnalysis(system)
        names = system.space.names
        for alpha in names:
            for beta in names:
                if depends_ever(system, {alpha}, beta):
                    assert analysis.flows_ever(alpha, beta), (alpha, beta)

    @RELAXED
    @given(seed=st.integers(0, 10_000))
    def test_per_history_composition_covers_dependency(self, seed):
        """The relational-composition form is sound per history too."""
        system, history = _make(seed)
        analysis = TransitiveFlowAnalysis(system)
        relation = analysis.flow_over_history(history)
        names = system.space.names
        for alpha in names:
            for beta in names:
                if transmits(system, {alpha}, beta, history):
                    assert (alpha, beta) in relation, (
                        alpha,
                        beta,
                        [op.name for op in history],
                    )
