"""Store agreement and invalidation soundness over random systems.

Two properties anchor the persistence layer:

1. **Agreement.**  A store-backed engine — cold (computing and
   persisting) or warm (deserializing another engine's rows) — must be
   *bit-identical* to the seed storeless path: same verdicts, same
   witness histories, same closure order/parents.  Checked for both
   kernels with telemetry enabled, across constraint flavours.

2. **Invalidation soundness.**  Mutate one random operation of a random
   system.  ``diff_systems`` reuses every closure whose touched-states
   bitset avoids the changed successor entries and recomputes the rest;
   soundness (docs/FORMALISM.md) demands that *every verdict that
   actually changed came from a recomputed (invalidated) closure* and
   that the reported after-verdicts equal a full from-scratch recompute.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.analysis.diff import diff_systems
from repro.analysis.random_systems import random_constraint, random_system
from repro.core.engine import DependencyEngine
from repro.core.store import PersistentStore
from repro.core.system import Operation, System

FLAVOURS = [None, "subset", "autonomous", "coupled"]


def _random_case(seed: int):
    rng = random.Random(seed)
    system = random_system(
        rng,
        n_objects=rng.choice([2, 3]),
        domain_size=rng.choice([2, 3]),
        n_operations=rng.choice([1, 2, 3]),
    )
    flavour = FLAVOURS[seed % len(FLAVOURS)]
    phi = (
        random_constraint(rng, system.space, flavour)
        if flavour is not None
        else None
    )
    return rng, system, phi


def _witness_ops(result):
    if result.witness is None:
        return None
    return tuple(op.name for op in result.witness.history)


def _all_verdicts(engine, names, phi):
    return {
        (a, b): (bool(r), _witness_ops(r))
        for a in names
        for b in names
        for r in [engine.depends_ever({a}, b, phi)]
    }


@pytest.mark.parametrize("kernel", ["scalar", "bitset"])
@pytest.mark.parametrize("seed", range(12))
def test_store_backed_equals_cold_equals_seed(tmp_path, seed, kernel):
    _, system, phi = _random_case(seed)
    names = list(system.space.names)
    obs.enable(reset=True)
    try:
        seed_verdicts = _all_verdicts(
            DependencyEngine(system, kernel=kernel), names, phi
        )
        path = tmp_path / "memo.sqlite"
        with PersistentStore(path) as store:
            cold_engine = DependencyEngine(system, kernel=kernel, store=store)
            cold = _all_verdicts(cold_engine, names, phi)
        with PersistentStore(path) as store:
            warm_engine = DependencyEngine(system, kernel=kernel, store=store)
            warm = _all_verdicts(warm_engine, names, phi)
            assert store.misses == 0 and store.hits > 0
            # The deserialized closures are bit-identical, not merely
            # verdict-equivalent.
            for a in names:
                cold_closure = cold_engine._closure(frozenset({a}), phi)
                warm_closure = warm_engine._closure(frozenset({a}), phi)
                assert list(warm_closure.order) == list(cold_closure.order)
                assert dict(warm_closure.parents) == dict(cold_closure.parents)
        assert cold == seed_verdicts
        assert warm == seed_verdicts
        counters = obs.snapshot().counters
        assert counters.get("store.write", 0) > 0
        assert counters.get("store.hit", 0) > 0
    finally:
        obs.disable()


def _mutate_one_operation(rng: random.Random, system: System):
    """A copy of ``system`` with one operation redirected on one state
    (possibly to itself — the delta may be empty, which diff must report
    as zero changed entries)."""
    states = list(system.space.states())
    victim = rng.choice(system.operations)
    moved_state = rng.choice(states)
    new_image = rng.choice(states)

    def mutated(s, _victim=victim, _from=moved_state, _to=new_image):
        return _to if s == _from else _victim(s)

    operations = [
        Operation(op.name, mutated) if op is victim else op
        for op in system.operations
    ]
    return System(system.space, operations, check_closed=False)


@pytest.mark.parametrize("seed", range(16))
def test_invalidation_soundness(tmp_path, seed):
    rng, old, phi = _random_case(seed)
    new = _mutate_one_operation(rng, old)
    names = list(old.space.names)

    with PersistentStore(tmp_path / "memo.sqlite") as store:
        report = diff_systems(
            old, new, constraints=[phi], store=store
        )

    # Full recompute on fresh engines: the ground truth.
    e_old = DependencyEngine(old)
    e_new = DependencyEngine(new)
    expected_changed = set()
    for a in names:
        before = e_old._closure(frozenset({a}), phi).first_differing()
        after = e_new._closure(frozenset({a}), phi).first_differing()
        for b in names:
            if (b in before) != (b in after):
                expected_changed.add((a, b))

    got_changed = {
        (change.sources[0], change.target) for change in report.changed
    }
    assert got_changed == expected_changed

    # Soundness: a verdict can only change inside the invalidated set.
    for change in report.changed:
        assert change.recomputed, (
            f"changed verdict {change} came from a reused closure — "
            "the touched-states invalidation is unsound"
        )
    if not report.changed_states:
        # Empty delta (the mutation was the identity redirect): every
        # closure must have been carried across.
        assert report.closures_recomputed == 0
    assert report.closures_total == len(names)
