"""Compiled-kernel agreement: integer closures must change nothing but speed.

The compiled engine (:mod:`repro.core.compiled`) answers every query from
a BFS over *canonical unordered* integer-encoded pairs; the PR-1 object
engine (``DependencyEngine(system, compiled=False)``) explores ordered
``State`` pairs, and ``reachability._seed_depends_ever`` remains the
original per-query executable specification.  Over seeded random systems
(:mod:`repro.analysis.random_systems`) these tests assert, across
constraint flavours:

- identical ``holds`` verdicts for every (source, target) query against
  *both* the object engine and the seed reference, for single and set
  targets;
- every positive compiled witness *replays* (phi-satisfying pair, equal
  except at A, history produces the difference) and is shortest (same
  length as the seed BFS's);
- the explicit unordered-pair symmetry invariant: the canonical closure
  equals the ordered closure modulo swap (minus diagonal pairs, which
  carry no distinguishing information and are pruned by the kernel);
- compiled single-step flows match the object engine's exactly;
- the process-pool warm path produces closures identical to serial.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.random_systems import random_constraint, random_system
from repro.core.constraints import Constraint
from repro.core.dependency import DependencyResult
from repro.core.engine import DependencyEngine
from repro.core.reachability import _seed_depends_ever, _seed_depends_ever_set
from repro.core.system import System

FLAVOURS = [None, "subset", "autonomous", "coupled"]


def _random_case(seed: int) -> tuple[System, Constraint | None, random.Random]:
    rng = random.Random(seed)
    system = random_system(
        rng,
        n_objects=rng.choice([2, 3, 4]),
        domain_size=rng.choice([2, 3]),
        n_operations=rng.choice([1, 2, 3]),
    )
    flavour = FLAVOURS[seed % len(FLAVOURS)]
    phi = (
        random_constraint(rng, system.space, flavour)
        if flavour is not None
        else None
    )
    return system, phi, rng


def _assert_witness_replays(
    result: DependencyResult, phi: Constraint | None
) -> None:
    witness = result.witness
    s1, s2 = witness.sigma1, witness.sigma2
    if phi is not None:
        assert phi(s1) and phi(s2), "witness states must satisfy phi"
    assert s1.equal_except_at(s2, witness.sources), (
        "witness states must be equal except at the source set"
    )
    after1 = witness.history(s1)
    after2 = witness.history(s2)
    for target in witness.targets:
        assert after1[target] != after2[target], (
            f"witness history does not produce a difference at {target!r}"
        )


@pytest.mark.parametrize("seed", range(24))
def test_compiled_matches_object_engine_and_seed(seed):
    system, phi, _ = _random_case(seed)
    compiled = DependencyEngine(system, compiled=True)
    objects = DependencyEngine(system, compiled=False)
    for source in system.space.names:
        for target in system.space.names:
            seed_result = _seed_depends_ever(system, {source}, target, phi)
            object_result = objects.depends_ever({source}, target, phi)
            compiled_result = compiled.depends_ever({source}, target, phi)
            assert bool(compiled_result) == bool(object_result) == bool(
                seed_result
            ), (
                f"verdict mismatch for {source} |> {target} "
                f"under {phi.name if phi else 'tt'}"
            )
            if compiled_result:
                _assert_witness_replays(compiled_result, phi)
                assert len(compiled_result.witness.history) == len(
                    seed_result.witness.history
                ), "compiled witness must be shortest, like the seed BFS's"


@pytest.mark.parametrize("seed", range(24))
def test_compiled_matches_seed_set_targets(seed):
    system, phi, rng = _random_case(seed)
    compiled = DependencyEngine(system, compiled=True)
    names = list(system.space.names)
    for _ in range(6):
        sources = frozenset(rng.sample(names, rng.randint(1, len(names))))
        targets = frozenset(rng.sample(names, rng.randint(1, len(names))))
        seed_result = _seed_depends_ever_set(system, sources, targets, phi)
        compiled_result = compiled.depends_ever_set(sources, targets, phi)
        assert bool(compiled_result) == bool(seed_result), (
            f"set-target verdict mismatch for {sorted(sources)} |> "
            f"{sorted(targets)} under {phi.name if phi else 'tt'}"
        )
        if compiled_result:
            _assert_witness_replays(compiled_result, phi)
            assert len(compiled_result.witness.history) == len(
                seed_result.witness.history
            )


@pytest.mark.parametrize("seed", range(16))
def test_unordered_pair_symmetry_invariant(seed):
    """The canonical closure IS the ordered closure modulo swap.

    Swap-symmetry lemma (docs/FORMALISM.md): applying one operation to
    both pair components commutes with swapping them, so the ordered
    closure is swap-closed up to orientation and quotients onto the
    canonical unordered closure.  Diagonal pairs are the one exception by
    construction: they distinguish nothing and the kernel prunes them.
    """
    system, phi, _ = _random_case(seed)
    compiled = DependencyEngine(system, compiled=True)
    objects = DependencyEngine(system, compiled=False)
    position = {
        state: i
        for i, state in enumerate(compiled.compiled_system().states)
    }
    for source in system.space.names:
        canonical = compiled.pair_closure({source}, phi)
        ordered = objects.pair_closure({source}, phi)
        canonical_set = set(canonical.pairs)
        projected = {
            (s1, s2) if position[s1] <= position[s2] else (s2, s1)
            for s1, s2 in ordered.pairs
            if s1 != s2
        }
        assert canonical_set == projected, (
            f"canonical closure for ({source}, "
            f"{phi.name if phi else 'tt'}) is not the ordered closure "
            "modulo swap"
        )
        # Every canonical pair is canonically oriented and off-diagonal.
        for s1, s2 in canonical_set:
            assert position[s1] < position[s2]


@pytest.mark.parametrize("seed", range(12))
def test_compiled_flows_match_object_engine(seed):
    system, phi, _ = _random_case(seed)
    compiled_flows = DependencyEngine(system, compiled=True).operation_flows(phi)
    object_flows = DependencyEngine(system, compiled=False).operation_flows(phi)
    assert compiled_flows == object_flows


@pytest.mark.parametrize("seed", [1, 6, 11])
def test_process_pool_warm_matches_serial(seed):
    """The ProcessPoolExecutor fan-out must be invisible in the results:
    same verdicts, same (shortest) witness lengths, witnesses replay."""
    system, phi, _ = _random_case(seed)
    serial = DependencyEngine(system).closure(phi)
    fanned = DependencyEngine(system).closure(phi, max_workers=2)
    assert set(serial) == set(fanned)
    for key, serial_cell in serial.items():
        fanned_cell = fanned[key]
        assert bool(fanned_cell) == bool(serial_cell), key
        if fanned_cell:
            _assert_witness_replays(fanned_cell, phi)
            assert len(fanned_cell.witness.history) == len(
                serial_cell.witness.history
            )
