"""Property tests: the flowchart compiler agrees with direct semantics.

Random loop-free programs (assignments, nested conditionals, sequences
over small integer variables) are compiled to pc-guarded flowcharts and
run to halt; the final variable values must match big-step execution for
every initial state.  A second property checks the syntactic reads/writes
metadata stays consistent through compilation.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.state import Space
from repro.lang.expr import const, var
from repro.systems.program.ast import (
    Stmt,
    p_assign,
    p_if,
    p_seq,
    p_skip,
)
from repro.systems.program.flowchart import PC, compile_program
from repro.systems.program.semantics import execute

VARIABLES = ("u", "v", "w")
DOMAIN = tuple(range(3))

RELAXED = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def exprs():
    leaf = st.one_of(
        st.sampled_from(VARIABLES).map(var),
        st.sampled_from(DOMAIN).map(const),
    )

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(
                lambda pair: (pair[0] + pair[1]) % len(DOMAIN)
            ),
            st.tuples(children, children).map(
                lambda pair: (pair[0] * pair[1]) % len(DOMAIN)
            ),
        )

    return st.recursive(leaf, extend, max_leaves=4)


def guards():
    return st.one_of(
        st.tuples(exprs(), exprs()).map(lambda pair: pair[0] < pair[1]),
        st.tuples(exprs(), st.sampled_from(DOMAIN)).map(
            lambda pair: pair[0] == const(pair[1])
        ),
    )


def statements(max_depth: int = 3):
    assign = st.tuples(st.sampled_from(VARIABLES), exprs()).map(
        lambda pair: p_assign(*pair)
    )
    base = st.one_of(assign, st.just(p_skip()))

    def extend(children):
        return st.one_of(
            st.lists(children, min_size=2, max_size=3).map(
                lambda parts: p_seq(*parts)
            ),
            st.tuples(guards(), children).map(
                lambda pair: p_if(pair[0], pair[1])
            ),
            st.tuples(guards(), children, children).map(
                lambda triple: p_if(*triple)
            ),
        )

    return st.recursive(base, extend, max_leaves=6)


SPACE = Space({name: DOMAIN for name in VARIABLES})


class TestCompilerAgreement:
    @RELAXED
    @given(stmt=statements())
    def test_flowchart_matches_direct_semantics(self, stmt: Stmt):
        fc = compile_program(stmt)
        system = fc.to_system({name: DOMAIN for name in VARIABLES})
        for state in SPACE.states():
            direct = execute(stmt, state)
            started = system.space.state(pc=fc.entry, **dict(state))
            halted = fc.run_to_halt(started)
            for name in VARIABLES:
                assert halted[name] == direct[name], (stmt, state)

    @RELAXED
    @given(stmt=statements())
    def test_flowchart_variables_subset_of_ast(self, stmt: Stmt):
        fc = compile_program(stmt)
        assert fc.variables() <= (stmt.reads() | stmt.writes())

    @RELAXED
    @given(stmt=statements())
    def test_halt_pc_reached_and_stable(self, stmt: Stmt):
        fc = compile_program(stmt)
        system = fc.to_system({name: DOMAIN for name in VARIABLES})
        state = system.space.state(
            pc=fc.entry, **{name: 0 for name in VARIABLES}
        )
        halted = fc.run_to_halt(state)
        assert halted[PC] == fc.halt
        # Every operation is a no-op at halt.
        for op in system.operations:
            assert op(halted) == halted
