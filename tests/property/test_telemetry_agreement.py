"""Telemetry must be inert: enabling the collector changes no verdict.

Every instrumentation point added in PR 5 only *reads* loop state the
algorithms already maintain; these tests pin that down over seeded
random systems (:mod:`repro.analysis.random_systems`):

- a telemetry-enabled engine returns verdicts and witness lengths
  identical to a disabled engine's and to the seed reference, for
  existential and fixed-history queries;
- the same holds with the history memos shrunk to capacity 1, where
  every query evicts (the LRU bound may cost recomputation, never
  answers);
- the enabled run actually collects (spans + counters), so the
  agreement is not vacuous.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.analysis.random_systems import random_constraint, random_system
from repro.core import engine as engine_mod
from repro.core.dependency import _seed_transmits
from repro.core.engine import DependencyEngine
from repro.core.reachability import _seed_depends_ever
from repro.core.system import History

FLAVOURS = [None, "subset", "autonomous", "coupled"]


@pytest.fixture(autouse=True)
def restore_telemetry():
    was_enabled = obs.is_enabled()
    obs.disable()
    obs.reset()
    yield
    obs.reset()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()


def _random_case(seed: int):
    rng = random.Random(seed)
    system = random_system(
        rng,
        n_objects=rng.choice([2, 3]),
        domain_size=2,
        n_operations=rng.choice([1, 2]),
    )
    flavour = FLAVOURS[seed % len(FLAVOURS)]
    phi = (
        random_constraint(rng, system.space, flavour)
        if flavour is not None
        else None
    )
    return system, phi, rng


def _all_verdicts(engine: DependencyEngine, system, phi):
    out = {}
    for source in system.space.names:
        for target in system.space.names:
            result = engine.depends_ever({source}, target, phi)
            out[(source, target)] = (
                bool(result),
                len(result.witness.history) if result else None,
            )
    return out


@pytest.mark.parametrize("seed", range(16))
def test_enabled_engine_agrees_with_disabled_and_seed(seed):
    system, phi, _ = _random_case(seed)
    baseline = _all_verdicts(DependencyEngine(system), system, phi)

    obs.enable(reset=True)
    enabled = _all_verdicts(DependencyEngine(system), system, phi)

    assert enabled == baseline
    for (source, target), (holds, _) in enabled.items():
        assert holds == bool(
            _seed_depends_ever(system, {source}, target, phi)
        ), f"telemetry changed the verdict for {source} |> {target}"
    snap = obs.snapshot()
    assert snap.spans and snap.counters, (
        "the enabled run must actually have collected telemetry"
    )


@pytest.mark.parametrize("seed", range(12))
def test_enabled_history_queries_agree_with_seed(seed):
    system, phi, rng = _random_case(seed)
    histories = [
        History.of(*(rng.choice(system.operations) for _ in range(length)))
        for length in (1, 2, 3)
    ]
    obs.enable(reset=True)
    engine = DependencyEngine(system)
    for history in histories:
        for source in system.space.names:
            for target in system.space.names:
                seed_result = _seed_transmits(
                    system, {source}, target, history, phi
                )
                engine_result = engine.depends_history(
                    {source}, target, history, phi
                )
                assert bool(engine_result) == bool(seed_result), (
                    f"telemetry changed {source} |>^H {target} "
                    f"under {phi.name if phi else 'tt'}"
                )


@pytest.mark.parametrize("seed", range(8))
def test_tiny_memo_capacity_changes_nothing_but_work(seed, monkeypatch):
    """With both history memos at capacity 1 every second query evicts;
    verdicts must still match an uncapped engine's."""
    monkeypatch.setattr(engine_mod, "_HISTORY_TABLE_CAP", 1)
    monkeypatch.setattr(engine_mod, "_HISTORY_SET_CAP", 1)
    system, phi, rng = _random_case(seed)
    tiny = DependencyEngine(system)
    assert tiny._history_tables.capacity == 1

    monkeypatch.undo()
    roomy = DependencyEngine(system)

    obs.enable(reset=True)
    histories = [
        History.of(*(rng.choice(system.operations) for _ in range(length)))
        for length in (1, 2, 1, 2)
    ]
    for history in histories:
        for source in system.space.names:
            for target in system.space.names:
                assert bool(
                    tiny.depends_history({source}, target, history, phi)
                ) == bool(
                    roomy.depends_history({source}, target, history, phi)
                )
    stats = tiny.cache_stats()
    assert stats["history_tables"]["size"] <= 1
    if stats["history_tables"]["evictions"]:
        assert (
            obs.snapshot().counters["engine.history_table.evictions"]
            == stats["history_tables"]["evictions"]
        )
