"""Hypothesis strategies for small computational systems.

Operations are drawn as explicit transition tables (total functions on the
enumerated state set), so closure over the space holds by construction and
hypothesis can shrink toward minimal counterexamples.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.constraints import Constraint
from repro.core.state import Space
from repro.core.system import History, Operation, System


@st.composite
def spaces(draw, max_objects: int = 3, max_domain: int = 3) -> Space:
    n_objects = draw(st.integers(1, max_objects))
    sizes = draw(
        st.lists(
            st.integers(1, max_domain),
            min_size=n_objects,
            max_size=n_objects,
        )
    )
    return Space(
        {f"x{i}": tuple(range(size)) for i, size in enumerate(sizes)}
    )


@st.composite
def systems(draw, max_objects: int = 3, max_domain: int = 2, max_ops: int = 2) -> System:
    space = draw(spaces(max_objects, max_domain))
    states = list(space.states())
    n_ops = draw(st.integers(1, max_ops))
    operations = []
    for k in range(n_ops):
        table = {
            state: states[draw(st.integers(0, len(states) - 1))]
            for state in states
        }
        operations.append(
            Operation(f"d{k}", lambda s, table=table: table[s])
        )
    return System(space, operations, check_closed=False)


@st.composite
def constraints(draw, space: Space) -> Constraint:
    states = list(space.states())
    kept = draw(
        st.lists(
            st.sampled_from(states),
            min_size=1,
            max_size=len(states),
            unique=True,
        )
    )
    return Constraint.from_states(space, kept, name="gen")


@st.composite
def autonomous_constraints(draw, space: Space) -> Constraint:
    allowed = {}
    for name in space.names:
        domain = list(space.domain(name))
        chosen = draw(
            st.lists(
                st.sampled_from(domain),
                min_size=1,
                max_size=len(domain),
                unique=True,
            )
        )
        allowed[name] = frozenset(chosen)
    return Constraint(
        space,
        lambda s, allowed=allowed: all(s[n] in allowed[n] for n in allowed),
        name="gen-autonomous",
    )


@st.composite
def histories(draw, system: System, max_length: int = 3) -> History:
    length = draw(st.integers(0, max_length))
    if length == 0:
        return History.empty()
    ops = draw(
        st.lists(
            st.sampled_from(list(system.operations)),
            min_size=length,
            max_size=length,
        )
    )
    return History(ops)


@st.composite
def system_with_context(draw, autonomous: bool = False):
    """(system, constraint, history) triples — the common test input."""
    system = draw(systems())
    if autonomous:
        phi = draw(autonomous_constraints(system.space))
    else:
        phi = draw(constraints(system.space))
    history = draw(histories(system))
    return system, phi, history
