"""Compiled quantitative substrate agreement: gathers and bucket passes
must change nothing but speed.

Over seeded random systems, histories, and constraint flavours these
tests assert:

- the single-joint measures (`bits_transmitted`, `source_entropy`,
  `equivocation`) are **float-for-float identical** across the compiled
  and object paths — both reduce the same exact ``Fraction`` joint table
  through the deterministic repr-sorted summation in
  :func:`repro.quantitative.entropy.entropy`;
- the averaged measure agrees to float dust (its per-slice terms sum in
  bucket order on the compiled path, support order on the object path);
- **averaged > 0 iff fixed-history strong dependency**: under a uniform
  prior over sat(phi) a Def 1-1 bucket contributes positive mutual
  information exactly when the composed history maps two of its members
  to different target values, which is Def 2-10 — so the quantitative
  measure and `DependencyEngine.depends_history` must agree on
  positivity, query for query;
- the channel layer (matrix cells and Blahut-Arimoto capacity) agrees
  with the object path with NumPy both enabled and forced off;
- histories containing foreign (ad-hoc composite) operations fall back
  to the object path and still return the object path's numbers.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis.random_systems import (
    random_constraint,
    random_history,
    random_system,
)
from repro.core.engine import DependencyEngine
from repro.core.system import History
from repro.quantitative import (
    QuantEngine,
    StateDistribution,
    bits_transmitted,
    bits_transmitted_averaged,
    equivocation,
    source_entropy,
)
from repro.quantitative.bandwidth import capacity as object_capacity
from repro.quantitative.bandwidth import channel_matrix as object_channel_matrix

FLAVOURS = [None, "subset", "autonomous", "coupled"]


def _random_case(seed: int):
    rng = random.Random(seed)
    system = random_system(
        rng,
        n_objects=rng.choice([2, 3]),
        domain_size=rng.choice([2, 3]),
        n_operations=rng.choice([1, 2]),
    )
    flavour = FLAVOURS[seed % len(FLAVOURS)]
    phi = (
        random_constraint(rng, system.space, flavour)
        if flavour is not None
        else None
    )
    return system, phi, rng


def _uniform_pair(system, phi):
    """The same uniform prior on both paths."""
    if phi is None:
        return StateDistribution.uniform_over_space(system.space)
    return StateDistribution.uniform(phi)


@pytest.mark.parametrize("seed", range(20))
def test_single_joint_measures_bit_identical(seed):
    system, phi, rng = _random_case(seed)
    dist = _uniform_pair(system, phi)
    quant = QuantEngine(engine=DependencyEngine(system))
    cdist = quant.uniform(phi)
    names = list(system.space.names)
    for _ in range(2):
        history = random_history(rng, system)
        sources = set(rng.sample(names, rng.randint(1, len(names))))
        target = rng.choice(names)
        assert quant.bits_transmitted(cdist, sources, target, history) == \
            bits_transmitted(dist, sources, target, history)
        assert quant.source_entropy(cdist, sources) == \
            source_entropy(dist, sources)
        assert quant.equivocation(cdist, sources, target, history) == \
            equivocation(dist, sources, target, history)


@pytest.mark.parametrize("seed", range(20))
def test_averaged_measure_agrees_and_tracks_dependency(seed):
    system, phi, rng = _random_case(seed)
    dist = _uniform_pair(system, phi)
    engine = DependencyEngine(system)
    quant = QuantEngine(engine=engine)
    cdist = quant.uniform(phi)
    names = list(system.space.names)
    for _ in range(2):
        history = random_history(rng, system)
        sources = set(rng.sample(names, rng.randint(1, len(names))))
        target = rng.choice(names)
        compiled = quant.bits_transmitted_averaged(
            cdist, sources, target, history
        )
        objective = bits_transmitted_averaged(
            dist, sources, target, history
        )
        assert compiled == pytest.approx(objective, abs=1e-9)
        # Positivity <=> Def 2-10 strong dependency under the same phi:
        # a bucket has positive within-slice MI iff the composed history
        # sends two of its members to different target values.
        holds = bool(engine.depends_history(sources, target, history, phi))
        assert (compiled > 1e-12) == holds, (
            f"averaged={compiled} but depends_history={holds} for "
            f"{sorted(sources)} |>^{history!r} {target}"
        )


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("numpy_env", ["0", "1"])
def test_channel_layer_agreement_both_kernels(seed, numpy_env, monkeypatch):
    monkeypatch.setenv("REPRO_BITSET_NUMPY", numpy_env)
    system, phi, rng = _random_case(seed)
    dist = _uniform_pair(system, phi)
    quant = QuantEngine(engine=DependencyEngine(system))
    cdist = quant.uniform(phi)
    names = list(system.space.names)
    history = random_history(rng, system)
    sources = set(rng.sample(names, rng.randint(1, len(names))))
    target = rng.choice(names)
    ci, co, cm = quant.channel_matrix(cdist, sources, target, history)
    oi, oo, om = object_channel_matrix(dist, sources, target, history)
    assert ci == oi
    cells = lambda I, O, M: {
        (a, b): M[x][y] for x, a in enumerate(I) for y, b in enumerate(O)
    }
    assert cells(ci, co, cm) == cells(oi, oo, om)
    assert quant.capacity(cdist, sources, target, history) == pytest.approx(
        object_capacity(dist, sources, target, history), abs=1e-6
    )


@pytest.mark.parametrize("seed", range(8))
def test_foreign_history_falls_back_to_object_numbers(seed):
    system, phi, rng = _random_case(seed)
    if len(system.operations) < 1:
        pytest.skip("needs an operation to compose")
    dist = _uniform_pair(system, phi)
    quant = QuantEngine(engine=DependencyEngine(system))
    cdist = quant.uniform(phi)
    names = list(system.space.names)
    d = rng.choice(system.operations)
    composite = d.then(rng.choice(system.operations))
    history = History.of(composite)
    sources = set(rng.sample(names, rng.randint(1, len(names))))
    target = rng.choice(names)
    assert quant.bits_transmitted(cdist, sources, target, history) == \
        bits_transmitted(dist, sources, target, history)
    assert quant.bits_transmitted_averaged(
        cdist, sources, target, history
    ) == pytest.approx(
        bits_transmitted_averaged(dist, sources, target, history), abs=1e-12
    )
