"""Property tests relating Inferential Dependency to Strong Dependency
(the section 7.2 claims).

1. The *contingent* variant coincides with strong dependency on every
   system and constraint (our formalization makes this a theorem; the
   test keeps the two implementations honest).
2. For A-autonomous constraints, a *non-contingent* inference implies
   strong dependency — the direction that makes the paper's "same
   results for relatively-autonomous constraints" safe.  (The converse
   fails: contingent-only transmission, e.g. the mod-sum system.)
"""

from hypothesis import HealthCheck, given, settings

from repro.core.dependency import transmits
from repro.core.inferential import (
    contingently_depends,
    inferentially_depends,
)

from tests.property.strategies import (
    autonomous_constraints,
    system_with_context,
)

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestContingentEqualsStrong:
    @RELAXED
    @given(ctx=system_with_context())
    def test_equivalence_everywhere(self, ctx):
        system, phi, history = ctx
        names = list(system.space.names)
        for source in names[:2]:
            for target in (names[0], names[-1]):
                strong = bool(
                    transmits(system, {source}, target, history, phi)
                )
                contingent = (
                    contingently_depends(
                        system, {source}, target, history, phi
                    )
                    is not None
                )
                assert strong == contingent, (source, target)


class TestNonContingentImpliesStrongWhenAutonomous:
    @RELAXED
    @given(ctx=system_with_context(autonomous=True))
    def test_implication(self, ctx):
        system, phi, history = ctx
        names = list(system.space.names)
        for source in names[:2]:
            for target in (names[0], names[-1]):
                inference = inferentially_depends(
                    system, {source}, target, history, phi
                )
                if inference is not None:
                    assert transmits(
                        system, {source}, target, history, phi
                    ), (source, target)

    @RELAXED
    @given(ctx=system_with_context(autonomous=True))
    def test_inference_posteriors_are_consistent(self, ctx):
        """Whatever the verdict, every posterior is a non-empty subset of
        the prior and unions back to it."""
        from repro.core.inferential import knowledge_sets

        system, phi, history = ctx
        if not phi.is_satisfiable:
            return
        names = list(system.space.names)
        table = knowledge_sets(system, {names[0]}, names[-1], history, phi)
        prior = frozenset().union(*table.values()) if table else frozenset()
        for posterior in table.values():
            assert posterior
            assert posterior <= prior
        if table:
            assert frozenset().union(*table.values()) == prior
