"""Property tests for separation of variety, inductive covers, and the
Worth measure."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.random_systems import (
    random_history,
    random_invariant_constraint,
    random_system,
)
from repro.core import theorems as T
from repro.core.constraints import Constraint
from repro.core.covers import InductiveCover, partition_by_value
from repro.core.reachability import depends_ever
from repro.core.worth import WorthMeasure

from tests.property.strategies import constraints, histories, systems

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestCoverProperties:
    @RELAXED
    @given(
        data=systems().flatmap(
            lambda s: histories(s).map(lambda h: (s, h))
        )
    )
    def test_thm_4_5_partition_covers(self, data):
        """For the canonical partition-by-value cover of a non-source
        object, any dependency survives into some member (Thm 4-4/4-5)."""
        system, history = data
        names = list(system.space.names)
        if len(names) < 2:
            return
        source, split = names[0], names[-1]
        cover = partition_by_value(system.space, split)
        check = T.thm_4_5_cover(
            system,
            None,
            tuple(cover.members),
            frozenset({source}),
            names[min(1, len(names) - 1)],
            history,
        )
        assert check.ok, check.detail

    @RELAXED
    @given(seed=st.integers(0, 10_000))
    def test_valid_inductive_cover_proof_is_sound(self, seed):
        """Whenever Theorem 6-7's prover declares a proof valid, the exact
        checker agrees there is no dependency."""
        rng = random.Random(seed)
        system = random_system(rng, n_objects=3, domain_size=2)
        phi = random_invariant_constraint(rng, system)
        # Invariant phi: {phi} itself is an inductive cover.
        cover = InductiveCover([phi])
        names = list(system.space.names)
        source, target = names[0], names[-1]
        if source == target:
            return
        proof = cover.prove_no_dependency(system, {source}, target, phi)
        if proof.valid:
            assert not depends_ever(system, {source}, target, phi)

    @RELAXED
    @given(seed=st.integers(0, 10_000))
    def test_image_orbit_members_contain_images(self, seed):
        """Def 6-2 exactness: the inductive-cover checker accepts the
        orbit of [H]phi sets as a cover of itself."""
        from repro.analysis.explorer import image_set_orbit

        rng = random.Random(seed)
        system = random_system(rng, n_objects=2, domain_size=2)
        phi = Constraint.from_states(
            system.space,
            [next(iter(system.space.states()))],
            name="point",
        )
        orbit = image_set_orbit(system, phi)
        members = [
            Constraint.from_states(system.space, image, name=f"img{i}")
            for i, image in enumerate(orbit)
        ]
        cover = InductiveCover(members)
        assert cover.check(system, phi).valid


class TestWorthProperties:
    @RELAXED
    @given(
        data=systems(max_objects=2, max_domain=2).flatmap(
            lambda s: st.tuples(
                constraints(s.space), constraints(s.space)
            ).map(lambda pair: (s, *pair))
        )
    )
    def test_worth_monotone_in_constraint(self, data):
        """Def 3-2 via Theorem 2-3: phi1 <= phi2 implies
        Worth(phi1) <= Worth(phi2)."""
        system, phi1, phi2 = data
        stronger = (phi1 & phi2).renamed("phi1&phi2")
        measure = WorthMeasure(system)
        assert measure.worth(stronger) <= measure.worth(phi2)

    @RELAXED
    @given(data=systems(max_objects=2, max_domain=2).flatmap(
        lambda s: constraints(s.space).map(lambda c: (s, c))
    ))
    def test_worth_paths_are_exact_dependencies(self, data):
        system, phi = data
        measure = WorthMeasure(system)
        worth = measure.worth(phi)
        for source, target in worth.paths:
            assert depends_ever(system, source, target, phi)
