"""Property-based tests: the paper's theorems as hypothesis invariants.

Each property mirrors one theorem; hypothesis hunts for a finite system
falsifying it.  A failure here means a library bug (the theorems are
proved in the paper's appendix).
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core import theorems as T
from repro.core.constraints import Constraint
from repro.core.dependency import depends_within, transmits
from repro.core.reachability import depends_ever
from repro.core.system import History

from tests.property.strategies import (
    autonomous_constraints,
    constraints,
    histories,
    system_with_context,
    systems,
)

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestCoreTheorems:
    @RELAXED
    @given(ctx=system_with_context())
    def test_thm_2_2_source_monotonicity(self, ctx):
        system, phi, history = ctx
        names = list(system.space.names)
        a1 = frozenset(names[:1])
        a2 = frozenset(names[:2]) if len(names) > 1 else a1
        check = T.thm_2_2_source_monotonicity(
            system, a1, a2, names[-1], history, phi
        )
        assert check.ok, check.detail

    @RELAXED
    @given(ctx=system_with_context())
    def test_thm_2_3_constraint_monotonicity(self, ctx):
        system, phi2, history = ctx
        # phi1 := phi2 restricted further (a guaranteed implication).
        some_state = next(iter(phi2.satisfying))
        phi1 = Constraint.from_states(system.space, [some_state], name="phi1")
        names = list(system.space.names)
        check = T.thm_2_3_constraint_monotonicity(
            system, phi1, phi2, frozenset(names[:1]), names[-1], history
        )
        assert check.ok, check.detail

    @RELAXED
    @given(ctx=system_with_context())
    def test_thm_2_4_no_variety(self, ctx):
        system, phi, history = ctx
        names = list(system.space.names)
        check = T.thm_2_4_no_variety_no_transmission(
            system, phi, frozenset(names[:1]), history
        )
        assert check.ok, check.detail

    @RELAXED
    @given(ctx=system_with_context())
    def test_thm_2_5_empty_history(self, ctx):
        system, phi, _history = ctx
        names = list(system.space.names)
        check = T.thm_2_5_empty_history_reflexive(
            system, phi, frozenset(names[:1])
        )
        assert check.ok, check.detail

    @RELAXED
    @given(ctx=system_with_context(autonomous=True))
    def test_thm_2_6_autonomous_decomposition(self, ctx):
        system, phi, history = ctx
        names = list(system.space.names)
        check = T.thm_2_6_autonomous_decomposition(
            system, phi, frozenset(names), names[-1], history
        )
        assert check.ok, check.detail

    @RELAXED
    @given(ctx=system_with_context())
    def test_thm_5_3_set_target_projection(self, ctx):
        system, phi, history = ctx
        names = list(system.space.names)
        check = T.thm_5_3_set_target_projection(
            system, phi, frozenset(names[:1]), frozenset(names), history
        )
        assert check.ok, check.detail

    @RELAXED
    @given(ctx=system_with_context())
    def test_thm_6_1_image_soundness(self, ctx):
        system, phi, history = ctx
        check = T.thm_6_1_image_soundness(system, phi, history)
        assert check.ok, check.detail

    @RELAXED
    @given(ctx=system_with_context())
    def test_thm_6_2_invariant_strictness(self, ctx):
        system, phi, history = ctx
        check = T.thm_6_2_invariant_strictness(system, phi, history)
        assert check.ok, check.detail

    @RELAXED
    @given(ctx=system_with_context())
    def test_thm_6_3_noninvariant_decomposition(self, ctx):
        system, phi, history = ctx
        names = list(system.space.names)
        mid = len(history) // 2
        check = T.thm_6_3_noninvariant_decomposition(
            system,
            phi,
            frozenset(names[:1]),
            names[-1],
            history[:mid],
            history[mid:],
        )
        assert check.ok, check.detail


class TestAutonomyCharacterizations:
    @RELAXED
    @given(data=systems().flatmap(
        lambda s: constraints(s.space).map(lambda c: (s, c))
    ))
    def test_thm_5_1_agreement(self, data):
        _system, phi = data
        names = list(phi.space.names)
        check = T.thm_5_1_autonomy_characterizations(
            phi, frozenset(names[: max(1, len(names) // 2)])
        )
        assert check.ok, check.detail

    @RELAXED
    @given(data=systems().flatmap(
        lambda s: autonomous_constraints(s.space).map(lambda c: (s, c))
    ))
    def test_autonomous_flavour_is_autonomous(self, data):
        _system, phi = data
        assert phi.is_autonomous()
        # Def 5-2 consequence: autonomous implies A-autonomous for every A.
        for name in phi.space.names:
            assert phi.is_autonomous_relative_to({name})


class TestCheckerAgreement:
    @RELAXED
    @given(ctx=system_with_context())
    def test_exact_vs_bounded_agreement(self, ctx):
        """depends_ever (pair-graph) equals bounded search at a depth that
        covers the pair graph's diameter for these tiny systems."""
        system, phi, _history = ctx
        names = list(system.space.names)
        alpha, beta = names[0], names[-1]
        exact = bool(depends_ever(system, {alpha}, beta, phi))
        bound = system.space.size  # generous for 1-8 state systems
        bounded = bool(depends_within(system, {alpha}, beta, bound, phi))
        assert exact == bounded

    @RELAXED
    @given(ctx=system_with_context())
    def test_witnesses_are_genuine(self, ctx):
        system, phi, history = ctx
        names = list(system.space.names)
        result = transmits(system, frozenset(names[:1]), names[-1], history, phi)
        if result:
            w = result.witness
            assert phi(w.sigma1) and phi(w.sigma2)
            assert w.sigma1.equal_except_at(w.sigma2, w.sources)
            a1, a2 = w.after
            assert a1[names[-1]] != a2[names[-1]]

    @RELAXED
    @given(ctx=system_with_context())
    def test_empty_history_transmits_only_reflexively(self, ctx):
        system, phi, _history = ctx
        names = list(system.space.names)
        for target in names[1:]:
            assert not transmits(
                system, {names[0]}, target, History.empty(), phi
            )
