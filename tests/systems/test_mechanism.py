"""Unit tests for observers and mechanisms (section 7.3)."""

import pytest

from repro.core.constraints import Constraint
from repro.core.dependency import transmits
from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var
from repro.systems.mechanism import (
    added_paths,
    history_observer,
    observed_transmits,
    observed_transmits_ever,
    restrict_operations,
    timed_observer,
    trace_observer,
    value_observer,
)
from repro.systems.program import (
    AssignNode,
    Flowchart,
    TestNode,
    build_program_system,
)


@pytest.fixture
def copy_system():
    b = SystemBuilder().booleans("a", "bb")
    b.op_assign("copy", "bb", var("a"))
    return b.build()


class TestObservers:
    def test_value_observer_sees_final_values(self, copy_system):
        obs = value_observer("bb")
        h = History.of(copy_system.operation("copy"))
        s = copy_system.space.state(a=True, bb=False)
        assert obs(s, h) == (True,)

    def test_history_observer_matches_strong_dependency(self, copy_system):
        """For any fixed history, the history observer and Def 2-10 agree
        — the identification section 6.5 makes."""
        obs = history_observer("bb")
        for h in copy_system.histories(2):
            direct = bool(transmits(copy_system, {"a"}, "bb", h))
            observed = (
                observed_transmits(copy_system, {"a"}, obs, h) is not None
            )
            assert direct == observed, h

    def test_trace_observer_strictly_stronger(self):
        """An overwrite hides a's value from the final-value observer but
        not from the trace observer."""
        b = SystemBuilder().booleans("a", "bb")
        b.op_assign("copy", "bb", var("a"))
        b.op_assign("wipe", "bb", False)
        system = b.build()
        h = system.history("copy", "wipe")
        final = value_observer("bb")
        trace = trace_observer("bb")
        assert observed_transmits(system, {"a"}, final, h) is None
        assert observed_transmits(system, {"a"}, trace, h) is not None

    def test_observed_transmits_constraint(self, copy_system):
        obs = value_observer("bb")
        h = History.of(copy_system.operation("copy"))
        frozen = Constraint.equals(copy_system.space, "a", False)
        assert observed_transmits(copy_system, {"a"}, obs, h, frozen) is None

    def test_observed_transmits_ever_bounded(self, copy_system):
        obs = value_observer("bb")
        witness = observed_transmits_ever(copy_system, {"a"}, obs, 2)
        assert witness is not None
        assert witness.observation1 != witness.observation2


class TestSection65Observers:
    """The paper's deferred claim, discharged: the two-branch program is
    leaky for the history observer, safe for the timed observer."""

    @pytest.fixture(scope="class")
    def branchy(self):
        fc = Flowchart(
            [
                TestNode(1, var("alpha"), 2, 3),
                AssignNode(2, "beta", 0, 4),
                AssignNode(3, "beta", 0, 4),
            ],
            entry=1,
            halt=4,
        )
        return build_program_system(
            fc, {"alpha": (False, True), "beta": (0, 37)}
        )

    def test_history_observer_leaks(self, branchy):
        obs = history_observer("beta")
        witness = observed_transmits_ever(
            branchy.system, {"alpha"}, obs, 2, branchy.entry_constraint()
        )
        assert witness is not None

    def test_timed_observer_on_step_system_is_safe(self, branchy):
        """The paper's claim made formal: under the sequential control
        mechanism (a single 'step' operation — program runs, not
        arbitrary node subsequences), an observer of beta who sees only
        the passage of time learns nothing about alpha."""
        step_system = branchy.flowchart.to_step_system(
            {"alpha": (False, True), "beta": (0, 37)}
        )
        obs = timed_observer("beta")
        witness = observed_transmits_ever(
            step_system,
            {"alpha"},
            obs,
            4,
            branchy.entry_constraint(),
        )
        assert witness is None

    def test_step_system_still_transmits_to_pc(self, branchy):
        """Sanity: the mechanism hides the branch from beta, not from an
        observer of the pc itself."""
        step_system = branchy.flowchart.to_step_system(
            {"alpha": (False, True), "beta": (0, 37)}
        )
        obs = timed_observer("pc")
        witness = observed_transmits_ever(
            step_system, {"alpha"}, obs, 1, branchy.entry_constraint()
        )
        assert witness is not None  # pc = 2 vs 3 after one step

    def test_raw_node_system_leaks_even_timed(self, branchy):
        """Without the mechanism, 'time' does not protect beta: the
        history delta1 delta2 writes beta in one run only."""
        obs = timed_observer("beta")
        witness = observed_transmits_ever(
            branchy.system, {"alpha"}, obs, 2, branchy.entry_constraint()
        )
        assert witness is not None


class TestMechanisms:
    def test_restrict_operations(self):
        b = SystemBuilder().booleans("a", "bb")
        b.op_assign("copy", "bb", var("a"))
        b.op_assign("wipe", "bb", False)
        system = b.build()
        reduced = restrict_operations(system, ["wipe"])
        assert reduced.operation_names == ("wipe",)

    def test_added_paths_detects_rotenberg(self):
        """Adding a grant-like operation opens a path absent in the base
        system."""
        base_b = SystemBuilder().booleans("gate", "secret", "out")
        base_b.op_cmd(
            "guarded",
            __import__(
                "repro.lang.cmd", fromlist=["when"]
            ).when(var("gate"), __import__(
                "repro.lang.cmd", fromlist=["assign"]
            ).assign("out", var("secret"))),
        )
        base = base_b.build()

        aug_b = SystemBuilder().booleans("gate", "secret", "out")
        from repro.lang.cmd import assign, when

        aug_b.op_cmd("guarded", when(var("gate"), assign("out", var("secret"))))
        aug_b.op_cmd("open", assign("gate", True))
        augmented = aug_b.build()

        closed = Constraint(
            base.space, lambda s: not s["gate"], name="~gate"
        )
        new_paths = added_paths(base, augmented, closed)
        assert ("secret", "out") in new_paths

    def test_added_paths_requires_same_space(self):
        b1 = SystemBuilder().booleans("x").op_assign("id", "x", var("x")).build()
        b2 = SystemBuilder().booleans("y").op_assign("id", "y", var("y")).build()
        with pytest.raises(ValueError):
            added_paths(b1, b2)
