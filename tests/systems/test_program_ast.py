"""Unit tests for the mini-language AST, parser, and direct semantics."""

import pytest

from repro.core.errors import ParseError
from repro.core.state import Space
from repro.lang.expr import var
from repro.systems.program.ast import (
    AssignStmt,
    IfStmt,
    SeqStmt,
    SkipStmt,
    WhileStmt,
    p_assign,
    p_if,
    p_seq,
    p_skip,
    p_while,
)
from repro.systems.program.parser import parse, parse_expr
from repro.systems.program.semantics import (
    NonTermination,
    execute,
    semantic_noninterference,
)


class TestConstructors:
    def test_seq_flattens(self):
        s = p_seq(p_assign("a", 1), p_seq(p_assign("b", 2), p_assign("c", 3)))
        assert isinstance(s, SeqStmt)
        assert len(s.parts) == 3

    def test_seq_drops_skips(self):
        s = p_seq(p_skip(), p_assign("a", 1), p_skip())
        assert isinstance(s, AssignStmt)

    def test_empty_seq_is_skip(self):
        assert isinstance(p_seq(), SkipStmt)

    def test_reads_writes(self):
        s = p_if(var("g"), p_assign("b", var("a")), p_assign("b", 0))
        assert s.reads() == frozenset({"g", "a"})
        assert s.writes() == frozenset({"b"})
        w = p_while(var("n") > 0, p_assign("n", var("n") - 1))
        assert w.reads() == frozenset({"n"})
        assert w.writes() == frozenset({"n"})


class TestParser:
    def test_assignment_and_sequence(self):
        stmt = parse("a := 1; b := a + 2")
        assert isinstance(stmt, SeqStmt)
        assert isinstance(stmt.parts[0], AssignStmt)

    def test_if_then_else(self):
        stmt = parse("if a > 1 then b := 1 else b := 0")
        assert isinstance(stmt, IfStmt)
        assert isinstance(stmt.else_stmt, AssignStmt)

    def test_if_without_else(self):
        stmt = parse("if a > 1 then b := 1")
        assert isinstance(stmt, IfStmt)
        assert isinstance(stmt.else_stmt, SkipStmt)

    def test_while_and_braces(self):
        stmt = parse("while n > 0 do { s := s + n; n := n - 1 }")
        assert isinstance(stmt, WhileStmt)
        assert isinstance(stmt.body, SeqStmt)

    def test_booleans_and_connectives(self):
        stmt = parse("t := true and not false or q > 1")
        assert isinstance(stmt, AssignStmt)

    def test_trailing_semicolon(self):
        assert isinstance(parse("a := 1;"), AssignStmt)

    def test_parse_expr(self):
        e = parse_expr("(a + 2) * 3 % 4")
        assert e.reads() == frozenset({"a"})

    @pytest.mark.parametrize(
        "bad",
        ["a :=", "if then b := 1", "while do skip", "a := 1 extra", "@", "a := (1"],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_keywords_not_identifiers(self):
        with pytest.raises(ParseError):
            parse("if := 3")


class TestSemantics:
    @pytest.fixture
    def space(self):
        return Space({"n": range(5), "s": range(16), "flag": (False, True)})

    def test_straightline(self, space):
        stmt = parse("s := n + 1; flag := s > 2")
        out = execute(stmt, space.state(n=3, s=0, flag=False))
        assert out["s"] == 4 and out["flag"] is True

    def test_while_loop_sum(self, space):
        stmt = parse("s := 0; while n > 0 do { s := s + n; n := n - 1 }")
        out = execute(stmt, space.state(n=4, s=0, flag=False))
        assert out["s"] == 10 and out["n"] == 0

    def test_nontermination_detected(self, space):
        stmt = parse("while flag do skip")
        with pytest.raises(NonTermination):
            execute(stmt, space.state(n=0, s=0, flag=True), fuel=50)

    def test_semantic_noninterference_negative(self, space):
        """Both branches write the same constant: no semantic flow."""
        stmt = parse("if flag then s := 0 else s := 0")
        assert (
            semantic_noninterference(stmt, space, "flag", "s") is None
        )

    def test_semantic_noninterference_positive(self, space):
        stmt = parse("if flag then s := 0 else s := 1")
        witness = semantic_noninterference(stmt, space, "flag", "s")
        assert witness is not None
        s1, s2 = witness
        assert s1.equal_except_at(s2, {"flag"})

    def test_entry_constraint_respected(self, space):
        stmt = parse("if n > 2 then s := 1 else s := 0")
        assert (
            semantic_noninterference(
                stmt, space, "n", "s", entry=lambda s: s["n"] <= 2
            )
            is None
        )
