"""Unit tests for Floyd assertions and the program flow analyzer
(section 6.5 end to end)."""

import pytest

from repro.core.constraints import Constraint
from repro.core.errors import ProgramError
from repro.lang.expr import if_expr, var
from repro.systems.program.analysis import (
    build_program_system,
    program_transmits,
    prove_program_no_flow,
)
from repro.systems.program.assertions import FloydAssertions
from repro.systems.program.flowchart import AssignNode, Flowchart, TestNode
from repro.systems.program.semantics import semantic_noninterference
from repro.systems.program.parser import parse


@pytest.fixture(scope="module")
def paper_program():
    """The first section 6.5 flowchart, transcribed node for node:

    delta1: if pc = 1 then (if q > 10 then t <- tt else t <- ff; pc <- 2)
    delta2: if pc = 2 then (if t then beta <- alpha; pc <- 3)
    """
    fc = Flowchart(
        [
            AssignNode(1, "t", if_expr(var("q") > 10, True, False), 2),
            AssignNode(2, "beta", if_expr(var("t"), var("alpha"), var("beta")), 3),
        ],
        entry=1,
        halt=3,
    )
    return build_program_system(
        fc,
        {"q": range(8, 13), "t": (False, True), "alpha": (0, 1), "beta": (0, 1)},
    )


class TestFloydAssertions:
    def test_missing_assertion_rejected(self, paper_program):
        with pytest.raises(ProgramError):
            FloydAssertions(paper_program.flowchart, paper_program.space, {})

    def test_wrong_space_rejected(self, paper_program):
        from repro.core.state import Space

        other = Constraint.true(Space({"x": (0,)}))
        with pytest.raises(ProgramError):
            FloydAssertions(
                paper_program.flowchart,
                paper_program.space,
                {1: other, 2: other, 3: other},
            )

    def _network(self, ps):
        sp = ps.space
        return FloydAssertions(
            ps.flowchart,
            sp,
            {
                1: Constraint(sp, lambda s: s["q"] < 10, name="q<10"),
                2: Constraint(sp, lambda s: not s["t"], name="~t"),
                3: Constraint.true(sp),
            },
        )

    def test_verification_conditions_pass(self, paper_program):
        network = self._network(paper_program)
        assert network.check(paper_program.system).valid

    def test_bad_assertion_fails_vc(self, paper_program):
        sp = paper_program.space
        network = FloydAssertions(
            paper_program.flowchart,
            sp,
            {
                1: Constraint(sp, lambda s: s["q"] < 12, name="q<12"),
                2: Constraint(sp, lambda s: not s["t"], name="~t"),  # wrong now
                3: Constraint.true(sp),
            },
        )
        proof = network.check(paper_program.system)
        assert not proof.valid

    def test_starred_members_tag_pc(self, paper_program):
        network = self._network(paper_program)
        starred = network.starred(2)
        assert all(s["pc"] == 2 for s in starred.satisfying)

    def test_per_pc_cover_valid_for_straightline(self, paper_program):
        network = self._network(paper_program)
        cover = network.per_pc_cover()
        phi = network.entry_constraint()
        assert cover.check(paper_program.system, phi).valid

    def test_global_cover_valid(self, paper_program):
        network = self._network(paper_program)
        cover = network.global_cover()
        phi = network.entry_constraint()
        assert cover.check(paper_program.system, phi).valid


class TestSection65FirstExample:
    def test_proof_succeeds_with_entry_assertion(self, paper_program):
        sp = paper_program.space
        assertions = {
            1: Constraint(sp, lambda s: s["q"] < 10, name="q<10"),
            2: Constraint(sp, lambda s: not s["t"], name="~t"),
            3: Constraint.true(sp),
        }
        for style in ("per-pc", "global"):
            proof = prove_program_no_flow(
                paper_program, assertions, {"alpha"}, "beta", cover_style=style
            )
            assert proof.valid, style

    def test_exact_check_agrees(self, paper_program):
        sp = paper_program.space
        entry = Constraint(sp, lambda s: s["q"] < 10, name="q<10")
        assert not program_transmits(paper_program, {"alpha"}, "beta", entry)

    def test_flow_exists_without_entry_assertion(self, paper_program):
        assert program_transmits(paper_program, {"alpha"}, "beta", None)


class TestLoopingProgram:
    """The Floyd machinery on a genuine loop: the inductive-cover BFS
    must close over the cycle, and the Theorem 6-7 proof still works."""

    @pytest.fixture(scope="class")
    def looping(self):
        # The decrement is written total over the domain (the pc-guarded
        # operation exists for every state, including unreachable ones
        # with n = 0 at the loop body's pc).
        source = (
            "while n > 0 do n := (n - 1) * (n > 0); "
            "if secret > limit then public := 1"
        )
        return build_program_system(
            parse(source),
            {
                "n": range(3),
                "secret": range(3),
                "limit": range(3),
                "public": (0, 1),
            },
        )

    def test_flowchart_has_back_edge(self, looping):
        from repro.systems.program.flowchart import JumpNode

        jumps = [
            node
            for node in looping.flowchart.nodes.values()
            if isinstance(node, JumpNode)
        ]
        assert any(j.next < j.pc for j in jumps)

    def test_exact_no_flow_under_entry(self, looping):
        entry = Constraint(
            looping.space, lambda s: s["secret"] <= s["limit"], name="s<=l"
        )
        assert not program_transmits(looping, {"secret"}, "public", entry)
        assert program_transmits(looping, {"secret"}, "public", None)

    def test_global_cover_proof_with_loop(self, looping):
        sp = looping.space
        safe = Constraint(
            sp, lambda s: s["secret"] <= s["limit"], name="s<=l"
        )
        assertions = {
            pc: safe for pc in looping.flowchart.nodes
        }
        assertions[looping.flowchart.halt] = safe
        proof = prove_program_no_flow(
            looping, assertions, {"secret"}, "public", cover_style="global"
        )
        assert proof.valid


class TestSection65SecondExample:
    """The observer discussion: both branches write beta := 0, yet strong
    dependency (history-observing) reports a flow from alpha."""

    @pytest.fixture(scope="class")
    def branchy(self):
        fc = Flowchart(
            [
                TestNode(1, var("alpha"), 2, 3),
                AssignNode(2, "beta", 0, 4),
                AssignNode(3, "beta", 0, 4),
            ],
            entry=1,
            halt=4,
        )
        return build_program_system(
            fc, {"alpha": (False, True), "beta": range(0, 38)}
        )

    def test_strong_dependency_sees_timing_channel(self, branchy):
        assert program_transmits(branchy, {"alpha"}, "beta", None)

    def test_semantic_noninterference_sees_no_flow(self, branchy):
        """Whole-program (termination-to-halt) observation: beta is 0 on
        both branches."""
        stmt = parse("if alpha then beta := 0 else beta := 0")
        space = branchy.space  # includes pc; restrict_away keeps it equal
        witness = semantic_noninterference(stmt, space, "alpha", "beta")
        assert witness is None

    def test_witness_matches_paper_construction(self, branchy):
        """The paper picks sigma1 with alpha=tt, beta=37 and sigma2 alike
        with alpha=ff; delta1 delta2 leaves beta=0 vs 37."""
        result = program_transmits(branchy, {"alpha"}, "beta", None)
        w = result.witness
        a1, a2 = w.after
        assert a1["beta"] != a2["beta"]
        # One run took the write, the other did not.
        assert 0 in (a1["beta"], a2["beta"])
