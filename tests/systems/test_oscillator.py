"""Unit tests for the section 6.4 oscillator family."""

import pytest

from repro.core.errors import SpaceError
from repro.core.reachability import depends_ever
from repro.systems.oscillator import build_oscillator


class TestBuild:
    def test_default_parts(self):
        parts = build_oscillator()
        assert parts.system.operation_names == ("delta",)
        assert parts.phi.count() > 0

    def test_invalid_k(self):
        with pytest.raises(SpaceError):
            build_oscillator(k=0)

    def test_oscillation(self):
        parts = build_oscillator(k=1)
        delta = parts.system.operation("delta")
        state = next(iter(parts.phi.states()))
        assert state["alpha"] == 1
        after_one = delta(state)
        assert after_one["alpha"] == -1 and after_one["beta"] == 1
        after_two = delta(after_one)
        assert after_two["alpha"] == 1 and after_two["beta"] == -1


class TestPaperFacts:
    def test_phi_not_invariant(self):
        parts = build_oscillator()
        assert not parts.phi.is_invariant(parts.system)

    def test_envelope_invariant_but_leaky(self):
        parts = build_oscillator()
        assert parts.envelope.is_invariant(parts.system)
        assert depends_ever(
            parts.system, {"alpha"}, "beta", parts.envelope
        )

    def test_cover_is_inductive_and_proves(self):
        parts = build_oscillator()
        assert parts.cover.check(parts.system, parts.phi).valid
        proof = parts.cover.prove_no_dependency(
            parts.system, {"alpha"}, "beta", parts.phi
        )
        assert proof.valid

    def test_exact_agreement(self):
        parts = build_oscillator()
        assert not depends_ever(parts.system, {"alpha"}, "beta", parts.phi)
