"""Unit tests for the access-matrix substrate (section 1.3)."""

import pytest

from repro.core.constraints import Constraint
from repro.core.errors import SpaceError
from repro.core.reachability import depends_ever
from repro.systems.access_matrix import (
    ALL_RIGHTS,
    READ,
    SUBJECT,
    WRITE,
    AccessMatrixSystem,
    entry_name,
    rights_domain,
)


@pytest.fixture
def ams():
    return AccessMatrixSystem(
        subjects=["x"],
        files={"alpha": (0, 1), "beta": (0, 1)},
        entries=[("x", "x"), ("x", "alpha"), ("x", "beta")],
        copy_operations=[("x", "beta", "alpha")],
    )


class TestConstruction:
    def test_rights_domain_is_powerset(self):
        domain = rights_domain()
        assert len(domain) == 8
        assert frozenset() in domain
        assert ALL_RIGHTS in set(domain)

    def test_space_contains_matrix_entries(self, ams):
        assert entry_name("x", "alpha") in ams.space.names
        assert "alpha" in ams.space.names

    def test_subject_file_overlap_rejected(self):
        with pytest.raises(SpaceError):
            AccessMatrixSystem(subjects=["f"], files={"f": (0,)})

    def test_unknown_entry_rejected(self):
        with pytest.raises(SpaceError):
            AccessMatrixSystem(
                subjects=["x"], files={"f": (0,)}, entries=[("y", "f")]
            )

    def test_all_entries_mode(self):
        ams = AccessMatrixSystem(
            subjects=["x"], files={"f": (0, 1)}, entries="all"
        )
        assert ("x", "x") in ams.dynamic_entries
        assert ("x", "f") in ams.dynamic_entries


class TestCopySemantics:
    def test_copy_with_all_rights(self, ams):
        state = ams.space.state(
            alpha=1,
            beta=0,
            **{
                entry_name("x", "x"): frozenset({SUBJECT}),
                entry_name("x", "alpha"): frozenset({READ}),
                entry_name("x", "beta"): frozenset({WRITE}),
            },
        )
        result = ams.system.operation("copy(x,beta,alpha)")(state)
        assert result["beta"] == 1

    @pytest.mark.parametrize(
        "missing", ["subject", "read", "write"]
    )
    def test_copy_blocked_without_each_right(self, ams, missing):
        rights = {
            entry_name("x", "x"): frozenset({SUBJECT}),
            entry_name("x", "alpha"): frozenset({READ}),
            entry_name("x", "beta"): frozenset({WRITE}),
        }
        if missing == "subject":
            rights[entry_name("x", "x")] = frozenset()
        elif missing == "read":
            rights[entry_name("x", "alpha")] = frozenset()
        else:
            rights[entry_name("x", "beta")] = frozenset()
        state = ams.space.state(alpha=1, beta=0, **rights)
        result = ams.system.operation("copy(x,beta,alpha)")(state)
        assert result["beta"] == 0  # unchanged

    def test_fixed_rights_entries(self):
        ams = AccessMatrixSystem(
            subjects=["x"],
            files={"alpha": (0, 1), "beta": (0, 1)},
            entries=[("x", "alpha")],
            copy_operations=[("x", "beta", "alpha")],
            fixed_rights={
                ("x", "x"): frozenset({SUBJECT}),
                ("x", "beta"): frozenset({WRITE}),
            },
        )
        state = ams.space.state(
            alpha=1, beta=0, **{entry_name("x", "alpha"): frozenset({READ})}
        )
        assert ams.system.operation("copy(x,beta,alpha)")(state)["beta"] == 1


class TestInformationFlow:
    def test_unconstrained_matrix_transmits(self, ams):
        assert depends_ever(ams.system, {"alpha"}, "beta")

    def test_paper_maximal_solution_shape(self, ams):
        """Section 3.5: phi_max == s not in <x,x> or r not in <x,alpha>
        or w not in <x,beta> blocks alpha -> beta."""
        phi = ams.deny_constraint([("x", "alpha", "beta")], name="phi_max")
        assert not depends_ever(ams.system, {"alpha"}, "beta", phi)
        # And it is alpha-independent (Def 3-1), as the paper requires.
        assert phi.is_independent_of({"alpha"})

    def test_single_missing_right_solution(self, ams):
        """Section 3.6's phi1: r not in <x, alpha> alone suffices."""
        phi1 = ams.missing_right_constraint(READ, "x", "alpha")
        assert not depends_ever(ams.system, {"alpha"}, "beta", phi1)

    def test_matrix_entries_are_channels_too(self, ams):
        """The guard reads the matrix entries, so they transmit to beta —
        the protection state itself carries information."""
        assert depends_ever(ams.system, {entry_name("x", "alpha")}, "beta")


class TestGrant:
    def test_grant_escalates_and_leaks(self):
        """A grant operation makes a denial non-invariant: x can regain
        the read right and then copy (Rotenberg-style subtlety)."""
        base = AccessMatrixSystem(
            subjects=["x"],
            files={"alpha": (0, 1), "beta": (0, 1)},
            entries=[("x", "x"), ("x", "alpha"), ("x", "beta")],
            copy_operations=[("x", "beta", "alpha")],
        )
        grant = base.grant_operation("x", READ, "x", "alpha")
        ams = AccessMatrixSystem(
            subjects=["x"],
            files={"alpha": (0, 1), "beta": (0, 1)},
            entries=[("x", "x"), ("x", "alpha"), ("x", "beta")],
            copy_operations=[("x", "beta", "alpha")],
            extra_operations=[grant],
        )
        phi1 = ams.missing_right_constraint(READ, "x", "alpha")
        # With grant available but requiring the right already... granting
        # to self when already holding it changes nothing:
        assert not depends_ever(ams.system, {"alpha"}, "beta", phi1)

    def test_grant_from_another_subject_reopens_channel(self):
        base_kwargs = dict(
            subjects=["x", "y"],
            files={"alpha": (0, 1), "beta": (0, 1)},
            entries=[
                ("x", "x"),
                ("x", "alpha"),
                ("x", "beta"),
                ("y", "alpha"),
            ],
            copy_operations=[("x", "beta", "alpha")],
        )
        helper = AccessMatrixSystem(**base_kwargs)
        grant = helper.grant_operation("y", READ, "x", "alpha")
        ams = AccessMatrixSystem(**base_kwargs, extra_operations=[grant])
        # Denying x's read right is NOT enough when y can re-grant it.
        phi1 = ams.missing_right_constraint(READ, "x", "alpha")
        assert depends_ever(ams.system, {"alpha"}, "beta", phi1)
        # Denying both closes the channel again.
        phi2 = phi1 & ams.missing_right_constraint(READ, "y", "alpha")
        assert not depends_ever(ams.system, {"alpha"}, "beta", phi2)

    def test_grant_requires_dynamic_entry(self):
        ams = AccessMatrixSystem(
            subjects=["x"], files={"f": (0,)}, entries=[("x", "f")]
        )
        with pytest.raises(SpaceError):
            ams.grant_operation("x", READ, "x", "x")
