"""Unit tests for the section 4.3 pointer-chain system."""

import pytest

from repro.core.errors import SpaceError
from repro.core.induction import prove_via_relation
from repro.core.reachability import depends_ever
from repro.systems.pointer import PointerSystem, data_name, ptr_name


@pytest.fixture(scope="module")
def ps():
    # alpha in the chain set; beta outside; w a third party.
    return PointerSystem(["alpha", "beta", "w"], data_domain=(0, 1))


class TestConstruction:
    def test_requires_two_objects(self):
        with pytest.raises(SpaceError):
            PointerSystem(["only"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpaceError):
            PointerSystem(["a", "a"])

    def test_operation_families(self, ps):
        names = set(ps.system.operation_names)
        assert "copy_data(beta,alpha)" in names
        assert "copy_ptr(beta,alpha)" in names
        # 3 objects -> 6 ordered pairs -> 12 operations.
        assert len(names) == 12


class TestSemantics:
    def test_copy_data_requires_pointer(self, ps):
        sp = ps.system.space
        st = sp.state(**{
            data_name("alpha"): 1, data_name("beta"): 0, data_name("w"): 0,
            ptr_name("alpha"): "alpha", ptr_name("beta"): "alpha",
            ptr_name("w"): "w",
        })
        out = ps.system.operation("copy_data(beta,alpha)")(st)
        assert out[data_name("beta")] == 1
        # Without the pointer, no effect.
        st2 = st.replace(**{ptr_name("beta"): "w"})
        out2 = ps.system.operation("copy_data(beta,alpha)")(st2)
        assert out2[data_name("beta")] == 0

    def test_copy_ptr_advances_chain(self, ps):
        """The paper's before/after diagram: y -> x -> w becomes y -> w."""
        sp = ps.system.space
        st = sp.state(**{
            data_name("alpha"): 0, data_name("beta"): 0, data_name("w"): 0,
            ptr_name("beta"): "alpha", ptr_name("alpha"): "w",
            ptr_name("w"): "w",
        })
        out = ps.system.operation("copy_ptr(beta,alpha)")(st)
        assert out[ptr_name("beta")] == "w"

    def test_points_follows_chains(self, ps):
        sp = ps.system.space
        st = sp.state(**{
            data_name("alpha"): 0, data_name("beta"): 0, data_name("w"): 0,
            ptr_name("beta"): "w", ptr_name("w"): "alpha",
            ptr_name("alpha"): "alpha",
        })
        assert ps.points(st, "beta", "alpha")  # beta -> w -> alpha
        assert ps.points(st, "beta", "beta")   # length 0
        assert not ps.points(st, "alpha", "beta")


class TestChainConstraint:
    def test_constraint_is_autonomous_and_invariant(self, ps):
        phi = ps.chain_constraint({"alpha"})
        assert phi.is_autonomous()
        assert phi.is_invariant(ps.system)

    def test_constraint_blocks_chains_into_the_set(self, ps):
        phi = ps.chain_constraint({"alpha"})
        assert ps.no_chain_witness(phi, "beta", "alpha") is None
        assert ps.no_chain_witness(phi, "w", "alpha") is None

    def test_unknown_chain_object_rejected(self, ps):
        with pytest.raises(SpaceError):
            ps.chain_constraint({"nope"})

    def test_paper_proof_via_corollary_4_3(self, ps):
        """Section 4.3 end to end: with phi chain-closed and
        q(x,y) = Chain(x) -> Chain(y), every per-operation dependency
        respects q; hence no data flows from alpha to beta."""
        phi = ps.chain_constraint({"alpha"})
        q = ps.chain_relation({"alpha"})
        proof = prove_via_relation(ps.system, phi, q, q_name="chain<=")
        assert proof.valid

    def test_exact_check_confirms_confinement(self, ps):
        phi = ps.chain_constraint({"alpha"})
        assert not depends_ever(
            ps.system, {data_name("alpha")}, data_name("beta"), phi
        )

    def test_positive_control_without_constraint(self, ps):
        """Unconstrained, beta can point at alpha and copy its data."""
        assert depends_ever(
            ps.system, {data_name("alpha")}, data_name("beta")
        )
