"""Unit tests for the label mechanisms (section 7.3)."""

import pytest

from repro.core.errors import SpaceError
from repro.core.induction import prove_via_relation
from repro.core.reachability import depends_ever
from repro.systems.labels import (
    HighWaterMarkSystem,
    StaticLabelSystem,
    label_name,
)
from repro.systems.security import TotalOrderLattice


@pytest.fixture(scope="module")
def lattice():
    return TotalOrderLattice([0, 1])


class TestStaticLabels:
    def test_only_upward_copies_generated(self, lattice):
        s = StaticLabelSystem({"lo": 0, "mid": 0, "hi": 1}, lattice)
        names = set(s.system.operation_names)
        assert "copy(hi,lo)" in names
        assert "copy(lo,hi)" not in names
        # Equal levels copy both ways.
        assert "copy(lo,mid)" in names and "copy(mid,lo)" in names

    def test_star_property_proved_secure(self, lattice):
        """Denning 75's result: fixed classifications + upward writes
        prevent downward transmission (Corollary 4-3)."""
        s = StaticLabelSystem({"lo": 0, "hi": 1}, lattice)
        proof = prove_via_relation(s.system, None, s.relation(), "Cls<=")
        assert proof.valid

    def test_no_downward_flow_exactly(self, lattice):
        s = StaticLabelSystem({"lo": 0, "hi": 1}, lattice)
        assert not depends_ever(s.system, {"hi"}, "lo")
        assert depends_ever(s.system, {"lo"}, "hi")


class TestHighWaterMark:
    def test_style_validated(self, lattice):
        with pytest.raises(SpaceError):
            HighWaterMarkSystem(["a", "b"], lattice, style="nope")

    def test_duplicate_names_rejected(self, lattice):
        with pytest.raises(SpaceError):
            HighWaterMarkSystem(["a", "a"], lattice)

    def test_conditional_read_semantics(self, lattice):
        hwm = HighWaterMarkSystem(["lo", "hi"], lattice, style="observe")
        op = hwm.system.operation("condread(lo,hi)")
        sp = hwm.space
        fired = op(
            sp.state(lo=0, hi=1, **{label_name("lo"): 0, label_name("hi"): 1})
        )
        assert fired["lo"] == 1 and fired[label_name("lo")] == 1
        blocked = op(
            sp.state(lo=0, hi=0, **{label_name("lo"): 0, label_name("hi"): 1})
        )
        assert blocked["lo"] == 0 and blocked[label_name("lo")] == 0

    def test_safe_style_raises_on_attempt(self, lattice):
        hwm = HighWaterMarkSystem(["lo", "hi"], lattice, style="safe")
        op = hwm.system.operation("condread(lo,hi)")
        blocked = op(
            hwm.space.state(
                lo=0, hi=0, **{label_name("lo"): 0, label_name("hi"): 1}
            )
        )
        # Data did not move, but the label rose anyway.
        assert blocked["lo"] == 0 and blocked[label_name("lo")] == 1

    def test_observe_style_has_covert_label_channel(self, lattice):
        """Denning 76's Adept-50 leak: the secret's *data* reaches the
        low label."""
        hwm = HighWaterMarkSystem(["lo", "hi"], lattice, style="observe")
        phi = hwm.constrained_start({"lo": 0, "hi": 1})
        assert depends_ever(hwm.system, {"hi"}, label_name("lo"), phi)

    def test_safe_style_closes_the_label_channel(self, lattice):
        hwm = HighWaterMarkSystem(["lo", "hi"], lattice, style="safe")
        phi = hwm.constrained_start({"lo": 0, "hi": 1})
        assert not depends_ever(hwm.system, {"hi"}, label_name("lo"), phi)

    def test_high_water_invariant_holds_in_both_styles(self, lattice):
        for style in ("observe", "safe"):
            hwm = HighWaterMarkSystem(["lo", "hi"], lattice, style=style)
            violation = hwm.high_water_invariant({"lo": 0, "hi": 1})
            assert violation is None, style

    def test_data_flow_is_tracked_not_blocked(self, lattice):
        """HWM allows the flow but marks it: hi data reaches lo, and
        whenever it does the label has risen (the invariant above)."""
        hwm = HighWaterMarkSystem(["lo", "hi"], lattice, style="safe")
        phi = hwm.constrained_start({"lo": 0, "hi": 1})
        assert depends_ever(hwm.system, {"hi"}, "lo", phi)
