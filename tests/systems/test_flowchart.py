"""Unit tests for flowchart compilation and the pc-guarded system."""

import pytest

from repro.core.errors import ProgramError
from repro.lang.expr import if_expr, var
from repro.systems.program.ast import p_assign, p_if, p_seq, p_while
from repro.systems.program.flowchart import (
    PC,
    AssignNode,
    Flowchart,
    JumpNode,
    TestNode,
    compile_program,
)
from repro.systems.program.parser import parse
from repro.systems.program.semantics import execute


class TestFlowchartValidation:
    def test_duplicate_pc_rejected(self):
        with pytest.raises(ProgramError):
            Flowchart(
                [AssignNode(1, "x", var("x"), 2), JumpNode(1, 2)], halt=2
            )

    def test_dangling_successor_rejected(self):
        with pytest.raises(ProgramError):
            Flowchart([AssignNode(1, "x", var("x"), 99)], halt=2)

    def test_halt_collision_rejected(self):
        with pytest.raises(ProgramError):
            Flowchart([AssignNode(1, "x", var("x"), 1)], halt=1)

    def test_pc_reserved(self):
        fc = Flowchart([AssignNode(1, "x", var("x"), 2)], halt=2)
        with pytest.raises(ProgramError):
            fc.space({"x": (0, 1), PC: (1, 2)})

    def test_missing_domain_rejected(self):
        fc = Flowchart([AssignNode(1, "x", var("y"), 2)], halt=2)
        with pytest.raises(ProgramError):
            fc.space({"x": (0, 1)})


class TestCompilation:
    def test_straightline(self):
        fc = compile_program(parse("a := 1; b := a"))
        assert len(fc.nodes) == 2
        assert fc.entry == 1 and fc.halt == 3
        assert all(isinstance(n, AssignNode) for n in fc.nodes.values())

    def test_if_else_shape(self):
        fc = compile_program(parse("if g then a := 1 else a := 0"))
        kinds = [type(fc.nodes[pc]).__name__ for pc in sorted(fc.nodes)]
        assert kinds == ["TestNode", "AssignNode", "JumpNode", "AssignNode"]

    def test_while_shape(self):
        fc = compile_program(parse("while n > 0 do n := n - 1"))
        test = fc.nodes[1]
        assert isinstance(test, TestNode)
        jump = fc.nodes[3]
        assert isinstance(jump, JumpNode) and jump.next == 1
        assert test.false_next == fc.halt

    def test_skip_program(self):
        fc = compile_program(p_seq())
        assert len(fc.nodes) == 1

    def test_variables(self):
        fc = compile_program(parse("if g then a := b"))
        assert fc.variables() == frozenset({"g", "a", "b"})


class TestAgreementWithDirectSemantics:
    @pytest.mark.parametrize(
        "source",
        [
            "b := a",
            "a := 1; b := a + 1",
            "if g then b := 1 else b := 0",
            "if g then b := a",
            "s := 0; while n > 0 do { s := s + n; n := n - 1 }",
            "if a > 1 then { b := 1; g := true } else b := 0",
        ],
    )
    def test_run_to_halt_matches_execute(self, source):
        stmt = parse(source)
        fc = compile_program(stmt)
        domains = {
            "a": range(3),
            "b": range(8),
            "g": (False, True),
            "n": range(3),
            "s": range(8),
        }
        needed = {k: v for k, v in domains.items() if k in stmt.reads() | stmt.writes()}
        space = fc.space(needed)
        for state in space.states():
            if state[PC] != fc.entry:
                continue
            direct_space_state = state  # includes pc; execute ignores it
            halted = fc.run_to_halt(state)
            direct = execute(stmt, direct_space_state)
            for name in needed:
                assert halted[name] == direct[name], (source, state)

    def test_operations_are_pc_guarded(self):
        fc = compile_program(parse("b := a"))
        system = fc.to_system({"a": (0, 1), "b": (0, 1)})
        op = system.operation("delta1")
        wrong_pc = system.space.state(a=1, b=0, pc=fc.halt)
        assert op(wrong_pc) == wrong_pc  # guard blocks
        right_pc = system.space.state(a=1, b=0, pc=1)
        out = op(right_pc)
        assert out["b"] == 1 and out[PC] == fc.halt

    def test_entry_constraint(self):
        fc = compile_program(parse("b := a"))
        system = fc.to_system({"a": (0, 1), "b": (0, 1)})
        phi = fc.entry_constraint(system.space)
        assert all(s[PC] == fc.entry for s in phi.satisfying)


class TestPaperStyleNodes:
    def test_conditional_assign_node(self):
        """The paper's delta1: (if q > 10 then t <- tt else t <- ff);
        pc <- 2 — a single AssignNode with a conditional expression."""
        fc = Flowchart(
            [AssignNode(1, "t", if_expr(var("q") > 10, True, False), 2)],
            halt=2,
        )
        system = fc.to_system({"q": (9, 11), "t": (False, True)})
        op = system.operation("delta1")
        hi = system.space.state(q=11, t=False, pc=1)
        lo = system.space.state(q=9, t=True, pc=1)
        assert op(hi)["t"] is True
        assert op(lo)["t"] is False
