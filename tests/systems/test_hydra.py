"""Unit tests for the verified-writers (Hydra-flavoured) substrate."""

import pytest

from repro.core.constraints import Constraint
from repro.core.errors import SpaceError
from repro.core.reachability import depends_ever
from repro.systems.hydra import VerifiedWritersSystem, cap_name


@pytest.fixture(scope="module")
def vw():
    """One verified editor, one unverified worker, one sensitive config
    object and a scratch pad."""
    return VerifiedWritersSystem(
        procedures={"editor": True, "worker": False},
        objects={"config": (0, 1), "pad": (0, 1)},
        sensitive={"config"},
        writes=[
            ("editor", "config", "pad"),
            ("worker", "config", "pad"),
            ("worker", "pad", "config"),
        ],
        transfers=[("worker", "editor", "config")],
    )


class TestConstruction:
    def test_capability_objects_exist(self, vw):
        assert cap_name("worker", "config") in vw.space.names
        assert cap_name("editor", "config") in vw.space.names

    def test_transfer_to_unverified_refused(self):
        with pytest.raises(SpaceError):
            VerifiedWritersSystem(
                procedures={"a": True, "b": False},
                objects={"o": (0, 1)},
                sensitive={"o"},
                transfers=[("a", "b", "o")],
            )

    def test_unknown_sensitive_rejected(self):
        with pytest.raises(SpaceError):
            VerifiedWritersSystem(
                procedures={"a": True},
                objects={"o": (0, 1)},
                sensitive={"zzz"},
            )

    def test_unknown_procedure_rejected(self):
        with pytest.raises(SpaceError):
            VerifiedWritersSystem(
                procedures={"a": True},
                objects={"o": (0, 1)},
                sensitive={"o"},
                writes=[("ghost", "o", "o")],
            )


class TestConstraint:
    def test_autonomous_as_the_paper_remarks(self, vw):
        phi = vw.integrity_constraint()
        assert phi.is_autonomous()

    def test_invariant_thanks_to_the_static_mechanism(self, vw):
        """Transfers only target verified procedures, so the constraint
        survives every operation."""
        phi = vw.integrity_constraint()
        assert phi.is_invariant(vw.system)

    def test_invariance_breaks_without_the_mechanism(self):
        """If the mechanism minted a transfer to an unverified procedure,
        the constraint would not be invariant — checked by building the
        rogue operation by hand."""
        from repro.core.state import State
        from repro.core.system import Operation, System

        base = VerifiedWritersSystem(
            procedures={"editor": True, "worker": False},
            objects={"config": (0, 1), "pad": (0, 1)},
            sensitive={"config"},
            writes=[
                ("editor", "config", "pad"),
                ("worker", "config", "pad"),
            ],
        )
        give, recv = cap_name("editor", "config"), cap_name("worker", "config")

        def rogue(state: State) -> State:
            if state[give]:
                return state.replace(**{recv: True})
            return state

        rogue_system = System(
            base.space,
            list(base.system.operations) + [Operation("rogue", rogue)],
        )
        phi = base.integrity_constraint()
        assert not phi.is_invariant(rogue_system)


class TestIntegrity:
    def test_enforcement_holds_under_constraint(self, vw):
        problem = vw.integrity_problem()
        assert problem.enforces(vw.integrity_constraint())

    def test_enforcement_fails_unconstrained(self, vw):
        problem = vw.integrity_problem()
        counterexample = problem.enforcement_counterexample(
            Constraint.true(vw.space)
        )
        assert counterexample is not None
        state, op = counterexample
        assert op.name.startswith("write(worker,config")

    def test_information_side_pad_to_config_only_via_editor(self, vw):
        """Given the constraint, pad's variety reaches config only through
        the verified editor's write."""
        phi = vw.integrity_constraint()
        assert depends_ever(vw.system, {"pad"}, "config", phi)
        # Removing the editor's write closes the channel entirely.
        from repro.core.system import System

        without_editor = System(
            vw.space,
            [
                op
                for op in vw.system.operations
                if not op.name.startswith("write(editor")
            ],
            check_closed=False,
        )
        assert not depends_ever(without_editor, {"pad"}, "config", phi)
