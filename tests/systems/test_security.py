"""Unit tests for classification lattices."""

import pytest

from repro.core.errors import ConstraintError
from repro.systems.security import (
    PowersetLattice,
    ProductLattice,
    TotalOrderLattice,
    classification_relation,
)


class TestTotalOrder:
    @pytest.fixture
    def lat(self):
        return TotalOrderLattice(["U", "C", "S", "TS"])

    def test_order(self, lat):
        assert lat.leq("U", "TS")
        assert lat.leq("C", "C")
        assert not lat.leq("S", "C")

    def test_join_meet(self, lat):
        assert lat.join("C", "S") == "S"
        assert lat.meet("C", "S") == "C"

    def test_valid_order(self, lat):
        assert lat.is_valid_order()

    def test_duplicates_rejected(self):
        with pytest.raises(ConstraintError):
            TotalOrderLattice(["U", "U"])


class TestPowerset:
    @pytest.fixture
    def lat(self):
        return PowersetLattice(["crypto", "nuclear"])

    def test_carrier(self, lat):
        assert len(lat.elements) == 4

    def test_inclusion_order(self, lat):
        assert lat.leq(frozenset(), frozenset({"crypto"}))
        assert not lat.leq(frozenset({"crypto"}), frozenset({"nuclear"}))

    def test_join_meet(self, lat):
        a, b = frozenset({"crypto"}), frozenset({"nuclear"})
        assert lat.join(a, b) == frozenset({"crypto", "nuclear"})
        assert lat.meet(a, b) == frozenset()

    def test_valid_order(self, lat):
        assert lat.is_valid_order()


class TestProduct:
    @pytest.fixture
    def lat(self):
        return ProductLattice(
            TotalOrderLattice([0, 1]), PowersetLattice(["c"])
        )

    def test_componentwise_order(self, lat):
        lo = (0, frozenset())
        hi = (1, frozenset({"c"}))
        mid_a = (1, frozenset())
        mid_b = (0, frozenset({"c"}))
        assert lat.leq(lo, hi)
        assert not lat.leq(mid_a, mid_b)
        assert not lat.leq(mid_b, mid_a)

    def test_join_of_incomparables(self, lat):
        mid_a = (1, frozenset())
        mid_b = (0, frozenset({"c"}))
        assert lat.join(mid_a, mid_b) == (1, frozenset({"c"}))
        assert lat.meet(mid_a, mid_b) == (0, frozenset())

    def test_valid_order(self, lat):
        assert lat.is_valid_order()


class TestClassificationRelation:
    def test_q_is_reflexive_transitive(self):
        lat = TotalOrderLattice([0, 1, 2])
        cls = {"a": 0, "b": 1, "c": 2}
        q = classification_relation(cls, lat)
        names = list(cls)
        assert all(q(x, x) for x in names)
        for x in names:
            for y in names:
                for z in names:
                    if q(x, y) and q(y, z):
                        assert q(x, z)

    def test_q_blocks_downward(self):
        lat = TotalOrderLattice([0, 1])
        q = classification_relation({"lo": 0, "hi": 1}, lat)
        assert q("lo", "hi")
        assert not q("hi", "lo")
