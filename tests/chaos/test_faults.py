"""Chaos tests: fault injection and the pool degradation ladder.

Injects worker death, transient task errors and delays through the
:mod:`repro.core.faults` seam — both in-process (plans) and
cross-process (``REPRO_FAULTS`` env + exactly-once stamp files) — and
asserts the engine's answers stay bit-identical to the seed path while
the execution log records the retries and degradations taken.
"""

from __future__ import annotations

import functools
import os

import pytest

from repro.core import faults
from repro.core.engine import DependencyEngine
from repro.core.errors import ReproError
from repro.core.faults import FaultPlan, FaultSpec, InjectedFaultError
from repro.core.system import System
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


def _probe(x: int) -> int:
    return x + 1


@functools.lru_cache(maxsize=1)
def _process_pool_works() -> bool:
    """True iff this platform can actually spawn pool workers (sandboxes
    without semaphores / fork can't; the ladder degrades there, which is
    correct behaviour but makes retry-count assertions meaningless).

    Deliberately *lazy* (called from inside tests, never at import time):
    forking while this module is still being imported would leave the
    child deadlocked on the inherited import lock when it unpickles
    :func:`_probe`.
    """
    from concurrent.futures import ProcessPoolExecutor

    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(_probe, 1).result(timeout=60) == 2
    except Exception:
        return False


def require_processes() -> None:
    """Skip the calling test when the platform has no usable pool."""
    if not _process_pool_works():
        pytest.skip("platform cannot spawn pool processes")


@pytest.fixture
def relay() -> System:
    b = SystemBuilder().booleans("a", "m", "b")
    b.op_assign("d1", "m", var("a"))
    b.op_assign("d2", "b", var("m"))
    return b.build()


def seed_matrix(system: System) -> dict[str, dict[str, bool]]:
    """The reference answer: a fresh engine, serial, no faults."""
    return DependencyEngine(system).matrix()


class TestFaultSpecs:
    def test_parse_round_trip(self):
        spec = FaultSpec.parse("delay:task:3:0.25")
        assert spec == FaultSpec(kind="delay", point="task", task=3, arg=0.25)
        assert FaultSpec.parse("kill:worker:1").arg == 0.0

    @pytest.mark.parametrize(
        "bad", ["kill", "kill:worker", "boom:worker:1", "kill:nowhere:1"]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)

    def test_injected_fault_is_repro_error(self):
        assert issubclass(InjectedFaultError, ReproError)

    def test_inject_is_noop_without_plan_or_env(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_FAULTS, raising=False)
        faults.inject("task", 0)  # must not raise

    def test_in_process_plan_fires_exactly_once(self):
        plan = FaultPlan(specs=(FaultSpec(kind="err", point="task", task=0),))
        with faults.active_plan(plan):
            with pytest.raises(InjectedFaultError):
                faults.inject("task", 0)
            faults.inject("task", 0)  # claimed; second call is a no-op

    def test_stamp_file_claims_exactly_once(self, tmp_path):
        stamp = str(tmp_path / "stamp")
        plan = FaultPlan(
            specs=(FaultSpec(kind="err", point="task", task=0),), stamp=stamp
        )
        with pytest.raises(InjectedFaultError):
            plan.enact("task", 0)
        assert os.path.exists(f"{stamp}.0")
        plan.enact("task", 0)  # stamp exists; refused

    def test_kill_without_stamp_is_refused(self):
        # Would re-fire on every retry and defeat the ladder — and would
        # also kill this very test process.  Must be a silent no-op.
        plan = FaultPlan(specs=(FaultSpec(kind="kill", point="worker", task=0),))
        plan.enact("worker", 0)


class TestDegradationLadder:
    def test_worker_kill_mid_map_recovers_to_seed_verdict(
        self, relay, tmp_path, monkeypatch
    ):
        """Acceptance: a worker killed mid-``map`` loses only in-flight
        tasks; the retried pool completes and the matrix is identical to
        the fault-free seed run."""
        require_processes()
        monkeypatch.setenv(faults.ENV_FAULTS, "kill:worker:1")
        monkeypatch.setenv(faults.ENV_STAMP, str(tmp_path / "stamp"))
        engine = DependencyEngine(relay)
        assert engine.matrix(max_workers=2) == seed_matrix(relay)
        warm = [r for r in engine.execution_log.reports if r.label.startswith("warm")]
        assert warm and warm[0].retries >= 1
        assert warm[0].completed

    def test_transient_worker_error_is_retried(self, relay, tmp_path, monkeypatch):
        require_processes()
        monkeypatch.setenv(faults.ENV_FAULTS, "err:worker:0")
        monkeypatch.setenv(faults.ENV_STAMP, str(tmp_path / "stamp"))
        engine = DependencyEngine(relay)
        assert engine.matrix(max_workers=2) == seed_matrix(relay)
        warm = [r for r in engine.execution_log.reports if r.label.startswith("warm")]
        assert warm and warm[0].retries >= 1
        assert warm[0].executor == "process"

    def test_thread_fault_degrades_to_serial(self, relay):
        plan = FaultPlan(specs=(FaultSpec(kind="err", point="task", task=0),))
        engine = DependencyEngine(relay)
        with faults.active_plan(plan):
            matrix = engine.matrix(max_workers=2, executor="thread")
        assert matrix == seed_matrix(relay)
        warm = [r for r in engine.execution_log.reports if r.label.startswith("warm")]
        assert warm and "thread->serial" in warm[0].degradations
        assert warm[0].executor == "serial"
        assert warm[0].completed

    def test_delay_fault_is_pure_latency(self, relay):
        plan = FaultPlan(
            specs=(FaultSpec(kind="delay", point="task", task=0, arg=0.01),)
        )
        engine = DependencyEngine(relay)
        with faults.active_plan(plan):
            matrix = engine.matrix()
        assert matrix == seed_matrix(relay)

    def test_computed_chunksize(self, relay, monkeypatch):
        """The process fan-out batches tasks (~4 chunks per worker)
        instead of paying one IPC round-trip per closure."""
        from concurrent.futures import ThreadPoolExecutor

        recorded: list[int] = []

        class RecordingPool(ThreadPoolExecutor):
            """Thread pool standing in for the process pool: the worker
            globals set by the initializer live in this process, and the
            ``chunksize`` passed to ``map`` can be captured."""

            def map(self, fn, *iterables, timeout=None, chunksize=1):
                recorded.append(chunksize)
                return super().map(fn, *iterables, timeout=timeout)

        monkeypatch.setattr(
            "repro.core.engine.ProcessPoolExecutor", RecordingPool
        )
        b = SystemBuilder().booleans("w", "x", "y", "z")
        b.op_assign("d1", "x", var("w"))
        b.op_assign("d2", "y", var("x"))
        system = b.build()
        names = system.space.names
        family = [frozenset([n]) for n in names] + [
            frozenset(pair)
            for pair in zip(names, names[1:] + names[:1])
        ]  # 8 source sets
        engine = DependencyEngine(system)
        engine.closure(sources=family, max_workers=1)
        assert recorded == [max(1, len(family) // (1 * 4))] == [2]
