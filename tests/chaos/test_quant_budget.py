"""Chaos tests: budget-governed quantitative measures.

The §7.4 support sweeps and channel sweeps are metered exactly like the
closure BFS: a trip raises :class:`BudgetExceededError` carrying an
UNKNOWN :class:`PartialResult`, the caller never sees a truncated
number, nothing poisoned lands in any memo (an unmetered rerun is
exact), and `repro quantify` degrades to exit 3 with null measures and
a schema-shaped partial block.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.budget import (
    BudgetExceededError,
    CancellationToken,
    ExecutionBudget,
    PartialResult,
)
from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var
from repro.quantitative import QuantEngine


@pytest.fixture
def modsum():
    b = SystemBuilder().integers("a1", "a2", "beta", bits=3)
    b.op_assign("d", "beta", (var("a1") + var("a2")) % 8)
    system = b.build()
    return system, History.of(system.operation("d"))


class TestMeasureTrips:
    def test_zero_state_budget_trips_bits(self, modsum):
        system, h = modsum
        quant = QuantEngine(system)
        with pytest.raises(BudgetExceededError) as info:
            quant.bits_transmitted(
                quant.uniform(), {"a1"}, "beta", h,
                budget=ExecutionBudget(max_expanded=0),
            )
        partial = info.value.partial
        assert isinstance(partial, PartialResult)
        assert partial.verdict == "UNKNOWN"
        assert partial.reason == "max_expanded"

    def test_zero_state_budget_trips_averaged(self, modsum):
        system, h = modsum
        quant = QuantEngine(system)
        with pytest.raises(BudgetExceededError) as info:
            quant.bits_transmitted_averaged(
                quant.uniform(), {"a1"}, "beta", h,
                budget=ExecutionBudget(max_expanded=0),
            )
        assert info.value.partial.reason == "max_expanded"

    def test_zero_state_budget_trips_channel(self, modsum):
        system, h = modsum
        quant = QuantEngine(system)
        with pytest.raises(BudgetExceededError):
            quant.channel_matrix(
                quant.uniform(), {"a1"}, "beta", h,
                budget=ExecutionBudget(max_expanded=0),
            )

    def test_deadline_trips(self, modsum):
        system, h = modsum
        quant = QuantEngine(system)
        with pytest.raises(BudgetExceededError) as info:
            quant.bits_transmitted(
                quant.uniform(), {"a1"}, "beta", h,
                budget=ExecutionBudget(max_seconds=0.0),
            )
        assert info.value.partial.reason == "deadline"

    def test_cancellation_token(self, modsum):
        system, h = modsum
        token = CancellationToken()
        token.cancel()
        quant = QuantEngine(system)
        with pytest.raises(BudgetExceededError) as info:
            quant.bits_transmitted_averaged(
                quant.uniform(), {"a1"}, "beta", h,
                budget=ExecutionBudget(token=token),
            )
        assert info.value.partial.reason == "cancelled"

    def test_engine_default_budget_and_override(self, modsum):
        system, h = modsum
        quant = QuantEngine(system, budget=ExecutionBudget(max_expanded=0))
        with pytest.raises(BudgetExceededError):
            quant.bits_transmitted(quant.uniform(), {"a1"}, "beta", h)
        # A per-call unbounded budget overrides the engine default.
        assert quant.bits_transmitted(
            quant.uniform(), {"a1"}, "beta", h, budget=ExecutionBudget()
        ) == 0.0

    def test_trip_never_leaves_a_wrong_number(self, modsum):
        """After any trip, the unmetered rerun on the same QuantEngine
        (same memos, same composed arrays) is the exact answer."""
        system, h = modsum
        quant = QuantEngine(system)
        for budget in (
            ExecutionBudget(max_expanded=0),
            ExecutionBudget(max_seconds=0.0),
        ):
            with pytest.raises(BudgetExceededError):
                quant.bits_transmitted_averaged(
                    quant.uniform(), {"a1"}, "beta", h, budget=budget
                )
        assert quant.bits_transmitted_averaged(
            quant.uniform(), {"a1"}, "beta", h
        ) == pytest.approx(3.0)
        assert quant.bits_transmitted(
            quant.uniform(), {"a1"}, "beta", h
        ) == 0.0


class TestCliQuantifyBudget:
    @pytest.fixture
    def modsum_prog(self, tmp_path):
        path = tmp_path / "modsum.prog"
        path.write_text("a2 := (a1 + a2) % 8\n")
        return str(path)

    def _args(self, program: str, *extra: str) -> list[str]:
        return [
            "quantify",
            program,
            "--var", "a1=0..7",
            "--var", "a2=0..7",
            "--source", "a1",
            "--target", "a2",
            *extra,
        ]

    def test_budget_exhaustion_exits_3_with_null_measures(
        self, modsum_prog, tmp_path, capsys
    ):
        report = tmp_path / "q.json"
        code = main(
            self._args(
                modsum_prog, "--budget-states", "0", "--json", str(report)
            )
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "UNKNOWN" in out
        doc = json.loads(report.read_text())
        assert doc["verdict"] == "unknown"
        assert all(v is None for v in doc["measures"].values())
        assert doc["partial"]["reason"] == "max_expanded"

    def test_generous_budget_matches_unmetered(self, modsum_prog, capsys):
        code = main(
            self._args(modsum_prog, "--budget-states", "1000000")
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "bits transmitted:  0" in out
        assert "averaged measure:  3" in out
