"""Chaos property tests: random systems under injected faults and budgets.

Seeded random systems are run through the governed, fault-tolerant
execution layer and compared cell-for-cell against the fault-free seed
path.  The invariants under test:

- worker death never changes a verdict (the ladder recovers),
- budget trips never corrupt the memo (later unbudgeted answers are
  bit-identical to a fresh engine's),
- budgeted runs never flip a verdict — they either agree with the seed
  or raise UNKNOWN, and a larger budget monotonically refines UNKNOWN
  to the seed verdict.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.random_systems import random_system
from repro.core import faults
from repro.core.budget import BudgetExceededError, ExecutionBudget
from repro.core.engine import DependencyEngine

from tests.chaos.test_faults import require_processes, seed_matrix

SEEDS = (7, 19, 42)


def _system(seed: int):
    return random_system(random.Random(seed), n_objects=3, domain_size=2,
                         n_operations=2)


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_worker_kill_never_changes_verdicts(seed, tmp_path, monkeypatch):
    require_processes()
    system = _system(seed)
    reference = seed_matrix(system)
    monkeypatch.setenv(faults.ENV_FAULTS, "kill:worker:0")
    monkeypatch.setenv(faults.ENV_STAMP, str(tmp_path / f"stamp{seed}"))
    engine = DependencyEngine(system)
    assert engine.matrix(max_workers=2) == reference


@pytest.mark.parametrize("seed", SEEDS)
def test_budget_never_flips_and_refines_monotonically(seed):
    system = _system(seed)
    names = system.space.names
    reference = DependencyEngine(system)
    engine = DependencyEngine(system)
    tight = ExecutionBudget(max_expanded=1, check_interval=1)
    for x in names:
        for y in names:
            expected = bool(reference.depends_ever({x}, y))
            try:
                governed = bool(engine.depends_ever({x}, y, budget=tight))
            except BudgetExceededError:
                governed = None  # UNKNOWN — allowed, never a wrong verdict
            if governed is not None:
                assert governed == expected
            # Retrying with a larger budget refines UNKNOWN to the seed
            # verdict (and leaves agreeing verdicts unchanged).
            refined = bool(
                engine.depends_ever({x}, y, budget=tight.scaled(10**9))
            )
            assert refined == expected


@pytest.mark.parametrize("seed", SEEDS)
def test_memo_survives_faults_and_budget_trips(seed):
    """After a barrage of budget trips and injected thread faults, the
    engine's unbudgeted answers are bit-identical to a fresh engine's —
    nothing partial or corrupt was ever memoized."""
    system = _system(seed)
    engine = DependencyEngine(system)
    names = system.space.names
    for x in names:
        try:
            engine.depends_ever({x}, names[0],
                                budget=ExecutionBudget(max_expanded=0))
        except BudgetExceededError:
            pass
    plan = faults.FaultPlan(
        specs=(faults.FaultSpec(kind="err", point="task", task=0),)
    )
    with faults.active_plan(plan):
        battered = engine.matrix(max_workers=2, executor="thread")
    assert battered == seed_matrix(system)
