"""Chaos suite for the serve layer (PR-9 tentpole acceptance).

Under injected worker kill, store corruption, queue saturation and
deadline storms the service must return only **correct verdicts or
explicit UNKNOWNs** — verified against the CLI-path reference — while
``/healthz`` tracks degraded/recovered state and a drain under load
loses no completed closure.  A wedged server (any request without a
response) fails these tests by timeout.
"""

from __future__ import annotations

import asyncio
import os
import random

from repro.cli import parse_domain
from repro.core import faults
from repro.systems.program import build_program_system, program_transmits

from tests.chaos.test_faults import require_processes
from tests.serve.helpers import PROGRAM, VARS, create_session, rpc, serving

#: The CLI-path reference verdicts every chaos response is checked
#: against ("flow"/"no_flow" by (source, target)).
_DOMAINS = dict(parse_domain(f"{n}={s}") for n, s in VARS.items())
_REFERENCE_PS = build_program_system(PROGRAM, _DOMAINS)
REFERENCE = {
    (source, target): bool(program_transmits(_REFERENCE_PS, {source}, target))
    for source in _DOMAINS
    for target in _DOMAINS
}


def _check_response(status: int, doc: dict, source: str, target: str) -> None:
    """The chaos invariant: correct verdict or explicit UNKNOWN."""
    if status == 200 and doc.get("verdict") in ("flow", "no_flow"):
        expected = "flow" if REFERENCE[(source, target)] else "no_flow"
        assert doc["verdict"] == expected, (source, target, doc)
    elif status in (200, 504):
        assert doc.get("verdict") == "unknown", doc
    else:
        assert status in (429, 503), (status, doc)


async def _wait_health(server, want: str, timeout: float = 30.0) -> dict:
    deadline = asyncio.get_running_loop().time() + timeout
    last: dict = {}
    while asyncio.get_running_loop().time() < deadline:
        _, last = await rpc(server.port, "GET", "/healthz")
        if last["status"] == want:
            return last
        await asyncio.sleep(0.1)
    raise AssertionError(f"healthz never reached {want!r}: {last}")


def test_worker_kill_degrades_then_recovers(tmp_path, monkeypatch):
    require_processes()
    monkeypatch.setenv(faults.ENV_FAULTS, "kill:worker:0")
    monkeypatch.setenv(faults.ENV_STAMP, str(tmp_path / "stamp"))

    async def body():
        async with serving(watchdog_interval_seconds=0.05) as server:
            # Hold the breaker open for a deterministic window: with the
            # default 0.1s backoff the watchdog can recover the pool
            # before the first health poll even lands.
            server.breaker.backoff_base = 2.0
            key = await create_session(server, prewarm=True)
            # The prewarm fan-out lost a pool worker; the PR-4 ladder
            # recovered inside the call, and the breaker heard about it.
            assert server.breaker.stats()["trips"] >= 1
            health = await _wait_health(server, "degraded", timeout=5.0)
            assert health["breaker"]["state"] in ("open", "half_open")
            assert health["pool_executor"] == "thread"
            # Verdicts are unaffected throughout.
            for (source, target), flows in REFERENCE.items():
                status, doc = await rpc(
                    server.port, "POST", "/v1/query",
                    {"session": key, "source": source, "target": target},
                )
                assert status == 200
                assert doc["verdict"] == ("flow" if flows else "no_flow")
            # The watchdog probes a fresh pool back to life (the kill
            # spec is exactly-once, so the probe's pool survives).
            health = await _wait_health(server, "ok")
            assert health["breaker"]["state"] == "closed"
            assert server.breaker.stats()["recoveries"] >= 1

    asyncio.run(body())


def test_store_corruption_mid_session_degrades_not_lies(tmp_path):
    async def body():
        db = tmp_path / "memo.db"
        async with serving(store=str(db)) as server:
            key = await create_session(server)
            status, doc = await rpc(
                server.port, "POST", "/v1/query",
                {"session": key, "source": "secret", "target": "out"},
            )
            assert (status, doc["verdict"]) == (200, "flow")
            # Kill the live handle, then scribble over the database and
            # its WAL sidecars.  Order matters for the simulation: an
            # open connection masks on-disk corruption behind its page
            # cache, and closing *after* corrupting heals the file from
            # the WAL checkpoint.  The store reconnects lazily on its
            # next touch and meets the garbage.
            server.registry.get(key).engine.store.close()
            db.write_bytes(b"\x00" * 512 + os.urandom(512))
            for side in (f"{db}-wal", f"{db}-shm"):
                if os.path.exists(side):
                    os.unlink(side)
            # Every verdict stays correct: the store degrades to the
            # in-memory path on its first failed touch, never raises,
            # and the engine recomputes what it can no longer load.
            for (source, target), flows in REFERENCE.items():
                status, doc = await rpc(
                    server.port, "POST", "/v1/query",
                    {"session": key, "source": source, "target": target},
                )
                assert status == 200, doc
                assert doc["verdict"] == ("flow" if flows else "no_flow")
            status, health = await rpc(server.port, "GET", "/healthz")
            assert health["store_degraded"]
            assert health["status"] == "degraded"

    asyncio.run(body())


def test_deadline_storm_yields_only_correct_or_unknown():
    async def body():
        rng = random.Random(1977)
        pairs = list(REFERENCE)
        async with serving(max_concurrency=2, max_queue=4,
                           default_queue_wait_ms=100.0) as server:
            key = await create_session(server)

            async def one(i: int):
                source, target = pairs[i % len(pairs)]
                status, doc = await rpc(
                    server.port, "POST", "/v1/query",
                    {"session": key, "source": source, "target": target,
                     "quota": {"deadline_ms": rng.choice((1, 2, 5, 50))}},
                )
                _check_response(status, doc, source, target)
                return status

            statuses = await asyncio.gather(*[one(i) for i in range(24)])
            assert len(statuses) == 24  # every request got an answer
            # The storm over, a normal request answers normally.
            status, doc = await rpc(
                server.port, "POST", "/v1/query",
                {"session": key, "source": "secret", "target": "out"},
            )
            assert (status, doc["verdict"]) == (200, "flow")
            _, health = await rpc(server.port, "GET", "/healthz")
            assert health["status"] == "ok"

    asyncio.run(body())


def test_queue_saturation_with_injected_stalls_never_wedges():
    async def body():
        plan = faults.FaultPlan(
            specs=tuple(
                faults.FaultSpec.parse(f"delay:serve.request:{n}:0.4")
                for n in range(1, 4)
            ),
        )
        async with serving(max_concurrency=1, max_queue=2,
                           default_queue_wait_ms=200.0) as server:
            key = await create_session(server)
            with faults.active_plan(plan):
                results = await asyncio.gather(*[
                    rpc(server.port, "POST", "/v1/query",
                        {"session": key, "source": "secret", "target": "out"})
                    for _ in range(10)
                ])
            for status, doc in results:
                _check_response(status, doc, "secret", "out")
            shed = sum(1 for s, _ in results if s in (429, 503))
            served = sum(1 for s, _ in results if s == 200)
            assert shed >= 1 and served >= 1, [s for s, _ in results]

    asyncio.run(body())


def test_injected_request_error_is_named_never_a_verdict():
    async def body():
        plan = faults.FaultPlan(
            specs=(faults.FaultSpec.parse("err:serve.request:1"),)
        )
        async with serving() as server:
            key = await create_session(server)
            with faults.active_plan(plan):
                status, doc = await rpc(
                    server.port, "POST", "/v1/query",
                    {"session": key, "source": "secret", "target": "out"},
                )
            assert status == 500
            assert "InjectedFaultError" in doc["error"]
            assert "verdict" not in doc
            # And the next request is fine.
            status, doc = await rpc(
                server.port, "POST", "/v1/query",
                {"session": key, "source": "secret", "target": "out"},
            )
            assert (status, doc["verdict"]) == (200, "flow")

    asyncio.run(body())


def test_drain_under_load_loses_no_completed_closure(tmp_path):
    async def body():
        db = str(tmp_path / "memo.db")
        plan = faults.FaultPlan(
            specs=(faults.FaultSpec.parse("delay:serve.request:2:0.6"),)
        )
        async with serving(store=db, drain_grace_seconds=3.0) as server:
            key = await create_session(server)
            status, doc = await rpc(
                server.port, "POST", "/v1/query",
                {"session": key, "source": "secret", "target": "out"},
            )
            assert (status, doc["verdict"]) == (200, "flow")
            with faults.active_plan(plan):
                slow = asyncio.create_task(rpc(
                    server.port, "POST", "/v1/query",
                    {"session": key, "source": "limit", "target": "out"},
                ))
                await asyncio.sleep(0.15)  # let it get in flight
                await server.drain()
                try:
                    status, doc = await slow
                    _check_response(status, doc, "limit", "out")
                except OSError:
                    pass  # connection torn down by exit: no wrong answer
            assert server.drain_flushed >= 1
        # The completed closure survived the drain.
        from repro.core.store import PersistentStore

        with PersistentStore(db) as store:
            assert store.stats()["rows"]["closures"] >= 1

    asyncio.run(body())
