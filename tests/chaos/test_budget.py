"""Chaos tests: budget-governed execution.

Exercises the :mod:`repro.core.budget` governor end to end: zero-state
budgets trip before any expansion, exact budgets complete, every limit
kind (expansions, pairs, deadline, cancellation) raises with a usable
:class:`~repro.core.budget.PartialResult`, trips never corrupt the
closure memo, and re-running with a larger budget refines UNKNOWN to the
seed-path verdict (monotone refinement).
"""

from __future__ import annotations

import pickle

import pytest

from repro.cli import main
from repro.core.budget import (
    BudgetExceededError,
    CancellationToken,
    ExecutionBudget,
    PartialResult,
)
from repro.core.dependency import transmits
from repro.core.engine import DependencyEngine
from repro.core.induction import prove_no_dependency, prove_via_relation
from repro.core.system import System
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


@pytest.fixture
def relay() -> System:
    """a -> m -> b relay: information flows only along the chain."""
    b = SystemBuilder().booleans("a", "m", "b")
    b.op_assign("d1", "m", var("a"))
    b.op_assign("d2", "b", var("m"))
    return b.build()


class TestBudgetTrips:
    def test_zero_state_budget_raises_with_partial(self, relay):
        engine = DependencyEngine(relay)
        budget = ExecutionBudget(max_expanded=0)
        with pytest.raises(BudgetExceededError) as info:
            engine.depends_ever({"a"}, "b", budget=budget)
        partial = info.value.partial
        assert isinstance(partial, PartialResult)
        assert partial.verdict == "UNKNOWN"
        assert partial.reason == "max_expanded"
        assert partial.expanded == 0
        assert partial.frontier > 0
        assert "UNKNOWN" in partial.describe()
        # The trip is accounted: an incomplete ExecutionReport carrying
        # the partial result lands on the engine's log.
        incomplete = [r for r in engine.execution_log.reports if not r.completed]
        assert incomplete and incomplete[0].partial == partial

    def test_zero_state_budget_object_path(self, relay):
        engine = DependencyEngine(relay, compiled=False)
        with pytest.raises(BudgetExceededError) as info:
            engine.depends_ever({"a"}, "b", budget=ExecutionBudget(max_expanded=0))
        assert info.value.partial.reason == "max_expanded"

    def test_exact_budget_completes(self, relay):
        size = len(DependencyEngine(relay).pair_closure({"a"}))
        engine = DependencyEngine(relay)
        budget = ExecutionBudget(max_expanded=size, check_interval=1)
        result = engine.depends_ever({"a"}, "b", budget=budget)
        assert bool(result)

    def test_deadline_trips(self, relay):
        engine = DependencyEngine(relay)
        with pytest.raises(BudgetExceededError) as info:
            engine.depends_ever({"a"}, "b", budget=ExecutionBudget(max_seconds=0.0))
        assert info.value.partial.reason == "deadline"

    def test_max_pairs_trips(self, relay):
        engine = DependencyEngine(relay)
        with pytest.raises(BudgetExceededError) as info:
            engine.depends_ever({"a"}, "b", budget=ExecutionBudget(max_pairs=1))
        assert info.value.partial.reason == "max_pairs"

    def test_cancellation_token(self, relay):
        token = CancellationToken()
        token.cancel()
        engine = DependencyEngine(relay)
        with pytest.raises(BudgetExceededError) as info:
            engine.depends_ever({"a"}, "b", budget=ExecutionBudget(token=token))
        assert info.value.partial.reason == "cancelled"

    def test_history_sweep_governed(self, relay):
        d1 = relay.operation("d1")
        with pytest.raises(BudgetExceededError):
            transmits(relay, {"a"}, "m", d1, budget=ExecutionBudget(max_expanded=0))

    def test_operation_flows_governed(self, relay):
        engine = DependencyEngine(relay)
        with pytest.raises(BudgetExceededError):
            engine.operation_flows(budget=ExecutionBudget(max_expanded=0))

    def test_engine_default_budget_and_per_call_override(self, relay):
        engine = DependencyEngine(relay, budget=ExecutionBudget(max_expanded=0))
        with pytest.raises(BudgetExceededError):
            engine.depends_ever({"a"}, "b")
        # An explicit unbounded budget overrides the engine default.
        assert bool(engine.depends_ever({"a"}, "b", budget=ExecutionBudget()))

    def test_error_pickles_across_process_boundary(self, relay):
        engine = DependencyEngine(relay)
        with pytest.raises(BudgetExceededError) as info:
            engine.depends_ever({"a"}, "b", budget=ExecutionBudget(max_expanded=0))
        clone = pickle.loads(pickle.dumps(info.value))
        assert isinstance(clone, BudgetExceededError)
        assert clone.partial == info.value.partial


class TestMemoIntegrity:
    def test_trip_memoizes_nothing(self, relay):
        engine = DependencyEngine(relay)
        with pytest.raises(BudgetExceededError):
            engine.depends_ever({"a"}, "b", budget=ExecutionBudget(max_expanded=0))
        assert not engine._closures  # cache holds only complete closures

    def test_monotone_refinement_to_seed_verdict(self, relay):
        seed = DependencyEngine(relay)
        engine = DependencyEngine(relay)
        with pytest.raises(BudgetExceededError):
            engine.depends_ever({"a"}, "b", budget=ExecutionBudget(max_expanded=0))
        # Larger budget on the same engine: UNKNOWN refines to the exact
        # verdict, identical to an ungoverned engine's — and once the
        # closure is memoized, even a zero budget answers for free.
        for target in ("a", "m", "b"):
            refined = engine.depends_ever(
                {"a"}, target, budget=ExecutionBudget(max_expanded=10**9)
            )
            assert bool(refined) == bool(seed.depends_ever({"a"}, target))
        cached = engine.depends_ever(
            {"a"}, "b", budget=ExecutionBudget(max_expanded=0)
        )
        assert bool(cached) == bool(seed.depends_ever({"a"}, "b"))

    def test_budgeted_yes_still_carries_witness(self, relay):
        # A budget generous enough to finish behaves exactly like no
        # budget at all — same verdict, same shortest witness.
        governed = DependencyEngine(relay).depends_ever(
            {"a"}, "b", budget=ExecutionBudget(max_expanded=10**9, max_seconds=60)
        )
        plain = DependencyEngine(relay).depends_ever({"a"}, "b")
        assert bool(governed) and bool(plain)
        assert [op.name for op in governed.witness.history] == [
            op.name for op in plain.witness.history
        ]


class TestProverDegradation:
    def test_prover_returns_unknown_obligation(self, relay):
        proof = prove_no_dependency(
            relay, None, "b", "a", budget=ExecutionBudget(max_expanded=0)
        )
        assert not proof.valid
        assert any("UNKNOWN" in ob.description for ob in proof.failures)
        # The partial result rides along for a scaled retry.
        assert any(
            isinstance(ob.witness, PartialResult) for ob in proof.failures
        )

    def test_prover_refines_with_larger_budget(self, relay):
        # The scaled retry runs first, before anything is memoized on
        # the shared engine — it must succeed on its own budget, not on
        # a cache warmed by the unbudgeted reference run.
        retried = prove_no_dependency(
            relay, None, "b", "a",
            budget=ExecutionBudget(max_expanded=0).scaled(10**9),
        )
        unbudgeted = prove_no_dependency(relay, None, "b", "a")
        assert retried.valid == unbudgeted.valid

    def test_relation_prover_degrades(self, relay):
        proof = prove_via_relation(
            relay, None, lambda x, y: True, budget=ExecutionBudget(max_expanded=0)
        )
        assert not proof.valid
        assert any("UNKNOWN" in ob.description for ob in proof.failures)


class TestBudgetHelpers:
    def test_unbounded_budget_has_no_meter(self):
        assert ExecutionBudget().start("x") is None
        assert not ExecutionBudget().bounded

    def test_limits_round_trip(self):
        budget = ExecutionBudget(max_seconds=1.5, max_expanded=10, max_pairs=20)
        assert ExecutionBudget.from_limits(budget.limits()) == ExecutionBudget(
            max_seconds=1.5, max_expanded=10, max_pairs=20
        )

    def test_scaled(self):
        budget = ExecutionBudget(max_seconds=1.0, max_expanded=10, max_pairs=4)
        bigger = budget.scaled(3)
        assert bigger.max_seconds == 3.0
        assert bigger.max_expanded == 30
        assert bigger.max_pairs == 12
        assert ExecutionBudget().scaled(3) == ExecutionBudget()

    def test_scaled_grows_zero_budgets(self, relay):
        # Zero limits scale from one unit — otherwise 0 * k == 0 and a
        # retry of an exhausted budget could never make progress.
        retry = ExecutionBudget(max_expanded=0, max_seconds=0.0).scaled(10**6)
        assert retry.max_expanded == 10**6
        assert retry.max_seconds == pytest.approx(1000.0)
        assert bool(DependencyEngine(relay).depends_ever({"a"}, "b", budget=retry))


class TestCliBudget:
    def _args(self, program: str, *extra: str) -> list[str]:
        return [
            "program",
            program,
            "--var",
            "secret=0..1",
            "--var",
            "public=0..1",
            "--source",
            "secret",
            "--target",
            "public",
            *extra,
        ]

    @pytest.fixture
    def leaky_program(self, tmp_path):
        path = tmp_path / "leaky.prog"
        path.write_text("if secret > 0 then public := 1 else public := 0")
        return str(path)

    def test_budget_exhaustion_exits_3(self, leaky_program, capsys):
        code = main(self._args(leaky_program, "--budget-states", "0"))
        out = capsys.readouterr().out
        assert code == 3
        assert "UNKNOWN" in out
        assert "max_expanded" in out

    def test_generous_budget_matches_seed_verdict(self, leaky_program, capsys):
        code = main(
            self._args(
                leaky_program,
                "--budget-states",
                "1000000",
                "--execution-report",
            )
        )
        out = capsys.readouterr().out
        assert code == 1  # flow found, same as the unbudgeted run
        assert "FLOW" in out
        assert "execution:" in out
