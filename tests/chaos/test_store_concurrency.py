"""Concurrent PersistentStore use: threads, processes, WAL contention
(PR-9 satellite 3).

Three layers of sharing, matching how the service actually deploys:

1. **Threads in one process** — many engines (same canonical hash,
   distinct instances, like concurrent serve sessions) write and read
   one store file at once; verdicts must match the storeless reference
   and the store must stay healthy.
2. **Two server processes, one sqlite file** — WAL mode plus the busy
   timeout must let concurrent CLI processes share the file; a third
   process then answers warm from their rows.
3. **Busy-timeout exhaustion** — with the timeout shrunk to
   milliseconds and the database locked exclusively by a foreign
   connection, the store must degrade to the in-memory path (counted on
   ``store.degraded``), never raise, and verdicts must be unaffected.
"""

from __future__ import annotations

import os
import sqlite3
import subprocess
import sys
import threading
import warnings

import pytest

from repro import obs
from repro.core import store as store_mod
from repro.core.engine import DependencyEngine
from repro.core.store import PersistentStore
from repro.systems.program import build_program_system

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

PROGRAM = "gate := secret > limit;\nif gate then out := 1 else out := 0"
DOMAINS = {
    "secret": tuple(range(4)),
    "limit": (0, 1),
    "gate": (False, True),
    "out": (0, 1),
}
N_THREADS = 6


def _ps():
    return build_program_system(PROGRAM, dict(DOMAINS))


@pytest.fixture
def telemetry():
    obs.enable(reset=True)
    try:
        yield
    finally:
        obs.disable()


def test_threads_share_one_store_file(tmp_path, telemetry):
    path = str(tmp_path / "memo.db")
    reference = DependencyEngine(_ps().system).matrix()
    systems = [_ps().system for _ in range(N_THREADS)]
    engines = [DependencyEngine(s, store=path) for s in systems]
    barrier = threading.Barrier(N_THREADS)
    failures: list[str] = []

    def run(i: int) -> None:
        barrier.wait()
        try:
            if engines[i].matrix() != reference:
                failures.append(f"engine {i} verdict drift")
            if engines[i].store.degraded:
                failures.append(f"engine {i} store degraded")
        except Exception as exc:
            failures.append(f"engine {i}: {exc!r}")

    threads = [threading.Thread(target=run, args=(i,)) for i in range(N_THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
        assert not t.is_alive(), "store contention deadlock"
    assert not failures, failures
    # A fresh engine on the shared file answers warm.
    warm = DependencyEngine(_ps().system, store=path)
    assert warm.matrix() == reference
    assert warm.store.hits > 0
    assert obs.snapshot().counters.get("store.degraded", 0) == 0


def test_two_processes_share_one_store_file(tmp_path):
    prog = tmp_path / "p.prog"
    prog.write_text(PROGRAM)
    db = str(tmp_path / "memo.db")
    argv = [sys.executable, "-m", "repro", "program", str(prog),
            "--source", "secret", "--target", "out", "--store", db,
            "--var", "secret=0..3", "--var", "limit=0,1",
            "--var", "gate=bool", "--var", "out=0,1"]
    env = dict(os.environ, PYTHONPATH=SRC)
    procs = [
        subprocess.Popen(argv, env=env, stdout=subprocess.PIPE,
                         stderr=subprocess.PIPE)
        for _ in range(2)
    ]
    outs = [p.communicate(timeout=180) for p in procs]
    codes = [p.returncode for p in procs]
    assert codes == [1, 1], outs  # both report the same FLOW verdict
    for out, err in outs:
        assert b"FLOW" in out
        assert b"degraded" not in err.lower()
    with PersistentStore(db) as store:
        stats = store.stats()
        assert not stats["degraded"]
        assert stats["rows"]["closures"] >= 1
    # Third process answers warm from their rows (store.hit counters
    # are lifetime meta, bumped by loads).
    third = subprocess.run(argv, env=env, capture_output=True, timeout=180)
    assert third.returncode == 1
    with PersistentStore(db) as store:
        assert store.stats()["lifetime"].get("hits", 0) >= 1


def test_busy_timeout_degrades_to_memory(tmp_path, telemetry, monkeypatch):
    monkeypatch.setattr(store_mod, "BUSY_TIMEOUT_MS", 50)
    path = str(tmp_path / "memo.db")
    with PersistentStore(path) as seed:
        assert not seed.degraded  # schema created, file healthy
    blocker = sqlite3.connect(path)
    try:
        blocker.execute("BEGIN EXCLUSIVE")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine = DependencyEngine(_ps().system, store=path)
            result = engine.matrix()
        assert result == DependencyEngine(_ps().system).matrix()
        assert engine.store.degraded
        assert "lock" in (engine.store.degraded_reason or "").lower()
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)
        assert obs.snapshot().counters.get("store.degraded", 0) == 1
    finally:
        blocker.close()
