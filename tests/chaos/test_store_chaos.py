"""Chaos tests for the persistent store: corruption, concurrency, and
budget interplay.

The store's failure contract is *degrade, never raise*: any sqlite-level
breakage flips the store to the in-memory path with a ``store.degraded``
counter and one RuntimeWarning, and every verdict stays identical to a
storeless engine.  Concurrent processes coordinate through WAL + busy
timeout; within one process the store is a shared mutable object, so
threads hammer both one shared instance and per-thread instances on the
same file.  Budget trips raise before the memoization point, so a
governed run that exhausts its budget must leave nothing on disk.
"""

from __future__ import annotations

import sqlite3
import threading
import warnings

import pytest

from repro import obs
from repro.core.budget import BudgetExceededError, ExecutionBudget
from repro.core.engine import DependencyEngine
from repro.core.store import PersistentStore
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


def _ring(n: int = 3):
    b = SystemBuilder()
    for i in range(n):
        b.integers(f"x{i}", bits=1)
    for i in range(n):
        nxt = f"x{(i + 1) % n}"
        b.op_assign(f"m{i}", nxt, (var(nxt) + var(f"x{i}")) % 2)
    return b.build()


@pytest.fixture
def telemetry():
    obs.enable(reset=True)
    try:
        yield
    finally:
        obs.disable()


def test_garbage_file_degrades_never_raises(tmp_path, telemetry):
    path = tmp_path / "memo.sqlite"
    path.write_bytes(b"this is not a sqlite database at all\x00\x01\x02")
    store = PersistentStore(path)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        engine = DependencyEngine(_ring(), store=store)
        result = engine.matrix()
    assert result == DependencyEngine(_ring()).matrix()
    assert store.degraded
    assert any(issubclass(w.category, RuntimeWarning) for w in caught)
    assert obs.snapshot().counters.get("store.degraded", 0) == 1
    # Degradation is terminal and quiet: later calls are cheap no-ops,
    # no second warning, no exception.
    with warnings.catch_warnings(record=True) as again:
        warnings.simplefilter("always")
        assert engine.depends_ever({"x0"}, "x2")
    assert not [w for w in again if issubclass(w.category, RuntimeWarning)]
    store.close()


def test_truncated_file_degrades(tmp_path):
    path = tmp_path / "memo.sqlite"
    with PersistentStore(path) as seed:
        DependencyEngine(_ring(), store=seed).depends_ever({"x0"}, "x1")
    raw = path.read_bytes()
    path.write_bytes(raw[: max(100, len(raw) // 8)])
    for side in (path.with_suffix(".sqlite-wal"), path.with_suffix(".sqlite-shm")):
        if side.exists():
            side.unlink()
    store = PersistentStore(path)
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        result = DependencyEngine(_ring(), store=store).depends_ever(
            {"x0"}, "x1"
        )
    assert bool(result) == bool(
        DependencyEngine(_ring()).depends_ever({"x0"}, "x1")
    )
    # A truncated header either fails outright (degraded) or sqlite
    # recovers an empty database (plain misses); both are sound, neither
    # raises.
    assert store.degraded or store.misses > 0
    store.close()


def test_concurrent_threads_one_store(tmp_path):
    system = _ring(4)
    names = list(system.space.names)
    baseline = DependencyEngine(system).matrix()
    store = PersistentStore(tmp_path / "memo.sqlite")
    failures: list[BaseException] = []

    def worker(offset: int) -> None:
        try:
            engine = DependencyEngine(_ring(4), store=store)
            for i in range(len(names)):
                source = names[(offset + i) % len(names)]
                for target in names:
                    got = bool(engine.depends_ever({source}, target))
                    assert got == baseline[source][target]
        except BaseException as exc:  # noqa: BLE001 - collected for the assert
            failures.append(exc)

    threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
        assert not t.is_alive(), "store deadlocked a worker thread"
    assert not failures
    assert not store.degraded
    store.close()


def test_two_store_instances_same_file(tmp_path):
    """Two connections on one file — the in-process stand-in for two
    cooperating processes (same WAL + busy-timeout path)."""
    path = tmp_path / "memo.sqlite"
    system = _ring(4)
    baseline = DependencyEngine(system).matrix()
    store_a = PersistentStore(path)
    store_b = PersistentStore(path)
    failures: list[BaseException] = []

    def worker(store: PersistentStore) -> None:
        try:
            assert DependencyEngine(_ring(4), store=store).matrix() == baseline
        except BaseException as exc:  # noqa: BLE001
            failures.append(exc)

    threads = [
        threading.Thread(target=worker, args=(s,)) for s in (store_a, store_b)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
        assert not t.is_alive(), "concurrent stores deadlocked"
    assert not failures
    assert not store_a.degraded and not store_b.degraded
    # Whoever lost the write race reads the other's rows afterwards.
    with PersistentStore(path) as warm_store:
        warm = DependencyEngine(_ring(4), store=warm_store)
        assert warm.matrix() == baseline
        assert warm_store.misses == 0
    store_a.close()
    store_b.close()


def test_budget_trip_persists_nothing(tmp_path):
    path = tmp_path / "memo.sqlite"
    store = PersistentStore(path)
    engine = DependencyEngine(_ring(), store=store)
    with pytest.raises(BudgetExceededError):
        engine.depends_ever(
            {"x0"}, "x1", budget=ExecutionBudget(max_expanded=0)
        )
    stats = store.stats()
    assert stats["rows"]["closures"] == 0, (
        "a budget-tripped partial closure reached the persistent store"
    )
    # The same engine, ungoverned, completes and persists normally.
    assert engine.depends_ever({"x0"}, "x1")
    assert store.stats()["rows"]["closures"] == 1
    store.close()
