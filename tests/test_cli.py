"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_domain


@pytest.fixture
def leaky_program(tmp_path):
    path = tmp_path / "leaky.prog"
    path.write_text("if secret > 0 then public := 1 else public := 0")
    return str(path)


@pytest.fixture
def guarded_program(tmp_path):
    path = tmp_path / "guarded.prog"
    path.write_text(
        "gate := secret > limit; if gate then public := 1 else public := 0"
    )
    return str(path)


class TestParseDomain:
    def test_range(self):
        assert parse_domain("x=0..3") == ("x", (0, 1, 2, 3))

    def test_values(self):
        assert parse_domain("x=1,5") == ("x", (1, 5))

    def test_bool(self):
        assert parse_domain("flag=bool") == ("flag", (False, True))

    @pytest.mark.parametrize(
        "bad", ["x", "=0..1", "x=", "x=a..b", "x=3..1", "x=a,b"]
    )
    def test_rejects_malformed(self, bad):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_domain(bad)


class TestProgramCommand:
    def test_flow_detected_exit_code_1(self, leaky_program, capsys):
        code = main(
            [
                "program",
                leaky_program,
                "--var",
                "secret=0..1",
                "--var",
                "public=0..1",
                "--source",
                "secret",
                "--target",
                "public",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FLOW" in out and "history" in out

    def test_entry_assertion_blocks(self, guarded_program, capsys):
        code = main(
            [
                "program",
                guarded_program,
                "--var",
                "secret=0..2",
                "--var",
                "limit=0..2",
                "--var",
                "gate=bool",
                "--var",
                "public=0..1",
                "--source",
                "secret",
                "--target",
                "public",
                "--entry",
                "secret <= limit",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "NO FLOW" in out

    def test_missing_file(self, capsys):
        code = main(
            [
                "program",
                "/nonexistent.prog",
                "--var",
                "x=0..1",
                "--source",
                "x",
                "--target",
                "x",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.prog"
        bad.write_text("x := := 1")
        code = main(
            [
                "program",
                str(bad),
                "--var",
                "x=0..1",
                "--source",
                "x",
                "--target",
                "x",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestFlowsCommand:
    def test_dot_output(self, leaky_program, capsys):
        code = main(
            [
                "flows",
                leaky_program,
                "--var",
                "secret=0..1",
                "--var",
                "public=0..1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("digraph flows")
        assert '"secret" -> "public"' in out

    def test_entry_assertion_prunes_graph(self, guarded_program, capsys):
        code = main(
            [
                "flows",
                guarded_program,
                "--var",
                "secret=0..2",
                "--var",
                "limit=0..2",
                "--var",
                "gate=bool",
                "--var",
                "public=0..1",
                "--entry",
                "secret <= limit",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert '"secret" -> "public"' not in out


class TestTaintCommand:
    def test_taint_closure_listing(self, leaky_program, capsys):
        code = main(
            [
                "taint",
                leaky_program,
                "--var",
                "secret=0..1",
                "--var",
                "public=0..1",
                "--source",
                "secret",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "public" in out and "secret" in out
