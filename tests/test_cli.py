"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_domain


@pytest.fixture
def leaky_program(tmp_path):
    path = tmp_path / "leaky.prog"
    path.write_text("if secret > 0 then public := 1 else public := 0")
    return str(path)


@pytest.fixture
def guarded_program(tmp_path):
    path = tmp_path / "guarded.prog"
    path.write_text(
        "gate := secret > limit; if gate then public := 1 else public := 0"
    )
    return str(path)


class TestParseDomain:
    def test_range(self):
        assert parse_domain("x=0..3") == ("x", (0, 1, 2, 3))

    def test_values(self):
        assert parse_domain("x=1,5") == ("x", (1, 5))

    def test_bool(self):
        assert parse_domain("flag=bool") == ("flag", (False, True))

    @pytest.mark.parametrize(
        "bad", ["x", "=0..1", "x=", "x=a..b", "x=3..1", "x=a,b"]
    )
    def test_rejects_malformed(self, bad):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_domain(bad)


class TestProgramCommand:
    def test_flow_detected_exit_code_1(self, leaky_program, capsys):
        code = main(
            [
                "program",
                leaky_program,
                "--var",
                "secret=0..1",
                "--var",
                "public=0..1",
                "--source",
                "secret",
                "--target",
                "public",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FLOW" in out and "history" in out

    def test_entry_assertion_blocks(self, guarded_program, capsys):
        code = main(
            [
                "program",
                guarded_program,
                "--var",
                "secret=0..2",
                "--var",
                "limit=0..2",
                "--var",
                "gate=bool",
                "--var",
                "public=0..1",
                "--source",
                "secret",
                "--target",
                "public",
                "--entry",
                "secret <= limit",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "NO FLOW" in out

    def test_missing_file(self, capsys):
        code = main(
            [
                "program",
                "/nonexistent.prog",
                "--var",
                "x=0..1",
                "--source",
                "x",
                "--target",
                "x",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.prog"
        bad.write_text("x := := 1")
        code = main(
            [
                "program",
                str(bad),
                "--var",
                "x=0..1",
                "--source",
                "x",
                "--target",
                "x",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestFlowsCommand:
    def test_dot_output(self, leaky_program, capsys):
        code = main(
            [
                "flows",
                leaky_program,
                "--var",
                "secret=0..1",
                "--var",
                "public=0..1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("digraph flows")
        assert '"secret" -> "public"' in out

    def test_entry_assertion_prunes_graph(self, guarded_program, capsys):
        code = main(
            [
                "flows",
                guarded_program,
                "--var",
                "secret=0..2",
                "--var",
                "limit=0..2",
                "--var",
                "gate=bool",
                "--var",
                "public=0..1",
                "--entry",
                "secret <= limit",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert '"secret" -> "public"' not in out


class TestTaintCommand:
    def test_taint_closure_listing(self, leaky_program, capsys):
        code = main(
            [
                "taint",
                leaky_program,
                "--var",
                "secret=0..1",
                "--var",
                "public=0..1",
                "--source",
                "secret",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "public" in out and "secret" in out


class TestStoreOption:
    ARGS = [
        "--var", "secret=0..1", "--var", "public=0..1",
        "--source", "secret", "--target", "public",
    ]

    def test_warm_replay_from_store(self, leaky_program, tmp_path, capsys):
        store = str(tmp_path / "memo.sqlite")
        code = main(
            ["program", leaky_program, *self.ARGS, "--store", store]
        )
        cold_out = capsys.readouterr().out
        assert code == 1
        assert "store=miss" in cold_out
        # A second run builds a fresh system/engine (a stand-in for a
        # new process): the verdict replays from disk.
        code = main(
            ["program", leaky_program, *self.ARGS, "--store", store]
        )
        warm_out = capsys.readouterr().out
        assert code == 1
        assert "store=hit" in warm_out
        strip = lambda text: [
            line for line in text.splitlines() if not line.startswith("[")
        ]
        assert strip(warm_out) == strip(cold_out)

    def test_env_fallback(self, leaky_program, tmp_path, capsys, monkeypatch):
        store = tmp_path / "memo.sqlite"
        monkeypatch.setenv("REPRO_STORE", str(store))
        assert main(["program", leaky_program, *self.ARGS]) == 1
        capsys.readouterr()
        assert store.exists()

    def test_stats_store(self, leaky_program, tmp_path, capsys):
        import json

        store = str(tmp_path / "memo.sqlite")
        main(["program", leaky_program, *self.ARGS, "--store", store])
        capsys.readouterr()
        assert main(["stats", "--store", store]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["rows"]["closures"] >= 1
        assert stats["lifetime"]["writes"] >= 1

    def test_stats_needs_trace_or_store(self, capsys):
        assert main(["stats"]) == 2
        assert "trace file and/or --store" in capsys.readouterr().err


class TestDiffCommand:
    VARS = ["--var", "secret=0..1", "--var", "public=0..1"]

    @pytest.fixture
    def versions(self, tmp_path):
        old = tmp_path / "v1.prog"
        old.write_text("public := secret")
        new = tmp_path / "v2.prog"
        new.write_text("public := 0")
        return str(old), str(new)

    def test_identical_versions_exit_0(self, versions, capsys):
        old, _ = versions
        code = main(["diff", old, old, *self.VARS])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 changed" in out

    def test_changed_verdict_exit_1(self, versions, tmp_path, capsys):
        old, new = versions
        report_path = str(tmp_path / "diff.json")
        code = main(
            ["diff", old, new, *self.VARS, "--json", report_path,
             "--store", str(tmp_path / "memo.sqlite")]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "no longer flows" in out

        import json
        from pathlib import Path

        from repro.obs import schema

        report = json.loads(Path(report_path).read_text())
        contract = json.loads(
            (Path(__file__).resolve().parents[1] / "docs"
             / "diff.schema.json").read_text()
        )
        assert schema.validate(report, contract) == []
        flips = [
            (c["sources"], c["target"], c["before"], c["after"])
            for c in report["verdicts"]["changed"]
        ]
        assert (["secret"], "public", True, False) in flips

    def test_incomparable_spaces_error(self, versions, tmp_path, capsys):
        old, _ = versions
        other = tmp_path / "other.prog"
        # Two statements -> a different pc domain -> a different space.
        other.write_text("public := secret; public := secret")
        code = main(["diff", old, str(other), *self.VARS])
        assert code == 2
        assert "object space" in capsys.readouterr().err


class TestQuantifyCommand:
    VARS = ["--var", "a1=0..7", "--var", "a2=0..7"]

    @pytest.fixture
    def modsum_prog(self, tmp_path):
        path = tmp_path / "modsum.prog"
        path.write_text("a2 := (a1 + a2) % 8\n")
        return str(path)

    def _args(self, program, *extra):
        return [
            "quantify", program, *self.VARS,
            "--source", "a1", "--target", "a2", *extra,
        ]

    def test_modsum_split_exit_0(self, modsum_prog, capsys):
        code = main(self._args(modsum_prog))
        out = capsys.readouterr().out
        assert code == 0
        assert "source entropy:    3 bits" in out
        assert "bits transmitted:  0" in out
        assert "equivocation:      3 bits" in out
        assert "averaged measure:  3" in out

    def test_json_report_validates(self, modsum_prog, tmp_path, capsys):
        import json
        from pathlib import Path

        from repro.obs import schema

        report_path = tmp_path / "q.json"
        code = main(self._args(modsum_prog, "--json", str(report_path)))
        capsys.readouterr()
        assert code == 0
        doc = json.loads(report_path.read_text())
        contract = json.loads(
            (Path(__file__).resolve().parents[1] / "docs"
             / "quantify.schema.json").read_text()
        )
        assert schema.validate(doc, contract) == []
        assert doc["verdict"] == "ok"
        assert doc["measures"]["bits_transmitted"] == 0.0
        assert doc["measures"]["bits_transmitted_averaged"] == 3.0
        assert doc["measures"]["capacity"] is None  # opt-in

    def test_capacity_opt_in(self, modsum_prog, tmp_path, capsys):
        import json

        report_path = tmp_path / "q.json"
        code = main(
            self._args(modsum_prog, "--capacity", "--json", str(report_path))
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "capacity" in out
        doc = json.loads(report_path.read_text())
        # One-time-pad: the a2 pad hides a1 from a fixed-rest observer.
        assert doc["measures"]["capacity"] == pytest.approx(0.0, abs=1e-6)

    def test_history_selection(self, modsum_prog, capsys):
        code = main(self._args(modsum_prog, "--history", "delta1"))
        out = capsys.readouterr().out
        assert code == 0
        assert "H=delta1" in out

    def test_unknown_history_operation_errors(self, modsum_prog, capsys):
        code = main(self._args(modsum_prog, "--history", "nosuch"))
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        code = main(self._args("nope.prog"))
        assert code == 2
        assert "error" in capsys.readouterr().err
