"""Smoke tests: every shipped example runs end to end and prints its
headline results.

The examples double as living documentation; these tests keep them from
rotting.  The heavyweight confinement example is marked slow (it computes
Worth over a 2048-state matrix space) but still runs in CI time.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def _run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart", capsys)
        assert "transmits" not in out or True  # headline lines below:
        assert "alpha |> beta over delta? True" in out
        assert "given ~m, alpha |> beta over any history? False" in out
        assert "valid: True" in out

    def test_program_certifier(self, capsys):
        out = _run_example("program_certifier", capsys)
        assert "certificate valid? True" in out
        assert "taint closure" in out

    def test_covert_channel_audit(self, capsys):
        out = _run_example("covert_channel_audit", capsys)
        assert "digraph flows" in out
        assert "covert channel" in out
        assert "averaged measure" in out

    def test_verified_writers(self, capsys):
        out = _run_example("verified_writers", capsys)
        assert "constraint is autonomous" in out
        assert "integrity enforced from phi-states              | yes" in out
        assert "staging |> config given phi: True" in out

    @pytest.mark.slow
    def test_confinement_service(self, capsys):
        out = _run_example("confinement_service", capsys)
        assert "Forbidden information paths" in out
        assert "still leaks? True" in out
        assert "tt solves the problem? True" in out
