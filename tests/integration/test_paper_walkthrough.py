"""Integration tests: full paper walkthroughs crossing module boundaries.

Each test stitches together substrate + core formalism + proof technique +
baseline the way a user of the library would, following a section of the
paper end to end.
"""

import pytest

from repro.core.constraints import Constraint
from repro.core.covers import IndependentCover
from repro.core.dependency import transmits
from repro.core.induction import prove_no_dependency, prove_via_relation
from repro.core.problems import ConfinementProblem, SecurityProblem
from repro.core.reachability import depends_ever
from repro.core.worth import WorthMeasure, WorthOrder
from repro.analysis.solver import is_maximal, maximal_solutions
from repro.baselines.denning import TransitiveFlowAnalysis
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, when
from repro.lang.expr import var
from repro.systems.access_matrix import (
    READ,
    AccessMatrixSystem,
    entry_name,
)
from repro.systems.pointer import PointerSystem, data_name
from repro.systems.security import TotalOrderLattice, classification_relation


class TestConfinementOnAccessMatrix:
    """Chapter 1's motivating problem solved with chapter 3's machinery on
    the section 1.3 substrate."""

    @pytest.fixture(scope="class")
    def ams(self):
        return AccessMatrixSystem(
            subjects=["user", "spy_proc"],
            files={"private": (0, 1), "drop": (0, 1)},
            entries=[
                ("user", "private"),
                ("spy_proc", "drop"),
                ("user", "drop"),
            ],
            copy_operations=[
                ("user", "drop", "private"),  # the service leaks via drop
            ],
            fixed_rights={
                ("user", "user"): frozenset({"s"}),
                ("spy_proc", "spy_proc"): frozenset({"s"}),
            },
        )

    def test_unconstrained_system_fails_confinement(self, ams):
        problem = ConfinementProblem(
            ams.system, confined={"private"}, spies={"drop"}
        )
        assert not problem.is_solution(Constraint.true(ams.space))

    def test_rights_denial_solves_confinement(self, ams):
        problem = ConfinementProblem(
            ams.system, confined={"private"}, spies={"drop"}
        )
        phi = ams.deny_constraint([("user", "private", "drop")])
        assert problem.is_solution(phi)
        assert phi.is_independent_of({"private"})

    def test_solution_is_maximal_among_rights_constraints(self, ams):
        problem = ConfinementProblem(
            ams.system, confined={"private"}, spies={"drop"}
        )
        deny = ams.deny_constraint([("user", "private", "drop")])
        weaker = ams.missing_right_constraint(READ, "user", "private")
        assert problem.is_solution(weaker)
        assert weaker.implies(deny)


class TestSecurityViaInduction:
    """Section 3.4's Security Problem proved with Corollary 4-3 and the
    lattice substrate, then cross-checked exactly."""

    @pytest.fixture(scope="class")
    def system(self):
        b = SystemBuilder().booleans("unclass", "secret", "topsecret")
        b.op_assign("up1", "secret", var("unclass"))
        b.op_assign("up2", "topsecret", var("secret"))
        return b.build()

    def test_induction_proof(self, system):
        lattice = TotalOrderLattice([0, 1, 2])
        cls = {"unclass": 0, "secret": 1, "topsecret": 2}
        q = classification_relation(cls, lattice)
        proof = prove_via_relation(system, None, q, q_name="Cls<=")
        assert proof.valid

    def test_security_problem_agrees(self, system):
        problem = SecurityProblem(
            system, {"unclass": 0, "secret": 1, "topsecret": 2}
        )
        assert problem.is_solution(Constraint.true(system.space))

    def test_adding_downgrade_breaks_both(self, system):
        b = SystemBuilder().booleans("unclass", "secret", "topsecret")
        b.op_assign("up1", "secret", var("unclass"))
        b.op_assign("up2", "topsecret", var("secret"))
        b.op_assign("down", "unclass", var("topsecret"))
        bad = b.build()
        problem = SecurityProblem(
            bad, {"unclass": 0, "secret": 1, "topsecret": 2}
        )
        assert not problem.is_solution(Constraint.true(bad.space))


class TestPointerChainFullProof:
    """Section 4.3 end to end, including the exact cross-check and the
    positive control."""

    def test_full_story(self):
        ps = PointerSystem(["alpha", "mid", "beta"], data_domain=(0, 1))
        phi = ps.chain_constraint({"alpha", "mid"})
        assert phi.is_autonomous() and phi.is_invariant(ps.system)
        proof = prove_via_relation(
            ps.system, phi, ps.chain_relation({"alpha", "mid"}), q_name="chain"
        )
        assert proof.valid
        assert not depends_ever(
            ps.system, {data_name("alpha")}, data_name("beta"), phi
        )
        # mid is inside the chain set: flow to it is allowed and real.
        assert depends_ever(
            ps.system, {data_name("alpha")}, data_name("mid"), phi
        )


class TestNonTransitivityAgainstBaseline:
    """Sections 4.4-4.6 plus the section 1.5 critique, in one scenario."""

    @pytest.fixture(scope="class")
    def system(self):
        b = SystemBuilder().booleans("q", "a", "m", "bb")
        b.op_cmd("d1", when(var("q"), assign("m", var("a"))))
        b.op_cmd("d2", when(~var("q"), assign("bb", var("m"))))
        return b.build()

    def test_strong_dependency_vs_baseline(self, system):
        h = system.history("d1", "d2")
        assert transmits(system, {"a"}, "m", system.history("d1"))
        assert transmits(system, {"m"}, "bb", system.history("d2"))
        assert not transmits(system, {"a"}, "bb", h)  # non-transitive!
        baseline = TransitiveFlowAnalysis(system)
        assert baseline.flows_over_history({"a"}, "bb", h)  # false positive

    def test_separation_of_variety_proof(self, system):
        cover = IndependentCover(
            [
                Constraint(system.space, lambda s: s["q"], name="q"),
                Constraint(system.space, lambda s: not s["q"], name="~q"),
            ]
        )
        proof = cover.prove_no_dependency(system, {"a"}, "bb")
        assert proof.valid

    def test_corollary_4_2_fails_where_cover_succeeds(self, system):
        """Plain induction cannot prove this (dependency is per-operation
        real); separation of variety is genuinely needed."""
        proof = prove_no_dependency(system, None, "a", "bb")
        assert not proof.valid


class TestWorthStory:
    """Section 3.6's comparison, validated with the solver."""

    def test_targeted_beats_blunt(self):
        b = SystemBuilder().booleans("r1", "r2", "alpha", "m", "beta")
        b.op_if("d1", var("r1"), "beta", var("alpha"))
        b.op_if("d2", var("r2"), "beta", var("m"))
        system = b.build()
        measure = WorthMeasure(system)
        targeted = Constraint(system.space, lambda s: not s["r1"], name="~r1")
        blunt = Constraint(
            system.space, lambda s: not s["r1"] and not s["r2"], name="~r1~r2"
        )
        assert measure.compare(targeted, blunt) is WorthOrder.GREATER
        # Both genuinely solve "no alpha -> beta".
        for phi in (targeted, blunt):
            assert not depends_ever(system, {"alpha"}, "beta", phi)
