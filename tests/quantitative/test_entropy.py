"""Unit tests for entropy utilities."""

from fractions import Fraction

import pytest

from repro.core.errors import DistributionError
from repro.quantitative.entropy import (
    conditional_entropy,
    entropy,
    joint_entropy,
    marginalize,
    mutual_information,
)


class TestEntropy:
    def test_uniform_bits(self):
        table = {i: Fraction(1, 8) for i in range(8)}
        assert entropy(table) == pytest.approx(3.0)

    def test_deterministic_zero(self):
        assert entropy({0: Fraction(1)}) == 0.0

    def test_validation(self):
        with pytest.raises(DistributionError):
            entropy({0: Fraction(1, 2)})


class TestJointQuantities:
    @pytest.fixture
    def correlated(self):
        # Y = X for uniform X over {0,1}.
        return {
            (0, 0): Fraction(1, 2),
            (1, 1): Fraction(1, 2),
        }

    @pytest.fixture
    def independent(self):
        return {
            (x, y): Fraction(1, 4) for x in (0, 1) for y in (0, 1)
        }

    def test_marginalize(self, independent):
        assert marginalize(independent, 0) == {
            0: Fraction(1, 2),
            1: Fraction(1, 2),
        }

    def test_joint_entropy(self, correlated, independent):
        assert joint_entropy(correlated) == pytest.approx(1.0)
        assert joint_entropy(independent) == pytest.approx(2.0)

    def test_conditional_entropy(self, correlated, independent):
        # Perfectly correlated: knowing Y pins X.
        assert conditional_entropy(correlated) == pytest.approx(0.0)
        # Independent: Y says nothing.
        assert conditional_entropy(independent) == pytest.approx(1.0)

    def test_mutual_information(self, correlated, independent):
        assert mutual_information(correlated) == pytest.approx(1.0)
        assert mutual_information(independent) == pytest.approx(0.0)
