"""Unit tests for state distributions."""

from fractions import Fraction

import pytest

from repro.core.constraints import Constraint
from repro.core.errors import DistributionError
from repro.core.state import Space
from repro.core.system import History, Operation
from repro.quantitative.distributions import StateDistribution


@pytest.fixture
def space():
    return Space({"a": (0, 1), "b": (0, 1)})


class TestConstruction:
    def test_must_sum_to_one(self, space):
        s = space.state(a=0, b=0)
        with pytest.raises(DistributionError):
            StateDistribution(space, {s: Fraction(1, 2)})

    def test_negative_rejected(self, space):
        s0, s1 = space.state(a=0, b=0), space.state(a=1, b=0)
        with pytest.raises(DistributionError):
            StateDistribution(
                space, {s0: Fraction(3, 2), s1: Fraction(-1, 2)}
            )

    def test_foreign_state_rejected(self, space):
        from repro.core.state import State

        with pytest.raises(DistributionError):
            StateDistribution(space, {State({"z": 1}): Fraction(1)})

    def test_uniform_over_constraint(self, space):
        phi = Constraint(space, lambda s: s["a"] == 0)
        dist = StateDistribution.uniform(phi)
        assert len(dist.support) == 2
        assert all(dist.probability(s) == Fraction(1, 2) for s in dist.support)

    def test_uniform_over_empty_constraint_rejected(self, space):
        from repro.core.errors import EmptyConstraintError

        with pytest.raises(EmptyConstraintError):
            StateDistribution.uniform(Constraint.false(space))


class TestOperations:
    def test_push_forward_merges_mass(self, space):
        dist = StateDistribution.uniform_over_space(space)
        zero_b = Operation("zb", lambda s: s.replace(b=0))
        pushed = dist.push_forward(History.of(zero_b))
        assert len(pushed.support) == 2
        for state in pushed.support:
            assert state["b"] == 0
            assert pushed.probability(state) == Fraction(1, 2)

    def test_marginal(self, space):
        dist = StateDistribution.uniform_over_space(space)
        marginal = dist.marginal(lambda s: s["a"])
        assert marginal == {0: Fraction(1, 2), 1: Fraction(1, 2)}

    def test_joint(self, space):
        dist = StateDistribution.uniform_over_space(space)
        joint = dist.joint(lambda s: s["a"], lambda s: s["b"])
        assert len(joint) == 4
        assert sum(joint.values()) == 1

    def test_condition(self, space):
        dist = StateDistribution.uniform_over_space(space)
        cond = dist.condition(lambda s: s["a"] == 1)
        assert all(s["a"] == 1 for s in cond.support)
        assert sum(p for _, p in cond.items()) == 1

    def test_condition_zero_mass_rejected(self, space):
        dist = StateDistribution.uniform_over_space(space)
        with pytest.raises(DistributionError):
            dist.condition(lambda s: False)

    def test_condition_evaluates_predicate_once_per_state(self, space):
        """Regression: the old implementation ran the predicate twice
        per support state (once summing the mass, once filtering)."""
        dist = StateDistribution.uniform_over_space(space)
        calls = []
        dist.condition(lambda s: calls.append(s) or s["a"] == 1)
        assert len(calls) == len(list(dist.support))

    def test_condition_exact_renormalization(self, space):
        dist = StateDistribution.uniform_over_space(space)
        cond = dist.condition(lambda s: s["a"] == 1)
        assert all(p == Fraction(1, 2) for _, p in cond.items())
