"""Unit tests for quantitative induction (section 7.4's open question)."""

import pytest

from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, seq
from repro.lang.expr import apply, var
from repro.quantitative.distributions import StateDistribution
from repro.quantitative.induction import (
    bits_transmitted_joint,
    joint_induction_holds,
    summed_induction_gap,
    summed_set_bits,
)


def xor(a, b):
    return a ^ b


@pytest.fixture(scope="module")
def xor_split():
    """H one-time-pads 'a' across m1/m2 (and destroys a and the pad);
    H' recombines into beta."""
    b = SystemBuilder().integers("a", "r", "m1", "m2", "beta", bits=1)
    b.op_cmd(
        "split",
        seq(
            assign("m1", var("r")),
            assign("m2", apply(xor, var("a"), var("r"), symbol="xor")),
            assign("a", 0),
            assign("r", 0),
        ),
    )
    b.op_cmd(
        "join", assign("beta", apply(xor, var("m1"), var("m2"), symbol="xor"))
    )
    system = b.build()
    return (
        system,
        History.of(system.operation("split")),
        History.of(system.operation("join")),
        StateDistribution.uniform_over_space(system.space),
    )


class TestJointMeasure:
    def test_joint_equals_single_for_singleton(self, xor_split):
        system, prefix, suffix, dist = xor_split
        from repro.quantitative.channel import bits_transmitted

        h = prefix + suffix
        assert bits_transmitted_joint(
            dist, {"a"}, ["beta"], h
        ) == pytest.approx(bits_transmitted(dist, {"a"}, "beta", h))

    def test_joint_sees_xor_pair(self, xor_split):
        """Each share alone carries nothing; the pair carries everything."""
        system, prefix, _suffix, dist = xor_split
        assert bits_transmitted_joint(
            dist, {"a"}, ["m1"], prefix
        ) == pytest.approx(0.0)
        assert bits_transmitted_joint(
            dist, {"a"}, ["m2"], prefix
        ) == pytest.approx(0.0)
        assert bits_transmitted_joint(
            dist, {"a"}, ["m1", "m2"], prefix
        ) == pytest.approx(1.0)

    def test_summed_measure_misses_it(self, xor_split):
        system, prefix, _suffix, dist = xor_split
        assert summed_set_bits(
            dist, {"a"}, {"m1", "m2"}, prefix
        ) == pytest.approx(0.0)


class TestInductionProperty:
    def test_summed_form_fails_on_xor_split(self, xor_split):
        """The paper's summed definition cannot support the induction
        property: the composite channel carries 1 bit but no M achieves
        a summed first leg above 0."""
        system, prefix, suffix, dist = xor_split
        k, best_first, _best_m = summed_induction_gap(
            dist, {"a"}, "beta", prefix, suffix
        )
        assert k == pytest.approx(1.0)
        assert best_first == pytest.approx(0.0)

    def test_joint_form_holds_on_xor_split(self, xor_split):
        system, prefix, suffix, dist = xor_split
        holds, k, first, second = joint_induction_holds(
            dist, {"a"}, "beta", prefix, suffix
        )
        assert holds
        assert first >= k and second >= k

    def test_joint_form_holds_on_plain_relay(self):
        b = SystemBuilder().integers("a", "m", "beta", bits=1)
        b.op_assign("d1", "m", var("a"))
        b.op_assign("d2", "beta", var("m"))
        system = b.build()
        dist = StateDistribution.uniform_over_space(system.space)
        holds, k, first, second = joint_induction_holds(
            dist,
            {"a"},
            "beta",
            History.of(system.operation("d1")),
            History.of(system.operation("d2")),
        )
        assert holds and k == pytest.approx(1.0)

    def test_summed_form_fine_without_mixing(self):
        """On the plain relay the summed form also holds — mixing is what
        breaks it."""
        b = SystemBuilder().integers("a", "m", "beta", bits=1)
        b.op_assign("d1", "m", var("a"))
        b.op_assign("d2", "beta", var("m"))
        system = b.build()
        dist = StateDistribution.uniform_over_space(system.space)
        k, best_first, best_m = summed_induction_gap(
            dist,
            {"a"},
            "beta",
            History.of(system.operation("d1")),
            History.of(system.operation("d2")),
        )
        assert best_first >= k - 1e-9
        assert "m" in best_m or "a" in best_m
