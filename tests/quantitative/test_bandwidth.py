"""Unit tests for channel capacity (section 1.8's bandwidth idea)."""

import math

import pytest

from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, when
from repro.lang.expr import var
from repro.quantitative.bandwidth import (
    blahut_arimoto,
    capacity,
    channel_matrix,
)
from repro.quantitative.distributions import StateDistribution


class TestChannelMatrix:
    def test_identity_channel(self):
        b = SystemBuilder().integers("a", "b", bits=2)
        b.op_assign("copy", "b", var("a"))
        system = b.build()
        dist = StateDistribution.uniform_over_space(system.space)
        inputs, outputs, matrix = channel_matrix(
            dist, {"a"}, "b", History.of(system.operation("copy"))
        )
        assert len(inputs) == 4
        for i, row in enumerate(matrix):
            assert sum(row) == pytest.approx(1.0)
            assert max(row) == pytest.approx(1.0)  # deterministic


class TestCapacity:
    def test_noiseless_copy_full_capacity(self):
        b = SystemBuilder().integers("a", "b", bits=2)
        b.op_assign("copy", "b", var("a"))
        system = b.build()
        dist = StateDistribution.uniform_over_space(system.space)
        c = capacity(dist, {"a"}, "b", History.of(system.operation("copy")))
        assert c == pytest.approx(2.0, abs=1e-6)

    def test_dead_channel_zero_capacity(self):
        b = SystemBuilder().integers("a", "b", bits=1)
        b.op_assign("zero", "b", 0)
        system = b.build()
        dist = StateDistribution.uniform_over_space(system.space)
        c = capacity(dist, {"a"}, "b", History.of(system.operation("zero")))
        assert c == pytest.approx(0.0, abs=1e-9)

    def test_z_channel_closed_form(self):
        """'if m then b <- a' with m fair and b initially 0 is a Z-channel
        with crossover 1/2; capacity = log2(1 + (1-q) q^{q/(1-q)}) with
        q = 1/2, i.e. log2(1.25)."""
        b = SystemBuilder().booleans("m").integers("a", "b", bits=1)
        b.op_cmd("maybe", when(var("m"), assign("b", var("a"))))
        system = b.build()
        from repro.core.constraints import Constraint

        start = Constraint(system.space, lambda s: s["b"] == 0, name="b=0")
        dist = StateDistribution.uniform(start)
        c = capacity(dist, {"a"}, "b", History.of(system.operation("maybe")))
        q = 0.5
        closed_form = math.log2(1 + (1 - q) * q ** (q / (1 - q)))
        assert c == pytest.approx(closed_form, abs=1e-5)

    def test_noise_reduces_capacity(self):
        """Section 1.8: injecting noise lowers the bandwidth.  The noise
        source is an extra uniform object XORed into the observation."""
        xor = lambda x, y: x ^ y
        from repro.lang.expr import apply

        def build(noisy: bool):
            b = SystemBuilder().integers("a", "b", "noise", bits=1)
            if noisy:
                b.op_assign(
                    "send", "b", apply(xor, var("a"), var("noise"), symbol="xor")
                )
            else:
                b.op_assign("send", "b", var("a"))
            return b.build()

        clean = build(False)
        noisy = build(True)
        dist_clean = StateDistribution.uniform_over_space(clean.space)
        dist_noisy = StateDistribution.uniform_over_space(noisy.space)
        c_clean = capacity(
            dist_clean, {"a"}, "b", History.of(clean.operation("send"))
        )
        c_noisy = capacity(
            dist_noisy, {"a"}, "b", History.of(noisy.operation("send"))
        )
        assert c_clean == pytest.approx(1.0, abs=1e-6)
        # A one-time pad: capacity collapses to zero.
        assert c_noisy == pytest.approx(0.0, abs=1e-6)

    def test_truncated_iteration_never_negative(self):
        """Regression: a convergence budget too small to meet tolerance
        must return the best lower bound so far (here >= 0 after one
        update), never a sentinel like -1.0."""
        b = SystemBuilder().integers("a", "b", bits=2)
        b.op_assign("copy", "b", var("a"))
        system = b.build()
        dist = StateDistribution.uniform_over_space(system.space)
        h = History.of(system.operation("copy"))
        for max_iterations in (0, 1, 2):
            c = capacity(dist, {"a"}, "b", h, max_iterations=max_iterations)
            assert c >= 0.0
            assert c <= 2.0 + 1e-9
        # One Blahut-Arimoto step on a noiseless channel already finds
        # the uniform optimum.
        assert capacity(
            dist, {"a"}, "b", h, max_iterations=1
        ) == pytest.approx(2.0, abs=1e-9)

    def test_partial_noise_partial_capacity(self):
        """Noise that only sometimes fires (a BSC with p=1/4) leaves the
        closed-form capacity 1 - H2(1/4)."""
        from repro.lang.expr import apply

        xor_if = lambda a, n: a ^ (1 if n == 0 else 0)
        b = SystemBuilder().integers("a", "b", bits=1).integers("n", bits=2)
        b.op_assign("send", "b", apply(xor_if, var("a"), var("n"), symbol="xif"))
        system = b.build()
        dist = StateDistribution.uniform_over_space(system.space)
        c = capacity(dist, {"a"}, "b", History.of(system.operation("send")))
        h2 = lambda p: -p * math.log2(p) - (1 - p) * math.log2(1 - p)
        assert c == pytest.approx(1 - h2(0.25), abs=1e-5)


class TestBlahutArimoto:
    """The solver itself, on raw matrices, both vectorized and
    pure-Python paths."""

    BSC = [[0.75, 0.25], [0.25, 0.75]]

    def test_bsc_closed_form(self):
        h2 = lambda p: -p * math.log2(p) - (1 - p) * math.log2(1 - p)
        assert blahut_arimoto(self.BSC) == pytest.approx(
            1 - h2(0.25), abs=1e-6
        )

    def test_empty_matrix(self):
        assert blahut_arimoto([]) == 0.0

    def test_python_and_numpy_paths_agree(self, monkeypatch):
        pytest.importorskip("numpy")
        fast = blahut_arimoto(self.BSC)
        monkeypatch.setenv("REPRO_BITSET_NUMPY", "0")
        slow = blahut_arimoto(self.BSC)
        assert fast == pytest.approx(slow, abs=1e-9)

    def test_truncation_clamps_at_zero(self, monkeypatch):
        for env in ("0", "1"):
            monkeypatch.setenv("REPRO_BITSET_NUMPY", env)
            assert blahut_arimoto(self.BSC, max_iterations=0) >= 0.0
