"""Unit tests for the section 7.4 channel measures, including the paper's
mod-sum example (scaled from 128 to 8 values = 3 bits)."""

import pytest

from repro.core.constraints import Constraint
from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var
from repro.quantitative import (
    StateDistribution,
    bits_transmitted,
    bits_transmitted_averaged,
    capacity_table,
    equivocation,
    interference,
    source_entropy,
)


@pytest.fixture(scope="module")
def modsum():
    """beta <- (a1 + a2) mod 8."""
    b = SystemBuilder().integers("a1", "a2", "beta", bits=3)
    b.op_assign("d", "beta", (var("a1") + var("a2")) % 8)
    system = b.build()
    return system, History.of(system.operation("d"))


@pytest.fixture(scope="module")
def uniform(modsum):
    system, _ = modsum
    return StateDistribution.uniform_over_space(system.space)


class TestModSumExample:
    def test_pair_transmits_full_width(self, modsum, uniform):
        _, h = modsum
        assert bits_transmitted(uniform, {"a1", "a2"}, "beta", h) == pytest.approx(3.0)

    def test_singleton_equivocation_measure_is_zero(self, modsum, uniform):
        """An observer of beta learns nothing about a1 alone."""
        _, h = modsum
        assert bits_transmitted(uniform, {"a1"}, "beta", h) == pytest.approx(0.0)

    def test_singleton_equivocation_is_full(self, modsum, uniform):
        """'the equivocation of beta with respect to alpha1 is 7 bits'
        (3 here): initial entropy minus transmission."""
        _, h = modsum
        assert equivocation(uniform, {"a1"}, "beta", h) == pytest.approx(3.0)
        assert source_entropy(uniform, {"a1"}) == pytest.approx(3.0)

    def test_singleton_averaged_measure_is_full(self, modsum, uniform):
        """Holding a2 constant, all of a1's variety reaches beta."""
        _, h = modsum
        assert bits_transmitted_averaged(
            uniform, {"a1"}, "beta", h
        ) == pytest.approx(3.0)

    def test_interference_is_negative_contingent(self, modsum, uniform):
        """b(a1) + b(a2) - b(a1 u a2) = 0 + 0 - 3 under the equivocation
        measure: purely contingent transmission."""
        _, h = modsum
        assert interference(
            uniform, {"a1"}, {"a2"}, "beta", h
        ) == pytest.approx(-3.0)


class TestSimpleChannels:
    def test_copy_transmits_all_bits(self):
        b = SystemBuilder().integers("alpha", "beta", bits=2)
        b.op_assign("d", "beta", var("alpha"))
        system = b.build()
        h = History.of(system.operation("d"))
        dist = StateDistribution.uniform_over_space(system.space)
        assert bits_transmitted(dist, {"alpha"}, "beta", h) == pytest.approx(2.0)

    def test_threshold_transmits_one_bit(self):
        b = SystemBuilder().ranged("alpha", lo=0, hi=15).integers("beta", bits=1)
        b.op_if("d", var("alpha") < 8, "beta", 0, else_expr=1)
        system = b.build()
        h = History.of(system.operation("d"))
        dist = StateDistribution.uniform_over_space(system.space)
        assert bits_transmitted(dist, {"alpha"}, "beta", h) == pytest.approx(1.0)

    def test_constraint_reduces_bits(self):
        """Section 2.2's constraint effect, quantitatively: alpha < 8
        makes the threshold channel silent."""
        b = SystemBuilder().ranged("alpha", lo=0, hi=15).integers("beta", bits=1)
        b.op_if("d", var("alpha") < 8, "beta", 0, else_expr=1)
        system = b.build()
        h = History.of(system.operation("d"))
        phi = Constraint(system.space, lambda s: s["alpha"] < 8)
        dist = StateDistribution.uniform(phi)
        assert bits_transmitted(dist, {"alpha"}, "beta", h) == pytest.approx(0.0)

    def test_averaged_matches_strong_dependency_qualitatively(self):
        """Averaged bits > 0 iff strong dependency holds (the qualitative
        shadow), on the guarded system."""
        from repro.core.dependency import transmits

        b = SystemBuilder().booleans("m").integers("alpha", "beta", bits=1)
        b.op_if("d", var("m"), "beta", var("alpha"))
        system = b.build()
        h = History.of(system.operation("d"))
        for phi_fn, name in [
            (lambda s: True, "tt"),
            (lambda s: not s["m"], "~m"),
        ]:
            phi = Constraint(system.space, phi_fn, name=name)
            dist = StateDistribution.uniform(phi)
            bits = bits_transmitted_averaged(dist, {"alpha"}, "beta", h)
            dep = bool(transmits(system, {"alpha"}, "beta", h, phi))
            assert (bits > 1e-9) == dep, name


class TestCapacityTable:
    def test_table_shape_and_values(self):
        b = SystemBuilder().booleans("a", "bb")
        b.op_assign("d", "bb", var("a"))
        system = b.build()
        h = History.of(system.operation("d"))
        dist = StateDistribution.uniform_over_space(system.space)
        table = capacity_table(dist, h)
        assert table[("a", "bb")] == pytest.approx(1.0)
        assert table[("bb", "bb")] == pytest.approx(0.0)  # overwritten
        assert table[("a", "a")] == pytest.approx(1.0)  # retained
