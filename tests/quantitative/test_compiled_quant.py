"""Unit tests for the compiled quantitative substrate
(:mod:`repro.quantitative.compiled`): distribution round-trips, exact
parity with the object channel path, the batched channel layer, the
composed-array store round-trip, and the foreign-operation fallback."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro import obs
from repro.core.constraints import Constraint
from repro.core.engine import DependencyEngine
from repro.core.errors import DistributionError
from repro.core.store import PersistentStore
from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var
from repro.quantitative import (
    CompiledDistribution,
    QuantEngine,
    StateDistribution,
    bits_transmitted,
    bits_transmitted_averaged,
    capacity_table,
    equivocation,
    interference,
    source_entropy,
)
from repro.quantitative.bandwidth import capacity as object_capacity
from repro.quantitative.bandwidth import channel_matrix as object_channel_matrix


@pytest.fixture(scope="module")
def modsum():
    """beta <- (a1 + a2) mod 8, the paper's example at 3 bits."""
    b = SystemBuilder().integers("a1", "a2", "beta", bits=3)
    b.op_assign("d", "beta", (var("a1") + var("a2")) % 8)
    system = b.build()
    return system, History.of(system.operation("d"))


@pytest.fixture(scope="module")
def quant(modsum):
    system, _ = modsum
    return QuantEngine(system)


@pytest.fixture(scope="module")
def uniform_obj(modsum):
    system, _ = modsum
    return StateDistribution.uniform_over_space(system.space)


class TestCompiledDistribution:
    def test_round_trip_preserves_exact_masses(self, modsum, quant, uniform_obj):
        cd = CompiledDistribution.from_state_distribution(
            quant.engine.compiled_system(), uniform_obj
        )
        back = cd.to_state_distribution()
        assert dict(back.items()) == dict(uniform_obj.items())

    def test_uniform_over_space_matches_object(self, quant, uniform_obj):
        cd = quant.uniform()
        assert cd.uniform
        assert dict(cd.to_state_distribution().items()) == dict(
            uniform_obj.items()
        )

    def test_uniform_over_constraint(self, modsum, quant):
        system, _ = modsum
        phi = Constraint(system.space, lambda s: s["beta"] == 0, name="b0")
        cd = quant.uniform(phi)
        dist = cd.to_state_distribution()
        assert all(s["beta"] == 0 for s, _ in dist.items())
        assert sum(p for _, p in dist.items()) == 1

    def test_uniform_over_unsatisfiable_rejected(self, modsum, quant):
        system, _ = modsum
        never = Constraint(system.space, lambda s: False, name="ff")
        with pytest.raises(DistributionError):
            quant.uniform(never)

    def test_parallel_arrays_enforced(self, quant):
        compiled = quant.engine.compiled_system()
        with pytest.raises(DistributionError):
            CompiledDistribution(compiled, [0, 1], [Fraction(1)])

    def test_push_forward_matches_object(self, modsum, quant, uniform_obj):
        _, h = modsum
        pushed = quant.push_forward(quant.uniform(), h)
        expected = uniform_obj.push_forward(h)
        assert dict(pushed.to_state_distribution().items()) == dict(
            expected.items()
        )


class TestMeasureParity:
    """Single-joint measures must be float-for-float identical: both
    paths reduce the same exact Fraction table with the same
    deterministic repr-sorted summation."""

    def test_bits_transmitted_identical(self, modsum, quant, uniform_obj):
        _, h = modsum
        cd = quant.uniform()
        for sources in ({"a1"}, {"a2"}, {"a1", "a2"}):
            assert quant.bits_transmitted(cd, sources, "beta", h) == \
                bits_transmitted(uniform_obj, sources, "beta", h)

    def test_source_entropy_identical(self, quant, uniform_obj):
        cd = quant.uniform()
        assert quant.source_entropy(cd, {"a1"}) == \
            source_entropy(uniform_obj, {"a1"})

    def test_equivocation_identical(self, modsum, quant, uniform_obj):
        _, h = modsum
        assert quant.equivocation(quant.uniform(), {"a1"}, "beta", h) == \
            equivocation(uniform_obj, {"a1"}, "beta", h)

    def test_averaged_measure_close(self, modsum, quant, uniform_obj):
        _, h = modsum
        compiled = quant.bits_transmitted_averaged(
            quant.uniform(), {"a1"}, "beta", h
        )
        assert compiled == pytest.approx(
            bits_transmitted_averaged(uniform_obj, {"a1"}, "beta", h),
            abs=1e-9,
        )
        assert compiled == pytest.approx(3.0)

    def test_interference_matches(self, modsum, quant, uniform_obj):
        _, h = modsum
        assert quant.interference(
            quant.uniform(), {"a1"}, {"a2"}, "beta", h
        ) == pytest.approx(
            interference(uniform_obj, {"a1"}, {"a2"}, "beta", h)
        )

    def test_capacity_table_identical(self, modsum, quant, uniform_obj):
        _, h = modsum
        assert quant.capacity_table(quant.uniform(), h) == capacity_table(
            uniform_obj, h
        )

    def test_weighted_distribution_parity(self, modsum, quant, uniform_obj):
        """The non-uniform code path agrees too."""
        _, h = modsum
        skewed = uniform_obj.condition(lambda s: s["a2"] < 3)
        cd = quant._as_compiled(skewed)
        assert not cd.uniform
        assert quant.bits_transmitted(cd, {"a1"}, "beta", h) == \
            bits_transmitted(skewed, {"a1"}, "beta", h)
        assert quant.bits_transmitted_averaged(
            cd, {"a1"}, "beta", h
        ) == pytest.approx(
            bits_transmitted_averaged(skewed, {"a1"}, "beta", h), abs=1e-9
        )

    def test_empty_history_transmits_nothing(self, quant):
        assert quant.bits_transmitted(
            quant.uniform(), {"a1"}, "beta", History(())
        ) == 0.0


class TestChannelLayer:
    def test_channel_matrix_matches_object(self, modsum, quant, uniform_obj):
        _, h = modsum
        ci, co, cm = quant.channel_matrix(quant.uniform(), {"a1"}, "beta", h)
        oi, oo, om = object_channel_matrix(uniform_obj, {"a1"}, "beta", h)
        assert ci == oi
        cells = lambda I, O, M: {
            (a, b): M[x][y]
            for x, a in enumerate(I)
            for y, b in enumerate(O)
        }
        assert cells(ci, co, cm) == cells(oi, oo, om)
        # Every row is an exact conditional distribution.
        for row in cm:
            assert sum(row) == pytest.approx(1.0)

    def test_capacity_matches_object(self, modsum, quant, uniform_obj):
        _, h = modsum
        assert quant.capacity(
            quant.uniform(), {"a1"}, "beta", h
        ) == pytest.approx(
            object_capacity(uniform_obj, {"a1"}, "beta", h), abs=1e-6
        )

    def test_noiseless_copy_capacity(self):
        b = SystemBuilder().integers("src", "dst", bits=2)
        b.op_assign("cp", "dst", var("src"))
        system = b.build()
        quant = QuantEngine(system)
        cap = quant.capacity(
            quant.uniform(), {"src"}, "dst", system.operation("cp")
        )
        assert cap == pytest.approx(2.0, abs=1e-6)


class TestForeignOperationFallback:
    def test_composite_falls_back_to_object_path(self, modsum, quant, uniform_obj):
        system, _ = modsum
        d = system.operation("d")
        composite = d.then(d)  # not one of the system's operations
        h = History.of(composite)
        obs.enable(reset=True)
        try:
            got = quant.bits_transmitted(quant.uniform(), {"a1"}, "beta", h)
            counters = obs.snapshot().counters
        finally:
            obs.disable()
            obs.reset()
        assert got == bits_transmitted(uniform_obj, {"a1"}, "beta", h)
        assert counters.get("quant.fallback_object", 0) >= 1


class TestComposedStoreRoundTrip:
    def test_composed_array_persists_and_reloads(self, tmp_path):
        b = SystemBuilder().integers("a1", "a2", "beta", bits=2)
        b.op_assign("d", "beta", (var("a1") + var("a2")) % 4)
        system = b.build()
        path = tmp_path / "memo.sqlite"

        with PersistentStore(path) as store:
            cold = DependencyEngine(system, store=store)
            h = History.of(system.operation("d"))
            indices = cold.history_indices(h)
            computed = cold.composed_history_array(indices)
            assert store.stats()["rows"]["composed"] == 1

        with PersistentStore(path) as store:
            warm = DependencyEngine(system, store=store)
            obs.enable(reset=True)
            try:
                reloaded = warm.composed_history_array(indices)
                counters = obs.snapshot().counters
            finally:
                obs.disable()
                obs.reset()
            assert list(reloaded) == list(computed)
            # Served from disk: a store hit, no fresh gathers.
            assert counters.get("store.hit", 0) >= 1
            assert counters.get("kernel.history_compose.gathers", 0) == 0

    def test_quant_measures_share_the_store(self, tmp_path):
        b = SystemBuilder().integers("a1", "a2", "beta", bits=2)
        b.op_assign("d", "beta", (var("a1") + var("a2")) % 4)
        system = b.build()
        path = tmp_path / "memo.sqlite"
        h = History.of(system.operation("d"))

        with PersistentStore(path) as store:
            quant = QuantEngine(engine=DependencyEngine(system, store=store))
            first = quant.bits_transmitted_averaged(
                quant.uniform(), {"a1"}, "beta", h
            )

        with PersistentStore(path) as store:
            quant = QuantEngine(engine=DependencyEngine(system, store=store))
            again = quant.bits_transmitted_averaged(
                quant.uniform(), {"a1"}, "beta", h
            )
        assert again == first == pytest.approx(2.0)
