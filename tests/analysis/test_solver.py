"""Unit tests for maximal-solution search and the join property
(section 3.5 reproduced computationally)."""

import pytest

from repro.core.constraints import Constraint
from repro.core.problems import NoTransmissionProblem
from repro.analysis.solver import (
    greedy_maximal_solution,
    has_unique_maximal_solution,
    is_maximal,
    join_property_counterexample,
    maximal_solutions,
)
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


@pytest.fixture
def guarded():
    b = SystemBuilder().booleans("m").integers("alpha", "beta", bits=1)
    b.op_if("delta", var("m"), "beta", var("alpha"))
    return b.build()


@pytest.fixture
def threshold():
    """delta: if alpha <= 10 then beta <- 0 else beta <- 1 (section 3.5)."""
    b = SystemBuilder().ranged("alpha", lo=0, hi=15).integers("beta", bits=1)
    b.op_if("delta", var("alpha") <= 10, "beta", 0, else_expr=1)
    return b.build()


class TestGreedy:
    def test_result_is_maximal_solution(self, guarded):
        problem = NoTransmissionProblem(guarded, {"alpha"}, "beta")
        phi = greedy_maximal_solution(problem, guarded.space)
        assert problem.is_solution(phi)
        assert is_maximal(problem, phi)

    def test_seed_grows(self, guarded):
        problem = NoTransmissionProblem(guarded, {"alpha"}, "beta")
        seed = Constraint.where(guarded.space, m=False, alpha=0, beta=0)
        phi = greedy_maximal_solution(problem, guarded.space, seed=seed)
        assert seed.implies(phi)
        assert is_maximal(problem, phi)

    def test_bad_seed_rejected(self, guarded):
        problem = NoTransmissionProblem(guarded, {"alpha"}, "beta")
        with pytest.raises(ValueError):
            greedy_maximal_solution(
                problem, guarded.space, seed=Constraint.true(guarded.space)
            )


class TestRepair:
    def test_repairs_failing_candidate(self, guarded):
        from repro.analysis.solver import repair_constraint

        problem = NoTransmissionProblem(guarded, {"alpha"}, "beta")
        broken = Constraint.true(guarded.space)
        fixed = repair_constraint(problem, broken)
        assert problem.is_solution(fixed)
        assert fixed.implies(broken)
        assert fixed.is_satisfiable

    def test_repair_stays_inside_phi(self, guarded):
        from repro.analysis.solver import repair_constraint

        problem = NoTransmissionProblem(guarded, {"alpha"}, "beta")
        region = Constraint(
            guarded.space, lambda s: s["beta"] == 0, name="beta=0"
        )
        fixed = repair_constraint(problem, region)
        assert fixed.implies(region)
        assert problem.is_solution(fixed)

    def test_repair_of_solution_is_itself(self, guarded):
        from repro.analysis.solver import repair_constraint

        problem = NoTransmissionProblem(guarded, {"alpha"}, "beta")
        good = Constraint(guarded.space, lambda s: not s["m"], name="~m")
        fixed = repair_constraint(problem, good)
        assert fixed.equivalent(good)


class TestMultiplicity:
    def test_threshold_has_multiple_maximal_solutions(self, threshold):
        problem = NoTransmissionProblem(threshold, {"alpha"}, "beta")
        solutions = maximal_solutions(problem, threshold.space)
        assert len(solutions) >= 2
        # The paper's two: alpha <= 10, alpha > 10.
        alpha_sets = [
            frozenset(s["alpha"] for s in phi.satisfying) for phi in solutions
        ]
        assert frozenset(range(0, 11)) in alpha_sets
        assert frozenset(range(11, 16)) in alpha_sets

    def test_all_found_solutions_are_maximal(self, threshold):
        problem = NoTransmissionProblem(threshold, {"alpha"}, "beta")
        for phi in maximal_solutions(threshold and problem, threshold.space):
            assert is_maximal(problem, phi)

    def test_join_property_counterexample(self, threshold):
        """alpha=6 and alpha in 8..10 are both solutions; so is their
        join — but alpha=6 or alpha=12 is not."""
        problem = NoTransmissionProblem(threshold, {"alpha"}, "beta")
        sp = threshold.space
        candidates = [
            Constraint.equals(sp, "alpha", 6),
            Constraint.equals(sp, "alpha", 12),
        ]
        pair = join_property_counterexample(problem, candidates)
        assert pair is not None

    def test_unique_maximal_under_independence(self, guarded):
        """Theorem 3-1: with A-independence required, the maximal solution
        is unique (the join property holds)."""
        problem = NoTransmissionProblem(
            guarded, {"alpha"}, "beta", require_independent=True
        )
        assert has_unique_maximal_solution(problem, guarded.space)
