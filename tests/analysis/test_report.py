"""Unit tests for the report tables."""

import pytest

from repro.analysis.report import Table, bullet_list


class TestTable:
    def test_alignment(self):
        t = Table(["name", "ok"])
        t.add("short", True)
        t.add("a-much-longer-name", False)
        rendered = t.render()
        lines = rendered.splitlines()
        assert lines[0].startswith("name")
        # All rows share the same column boundary.
        pipes = {line.index("|") for line in lines}
        assert len(pipes) == 1

    def test_title(self):
        t = Table(["x"], title="My title")
        t.add(1)
        rendered = t.render()
        assert rendered.splitlines()[0] == "My title"
        assert rendered.splitlines()[1] == "========"

    def test_cell_count_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_formatting(self):
        t = Table(["v"])
        t.add(True)
        t.add(False)
        t.add(0.123456)
        t.add(frozenset({"b", "a"}))
        rendered = t.render()
        assert "yes" in rendered and "no" in rendered
        assert "0.123" in rendered
        assert "{a, b}" in rendered

    def test_echo_prints(self, capsys):
        t = Table(["v"])
        t.add(1)
        t.echo()
        assert "v" in capsys.readouterr().out


class TestBulletList:
    def test_items(self):
        text = bullet_list(["one", "two"])
        assert text == "  - one\n  - two"
