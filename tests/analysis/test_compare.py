"""Unit tests for the analyzer comparison harness."""

import pytest

from repro.analysis.compare import compare_analyzers, comparison_matrix
from repro.core.constraints import Constraint
from repro.core.system import Operation, System
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, when
from repro.lang.expr import var


@pytest.fixture
def relay():
    b = SystemBuilder().booleans("a", "m", "bb")
    b.op_assign("d1", "m", var("a"))
    b.op_assign("d2", "bb", var("m"))
    return b.build()


class TestCompareAnalyzers:
    def test_all_agree_on_plain_relay(self, relay):
        comparison = compare_analyzers(relay, "a", "bb")
        assert comparison.truth
        for verdict in comparison.verdicts:
            if verdict.claims_flow is not None:
                assert verdict.claims_flow, verdict.analyzer

    def test_verdict_labels(self, relay):
        comparison = compare_analyzers(relay, "a", "bb")
        labels = {v.analyzer: v.label for v in comparison.verdicts}
        assert labels["exact"] == "flow"
        assert labels["millen-initial"].startswith("n/a")

    def test_soundness_and_false_positive_accessors(self, relay):
        comparison = compare_analyzers(relay, "bb", "a")  # no flow that way
        assert not comparison.truth
        assert comparison.sound("exact")
        assert comparison.false_positive("exact") is False
        with pytest.raises(KeyError):
            comparison.sound("nonexistent")

    def test_opaque_operations_degrade_gracefully(self):
        sp = SystemBuilder().booleans("a", "bb").space()
        opaque = System(
            sp, [Operation("copy", lambda s: s.replace(bb=s["a"]))]
        )
        comparison = compare_analyzers(opaque, "a", "bb")
        labels = {v.analyzer: v for v in comparison.verdicts}
        assert labels["static"].claims_flow is None
        assert labels["taint"].claims_flow is None
        assert labels["exact"].claims_flow is True
        assert labels["transitive"].claims_flow is True

    def test_constraint_enables_millen_modes(self, relay):
        phi = Constraint.equals(relay.space, "a", False)
        comparison = compare_analyzers(relay, "a", "bb", phi)
        labels = {v.analyzer: v for v in comparison.verdicts}
        assert labels["millen-initial"].claims_flow is not None
        assert labels["millen-envelope"].claims_flow is not None
        assert not comparison.truth  # the frozen source cannot transmit

    def test_jones_lipton_certificate_is_no_flow(self, relay):
        phi = Constraint.equals(relay.space, "a", False)
        comparison = compare_analyzers(relay, "a", "bb", phi)
        jl = next(
            v for v in comparison.verdicts if v.analyzer == "jones-lipton"
        )
        assert jl.claims_flow is False  # certified absent

    def test_matrix_runs_corpus(self, relay):
        results = comparison_matrix(
            [("relay", relay, "a", "bb", None)]
        )
        assert len(results) == 1
        name, comparison = results[0]
        assert name == "relay" and comparison.truth
