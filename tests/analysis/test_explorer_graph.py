"""Unit tests for exploration utilities and flow graphs."""

import pytest

from repro.core.constraints import Constraint
from repro.analysis.explorer import (
    dependency_matrix,
    image_set_orbit,
    reachable_constraint,
    reachable_states,
)
from repro.analysis.graph import (
    eliminated_paths,
    exact_flow_graph,
    per_operation_graph,
    render_dot,
)
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var
from repro.systems.oscillator import build_oscillator


@pytest.fixture
def relay():
    b = SystemBuilder().booleans("a", "m", "b")
    b.op_assign("d1", "m", var("a"))
    b.op_assign("d2", "b", var("m"))
    return b.build()


class TestExplorer:
    def test_reachable_states(self, relay):
        start = relay.space.state(a=True, m=False, b=False)
        reached = reachable_states(relay, [start])
        # a never changes; m and b eventually both mirror a.
        assert relay.space.state(a=True, m=True, b=True) in reached
        assert all(s["a"] for s in reached)

    def test_reachable_constraint_is_invariant(self, relay):
        phi = Constraint.where(relay.space, a=True, m=False, b=False)
        envelope = reachable_constraint(relay, phi)
        assert envelope.is_invariant(relay)
        assert phi.implies(envelope)

    def test_dependency_matrix(self, relay):
        matrix = dependency_matrix(relay)
        assert matrix["a"]["b"] is True
        assert matrix["b"]["a"] is False

    def test_image_set_orbit_oscillator(self):
        parts = build_oscillator()
        orbit = image_set_orbit(parts.system, parts.phi)
        # [lambda]phi (beta unconstrained), then the two alternating
        # singleton images (alpha=-k, beta=k) and (alpha=k, beta=-k).
        assert len(orbit) == 3
        assert {len(image) for image in orbit[1:]} == {1}


class TestGraphs:
    def test_exact_flow_graph_edges(self, relay):
        graph = exact_flow_graph(relay)
        assert graph.has_edge("a", "b")
        assert graph.edges["a", "b"]["history"] == ["d1", "d2"]
        assert not graph.has_edge("b", "a")

    def test_per_operation_graph_labels(self, relay):
        graph = per_operation_graph(relay)
        labels = {
            data["operation"]
            for _u, _v, data in graph.edges(data=True)
        }
        assert labels == {"d1", "d2"}

    def test_eliminated_paths(self, relay):
        frozen = Constraint.equals(relay.space, "a", False)
        removed = eliminated_paths(relay, frozen)
        assert ("a", "b") in removed
        assert ("a", "m") in removed

    def test_render_dot(self, relay):
        graph = exact_flow_graph(relay)
        dot = render_dot(graph, highlight=[("a", "b")])
        assert dot.startswith("digraph")
        assert '"a" -> "b" [color=red];' in dot
