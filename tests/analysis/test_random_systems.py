"""Unit tests for the random system/constraint generators."""

import random

import pytest

from repro.analysis.random_systems import (
    random_constraint,
    random_history,
    random_invariant_constraint,
    random_space,
    random_system,
)


class TestGenerators:
    def test_replayable(self):
        s1 = random_system(random.Random(42))
        s2 = random_system(random.Random(42))
        # Same seed, same transition behavior.
        for state in s1.space.states():
            for op1, op2 in zip(s1.operations, s2.operations):
                assert op1(state) == op2(state)

    def test_space_shape(self):
        sp = random_space(random.Random(0), n_objects=4, domain_size=3)
        assert len(sp.names) == 4
        assert sp.size == 81

    def test_systems_are_closed(self):
        rng = random.Random(1)
        for _ in range(5):
            system = random_system(rng)  # System() checks closure itself
            assert len(system.operations) == 2

    def test_autonomous_flavour(self):
        rng = random.Random(2)
        for _ in range(10):
            space = random_space(rng)
            phi = random_constraint(rng, space, "autonomous")
            assert phi.is_autonomous()
            assert phi.is_satisfiable

    def test_coupled_flavour_is_relatively_autonomous(self):
        rng = random.Random(3)
        space = random_space(rng, n_objects=3)
        phi = random_constraint(rng, space, "coupled")
        assert not phi.is_autonomous()
        # The coupled pair forms an autonomous clump.
        a, b = phi.name.split("=")
        assert phi.is_autonomous_relative_to({a, b})

    def test_subset_flavour_satisfiable(self):
        rng = random.Random(4)
        for _ in range(10):
            space = random_space(rng)
            assert random_constraint(rng, space, "subset").is_satisfiable

    def test_unknown_flavour(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            random_constraint(rng, random_space(rng), "nope")

    def test_invariant_constraint_is_invariant(self):
        rng = random.Random(5)
        for _ in range(10):
            system = random_system(rng)
            phi = random_invariant_constraint(rng, system)
            assert phi.is_satisfiable
            assert phi.is_invariant(system)

    def test_random_history_bounds(self):
        rng = random.Random(6)
        system = random_system(rng)
        for _ in range(10):
            h = random_history(rng, system, max_length=3)
            assert len(h) <= 3
