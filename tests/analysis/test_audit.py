"""Unit tests for the one-call audit."""

import pytest

from repro.analysis.audit import audit_system
from repro.core.constraints import Constraint
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


@pytest.fixture
def guarded():
    b = SystemBuilder().booleans("m").integers("alpha", "beta", bits=1)
    b.op_if("delta", var("m"), "beta", var("alpha"))
    return b.build()


class TestAudit:
    def test_detects_policy_violation(self, guarded):
        report = audit_system(guarded, forbidden=[("alpha", "beta")])
        assert not report.ok
        violation = report.violations[0]
        assert (violation.source, violation.target) == ("alpha", "beta")
        assert violation.witness_history == ("delta",)

    def test_constraint_clears_policy(self, guarded):
        phi = Constraint(guarded.space, lambda s: not s["m"], name="~m")
        report = audit_system(guarded, phi, forbidden=[("alpha", "beta")])
        assert report.ok
        assert report.autonomous and report.invariant

    def test_certificates_prefer_corollary_4_2(self, guarded):
        phi = Constraint(guarded.space, lambda s: not s["m"], name="~m")
        report = audit_system(guarded, phi, forbidden=[("alpha", "beta")])
        absent = {
            (f.source, f.target): f for f in report.findings if not f.flows
        }
        assert absent[("alpha", "beta")].certificate == "Corollary 4-2"

    def test_corollary_5_6_for_invariant_nonautonomous(self):
        b = SystemBuilder().booleans("m1", "m2", "beta")
        b.op_assign("sync", "m1", var("m2"))
        system = b.build()
        phi = Constraint(
            system.space, lambda s: s["m1"] == s["m2"], name="m1=m2"
        )
        report = audit_system(system, phi)
        assert not report.autonomous and report.invariant
        absent = {
            (f.source, f.target): f for f in report.findings if not f.flows
        }
        assert absent[("m1", "beta")].certificate == "Corollary 5-6"

    def test_exact_fallback_for_noninvariant(self):
        b = SystemBuilder().booleans("flag", "a", "bb")
        b.op_assign("arm", "flag", True)
        b.op_if("copy", var("flag"), "bb", var("a"))
        system = b.build()
        phi = Constraint(system.space, lambda s: not s["flag"], name="~flag")
        report = audit_system(system, phi)
        assert not report.invariant
        absent = [f for f in report.findings if not f.flows]
        assert absent
        assert all(
            f.certificate == "exact pair-graph search" for f in absent
        )

    def test_clump_discovery(self):
        b = SystemBuilder().booleans("m1", "m2", "q")
        b.op_assign("id", "q", var("q"))
        system = b.build()
        phi = Constraint(
            system.space, lambda s: s["m1"] == s["m2"], name="m1=m2"
        )
        report = audit_system(system, phi, find_clumps=True)
        assert frozenset({"m1", "m2"}) in report.relative_clumps

    def test_describe_renders(self, guarded):
        report = audit_system(guarded, forbidden=[("alpha", "beta")])
        text = report.describe()
        assert "VERDICT" in text and "FORBIDDEN" in text
