"""Unit tests for separation of variety and inductive covers
(sections 4.5, 4.6, 6.4)."""

import pytest

from repro.core.constraints import Constraint
from repro.core.covers import (
    IndependentCover,
    InductiveCover,
    partition_by,
    partition_by_value,
)
from repro.core.errors import CoverError
from repro.core.reachability import depends_ever
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, seq, when
from repro.lang.expr import var


@pytest.fixture
def nontransitive_system():
    """Section 4.6: d1: if q then m <- alpha ; d2: if ~q then beta <- m."""
    b = SystemBuilder().booleans("q", "alpha", "m", "beta")
    b.op_cmd("d1", when(var("q"), assign("m", var("alpha"))))
    b.op_cmd("d2", when(~var("q"), assign("beta", var("m"))))
    return b.build()


class TestIndependentCover:
    def test_construction_requires_members(self):
        with pytest.raises(CoverError):
            IndependentCover([])

    def test_mixed_spaces_rejected(self, nontransitive_system):
        sp1 = nontransitive_system.space
        b = SystemBuilder().booleans("x")
        with pytest.raises(CoverError):
            IndependentCover(
                [Constraint.true(sp1), Constraint.true(b.space())]
            )

    def test_check_accepts_good_cover(self, nontransitive_system):
        sp = nontransitive_system.space
        cover = IndependentCover(
            [
                Constraint(sp, lambda s: s["q"], name="q"),
                Constraint(sp, lambda s: not s["q"], name="~q"),
            ]
        )
        assert cover.check({"alpha"}).valid

    def test_check_rejects_non_independent_member(self, nontransitive_system):
        sp = nontransitive_system.space
        cover = IndependentCover(
            [
                Constraint(sp, lambda s: s["alpha"], name="alpha"),
                Constraint(sp, lambda s: not s["alpha"], name="~alpha"),
            ]
        )
        proof = cover.check({"alpha"})
        assert not proof.valid

    def test_check_rejects_non_covering_family(self, nontransitive_system):
        sp = nontransitive_system.space
        cover = IndependentCover([Constraint(sp, lambda s: s["q"], name="q")])
        proof = cover.check({"alpha"})
        assert not proof.valid
        assert cover.uncovered_state() is not None

    def test_section_4_6_proof(self, nontransitive_system):
        """The paper's separation-of-variety proof, end to end."""
        sp = nontransitive_system.space
        cover = IndependentCover(
            [
                Constraint(sp, lambda s: s["q"], name="q"),
                Constraint(sp, lambda s: not s["q"], name="~q"),
            ]
        )
        proof = cover.prove_no_dependency(nontransitive_system, {"alpha"}, "beta")
        assert proof.valid
        # Cross-check with exact reachability.
        assert not depends_ever(nontransitive_system, {"alpha"}, "beta")

    def test_cover_on_wrong_object_fails(self):
        """Section 4.5: splitting on m instead of alpha does not help for
        'if m then beta <- alpha'."""
        b = SystemBuilder().booleans("m").integers("alpha", "beta", bits=1)
        b.op_if("delta", var("m"), "beta", var("alpha"))
        system = b.build()
        sp = system.space
        cover = IndependentCover(
            [
                Constraint(sp, lambda s: s["m"], name="m"),
                Constraint(sp, lambda s: not s["m"], name="~m"),
            ]
        )
        proof = cover.prove_no_dependency(system, {"alpha"}, "beta")
        # phi1 = m still allows transmission; the whole proof must fail.
        assert not proof.valid

    def test_partition_by_value(self):
        b = SystemBuilder().integers("x", bits=2).booleans("y")
        sp = b.space()
        cover = partition_by_value(sp, "x")
        assert len(cover) == 4
        assert cover.check({"y"}).valid
        assert not cover.check({"x"}).valid  # members constrain x

    def test_partition_by_function(self):
        b = SystemBuilder().integers("x", bits=2).booleans("y")
        sp = b.space()
        cover = partition_by(sp, lambda s: s["x"] % 2, name="parity")
        assert len(cover) == 2
        assert cover.check({"y"}).valid


class TestInductiveCover:
    @pytest.fixture
    def oscillator(self):
        """Section 6.4: delta: (beta <- alpha ; alpha <- -alpha),
        phi: alpha = 37 (scaled down to +-1)."""
        b = SystemBuilder().obj("alpha", (-1, 1)).obj("beta", (-1, 1))
        b.op_cmd("delta", seq(assign("beta", var("alpha")), assign("alpha", -var("alpha"))))
        return b.build()

    def test_oscillator_cover_checks(self, oscillator):
        sp = oscillator.space
        phi = Constraint.equals(sp, "alpha", 1)
        cover = InductiveCover(
            [
                Constraint.equals(sp, "alpha", 1),
                Constraint.equals(sp, "alpha", -1),
            ]
        )
        assert cover.check(oscillator, phi).valid

    def test_oscillator_proof(self, oscillator):
        """Theorem 6-7 beats the invariant-envelope approach (section 6.4)."""
        sp = oscillator.space
        phi = Constraint.equals(sp, "alpha", 1)
        cover = InductiveCover(
            [
                Constraint.equals(sp, "alpha", 1),
                Constraint.equals(sp, "alpha", -1),
            ]
        )
        proof = cover.prove_no_dependency(oscillator, {"alpha"}, "beta", phi)
        assert proof.valid
        assert not depends_ever(oscillator, {"alpha"}, "beta", phi)

    def test_invariant_envelope_fails(self, oscillator):
        """The smallest invariant phi* containing phi does NOT solve the
        problem — the paper's motivation for inductive covers."""
        sp = oscillator.space
        envelope = Constraint(
            sp, lambda s: s["alpha"] in (-1, 1), name="alpha=+-1"
        )
        assert envelope.is_invariant(oscillator)
        assert depends_ever(oscillator, {"alpha"}, "beta", envelope)

    def test_non_cover_flagged(self, oscillator):
        sp = oscillator.space
        phi = Constraint.equals(sp, "alpha", 1)
        bad = InductiveCover([Constraint.equals(sp, "alpha", 1)])
        proof = bad.check(oscillator, phi)
        assert not proof.valid

    def test_wrong_system_rejected(self, oscillator):
        b = SystemBuilder().booleans("x")
        other = b.op_assign("id", "x", var("x")).build()
        cover = InductiveCover([Constraint.true(oscillator.space)])
        with pytest.raises(CoverError):
            cover.check(other, Constraint.true(oscillator.space))
