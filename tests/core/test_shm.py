"""Unit tests for the shared-memory kernel arena (repro.core.shm).

The attached kernel's tables are ``memoryview`` casts into the shared
block, and a block cannot close while exported views exist — so each
test copies what it needs into plain Python data, drops every view
reference, closes the block, and only then asserts.  (Workers never hit
this: they hold the block for their whole lifetime.)
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.compiled import CompiledSystem
from repro.core.shm import ITEM_SIZE, KernelArena
from repro.core.state import Space
from repro.core.system import Operation, System


@pytest.fixture
def kernel():
    space = Space({"a": (0, 1, 2), "b": (False, True), "c": ("x", "y")})
    ops = [
        Operation("bump", lambda s: s.replace(a=(s["a"] + 1) % 3)),
        Operation(
            "couple", lambda s: s.replace(b=s["a"] > 0, c="y" if s["b"] else "x")
        ),
    ]
    return CompiledSystem(System(space, ops)).kernel


def test_roundtrip_preserves_every_table(kernel):
    arena = KernelArena.create(kernel)
    try:
        attached, block = arena.handle().attach()
        meta = (attached.n, attached.names, attached.sizes, attached.strides,
                attached.op_names)
        successors = [list(t) for t in attached.successors]
        columns = [list(t) for t in attached.columns]
        del attached
        block.close()
    finally:
        arena.destroy()
    assert meta == (kernel.n, kernel.names, kernel.sizes, kernel.strides,
                    kernel.op_names)
    assert successors == [list(t) for t in kernel.successors]
    assert columns == [list(t) for t in kernel.columns]


def test_attached_kernel_computes_identical_closures(kernel):
    arena = KernelArena.create(kernel)
    results = []
    try:
        attached, block = arena.handle().attach()
        for sources in [(0,), (1,), (0, 2)]:
            a_order, a_parents = attached.closure(sources)
            results.append((sources, list(a_order), dict(a_parents)))
        del attached
        block.close()
    finally:
        arena.destroy()
    for sources, a_order, a_parents in results:
        order, parents = kernel.closure(sources)
        assert a_order == list(order)
        assert a_parents == parents


def test_handle_is_small_and_picklable(kernel):
    arena = KernelArena.create(kernel)
    try:
        payload = pickle.dumps(arena.handle())
        # The whole point: the handle ships metadata, not tables.
        table_bytes = (
            len(kernel.successors) + len(kernel.columns)
        ) * kernel.n * ITEM_SIZE
        assert len(payload) < max(table_bytes, 512)
        clone = pickle.loads(payload)
        attached, block = clone.attach()
        n = attached.n
        del attached
        block.close()
        assert n == kernel.n
    finally:
        arena.destroy()


def test_arena_size_covers_all_tables(kernel):
    arena = KernelArena.create(kernel)
    try:
        expected = (
            len(kernel.successors) + len(kernel.columns)
        ) * kernel.n * ITEM_SIZE
        assert arena.size == expected
    finally:
        arena.destroy()


def test_destroy_is_idempotent(kernel):
    arena = KernelArena.create(kernel)
    arena.destroy()
    arena.destroy()  # second unlink finds nothing and stays silent
