"""Concrete-instance tests for the executable theorem statements.

The fuzzing harness exercises these over random systems; here each theorem
gets targeted instances including the paper's own examples, plus checks
that the *vacuous* branches trigger where intended.
"""

import pytest

from repro.core import theorems as T
from repro.core.constraints import Constraint
from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, seq, when
from repro.lang.expr import var


@pytest.fixture
def relay():
    b = SystemBuilder().booleans("a", "m", "b")
    b.op_assign("d1", "m", var("a"))
    b.op_assign("d2", "b", var("m"))
    return b.build()


@pytest.fixture
def guarded():
    b = SystemBuilder().booleans("q", "a", "m", "b")
    b.op_cmd("d1", when(var("q"), assign("m", var("a"))))
    b.op_cmd("d2", when(~var("q"), assign("b", var("m"))))
    return b.build()


def tt(system):
    return Constraint.true(system.space)


class TestMonotonicity:
    def test_thm_2_2(self, relay):
        h = relay.history("d1")
        check = T.thm_2_2_source_monotonicity(
            relay, frozenset({"a"}), frozenset({"a", "b"}), "m", h
        )
        assert check.ok

    def test_thm_2_2_vacuous_on_non_subset(self, relay):
        h = relay.history("d1")
        check = T.thm_2_2_source_monotonicity(
            relay, frozenset({"a"}), frozenset({"b"}), "m", h
        )
        assert check.ok and "vacuous" in check.detail

    def test_thm_2_3(self, relay):
        h = relay.history("d1")
        phi1 = Constraint.equals(relay.space, "b", False)
        phi2 = tt(relay)
        check = T.thm_2_3_constraint_monotonicity(
            relay, phi1, phi2, frozenset({"a"}), "m", h
        )
        assert check.ok


class TestVarietyAndReflexivity:
    def test_thm_2_4(self, relay):
        phi = Constraint.equals(relay.space, "a", False)
        check = T.thm_2_4_no_variety_no_transmission(
            relay, phi, frozenset({"a"}), relay.history("d1", "d2")
        )
        assert check.ok

    def test_thm_2_5(self, relay):
        check = T.thm_2_5_empty_history_reflexive(
            relay, None, frozenset({"a"})
        )
        assert check.ok

    def test_thm_2_6(self, relay):
        h = relay.history("d1")
        check = T.thm_2_6_autonomous_decomposition(
            relay, None, frozenset({"a", "b"}), "m", h
        )
        assert check.ok

    def test_thm_2_6_vacuous_for_nonautonomous(self, relay):
        phi = Constraint(relay.space, lambda s: s["a"] == s["b"], name="a=b")
        check = T.thm_2_6_autonomous_decomposition(
            relay, phi, frozenset({"a"}), "m", relay.history("d1")
        )
        assert check.ok and "vacuous" in check.detail


class TestJoinProperty:
    def test_thm_3_1_with_independent_solutions(self):
        b = SystemBuilder().booleans("m").integers("alpha", "beta", bits=1)
        b.op_if("delta", var("m"), "beta", var("alpha"))
        system = b.build()
        # Two alpha-independent solutions (both force ~m in different ways).
        phi1 = Constraint(
            system.space, lambda s: not s["m"] and s["beta"] == 0, name="p1"
        )
        phi2 = Constraint(
            system.space, lambda s: not s["m"] and s["beta"] == 1, name="p2"
        )
        check = T.thm_3_1_join_property(
            system, phi1, phi2, frozenset({"alpha"}), "beta", history_bound=2
        )
        assert check.ok

    def test_thm_3_1_vacuous_for_dependent_solutions(self):
        """Without A-independence the join property fails (section 3.5's
        alpha=13 / alpha=74 example) — the theorem check is vacuous for
        those candidates, matching the theorem's hypothesis."""
        b = SystemBuilder().booleans("m").integers("alpha", "beta", bits=1)
        b.op_if("delta", var("m"), "beta", var("alpha"))
        system = b.build()
        phi1 = Constraint.equals(system.space, "alpha", 0)
        phi2 = Constraint.equals(system.space, "alpha", 1)
        check = T.thm_3_1_join_property(
            system, phi1, phi2, frozenset({"alpha"}), "beta", history_bound=1
        )
        assert check.ok and "vacuous" in check.detail


class TestInduction:
    def test_thm_4_1(self, relay):
        phi = tt(relay)
        check = T.thm_4_1_intermediate_object(
            relay, phi, "a", "b", relay.history("d1"), relay.history("d2")
        )
        assert check.ok

    def test_thm_4_2(self, relay):
        check = T.thm_4_2_endpoints(relay, tt(relay), "a", "b")
        assert check.ok and "vacuous" not in check.detail

    def test_thm_4_2_vacuous_without_dependency(self, relay):
        check = T.thm_4_2_endpoints(relay, tt(relay), "b", "a")
        assert check.ok and "vacuous" in check.detail

    def test_thm_4_3(self, relay):
        rank = {"a": 0, "m": 1, "b": 2}
        q = lambda x, y: rank[x] <= rank[y]
        check = T.thm_4_3_relation_bound(
            relay, tt(relay), q, relay.history("d1", "d2")
        )
        assert check.ok and "vacuous" not in check.detail

    def test_thm_4_3_vacuous_when_not_closed(self, relay):
        rank = {"a": 2, "m": 1, "b": 0}  # flows go DOWN this order
        q = lambda x, y: rank[x] <= rank[y]
        check = T.thm_4_3_relation_bound(
            relay, tt(relay), q, relay.history("d1")
        )
        assert check.ok and "vacuous" in check.detail

    def test_thm_4_5(self, guarded):
        members = (
            Constraint(guarded.space, lambda s: s["q"], name="q"),
            Constraint(guarded.space, lambda s: not s["q"], name="~q"),
        )
        check = T.thm_4_5_cover(
            guarded,
            None,
            members,
            frozenset({"a"}),
            "m",
            guarded.history("d1"),
        )
        assert check.ok


class TestRelativeAutonomy:
    def test_thm_5_1_on_example_constraints(self):
        b = SystemBuilder().integers("a1", "a2", "m1", "m2", bits=1)
        sp = b.space()
        paired = Constraint(
            sp, lambda s: s["a1"] == s["a2"] and s["m1"] == s["m2"]
        )
        for names in ({"a1", "a2"}, {"m1", "m2"}, {"a1"}, {"a1", "m1"}):
            check = T.thm_5_1_autonomy_characterizations(
                paired, frozenset(names)
            )
            assert check.ok, check.detail

    def test_thm_5_2(self):
        b = SystemBuilder().booleans("a1", "a2", "m", "beta")
        b.op_assign("d", "beta", var("a1"))
        system = b.build()
        phi = Constraint(
            system.space, lambda s: s["a1"] == s["a2"], name="a1=a2"
        )
        clumps = (frozenset({"a1", "a2"}), frozenset({"m"}))
        check = T.thm_5_2_clump_decomposition(
            system, phi, clumps, "beta", system.history("d")
        )
        assert check.ok

    def test_thm_5_3(self):
        b = SystemBuilder().booleans("a", "m1", "m2")
        b.op_cmd("fan", seq(assign("m1", var("a")), assign("m2", var("a"))))
        system = b.build()
        check = T.thm_5_3_set_target_projection(
            system,
            None,
            frozenset({"a"}),
            frozenset({"m1", "m2"}),
            system.history("fan"),
        )
        assert check.ok

    def test_thm_5_5(self, relay):
        check = T.thm_5_5_witness_decomposition(
            relay,
            tt(relay),
            frozenset({"a"}),
            "b",
            relay.history("d1"),
            relay.history("d2"),
        )
        assert check.ok


class TestImageConstraints:
    def test_thm_6_1(self, relay):
        phi = Constraint(relay.space, lambda s: s["a"], name="a")
        check = T.thm_6_1_image_soundness(relay, phi, relay.history("d1", "d2"))
        assert check.ok

    def test_thm_6_2(self, relay):
        phi = Constraint(relay.space, lambda s: s["a"], name="a")
        assert phi.is_invariant(relay)
        check = T.thm_6_2_invariant_strictness(relay, phi, relay.history("d1"))
        assert check.ok

    def test_thm_6_3_noninvariant(self):
        """Decomposition with a non-invariant constraint: the second leg
        must use [H]phi (Theorem 6-3)."""
        b = SystemBuilder().booleans("a", "m", "b", "flag")
        b.op_cmd("set", seq(assign("flag", True), assign("m", var("a"))))
        b.op_assign("fwd", "b", var("m"))
        system = b.build()
        phi = Constraint(system.space, lambda s: not s["flag"], name="~flag")
        assert not phi.is_invariant(system)
        check = T.thm_6_3_noninvariant_decomposition(
            system,
            phi,
            frozenset({"a"}),
            "b",
            system.history("set"),
            system.history("fwd"),
        )
        assert check.ok


class TestRegistry:
    def test_all_theorems_exist(self):
        for name in T.ALL_THEOREMS:
            assert hasattr(T, name), name
