"""Concurrent access to one engine's memo tiers (PR-9 satellite 1).

The serve layer hits a single session :class:`DependencyEngine` from
many executor threads at once, so the RAM→store→compute tiers must be
thread-safe *and* single-flight: concurrent misses on one key compute
once (not N times), verdicts are identical to a serial reference, and a
governed waiter queued behind a computing thread still honors its own
deadline instead of blocking uninterruptibly on the flight lock.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.analysis.random_systems import random_system
from repro.core.budget import BudgetExceededError, ExecutionBudget
from repro.core.engine import DependencyEngine

THREADS = 8


def _system(seed: int = 11):
    return random_system(
        random.Random(seed), n_objects=3, domain_size=2, n_operations=2
    )


@pytest.fixture
def telemetry():
    obs.enable(reset=True)
    try:
        yield
    finally:
        obs.disable()


def test_concurrent_queries_match_serial_reference():
    system = _system()
    names = system.space.names
    reference = {
        (x, y): bool(DependencyEngine(system).depends_ever({x}, y))
        for x in names
        for y in names
    }
    engine = DependencyEngine(system)
    barrier = threading.Barrier(THREADS)
    errors: list[BaseException] = []

    def hammer(seed: int) -> None:
        rng = random.Random(seed)
        pairs = [(x, y) for x in names for y in names] * 3
        rng.shuffle(pairs)
        barrier.wait()
        try:
            for x, y in pairs:
                assert bool(engine.depends_ever({x}, y)) == reference[(x, y)]
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    with ThreadPoolExecutor(THREADS) as pool:
        list(pool.map(hammer, range(THREADS)))
    assert not errors


def test_concurrent_misses_compute_once(telemetry):
    """Single-flight: N threads racing one cold key -> one BFS."""
    system = _system(seed=23)
    engine = DependencyEngine(system)
    engine.compiled_system()  # compile outside the measured window
    obs.enable(reset=True)
    names = system.space.names
    barrier = threading.Barrier(THREADS)

    def race(_: int):
        barrier.wait()
        return bool(engine.depends_ever({names[0]}, names[1]))

    with ThreadPoolExecutor(THREADS) as pool:
        results = set(pool.map(race, range(THREADS)))
    assert len(results) == 1
    counters = obs.snapshot().counters
    assert counters.get("engine.closure.requests", 0) == THREADS
    assert counters.get("engine.closure.memo_miss", 0) == 1
    assert counters.get("engine.closure.memo_hit", 0) == THREADS - 1


def test_governed_waiter_honors_its_own_deadline():
    """A thread queued on another's flight must trip its budget, not
    wait for the computing thread; and no waiter may deadlock."""
    system = _system(seed=31)
    names = system.space.names
    engine = DependencyEngine(system)
    barrier = threading.Barrier(2)
    outcomes: list[str] = []

    def compute() -> None:
        barrier.wait()
        engine.depends_ever({names[0]}, names[2])
        outcomes.append("computed")

    def governed() -> None:
        barrier.wait()
        budget = ExecutionBudget(
            max_expanded=1, check_interval=1
        )
        try:
            engine.depends_ever({names[0]}, names[2], budget=budget)
            outcomes.append("answered")
        except BudgetExceededError:
            outcomes.append("unknown")

    threads = [
        threading.Thread(target=compute),
        threading.Thread(target=governed),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
        assert not t.is_alive(), "deadlocked on the flight lock"
    assert "computed" in outcomes
    # The governed thread either rode the other's memo (answered) or
    # tripped honestly (unknown) — both sound; hanging is the bug.
    assert len(outcomes) == 2


def test_concurrent_history_and_bucket_tiers():
    """The history-table / bucket memos take the same locks; hammer the
    set-target path from many threads and check against serial."""
    system = _system(seed=47)
    names = system.space.names
    history = system.history(*(op.name for op in system.operations))
    serial = DependencyEngine(system)
    reference = {
        y: bool(serial.depends_history({names[0]}, y, history))
        for y in names
    }
    engine = DependencyEngine(system)
    barrier = threading.Barrier(THREADS)

    def hammer(seed: int) -> None:
        rng = random.Random(seed)
        targets = list(names) * 3
        rng.shuffle(targets)
        barrier.wait()
        for y in targets:
            assert (
                bool(engine.depends_history({names[0]}, y, history))
                == reference[y]
            )

    with ThreadPoolExecutor(THREADS) as pool:
        list(pool.map(hammer, range(THREADS)))
