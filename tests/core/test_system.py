"""Unit tests for operations, histories, systems, behaviors (Def 1-3)."""

import pytest

from repro.core.errors import OperationError, SpaceError
from repro.core.state import boolean_space, integer_space
from repro.core.system import (
    Behavior,
    History,
    Operation,
    System,
    transition_table,
)


@pytest.fixture
def space():
    return integer_space(2, "a", "b")


@pytest.fixture
def copy_op():
    return Operation("copy", lambda s: s.replace(b=s["a"]))


@pytest.fixture
def incr_op():
    return Operation("incr", lambda s: s.replace(a=(s["a"] + 1) % 4))


@pytest.fixture
def system(space, copy_op, incr_op):
    return System(space, [copy_op, incr_op])


class TestOperation:
    def test_application(self, space, copy_op):
        s = space.state(a=3, b=0)
        assert copy_op(s)["b"] == 3

    def test_requires_name(self):
        with pytest.raises(OperationError):
            Operation("", lambda s: s)

    def test_bad_return_type(self, space):
        bad = Operation("bad", lambda s: {"a": 1})
        with pytest.raises(OperationError):
            bad(space.state(a=0, b=0))

    def test_then_composes_left_to_right(self, space, copy_op, incr_op):
        # copy then incr: b gets old a, then a increments.
        composed = copy_op.then(incr_op)
        result = composed(space.state(a=1, b=0))
        assert result["b"] == 1 and result["a"] == 2


class TestHistory:
    def test_empty_history_is_identity(self, space):
        s = space.state(a=2, b=1)
        assert History.empty()(s) == s
        assert History.empty().is_empty

    def test_left_to_right_application(self, space, copy_op, incr_op):
        # Def 1-3: (H delta)(s) == delta(H(s))
        h = History.of(copy_op, incr_op)
        result = h(space.state(a=1, b=0))
        assert result == incr_op(copy_op(space.state(a=1, b=0)))

    def test_concatenation(self, copy_op, incr_op):
        h1 = History.of(copy_op)
        h2 = History.of(incr_op)
        assert list(h1 + h2) == [copy_op, incr_op]
        assert list(h1 + incr_op) == [copy_op, incr_op]
        assert list(incr_op + h1) == [incr_op, copy_op]

    def test_concatenation_not_commutative(self, space, copy_op, incr_op):
        s = space.state(a=1, b=0)
        assert (History.of(copy_op) + incr_op)(s) != (
            History.of(incr_op) + copy_op
        )(s)

    def test_sequence_protocol(self, copy_op, incr_op):
        h = History.of(copy_op, incr_op, copy_op)
        assert len(h) == 3
        assert h[0] is copy_op
        assert isinstance(h[:2], History)
        assert len(h[:2]) == 2

    def test_equality_and_hash(self, copy_op, incr_op):
        assert History.of(copy_op) == History.of(copy_op)
        assert History.of(copy_op) != History.of(incr_op)
        assert hash(History.of(copy_op)) == hash(History.of(copy_op))

    def test_splits(self, copy_op, incr_op):
        h = History.of(copy_op, incr_op)
        splits = list(h.splits())
        assert len(splits) == 3
        for prefix, suffix in splits:
            assert prefix + suffix == h

    def test_rejects_non_operations(self):
        with pytest.raises(OperationError):
            History([lambda s: s])


class TestSystem:
    def test_operation_lookup(self, system, copy_op):
        assert system.operation("copy") is copy_op
        with pytest.raises(SpaceError):
            system.operation("nope")

    def test_duplicate_names_rejected(self, space, copy_op):
        with pytest.raises(SpaceError):
            System(space, [copy_op, Operation("copy", lambda s: s)])

    def test_closure_check(self, space):
        escape = Operation("escape", lambda s: s.replace(a=99))
        with pytest.raises(OperationError):
            System(space, [escape])
        # Disabled check allows construction.
        System(space, [escape], check_closed=False)

    def test_history_by_name(self, system):
        h = system.history("copy", "incr")
        assert [op.name for op in h] == ["copy", "incr"]

    def test_histories_enumeration(self, system):
        hs = list(system.histories(2))
        # 1 empty + 2 length-1 + 4 length-2.
        assert len(hs) == 7
        assert History.empty() in hs
        assert len({h for h in hs}) == 7


class TestBehavior:
    def test_trace_and_final(self, space, system):
        h = system.history("copy", "incr")
        behavior = Behavior(space.state(a=1, b=0), h)
        trace = list(behavior.trace())
        assert len(trace) == 3
        assert trace[0] == behavior.initial
        assert trace[-1] == behavior.final()

    def test_prefixes(self, space, system):
        behavior = Behavior(space.state(a=0, b=0), system.history("copy", "incr"))
        prefixes = list(behavior.prefixes())
        assert len(prefixes) == 3
        assert prefixes[0].history.is_empty


class TestTransitionTable:
    def test_table_matches_semantics(self, system, space, copy_op):
        table = transition_table(system, "copy")
        assert len(table) == space.size
        for state, successor in table.items():
            assert successor == copy_op(state)
