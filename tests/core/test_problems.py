"""Unit tests for information problems (chapter 3) and enforcement
problems (section 1.4)."""

import pytest

from repro.core.constraints import Constraint
from repro.core.errors import ConstraintError
from repro.core.problems import (
    ConfinementProblem,
    EnforcementProblem,
    NoTransmissionProblem,
    SecurityProblem,
)
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, when
from repro.lang.expr import var


@pytest.fixture
def guarded():
    """delta: if m then beta <- alpha (the section 3.2 running example)."""
    b = SystemBuilder().booleans("m").integers("alpha", "beta", bits=1)
    b.op_if("delta", var("m"), "beta", var("alpha"))
    return b.build()


class TestNoTransmissionProblem:
    def test_guard_solution(self, guarded):
        problem = NoTransmissionProblem(guarded, {"alpha"}, "beta")
        phi = Constraint(guarded.space, lambda s: not s["m"], name="~m")
        assert problem.is_solution(phi)

    def test_constant_source_solution(self, guarded):
        # Section 3.2: freezing alpha works too...
        problem = NoTransmissionProblem(guarded, {"alpha"}, "beta")
        frozen = Constraint.equals(guarded.space, "alpha", 0)
        assert problem.is_solution(frozen)

    def test_independence_filter_rejects_frozen_source(self, guarded):
        # ...unless the problem demands alpha-independence (Def 3-1).
        problem = NoTransmissionProblem(
            guarded, {"alpha"}, "beta", require_independent=True
        )
        frozen = Constraint.equals(guarded.space, "alpha", 0)
        verdict = problem.verdict(frozen)
        assert not verdict
        assert any("independent" in r for r in verdict.reasons)
        phi = Constraint(guarded.space, lambda s: not s["m"], name="~m")
        assert problem.is_solution(phi)

    def test_non_solution_reports_history(self, guarded):
        problem = NoTransmissionProblem(guarded, {"alpha"}, "beta")
        verdict = problem.verdict(Constraint.true(guarded.space))
        assert not verdict
        assert any("transmits" in r for r in verdict.reasons)

    def test_solutions_among(self, guarded):
        problem = NoTransmissionProblem(guarded, {"alpha"}, "beta")
        candidates = [
            Constraint.true(guarded.space),
            Constraint(guarded.space, lambda s: not s["m"], name="~m"),
        ]
        solutions = problem.solutions_among(candidates)
        assert [phi.name for phi in solutions] == ["~m"]


class TestConfinementProblem:
    @pytest.fixture
    def leaky(self):
        """secret -> scratch -> spy relay, plus a benign public channel."""
        b = SystemBuilder().booleans("secret", "scratch", "spy", "public")
        b.op_assign("stash", "scratch", var("secret"))
        b.op_assign("leak", "spy", var("scratch"))
        b.op_assign("announce", "public", var("public"))
        return b.build()

    def test_unconstrained_system_leaks(self, leaky):
        problem = ConfinementProblem(leaky, confined={"secret"}, spies={"spy"})
        verdict = problem.verdict(Constraint.true(leaky.space))
        assert not verdict
        assert any("secret" in r and "spy" in r for r in verdict.reasons)

    def test_freezing_scratch_does_not_help(self, leaky):
        # An initial constraint on scratch only kills *initial* variety —
        # secret is copied into scratch afterwards (section 3.3's lesson
        # in reverse: here the relay still works).
        phi = Constraint.equals(leaky.space, "scratch", False)
        problem = ConfinementProblem(leaky, confined={"secret"}, spies={"spy"})
        assert not problem.is_solution(phi)

    def test_freezing_secret_solves(self, leaky):
        phi = Constraint.equals(leaky.space, "secret", False)
        problem = ConfinementProblem(leaky, confined={"secret"}, spies={"spy"})
        assert problem.is_solution(phi)

    def test_declassifier_exempts_path(self, leaky):
        problem = ConfinementProblem(
            leaky,
            confined={"secret"},
            spies={"spy"},
            declassifiers={("secret", "spy")},
        )
        assert problem.forbidden_paths() == []
        assert problem.is_solution(Constraint.true(leaky.space))

    def test_forbidden_paths_enumeration(self, leaky):
        problem = ConfinementProblem(
            leaky, confined={"secret", "scratch"}, spies={"spy"}
        )
        assert set(problem.forbidden_paths()) == {
            ("secret", "spy"),
            ("scratch", "spy"),
        }


class TestSecurityProblem:
    @pytest.fixture
    def two_level(self):
        b = SystemBuilder().booleans("lo", "hi")
        b.op_assign("up", "hi", var("lo"))
        return b.build()

    def test_upward_only_system_is_secure(self, two_level):
        problem = SecurityProblem(two_level, {"lo": 0, "hi": 1})
        assert problem.is_solution(Constraint.true(two_level.space))

    def test_downward_flow_detected(self):
        b = SystemBuilder().booleans("lo", "hi")
        b.op_assign("down", "lo", var("hi"))
        system = b.build()
        problem = SecurityProblem(system, {"lo": 0, "hi": 1})
        verdict = problem.verdict(Constraint.true(system.space))
        assert not verdict
        assert any("transmits down" in r for r in verdict.reasons)

    def test_partial_order_vector_classifications(self):
        """Denning-style (clearance, category) vectors with incomparable
        elements."""
        b = SystemBuilder().booleans("crypto", "nuclear")
        b.op_assign("mix", "nuclear", var("crypto"))
        system = b.build()
        cls = {"crypto": frozenset({"C"}), "nuclear": frozenset({"N"})}
        problem = SecurityProblem(system, cls, leq=lambda a, b: a <= b)
        # crypto's category is not a subset of nuclear's: flow forbidden.
        assert not problem.is_solution(Constraint.true(system.space))

    def test_missing_classification_rejected(self, two_level):
        with pytest.raises(ConstraintError):
            SecurityProblem(two_level, {"lo": 0})


class TestEnforcementProblem:
    @pytest.fixture
    def writer(self):
        b = SystemBuilder().booleans("gate", "file")
        b.op_cmd("write", when(var("gate"), assign("file", True)))
        return b.build()

    def test_enforcement_holds_with_gate_closed(self, writer):
        # Acceptable steps: 'write' may not modify 'file'.
        def step_ok(state, op):
            return op(state)["file"] == state["file"]

        problem = EnforcementProblem(writer, step_ok)
        closed = Constraint(
            writer.space, lambda s: not s["gate"], name="~gate"
        )
        assert problem.enforces(closed)

    def test_enforcement_counterexample(self, writer):
        def step_ok(state, op):
            return op(state)["file"] == state["file"]

        problem = EnforcementProblem(writer, step_ok)
        verdict = problem.enforcement_counterexample(
            Constraint.true(writer.space)
        )
        assert verdict is not None
        state, op = verdict
        assert state["gate"] and not state["file"]

    def test_reachability_matters(self):
        """A state unacceptable only after an operation re-opens the gate
        is still found (Def 1-4 quantifies over all histories)."""
        b = SystemBuilder().booleans("gate", "file")
        b.op_cmd("open", assign("gate", True))
        b.op_cmd("write", when(var("gate"), assign("file", True)))
        system = b.build()

        def step_ok(state, op):
            return op(state)["file"] == state["file"]

        problem = EnforcementProblem(system, step_ok)
        closed = Constraint(
            system.space, lambda s: not s["gate"] and not s["file"], name="safe0"
        )
        # 'open' can always re-open the gate, so enforcement fails.
        assert not problem.enforces(closed)
