"""Persistent store unit coverage: hashing, round-trips, invalidation
primitives, bounding, and degradation."""

from __future__ import annotations

import sqlite3
import warnings

import pytest

from repro import obs
from repro.core.compiled import CompiledSystem
from repro.core.constraints import Constraint
from repro.core.engine import DependencyEngine
from repro.core.store import (
    SCHEMA_VERSION,
    PersistentStore,
    bitset_count,
    bitset_intersects,
    changed_op_indices,
    changed_state_bitset,
    delta_hash,
    sat_key,
    system_hash,
)
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


def _ring(n: int = 3, twist: int = 0):
    """Small xor ring; ``twist`` perturbs operation m0's effect so the
    compiled tables (and therefore the hash) change."""
    b = SystemBuilder()
    for i in range(n):
        b.integers(f"x{i}", bits=1)
    for i in range(n):
        nxt = f"x{(i + 1) % n}"
        bump = twist if i == 0 else 0
        b.op_assign(f"m{i}", nxt, (var(nxt) + var(f"x{i}") + bump) % 2)
    return b.build()


def _kernel(system):
    return CompiledSystem(system).kernel


@pytest.fixture
def telemetry():
    obs.enable(reset=True)
    try:
        yield
    finally:
        obs.disable()


# -- canonical hashing --------------------------------------------------------


def test_system_hash_stable_across_rebuilds():
    assert system_hash(_kernel(_ring())) == system_hash(_kernel(_ring()))


def test_system_hash_sensitive_to_behaviour():
    assert system_hash(_kernel(_ring(twist=0))) != system_hash(
        _kernel(_ring(twist=1))
    )


def test_delta_hash_equal_tables_equal_hash():
    k1, k2 = _kernel(_ring()), _kernel(_ring())
    for t1, t2 in zip(k1.successors, k2.successors):
        assert delta_hash(t1) == delta_hash(t2)
    assert delta_hash([0, 1, 2]) != delta_hash([0, 1, 3])


def test_sat_key_unconstrained_and_content():
    assert sat_key(None) == "*"
    assert sat_key([1, 2, 3]) == sat_key((1, 2, 3))
    assert sat_key([1, 2, 3]) != sat_key([1, 2])


# -- bitset primitives --------------------------------------------------------


def test_bitset_intersects_and_count():
    assert bitset_intersects(b"\x03", b"\x02")
    assert not bitset_intersects(b"\x01", b"\x02")
    assert not bitset_intersects(b"", b"\xff")
    assert bitset_count(b"\x07") == 3


def test_changed_state_bitset_matches_bruteforce():
    k_old = _kernel(_ring(twist=0))
    k_new = _kernel(_ring(twist=1))
    indices = changed_op_indices(k_old.successors, k_new.successors)
    assert indices == [0]  # only m0 was twisted
    bits = changed_state_bitset(
        k_old.n, k_old.successors, k_new.successors, indices
    )
    expected = {
        i
        for d in indices
        for i in range(k_old.n)
        if k_old.successors[d][i] != k_new.successors[d][i]
    }
    got = {i for i in range(k_old.n) if bits[i >> 3] & (1 << (i & 7))}
    assert got == expected and expected  # the twist changed something


def test_touched_states_matches_bruteforce():
    engine = DependencyEngine(_ring())
    closure = engine._closure(frozenset({"x0"}), None)
    n = engine.compiled_system().kernel.n
    bits = closure.touched_states()
    expected = set()
    for code in closure.order:
        expected.add(code // n)
        expected.add(code % n)
    got = {i for i in range(n) if bits[i >> 3] & (1 << (i & 7))}
    assert got == expected


# -- round-trips --------------------------------------------------------------


def test_closure_round_trip_warm_engine(tmp_path):
    path = tmp_path / "memo.sqlite"
    system = _ring()
    cold = DependencyEngine(system, store=PersistentStore(path))
    cold_result = cold.depends_ever({"x0"}, "x1")
    assert cold_result.provenance.store == "miss"
    cold.store.close()

    warm_store = PersistentStore(path)
    warm = DependencyEngine(_ring(), store=warm_store)
    warm_result = warm.depends_ever({"x0"}, "x1")
    assert warm_result.provenance.store == "hit"
    assert warm_store.hits == 1 and warm_store.misses == 0
    assert bool(warm_result) == bool(cold_result)
    assert tuple(op.name for op in warm_result.witness.history) == tuple(
        op.name for op in cold_result.witness.history
    )
    # Same process, same engine: now the RAM memo answers first.
    again = warm.depends_ever({"x0"}, "x1")
    assert again.provenance.store == "ram"
    warm_store.close()


def test_derived_artifacts_round_trip(tmp_path):
    """A stored row carries the first-differing scan and the parents
    index; a warm closure adopts both instead of re-deriving them."""
    pytest.importorskip("numpy")
    path = tmp_path / "memo.sqlite"
    system = _ring()
    # The bitset kernel's PackedParents is the path with an index to
    # persist (the scalar kernel's dict parents need none).
    with PersistentStore(path) as store:
        cold = DependencyEngine(system, kernel="bitset", store=store)
        cold_closure = cold._closure(frozenset({"x0"}), None)
        cold_first = dict(cold_closure.first_differing())
    with PersistentStore(path) as store:
        warm = DependencyEngine(_ring(), kernel="bitset", store=store)
        warm_closure = warm._closure(frozenset({"x0"}), None)
        # Pre-seeded at construction: no lazy re-scan pending.
        assert warm_closure._first_diff == cold_first
        assert dict(warm_closure.first_differing()) == cold_first
        parents = warm_closure.parents
        assert parents._sorted is not None, (
            "stored parent index was not preloaded"
        )
        # The adopted index answers real lookups: witnesses replay.
        assert bool(warm.depends_ever({"x0"}, "x1"))


def test_derived_artifacts_corrupt_fall_back_lazily(tmp_path):
    """Tampered derived columns degrade to lazy recomputation — never a
    miss, never a degraded store, same answers."""
    path = tmp_path / "memo.sqlite"
    with PersistentStore(path) as store:
        cold = DependencyEngine(_ring(), store=store)
        expected = cold.matrix()
    conn = sqlite3.connect(path)
    conn.execute("UPDATE closures SET first_diff='not json'")
    conn.execute("UPDATE closures SET parent_index=X'00'")
    conn.commit()
    conn.close()
    with PersistentStore(path) as store:
        warm = DependencyEngine(_ring(), store=store)
        assert warm.matrix() == expected
        assert store.misses == 0 and store.hits > 0
        assert not store.degraded


def test_matrix_round_trip_identical(tmp_path):
    path = tmp_path / "memo.sqlite"
    with PersistentStore(path) as store:
        cold = DependencyEngine(_ring(), store=store).matrix()
    with PersistentStore(path) as store:
        warm_engine = DependencyEngine(_ring(), store=store)
        warm = warm_engine.matrix()
        assert store.misses == 0 and store.hits > 0
    assert warm == cold


def test_history_table_and_buckets_round_trip(tmp_path):
    path = tmp_path / "memo.sqlite"
    system = _ring()
    history = [system.operations[0], system.operations[1]]
    with PersistentStore(path) as store:
        cold = DependencyEngine(system, store=store)
        cold_result = cold.depends_history({"x0"}, "x1", history)
        assert store.writes > 0
    with PersistentStore(path) as store:
        # Fixed-history queries resolve operations by identity, so the
        # warm engine wraps the *same* system object (fresh RAM memo).
        warm = DependencyEngine(system, store=store)
        warm_result = warm.depends_history({"x0"}, "x1", history)
        assert store.hits > 0 and store.misses == 0
    assert bool(warm_result) == bool(cold_result)


def test_constraint_key_shared_across_instances(tmp_path):
    path = tmp_path / "memo.sqlite"
    system = _ring()
    phi1 = Constraint(system.space, lambda s: s["x2"] == 0, name="a")
    with PersistentStore(path) as store:
        DependencyEngine(system, store=store).depends_ever({"x0"}, "x1", phi1)
    # A distinct instance (different name, different lambda object) with
    # the same satisfying set shares the disk entry.
    system2 = _ring()
    phi2 = Constraint(system2.space, lambda s: s["x2"] + 0 == 0, name="b")
    with PersistentStore(path) as store:
        warm = DependencyEngine(system2, store=store)
        result = warm.depends_ever({"x0"}, "x1", phi2)
        assert result.provenance.store == "hit"
        assert store.hits == 1


# -- kernel hydration ---------------------------------------------------------


def test_load_kernel_round_trip(tmp_path):
    system = _ring()
    kernel = _kernel(system)
    with PersistentStore(tmp_path / "memo.sqlite") as store:
        h = store.register_system(kernel)
        loaded = store.load_kernel(h)
    assert loaded is not None
    assert loaded.n == kernel.n
    assert loaded.names == kernel.names
    assert loaded.sizes == kernel.sizes
    assert loaded.strides == kernel.strides
    assert loaded.op_names == kernel.op_names
    for got, want in zip(loaded.successors, kernel.successors):
        assert list(got) == list(want)
    for got, want in zip(loaded.columns, kernel.columns):
        assert list(got) == list(want)
    assert store.load_kernel("0" * 32) is None  # unknown hash


def test_hydrate_kernel_skips_recompile(tmp_path):
    system = _ring()
    with PersistentStore(tmp_path / "memo.sqlite") as store:
        h = store.register_system(_kernel(system))
        kernel = store.load_kernel(h)
        engine = DependencyEngine(_ring(), store=store)
        engine.hydrate_kernel(kernel)
        assert engine.compiled_system().kernel is kernel
        assert engine.depends_ever({"x0"}, "x1")


def test_kernel_arena_from_store(tmp_path):
    shm = pytest.importorskip("repro.core.shm")
    system = _ring()
    with PersistentStore(tmp_path / "memo.sqlite") as store:
        h = store.register_system(_kernel(system))
        arena = shm.KernelArena.from_store(store, h)
        assert shm.KernelArena.from_store(store, "0" * 32) is None
    assert arena is not None
    try:
        attached, block = arena.handle().attach()
        meta = (attached.n, attached.op_names)
        del attached  # views must be dropped before the block can close
        block.close()
        assert meta == (system.space.size, ("m0", "m1", "m2"))
    finally:
        arena.destroy()


def test_stored_kernel_shape_mismatch_rejected(tmp_path):
    with PersistentStore(tmp_path / "memo.sqlite") as store:
        h = store.register_system(_kernel(_ring(n=3)))
        kernel = store.load_kernel(h)
    with pytest.raises(ValueError, match="shape"):
        CompiledSystem(_ring(n=4), kernel=kernel)


# -- bounding -----------------------------------------------------------------


def test_eviction_under_byte_budget(tmp_path, telemetry):
    store = PersistentStore(tmp_path / "memo.sqlite", max_bytes=256)
    engine = DependencyEngine(_ring(n=3), store=store)
    engine.matrix()
    assert store.meter.evictions > 0
    stats = store.stats()
    assert stats["max_bytes"] == 256
    assert stats["payload_bytes"] <= 256
    assert stats["lifetime"]["evictions"] == store.meter.evictions
    assert obs.snapshot().counters.get("store.evictions", 0) > 0
    store.close()


def test_env_max_bytes(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "512")
    store = PersistentStore(tmp_path / "memo.sqlite")
    assert store.meter.capacity == 512
    store.close()


# -- corruption and degradation ----------------------------------------------


def test_corrupt_closure_row_deleted_and_recomputed(tmp_path, telemetry):
    path = tmp_path / "memo.sqlite"
    with PersistentStore(path) as store:
        cold = DependencyEngine(_ring(), store=store).depends_ever(
            {"x0"}, "x1"
        )
    conn = sqlite3.connect(path)
    conn.execute("UPDATE closures SET order_blob = X'00'")
    conn.commit()
    conn.close()
    with PersistentStore(path) as store:
        warm = DependencyEngine(_ring(), store=store)
        result = warm.depends_ever({"x0"}, "x1")
        assert bool(result) == bool(cold)
        assert result.provenance.store == "miss"  # corrupt row -> recompute
        assert store.degraded is False
        with store._lock:
            remaining = store._connect().execute(
                "SELECT COUNT(*) FROM closures WHERE length(order_blob) = 1"
            ).fetchone()[0]
        assert remaining == 0  # the bad row was dropped (then rewritten)
    assert obs.snapshot().counters.get("store.corrupt", 0) >= 1


def test_schema_mismatch_degrades(tmp_path, telemetry):
    path = tmp_path / "memo.sqlite"
    seed = PersistentStore(path)
    seed.stats()  # force the lazy connection to create the schema
    seed.close()
    conn = sqlite3.connect(path)
    conn.execute(
        "UPDATE meta SET value='999' WHERE key='schema_version'"
    )
    conn.commit()
    conn.close()
    store = PersistentStore(path)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        engine = DependencyEngine(_ring(), store=store)
        result = engine.depends_ever({"x0"}, "x1")
    assert bool(result) == bool(DependencyEngine(_ring()).depends_ever(
        {"x0"}, "x1"
    ))
    assert store.degraded
    assert "schema version mismatch" in store.degraded_reason
    assert any(
        issubclass(w.category, RuntimeWarning) for w in caught
    )
    assert obs.snapshot().counters.get("store.degraded", 0) == 1


def test_stats_shapes(tmp_path):
    store = PersistentStore(tmp_path / "memo.sqlite")
    DependencyEngine(_ring(), store=store).depends_ever({"x0"}, "x1")
    brief = store.stats_brief()
    assert brief["attached"] == 1
    assert all(isinstance(v, int) for v in brief.values())
    full = store.stats()
    assert full["schema_version"] == SCHEMA_VERSION
    assert full["rows"]["systems"] == 1
    assert full["rows"]["closures"] == 1
    assert full["lifetime"]["writes"] == store.writes
    assert full["file_bytes"] > 0
    store.close()


def test_cache_stats_has_store_section(tmp_path):
    engine = DependencyEngine(_ring())
    assert engine.cache_stats()["store"] == {"attached": 0}
    engine.attach_store(tmp_path / "memo.sqlite")
    engine.depends_ever({"x0"}, "x1")
    section = engine.cache_stats()["store"]
    assert section["attached"] == 1
    assert section["writes"] > 0
    engine.store.close()
