"""Unit tests for the bulk frontier kernel (repro.core.bitset).

These pin the *mechanics*: vectorized Def 1-1 seeding reproduces the
scalar bucket order exactly, the bulk BFS emits the byte-identical
``order``/parents sequence on both the NumPy and the pure bulk paths,
``PackedParents`` behaves like the dict it replaces, and the vectorized
column scans agree with the scalar sweeps.  Statistical agreement over
random systems lives in ``tests/property/test_bitset_agreement.py``.
"""

from __future__ import annotations

import pickle
from array import array

import pytest

from repro.core import bitset
from repro.core.bitset import (
    ENV_NUMPY_FLAG,
    INITIAL,
    SCAN_MIN_PAIRS,
    BitsetKernel,
    PackedParents,
    load_numpy,
)
from repro.core.budget import BudgetExceededError, ExecutionBudget
from repro.core.compiled import CompiledSystem
from repro.core.state import Space
from repro.core.system import Operation, System
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var

np = pytest.importorskip("numpy")


@pytest.fixture
def mixed() -> System:
    space = Space({"a": (0, 1, 2), "b": (False, True), "c": ("x", "y")})
    ops = [
        Operation("bump", lambda s: s.replace(a=(s["a"] + 1) % 3)),
        Operation(
            "couple", lambda s: s.replace(b=s["a"] > 0, c="y" if s["b"] else "x")
        ),
    ]
    return System(space, ops)


def xor_ring(n: int) -> System:
    b = SystemBuilder()
    for i in range(n):
        b.integers(f"x{i}", bits=1)
    for i in range(n):
        nxt = f"x{(i + 1) % n}"
        b.op_assign(f"m{i}", nxt, (var(nxt) + var(f"x{i}")) % 2)
    return b.build()


def scalar_seeds(kernel, source_indices, sat_ids=None) -> list[int]:
    """The Def 2-8 seed codes exactly as the scalar nested loops emit
    them — the reference the vectorized seeding must reproduce."""
    n = kernel.n
    seeds: list[int] = []
    for bucket in kernel.buckets(source_indices, sat_ids).values():
        m = len(bucket)
        for a in range(m - 1):
            base = bucket[a] * n
            for b in range(a + 1, m):
                seeds.append(base + bucket[b])
    return seeds


class TestSeeding:
    def test_seed_codes_match_scalar_bucket_order(self, mixed):
        compiled = CompiledSystem(mixed)
        bulk = BitsetKernel(compiled.kernel, use_numpy=True)
        for sources in [(0,), (1,), (0, 2), (0, 1, 2)]:
            got = bulk._seed_codes_np(sources, None).tolist()
            assert got == scalar_seeds(compiled.kernel, sources)

    def test_seed_codes_match_on_constrained_subsets(self, mixed):
        compiled = CompiledSystem(mixed)
        bulk = BitsetKernel(compiled.kernel, use_numpy=True)
        # Every third state: uneven buckets, some singletons.
        sat = array("L", range(0, compiled.kernel.n, 3))
        for sources in [(0,), (2,), (0, 1)]:
            got = bulk._seed_codes_np(sources, sat).tolist()
            assert got == scalar_seeds(compiled.kernel, sources, sat)

    def test_empty_source_set_seeds_within_single_bucket(self, mixed):
        compiled = CompiledSystem(mixed)
        bulk = BitsetKernel(compiled.kernel, use_numpy=True)
        got = bulk._seed_codes_np((), None).tolist()
        assert got == scalar_seeds(compiled.kernel, ())


class TestClosureIdentity:
    @pytest.mark.parametrize("use_numpy", [True, False])
    def test_closure_identical_to_scalar(self, mixed, use_numpy, monkeypatch):
        if not use_numpy:
            monkeypatch.setenv(ENV_NUMPY_FLAG, "0")
        compiled = CompiledSystem(mixed)
        bulk = BitsetKernel(compiled.kernel)
        assert (bulk.np is not None) == use_numpy
        for sources in [(0,), (1,), (2,), (0, 1)]:
            s_order, s_parents = compiled.kernel.closure(sources)
            b_order, b_parents = bulk.closure(sources)
            assert list(b_order) == list(s_order)
            assert dict(b_parents) == s_parents

    @pytest.mark.parametrize("use_numpy", [True, False])
    def test_closure_identical_on_xor_ring(self, use_numpy, monkeypatch):
        if not use_numpy:
            monkeypatch.setenv(ENV_NUMPY_FLAG, "0")
        compiled = CompiledSystem(xor_ring(6))
        bulk = BitsetKernel(compiled.kernel)
        s_order, s_parents = compiled.kernel.closure((0,))
        b_order, b_parents = bulk.closure((0,))
        assert list(b_order) == list(s_order)
        assert dict(b_parents) == s_parents

    def test_closure_with_constrained_sat_ids(self, mixed):
        compiled = CompiledSystem(mixed)
        bulk = BitsetKernel(compiled.kernel, use_numpy=True)
        sat = array("L", range(0, compiled.kernel.n, 2))
        s_order, s_parents = compiled.kernel.closure((0,), sat)
        b_order, b_parents = bulk.closure((0,), sat)
        assert list(b_order) == list(s_order)
        assert dict(b_parents) == s_parents

    def test_no_operations_closure_is_seeds_only(self):
        space = Space({"a": (0, 1), "b": (0, 1)})
        compiled = CompiledSystem(System(space, []))
        bulk = BitsetKernel(compiled.kernel, use_numpy=True)
        s_order, s_parents = compiled.kernel.closure((0,))
        b_order, b_parents = bulk.closure((0,))
        assert list(b_order) == list(s_order)
        assert dict(b_parents) == s_parents
        assert all(v == INITIAL for v in dict(b_parents).values())

    def test_numpy_required_raises_without_numpy(self, mixed, monkeypatch):
        monkeypatch.setenv(ENV_NUMPY_FLAG, "0")
        assert load_numpy() is None
        with pytest.raises(RuntimeError):
            BitsetKernel(CompiledSystem(mixed).kernel, use_numpy=True)


class TestBudget:
    @pytest.mark.parametrize("use_numpy", [True, False])
    def test_zero_budget_trips_before_expansion(self, use_numpy, monkeypatch):
        if not use_numpy:
            monkeypatch.setenv(ENV_NUMPY_FLAG, "0")
        compiled = CompiledSystem(xor_ring(6))
        bulk = BitsetKernel(compiled.kernel)
        meter = ExecutionBudget(max_expanded=0).start("test")
        with pytest.raises(BudgetExceededError) as exc:
            bulk.closure((0,), meter=meter)
        assert exc.value.partial.expanded == 0

    @pytest.mark.parametrize("use_numpy", [True, False])
    def test_small_budget_trips_and_completed_run_is_exact(
        self, use_numpy, monkeypatch
    ):
        if not use_numpy:
            monkeypatch.setenv(ENV_NUMPY_FLAG, "0")
        compiled = CompiledSystem(xor_ring(6))
        bulk = BitsetKernel(compiled.kernel)
        full_order, _ = compiled.kernel.closure((0,))
        meter = ExecutionBudget(max_expanded=10).start("test")
        with pytest.raises(BudgetExceededError):
            bulk.closure((0,), meter=meter)
        # A budget generous enough to finish changes nothing.
        meter = ExecutionBudget(max_expanded=len(full_order) * 2).start("t")
        order, _ = bulk.closure((0,), meter=meter)
        assert list(order) == list(full_order)

    @pytest.mark.parametrize("use_numpy", [True, False])
    def test_stats_include_levels(self, use_numpy, monkeypatch):
        if not use_numpy:
            monkeypatch.setenv(ENV_NUMPY_FLAG, "0")
        compiled = CompiledSystem(xor_ring(5))
        bulk = BitsetKernel(compiled.kernel)
        stats: dict[str, int] = {}
        order, parents = bulk.closure((0,), stats=stats)
        assert stats["discovered"] == len(order) == len(parents)
        assert stats["expansions"] == len(order)
        assert stats["levels"] >= 1
        assert stats["frontier_high_water"] >= 1


class TestPackedParents:
    def _packed(self):
        codes = np.array([7, 3, 11, 5], dtype=np.int64)
        packed = np.array([INITIAL, 70, 30, 110], dtype=np.int64)
        return PackedParents(codes, packed)

    def test_mapping_behaviour(self):
        parents = self._packed()
        assert len(parents) == 4
        assert parents[7] == INITIAL
        assert parents[3] == 70
        assert 11 in parents
        assert 4 not in parents
        assert "x" not in parents
        with pytest.raises(KeyError):
            parents[4]

    def test_iteration_is_discovery_order(self):
        parents = self._packed()
        assert list(parents) == [7, 3, 11, 5]
        assert dict(parents) == {7: INITIAL, 3: 70, 11: 30, 5: 110}

    def test_pickle_roundtrip(self):
        parents = self._packed()
        clone = pickle.loads(pickle.dumps(parents))
        assert dict(clone) == dict(parents)
        assert list(clone) == list(parents)


class TestVectorScans:
    def _big_closure(self):
        compiled = CompiledSystem(xor_ring(6))
        order, parents = compiled.kernel.closure((0,))
        assert len(order) >= SCAN_MIN_PAIRS, "fixture must clear the threshold"
        return compiled, order

    def test_first_differing_scan_matches_scalar_sweep(self, monkeypatch):
        compiled, order = self._big_closure()
        scanned = bitset.first_differing_scan(compiled.kernel, order)
        assert scanned is not None
        # Scalar reference: the sweep CompiledClosure runs when the scan
        # is unavailable.
        kernel = compiled.kernel
        reference: dict[str, int] = {}
        for pair in order:
            i, j = divmod(pair, kernel.n)
            for name, column in zip(kernel.names, kernel.columns):
                if name not in reference and column[i] != column[j]:
                    reference[name] = pair
        assert scanned == reference

    def test_first_differing_at_all_scan_matches_scalar(self):
        compiled, order = self._big_closure()
        kernel = compiled.kernel
        for targets in (["x0", "x1"], ["x2"], list(kernel.names)):
            handled, code = bitset.first_differing_at_all_scan(
                kernel, order, sorted(targets)
            )
            assert handled
            column_of = dict(zip(kernel.names, kernel.columns))
            cols = [column_of[t] for t in sorted(targets)]
            expected = None
            for pair in order:
                i, j = divmod(pair, kernel.n)
                if all(c[i] != c[j] for c in cols):
                    expected = pair
                    break
            assert code == expected

    def test_scans_decline_below_threshold(self, mixed):
        compiled = CompiledSystem(mixed)
        order, _ = compiled.kernel.closure((0,))
        assert len(order) < SCAN_MIN_PAIRS
        assert bitset.first_differing_scan(compiled.kernel, order) is None
        handled, _ = bitset.first_differing_at_all_scan(
            compiled.kernel, order, ["a"]
        )
        assert not handled

    def test_scans_decline_without_numpy(self, monkeypatch):
        compiled, order = self._big_closure()
        monkeypatch.setenv(ENV_NUMPY_FLAG, "0")
        assert bitset.first_differing_scan(compiled.kernel, order) is None
        handled, _ = bitset.first_differing_at_all_scan(
            compiled.kernel, order, ["x0"]
        )
        assert not handled
