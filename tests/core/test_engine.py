"""Unit tests for the shared pair-graph dependency engine."""

from __future__ import annotations

import pytest

from repro.analysis.explorer import dependency_matrix
from repro.core.constraints import Constraint
from repro.core.engine import DependencyEngine, shared_engine
from repro.core.errors import ConstraintError, UnknownObjectError
from repro.core.state import boolean_space
from repro.core.system import Operation, System
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


@pytest.fixture
def relay() -> System:
    """a -> m -> b relay: information flows only along the chain."""
    b = SystemBuilder().booleans("a", "m", "b")
    b.op_assign("d1", "m", var("a"))
    b.op_assign("d2", "b", var("m"))
    return b.build()


class TestDependencyEngine:
    def test_single_target_matches_chain(self, relay):
        engine = DependencyEngine(relay)
        assert bool(engine.depends_ever({"a"}, "b"))
        assert not bool(engine.depends_ever({"b"}, "a"))
        result = engine.depends_ever({"a"}, "b")
        assert [op.name for op in result.witness.history] == ["d1", "d2"]

    def test_closure_is_computed_once_per_source_and_constraint(self):
        calls = {"n": 0}

        def counted(s):
            calls["n"] += 1
            return s.replace(b=s["a"])

        space = boolean_space("a", "b")
        system = System(space, [Operation("copy", counted)], check_closed=False)
        engine = DependencyEngine(system)
        engine.depends_ever({"a"}, "b")
        tabulated = calls["n"]
        assert tabulated == space.size  # one execution per state: the table
        engine.depends_ever({"a"}, "a")
        engine.depends_ever_set({"a"}, {"a", "b"})
        engine.matrix()
        assert calls["n"] == tabulated  # everything else is dict lookups

    def test_constraint_closures_are_keyed_separately(self, relay):
        engine = DependencyEngine(relay)
        phi = Constraint(relay.space, lambda s: not s["a"], name="~a")
        assert bool(engine.depends_ever({"a"}, "b"))
        assert not bool(engine.depends_ever({"a"}, "b", phi))

    def test_set_target_requires_simultaneous_difference(self, relay):
        engine = DependencyEngine(relay)
        # a reaches both m and b, and a single pair differs at both at once.
        assert bool(engine.depends_ever_set({"a"}, {"m", "b"}))
        # b reaches nothing downstream of itself.
        assert not bool(engine.depends_ever_set({"b"}, {"a", "b"}))
        with pytest.raises(ConstraintError):
            engine.depends_ever_set({"a"}, [])

    def test_matrix_matches_explorer_wrapper(self, relay):
        engine = DependencyEngine(relay)
        assert engine.matrix() == dependency_matrix(relay)

    def test_parallel_matrix_matches_serial(self, relay):
        serial = DependencyEngine(relay).matrix()
        parallel = DependencyEngine(relay).matrix(max_workers=4)
        assert serial == parallel

    def test_parallel_closure_matches_serial(self, relay):
        serial = DependencyEngine(relay).closure()
        parallel = DependencyEngine(relay).closure(max_workers=4)
        assert set(serial) == set(parallel)
        for key in serial:
            assert bool(serial[key]) == bool(parallel[key])

    def test_unknown_names_and_foreign_constraints_are_rejected(self, relay):
        engine = DependencyEngine(relay)
        with pytest.raises(UnknownObjectError):
            engine.depends_ever({"zz"}, "b")
        with pytest.raises(UnknownObjectError):
            engine.depends_ever({"a"}, "zz")
        foreign = Constraint(boolean_space("q"), lambda s: True, name="q")
        with pytest.raises(ConstraintError):
            engine.depends_ever({"a"}, "b", foreign)

    def test_operation_flows_on_relay(self, relay):
        flows = DependencyEngine(relay).operation_flows()
        assert ("a", "m") in flows["d1"]
        assert ("m", "b") in flows["d2"]
        assert ("a", "b") not in flows["d1"]  # one step cannot skip m


class TestSharedEngine:
    def test_one_engine_per_system_instance(self, relay):
        assert shared_engine(relay) is shared_engine(relay)

    def test_distinct_systems_get_distinct_engines(self):
        b1 = SystemBuilder().booleans("a", "b")
        b1.op_assign("copy", "b", var("a"))
        b2 = SystemBuilder().booleans("a", "b")
        b2.op_assign("copy", "b", var("a"))
        assert shared_engine(b1.build()) is not shared_engine(b2.build())
