"""Unit tests for exact existential-history dependency (pair-graph BFS)."""

import pytest

from repro.core.constraints import Constraint
from repro.core.dependency import depends_within
from repro.core.errors import ConstraintError, UnknownObjectError
from repro.core.reachability import (
    dependency_closure,
    depends_ever,
    depends_ever_set,
)
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, seq, when
from repro.lang.expr import var


@pytest.fixture
def relay():
    b = SystemBuilder().booleans("a", "m", "b")
    b.op_assign("d1", "m", var("a"))
    b.op_assign("d2", "b", var("m"))
    return b.build()


class TestDependsEver:
    def test_multi_step_path_found(self, relay):
        result = depends_ever(relay, {"a"}, "b")
        assert result
        assert [op.name for op in result.witness.history] == ["d1", "d2"]

    def test_shortest_witness(self, relay):
        # BFS guarantees a shortest history; d1 d2 is minimal here.
        result = depends_ever(relay, {"a"}, "b")
        assert len(result.witness.history) == 2

    def test_no_path_means_false(self, relay):
        # Nothing ever writes 'a'.
        assert not depends_ever(relay, {"b"}, "a")
        assert not depends_ever(relay, {"m"}, "a")

    def test_agrees_with_bounded_search(self, relay):
        for source in ("a", "m", "b"):
            for target in ("a", "m", "b"):
                exact = bool(depends_ever(relay, {source}, target))
                bounded = bool(
                    depends_within(relay, {source}, target, max_length=4)
                )
                assert exact == bounded, (source, target)

    def test_exact_beats_short_bounds(self):
        """A chain long enough that shallow bounded search misses it."""
        b = SystemBuilder().booleans("x0", "x1", "x2", "x3", "x4")
        for i in range(4):
            b.op_assign(f"d{i}", f"x{i + 1}", var(f"x{i}"))
        system = b.build()
        assert not depends_within(system, {"x0"}, "x4", max_length=3)
        result = depends_ever(system, {"x0"}, "x4")
        assert result
        assert len(result.witness.history) == 4

    def test_constraint_respected(self, relay):
        phi = Constraint.equals(relay.space, "a", False)
        assert not depends_ever(relay, {"a"}, "b", phi)

    def test_unknown_names_rejected(self, relay):
        with pytest.raises(UnknownObjectError):
            depends_ever(relay, {"zzz"}, "b")

    def test_cross_space_constraint_rejected(self, relay):
        other = SystemBuilder().booleans("q").space()
        with pytest.raises(ConstraintError):
            depends_ever(relay, {"a"}, "b", Constraint.true(other))

    def test_witness_pair_is_valid(self, relay):
        result = depends_ever(relay, {"a"}, "b")
        w = result.witness
        assert w.sigma1.equal_except_at(w.sigma2, {"a"})
        a1, a2 = w.after
        assert a1["b"] != a2["b"]

    def test_guard_blocks_all_histories(self):
        """The section 4.4 q-system: no history at all transmits a -> b."""
        b = SystemBuilder().booleans("q", "a", "m", "b")
        b.op_cmd("d1", when(var("q"), assign("m", var("a"))))
        b.op_cmd("d2", when(~var("q"), assign("b", var("m"))))
        system = b.build()
        assert not depends_ever(system, {"a"}, "b")


class TestDependsEverSet:
    def test_set_target(self):
        b = SystemBuilder().booleans("a", "m1", "m2")
        b.op_cmd("fan", seq(assign("m1", var("a")), assign("m2", var("a"))))
        system = b.build()
        assert depends_ever_set(system, {"a"}, {"m1", "m2"})

    def test_set_target_requires_simultaneous_difference(self):
        """m1 and m2 receive complementary values: a pair differing at both
        still exists, but only via the single op that writes both."""
        b = SystemBuilder().booleans("a", "m1", "m2")
        b.op_assign("one", "m1", var("a"))
        system = b.build()
        # 'one' never writes m2, so differing at m2 requires the initial
        # pair to differ there — but the pairs may differ only at {a}.
        assert not depends_ever_set(system, {"a"}, {"m1", "m2"})

    def test_empty_target_set_rejected(self, relay):
        with pytest.raises(ConstraintError):
            depends_ever_set(relay, {"a"}, set())


class TestDependencyClosure:
    def test_closure_matrix(self, relay):
        closure = dependency_closure(relay)
        assert closure[(frozenset({"a"}), "b")]
        assert closure[(frozenset({"a"}), "m")]
        assert not closure[(frozenset({"b"}), "a")]

    def test_closure_with_custom_sources(self, relay):
        closure = dependency_closure(relay, sources=[frozenset({"a", "m"})])
        assert closure[(frozenset({"a", "m"}), "b")]
        assert len(closure) == len(relay.space.names)
