"""Unit tests for Strong Dependency Induction (chapter 4/5 provers)."""

import pytest

from repro.core.constraints import Constraint
from repro.core.dependency import transmits
from repro.core.errors import ProofError
from repro.core.induction import (
    decompose_dependency,
    find_intermediate,
    intermediate_objects,
    per_operation_flows,
    prove_no_dependency,
    prove_no_dependency_nonautonomous,
    prove_via_relation,
)
from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, seq
from repro.lang.expr import var


@pytest.fixture
def chain_system():
    """d1: m <- alpha ; d2: beta <- m — the section 4.2 relay."""
    b = SystemBuilder().booleans("alpha", "m", "beta")
    b.op_assign("d1", "m", var("alpha"))
    b.op_assign("d2", "beta", var("m"))
    return b.build()


@pytest.fixture
def guarded_system():
    """delta: if m then beta <- alpha (section 3.2)."""
    b = SystemBuilder().booleans("m").integers("alpha", "beta", bits=1)
    b.op_if("delta", var("m"), "beta", var("alpha"))
    return b.build()


class TestPerOperationFlows:
    def test_flow_matrix(self, chain_system):
        flows = per_operation_flows(chain_system)
        assert flows[("alpha", "m")]
        assert flows[("m", "beta")]
        assert not flows[("alpha", "beta")]  # no single op does it
        assert flows[("alpha", "alpha")]  # never overwritten

    def test_restricted_sources_targets(self, chain_system):
        flows = per_operation_flows(
            chain_system, sources=["alpha"], targets=["m"]
        )
        assert set(flows) == {("alpha", "m")}


class TestCorollary42:
    def test_proof_succeeds_for_guarded_system(self, guarded_system):
        phi = Constraint(
            guarded_system.space, lambda s: not s["m"], name="~m"
        )
        proof = prove_no_dependency(guarded_system, phi, "alpha", "beta")
        assert proof.valid
        # And the conclusion is genuinely true (cross-check exhaustively).
        for h in guarded_system.histories(3):
            assert not transmits(guarded_system, {"alpha"}, "beta", h, phi)

    def test_proof_fails_without_constraint(self, guarded_system):
        proof = prove_no_dependency(guarded_system, None, "alpha", "beta")
        assert not proof.valid
        assert proof.failures

    def test_requires_distinct_objects(self, guarded_system):
        with pytest.raises(ProofError):
            prove_no_dependency(guarded_system, None, "alpha", "alpha")

    def test_nonautonomous_precondition_flagged(self, guarded_system):
        phi = Constraint(
            guarded_system.space,
            lambda s: s["alpha"] == s["beta"],
            name="a=b",
        )
        proof = prove_no_dependency(guarded_system, phi, "alpha", "beta")
        assert any("autonomous" in ob.description for ob in proof.failures)

    def test_require_raises_with_context(self, guarded_system):
        proof = prove_no_dependency(guarded_system, None, "alpha", "beta")
        with pytest.raises(ProofError):
            proof.require()

    def test_valid_proof_requires_cleanly(self, guarded_system):
        phi = Constraint(guarded_system.space, lambda s: not s["m"], name="~m")
        proof = prove_no_dependency(guarded_system, phi, "alpha", "beta")
        assert proof.require() is proof


class TestCorollary43Relation:
    def test_classification_argument(self):
        """Security-style proof: flows only go up the classification."""
        b = SystemBuilder().booleans("lo", "hi")
        b.op_assign("up", "hi", var("lo"))
        system = b.build()
        cls = {"lo": 0, "hi": 1}
        proof = prove_via_relation(
            system, None, lambda x, y: cls[x] <= cls[y], q_name="Cls<="
        )
        assert proof.valid

    def test_downward_flow_breaks_proof(self):
        b = SystemBuilder().booleans("lo", "hi")
        b.op_assign("down", "lo", var("hi"))
        system = b.build()
        cls = {"lo": 0, "hi": 1}
        proof = prove_via_relation(
            system, None, lambda x, y: cls[x] <= cls[y], q_name="Cls<="
        )
        assert not proof.valid
        assert any("hi" in ob.description for ob in proof.failures)

    def test_non_transitive_relation_flagged(self):
        b = SystemBuilder().booleans("a", "b", "c")
        b.op_assign("noop_like", "a", var("a"))
        system = b.build()
        pairs = {("a", "b"), ("b", "c")}  # not transitive: missing (a, c)
        q = lambda x, y: x == y or (x, y) in pairs
        proof = prove_via_relation(system, None, q)
        assert any("transitive" in ob.description for ob in proof.failures)


class TestCorollary56NonAutonomous:
    def test_invariant_nonautonomous_proof(self):
        """phi: m1 = m2 with ops that preserve it; beta never written."""
        b = SystemBuilder().booleans("m1", "m2", "beta")
        b.op_cmd("sync", seq(assign("m1", var("m2"))))
        system = b.build()
        phi = Constraint(system.space, lambda s: s["m1"] == s["m2"], name="m1=m2")
        assert not phi.is_autonomous()
        proof = prove_no_dependency_nonautonomous(system, phi, {"m1", "m2"}, "beta")
        assert proof.valid

    def test_beta_in_sources_rejected(self, chain_system):
        with pytest.raises(ProofError):
            prove_no_dependency_nonautonomous(
                chain_system, None, {"alpha", "beta"}, "beta"
            )

    def test_failing_alternative_reports_witness(self, chain_system):
        proof = prove_no_dependency_nonautonomous(
            chain_system, None, {"alpha"}, "beta"
        )
        assert not proof.valid


class TestDecomposition:
    def test_theorem_4_1_find_intermediate(self, chain_system):
        h1 = chain_system.history("d1")
        h2 = chain_system.history("d2")
        found = find_intermediate(chain_system, None, "alpha", "beta", h1, h2)
        assert found is not None
        m, first, second = found
        assert m == "m"
        assert first and second

    def test_find_intermediate_none_when_no_dependency(self, chain_system):
        h1 = chain_system.history("d2")  # wrong order: beta <- m first
        h2 = chain_system.history("d1")
        assert (
            find_intermediate(chain_system, None, "alpha", "beta", h1, h2)
            is None
        )

    def test_intermediate_objects_from_witness(self, chain_system):
        h = chain_system.history("d1", "d2")
        result = transmits(chain_system, {"alpha"}, "beta", h)
        middle = intermediate_objects(result.witness, h[:1])
        # After d1, the witness states differ at alpha and m.
        assert "m" in middle and "alpha" in middle

    def test_decompose_dependency_legs_hold(self, chain_system):
        h = chain_system.history("d1", "d2")
        result = transmits(chain_system, {"alpha"}, "beta", h)
        decomp = decompose_dependency(
            chain_system, None, result.witness, split_at=1, target="beta"
        )
        assert decomp.first_leg and decomp.second_leg
        assert "m" in decomp.intermediates

    def test_decompose_noninvariant_uses_image_constraint(self):
        """Theorem 6-3: the second leg runs under [H]phi."""
        b = SystemBuilder().booleans("alpha", "m", "beta", "flag")
        b.op_cmd("set", seq(assign("flag", True), assign("m", var("alpha"))))
        b.op_cmd("fwd", assign("beta", var("m")))
        system = b.build()
        phi = Constraint(system.space, lambda s: not s["flag"], name="~flag")
        h = system.history("set", "fwd")
        result = transmits(system, {"alpha"}, "beta", h, phi)
        assert result
        decomp = decompose_dependency(
            system, phi, result.witness, split_at=1, target="beta",
            invariant=False,
        )
        assert decomp.second_leg.constraint_name.startswith("[")
