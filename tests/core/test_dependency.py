"""Unit tests for strong dependency checkers, using the paper's own
running examples (sections 2.2-2.5, 5.2, 5.5)."""

import pytest

from repro.core.constraints import Constraint
from repro.core.dependency import (
    dependency_pairs,
    depends_within,
    no_transmission,
    sources_transmitting,
    transmits,
    transmits_to_set,
)
from repro.core.errors import ConstraintError, UnknownObjectError
from repro.core.state import Space
from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, seq, when
from repro.lang.expr import var


@pytest.fixture
def copy_system():
    """delta: beta <- alpha over 4-bit-ish integers (section 2.2)."""
    b = SystemBuilder().integers("alpha", "beta", bits=2)
    b.op_assign("delta", "beta", var("alpha"))
    return b.build()


class TestBasicTransmission:
    def test_copy_transmits(self, copy_system):
        delta = copy_system.operation("delta")
        result = transmits(copy_system, {"alpha"}, "beta", delta)
        assert result
        w = result.witness
        assert w.sigma1.equal_except_at(w.sigma2, {"alpha"})
        a1, a2 = w.after
        assert a1["beta"] != a2["beta"]

    def test_constant_constraint_blocks(self, copy_system):
        # Section 2.2: alpha known to be a constant -> no transmission.
        delta = copy_system.operation("delta")
        phi = Constraint.equals(copy_system.space, "alpha", 2)
        assert no_transmission(copy_system, {"alpha"}, "beta", delta, phi)

    def test_threshold_example(self):
        # delta: if alpha < 10 then beta <- 0 else beta <- 1 (section 2.2).
        b = SystemBuilder().ranged("alpha", lo=0, hi=15).integers("beta", bits=1)
        b.op_if("delta", var("alpha") < 10, "beta", 0, else_expr=1)
        system = b.build()
        delta = system.operation("delta")
        # Unconstrained: one bit flows.
        assert transmits(system, {"alpha"}, "beta", delta)
        # Constrained alpha < 10: no variety crosses the threshold.
        phi = Constraint(system.space, lambda s: s["alpha"] < 10, name="alpha<10")
        assert not transmits(system, {"alpha"}, "beta", delta, phi)

    def test_operation_accepted_directly(self, copy_system):
        delta = copy_system.operation("delta")
        assert transmits(copy_system, {"alpha"}, "beta", delta)
        assert transmits(copy_system, {"alpha"}, "beta", History.of(delta))

    def test_unknown_names_rejected(self, copy_system):
        delta = copy_system.operation("delta")
        with pytest.raises(UnknownObjectError):
            transmits(copy_system, {"zzz"}, "beta", delta)
        with pytest.raises(UnknownObjectError):
            transmits(copy_system, {"alpha"}, "zzz", delta)

    def test_cross_space_constraint_rejected(self, copy_system):
        other = Space({"x": range(2)})
        with pytest.raises(ConstraintError):
            transmits(
                copy_system,
                {"alpha"},
                "beta",
                copy_system.operation("delta"),
                Constraint.true(other),
            )


class TestReflexivity:
    """Section 2.5."""

    def test_identity_like_op_reflexive(self):
        b = SystemBuilder().integers("alpha", "beta", bits=2)
        b.op_assign("delta", "beta", var("alpha"))
        system = b.build()
        # alpha |>^delta alpha: variety stays in alpha.
        assert transmits(system, {"alpha"}, "alpha", system.operation("delta"))

    def test_overwrite_destroys_reflexivity(self):
        b = SystemBuilder().integers("alpha", bits=2)
        b.op_assign("zero", "alpha", 0)
        system = b.build()
        assert not transmits(system, {"alpha"}, "alpha", system.operation("zero"))

    def test_empty_history_reflexive_with_variety(self, copy_system):
        empty = History.empty()
        assert transmits(copy_system, {"alpha"}, "alpha", empty)

    def test_constant_constraint_kills_empty_history_reflexivity(
        self, copy_system
    ):
        # phi == alpha = 37-analogue: no variety -> not even reflexive.
        phi = Constraint.equals(copy_system.space, "alpha", 1)
        assert not transmits(copy_system, {"alpha"}, "alpha", History.empty(), phi)

    def test_theorem_2_5_empty_history_only_reflexive(self, copy_system):
        assert not transmits(copy_system, {"alpha"}, "beta", History.empty())


class TestSetSources:
    def test_sum_transmits_from_set_and_singletons(self):
        # delta: beta <- alpha1 + alpha2 (section 2.3).
        b = SystemBuilder().integers("alpha1", "alpha2", bits=2)
        b.obj("beta", range(7))
        b.op_assign("delta", "beta", var("alpha1") + var("alpha2"))
        system = b.build()
        delta = system.operation("delta")
        assert transmits(system, {"alpha1", "alpha2"}, "beta", delta)
        assert transmits(system, {"alpha1"}, "beta", delta)
        assert transmits(system, {"alpha2"}, "beta", delta)
        assert sources_transmitting(
            system, {"alpha1", "alpha2"}, "beta", delta
        ) == frozenset({"alpha1", "alpha2"})

    def test_theorem_2_1_some_singleton_transmits(self):
        b = SystemBuilder().booleans("a", "b", "c")
        b.op_assign("delta", "c", var("a"))
        system = b.build()
        delta = system.operation("delta")
        assert transmits(system, {"a", "b"}, "c", delta)
        singles = sources_transmitting(system, {"a", "b"}, "c", delta)
        assert singles == frozenset({"a"})


class TestSetTargets:
    """Defs 5-5/5-6: states must differ at EVERY target after H."""

    @pytest.fixture
    def fanout(self):
        # delta1: (m1 <- alpha ; m2 <- alpha) — section 5.5's system.
        b = SystemBuilder().booleans("alpha", "m1", "m2", "beta")
        b.op_cmd("delta1", seq(assign("m1", var("alpha")), assign("m2", var("alpha"))))
        b.op_assign("delta2", "beta", var("m1"))
        return b.build()

    def test_alpha_reaches_both(self, fanout):
        delta1 = fanout.operation("delta1")
        result = transmits_to_set(fanout, {"alpha"}, {"m1", "m2"}, delta1)
        assert result
        a1, a2 = result.witness.after
        assert a1["m1"] != a2["m1"] and a1["m2"] != a2["m2"]

    def test_section_5_5_clump_dependency(self, fanout):
        """phi: m1 = m2 (invariant, non-autonomous).  Singletons fail but
        the clump {m1, m2} transmits to beta."""
        phi = Constraint(
            fanout.space, lambda s: s["m1"] == s["m2"], name="m1=m2"
        )
        delta2 = fanout.operation("delta2")
        assert not transmits(fanout, {"m1"}, "beta", delta2, phi)
        assert not transmits(fanout, {"m2"}, "beta", delta2, phi)
        assert transmits(fanout, {"m1", "m2"}, "beta", delta2, phi)

    def test_empty_target_set_rejected(self, fanout):
        with pytest.raises(ConstraintError):
            transmits_to_set(
                fanout, {"alpha"}, set(), fanout.operation("delta1")
            )


class TestNonAutonomousCaveat:
    """Section 5.2: with phi == (alpha1 = alpha2), strong dependency says
    nothing flows from alpha1 even though information clearly does —
    the documented limit of the formalism."""

    def test_hypothesis_failure_example(self):
        b = SystemBuilder().integers("alpha1", "alpha2", "beta", bits=2)
        b.op_assign("delta", "beta", var("alpha1"))
        system = b.build()
        delta = system.operation("delta")
        phi = Constraint(
            system.space, lambda s: s["alpha1"] == s["alpha2"], name="a1=a2"
        )
        # Strong dependency denies the singleton path...
        assert not transmits(system, {"alpha1"}, "beta", delta, phi)
        # ...but affirms the clump, which is the paper's resolution.
        assert transmits(system, {"alpha1", "alpha2"}, "beta", delta, phi)
        assert phi.is_autonomous_relative_to({"alpha1", "alpha2"})


class TestBoundedSearch:
    def test_depends_within_finds_two_step_path(self):
        b = SystemBuilder().booleans("a", "m", "b")
        b.op_assign("d1", "m", var("a"))
        b.op_assign("d2", "b", var("m"))
        system = b.build()
        result = depends_within(system, {"a"}, "b", max_length=2)
        assert result
        assert [op.name for op in result.witness.history] == ["d1", "d2"]

    def test_depends_within_respects_bound(self):
        b = SystemBuilder().booleans("a", "m", "b")
        b.op_assign("d1", "m", var("a"))
        b.op_assign("d2", "b", var("m"))
        system = b.build()
        assert not depends_within(system, {"a"}, "b", max_length=1)


class TestDependencyPairs:
    def test_pairs_matrix(self):
        b = SystemBuilder().booleans("a", "b")
        b.op_assign("copy", "b", var("a"))
        system = b.build()
        pairs = dependency_pairs(system, system.operation("copy"))
        assert pairs[(frozenset({"a"}), "b")]
        assert pairs[(frozenset({"a"}), "a")]  # reflexive, a unchanged
        assert not pairs[(frozenset({"b"}), "a")]
        assert not pairs[(frozenset({"b"}), "b")]  # b overwritten
