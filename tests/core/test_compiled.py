"""Unit tests for the compiled integer kernel (repro.core.compiled).

These pin the *encoding*: dense ids agree with the canonical
``Space.states()`` enumeration, columns are the mixed-radix digits of the
id, successor arrays are the operations, and closures live entirely on
canonically oriented off-diagonal pairs.  Semantic agreement with the
object engine and the seed reference is covered separately by
``tests/property/test_compiled_agreement.py``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.compiled import INITIAL, CompiledSystem
from repro.core.constraints import Constraint
from repro.core.engine import DependencyEngine
from repro.core.state import Space
from repro.core.system import Operation, System
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


@pytest.fixture
def mixed() -> System:
    """Mixed-radix space (domains of size 3, 2, 2) with two operations."""
    space = Space({"a": (0, 1, 2), "b": (False, True), "c": ("x", "y")})
    ops = [
        Operation("bump", lambda s: s.replace(a=(s["a"] + 1) % 3)),
        Operation(
            "couple", lambda s: s.replace(b=s["a"] > 0, c="y" if s["b"] else "x")
        ),
    ]
    return System(space, ops)


@pytest.fixture
def relay() -> System:
    b = SystemBuilder().booleans("a", "m", "b")
    b.op_assign("d1", "m", var("a"))
    b.op_assign("d2", "b", var("m"))
    return b.build()


class TestEncoding:
    def test_states_follow_space_enumeration(self, mixed):
        compiled = CompiledSystem(mixed)
        assert compiled.states == tuple(mixed.space.states())
        assert compiled.kernel.n == mixed.space.size

    def test_columns_are_domain_indices(self, mixed):
        compiled = CompiledSystem(mixed)
        kernel = compiled.kernel
        for k, name in enumerate(kernel.names):
            domain = mixed.space.domain(name)
            for i, state in enumerate(compiled.states):
                assert domain[kernel.columns[k][i]] == state[name]

    def test_strides_reconstruct_the_id(self, mixed):
        kernel = CompiledSystem(mixed).kernel
        for i in range(kernel.n):
            digits = sum(
                ((i // stride) % size) * stride
                for stride, size in zip(kernel.strides, kernel.sizes)
            )
            assert digits == i

    def test_successor_arrays_are_the_operations(self, mixed):
        compiled = CompiledSystem(mixed)
        kernel = compiled.kernel
        assert kernel.op_names == tuple(op.name for op in mixed.operations)
        for op, successor in zip(mixed.operations, kernel.successors):
            for i, state in enumerate(compiled.states):
                assert compiled.states[successor[i]] == op(state)

    def test_source_indices_are_sorted_column_positions(self, mixed):
        compiled = CompiledSystem(mixed)
        assert compiled.source_indices({"c", "a"}) == (0, 2)


class TestConstraints:
    def test_sat_ids_match_satisfying_set(self, mixed):
        compiled = CompiledSystem(mixed)
        phi = Constraint(mixed.space, lambda s: s["a"] != 1, name="a!=1")
        sat = compiled.sat_ids(phi)
        expected = [
            i for i, state in enumerate(compiled.states) if state in phi.satisfying
        ]
        assert list(sat) == expected
        assert compiled.sat_ids(phi) is sat  # cached per instance

    def test_unconstrained_is_none_fast_path(self, mixed):
        assert CompiledSystem(mixed).sat_ids(None) is None


class TestClosure:
    def test_pairs_are_canonical_and_off_diagonal(self, mixed):
        compiled = CompiledSystem(mixed)
        closure = compiled.closure(frozenset({"a"}))
        n = compiled.kernel.n
        assert len(closure) > 0
        for pair in closure.order:
            i, j = divmod(pair, n)
            assert i < j

    def test_seeds_are_def_2_8_pairs(self, mixed):
        compiled = CompiledSystem(mixed)
        phi = Constraint(mixed.space, lambda s: s["b"], name="b")
        closure = compiled.closure(frozenset({"a"}), phi, "b")
        for pair, packed in closure.parents.items():
            if packed is INITIAL or packed == INITIAL:
                s1, s2 = closure.decode_pair(pair)
                assert phi(s1) and phi(s2)
                assert s1.equal_except_at(s2, {"a"})
                assert s1 != s2

    def test_witness_path_replays_to_the_pair(self, mixed):
        compiled = CompiledSystem(mixed)
        closure = compiled.closure(frozenset({"a"}))
        first = closure.first_differing()
        for name, pair in first.items():
            ops, (s1, s2) = closure.witness_path(pair)
            history = mixed.history(*ops)
            after1, after2 = history(s1), history(s2)
            assert (after1, after2) == closure.decode_pair(pair)
            assert after1[name] != after2[name]

    def test_first_differing_at_all_needs_simultaneous_difference(self, relay):
        compiled = CompiledSystem(relay)
        closure = compiled.closure(frozenset({"a"}))
        pair = closure.first_differing_at_all({"m", "b"})
        assert pair is not None
        s1, s2 = closure.decode_pair(pair)
        assert s1["m"] != s2["m"] and s1["b"] != s2["b"]
        # From source {b} nothing ever reaches back to "a": no such pair.
        assert compiled.closure(frozenset({"b"})).first_differing_at_all(
            {"a"}
        ) is None

    def test_decoded_pairs_match_engine_pair_closure(self, relay):
        compiled = CompiledSystem(relay)
        closure = compiled.closure(frozenset({"a"}))
        engine = DependencyEngine(relay)
        decoded = engine.pair_closure({"a"})
        assert list(closure.pairs()) == list(decoded.pairs)


class TestPickling:
    def test_kernel_roundtrips_through_pickle(self, mixed):
        kernel = CompiledSystem(mixed).kernel
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone.n == kernel.n
        assert clone.names == kernel.names
        assert clone.sizes == kernel.sizes
        assert clone.strides == kernel.strides
        assert clone.op_names == kernel.op_names
        assert [list(c) for c in clone.columns] == [list(c) for c in kernel.columns]
        assert [list(s) for s in clone.successors] == [
            list(s) for s in kernel.successors
        ]

    def test_cloned_kernel_computes_identical_closures(self, mixed):
        compiled = CompiledSystem(mixed)
        kernel = compiled.kernel
        clone = pickle.loads(pickle.dumps(kernel))
        sources = compiled.source_indices({"b"})
        order, parents = kernel.closure(sources)
        clone_order, clone_parents = clone.closure(sources)
        assert list(order) == list(clone_order)
        assert parents == clone_parents


class TestBuckets:
    def test_buckets_partition_all_states(self, mixed):
        kernel = CompiledSystem(mixed).kernel
        groups = kernel.buckets((0,))
        seen = sorted(i for bucket in groups.values() for i in bucket)
        assert seen == list(range(kernel.n))

    def test_buckets_agree_with_equal_except_at(self, mixed):
        compiled = CompiledSystem(mixed)
        kernel = compiled.kernel
        for bucket in kernel.buckets(compiled.source_indices({"a"})).values():
            for a in bucket:
                for b in bucket:
                    assert compiled.states[a].equal_except_at(
                        compiled.states[b], {"a"}
                    )


class TestClosureNoDuplicates:
    """Regression for the ``setdefault(...) is packed`` membership test.

    The old BFS loops decided "already visited" by ``setdefault``
    returning the *identical* packed int object — true on CPython only
    because equal large ints happen not to be interned; a value-interning
    runtime would re-record visited pairs.  The explicit containment
    check must keep every closure duplicate-free.
    """

    @pytest.mark.parametrize("seed", range(8))
    def test_random_closures_have_unique_orders(self, seed):
        import random

        from repro.analysis.random_systems import random_system

        rng = random.Random(seed)
        system = random_system(
            rng,
            n_objects=rng.choice([2, 3, 4]),
            domain_size=rng.choice([2, 3]),
            n_operations=rng.choice([1, 2, 3]),
        )
        compiled = CompiledSystem(system)
        for name in system.space.names:
            closure = compiled.closure(frozenset({name}))
            order = list(closure.order)
            assert len(order) == len(set(order)) == len(closure.parents)

    def test_governed_closure_has_unique_order(self, mixed):
        from repro.core.budget import ExecutionBudget

        compiled = CompiledSystem(mixed)
        meter = ExecutionBudget(max_expanded=10**6).start("test")
        closure = compiled.closure(frozenset({"a"}), meter=meter)
        order = list(closure.order)
        assert len(order) == len(set(order)) == len(closure.parents)


class TestBoundedKernelCaches:
    """The compiled substrate's memos are bounded LRUs (PR-6): the
    composed-prefix memo and the satisfying-id memo must evict without
    ever returning a wrong array."""

    def test_composed_memo_evicts_and_recomputes_correctly(self, mixed):
        from repro.core.cache import LRUCache

        compiled = CompiledSystem(mixed)
        reference = CompiledSystem(mixed)
        # Shrink the cap so a short sweep forces evictions.
        compiled._composed = LRUCache(3, "kernel.history_compose.evictions")
        keys = [(0,), (1,), (0, 1), (1, 0), (0, 0, 1), (1, 1), (0, 1, 0)]
        first_pass = [list(compiled.history_array(k)) for k in keys]
        assert compiled._composed.stats()["evictions"] > 0
        # Evicted prefixes re-gather from whatever is still cached; the
        # arrays must match an unbounded-memo engine exactly.
        for key, expected in zip(keys, first_pass):
            assert list(compiled.history_array(key)) == expected
            assert list(reference.history_array(key)) == expected

    def test_composed_identity_survives_eviction(self, mixed):
        from repro.core.cache import LRUCache

        compiled = CompiledSystem(mixed)
        compiled._composed = LRUCache(1, "kernel.history_compose.evictions")
        compiled.history_array((0, 1))  # churns the identity out
        assert list(compiled.history_array(())) == list(
            range(compiled.kernel.n)
        )

    def test_sat_ids_caches_trivial_constraints_as_none(self, mixed):
        compiled = CompiledSystem(mixed)
        trivial = Constraint(mixed.space, lambda s: True, name="tt2")
        # Full-space constraints resolve to the shared None fast path
        # instead of minting a range(n) copy per instance.
        assert compiled.sat_ids(trivial) is None
        assert compiled.sat_ids(None) is None

    def test_sat_ids_memo_is_bounded(self, mixed):
        from repro.core.cache import LRUCache

        compiled = CompiledSystem(mixed)
        compiled._sat_ids = LRUCache(2, "kernel.sat_ids.evictions")
        constraints = [
            Constraint(mixed.space, lambda s, v=v: s["a"] != v, name=f"a!={v}")
            for v in (0, 1, 2)
        ]
        results = [list(compiled.sat_ids(phi)) for phi in constraints]
        assert compiled._sat_ids.stats()["evictions"] > 0
        # Evicted entries recompute to the same ids.
        for phi, expected in zip(constraints, results):
            assert list(compiled.sat_ids(phi)) == expected

    def test_cache_stats_shape(self, mixed):
        compiled = CompiledSystem(mixed)
        stats = compiled.cache_stats()
        assert set(stats) == {"composed", "sat_ids"}
        for entry in stats.values():
            assert set(entry) == {"size", "capacity", "evictions"}
