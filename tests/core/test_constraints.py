"""Unit tests for the constraint algebra and structural classes.

The autonomy examples come straight from section 2.6; relative autonomy
from sections 5.3/5.4; [H]phi from section 6.2.
"""

import pytest

from repro.core.constraints import Constraint, conjoin, disjoin
from repro.core.errors import ConstraintError, EmptyConstraintError
from repro.core.state import Space, boolean_space
from repro.core.system import History, Operation, System
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


@pytest.fixture
def space():
    # alpha, beta small ints; enough variety for section 2.6's examples.
    return Space({"alpha": range(16), "beta": range(16)})


class TestBasics:
    def test_satisfying_and_count(self, space):
        phi = Constraint(space, lambda s: s["alpha"] < 4, name="alpha<4")
        assert phi.count() == 4 * 16
        assert all(s["alpha"] < 4 for s in phi.satisfying)

    def test_true_false(self, space):
        assert Constraint.true(space).count() == space.size
        assert Constraint.false(space).count() == 0
        assert not Constraint.false(space).is_satisfiable

    def test_require_satisfiable(self, space):
        with pytest.raises(EmptyConstraintError):
            Constraint.false(space).require_satisfiable()
        Constraint.true(space).require_satisfiable()

    def test_equals_and_where(self, space):
        phi = Constraint.equals(space, "alpha", 13)
        assert phi.count() == 16
        both = Constraint.where(space, alpha=1, beta=2)
        assert both.count() == 1

    def test_algebra(self, space):
        a = Constraint(space, lambda s: s["alpha"] < 8, name="lo")
        b = Constraint(space, lambda s: s["alpha"] >= 4, name="hi")
        assert (a & b).count() == 4 * 16
        assert (a | b).count() == space.size
        assert (~a).count() == 8 * 16

    def test_implies_and_equivalent(self, space):
        small = Constraint(space, lambda s: s["alpha"] < 4)
        big = Constraint(space, lambda s: s["alpha"] < 8)
        assert small.implies(big)
        assert not big.implies(small)
        assert small.equivalent(Constraint(space, lambda s: s["alpha"] <= 3))

    def test_cross_space_rejected(self, space):
        other = boolean_space("x")
        with pytest.raises(ConstraintError):
            Constraint.true(space) & Constraint.true(other)

    def test_conjoin_disjoin(self, space):
        parts = [
            Constraint(space, lambda s: s["alpha"] < 8),
            Constraint(space, lambda s: s["beta"] < 8),
        ]
        assert conjoin(parts).count() == 64
        assert disjoin(parts).count() == 256 - 64
        with pytest.raises(ConstraintError):
            conjoin([])

    def test_from_states(self, space):
        chosen = [space.state(alpha=0, beta=0), space.state(alpha=1, beta=1)]
        phi = Constraint.from_states(space, chosen)
        assert phi.count() == 2


class TestIndependenceAndStrictness:
    """Def 3-1 (A-independence) and Def 5-1 (A-strictness)."""

    def test_independent(self, space):
        phi = Constraint(space, lambda s: s["beta"] < 10)
        assert phi.is_independent_of({"alpha"})
        assert not phi.is_independent_of({"beta"})

    def test_independence_witness(self, space):
        phi = Constraint(space, lambda s: s["alpha"] < 10)
        witness = phi.independence_witness({"alpha"})
        assert witness is not None
        s1, s2 = witness
        assert s1.equal_except_at(s2, {"alpha"})
        assert phi(s1) != phi(s2)

    def test_strict(self, space):
        phi = Constraint(space, lambda s: s["alpha"] < 10)
        assert phi.is_strict_on({"alpha"})
        assert not phi.is_strict_on({"beta"})

    def test_trivial_constraint_is_both(self, space):
        tt = Constraint.true(space)
        assert tt.is_independent_of({"alpha"})
        assert tt.is_strict_on({"alpha"})

    def test_strictness_witness(self, space):
        phi = Constraint(space, lambda s: s["beta"] == 0)
        witness = phi.strictness_witness({"alpha"})
        assert witness is not None
        s1, s2 = witness
        assert s1.project({"alpha"}) == s2.project({"alpha"})
        assert phi(s1) != phi(s2)


class TestAutonomy:
    """The four example constraints of section 2.6, verbatim."""

    @pytest.fixture
    def sp(self):
        return Space({"alpha": range(16), "beta": range(16)})

    def test_example_1_autonomous(self, sp):
        # alpha <= 10 and beta == 6 mod 11
        phi = Constraint(sp, lambda s: s["alpha"] <= 10 and s["beta"] % 11 == 6)
        assert phi.is_autonomous()

    def test_example_2_autonomous(self, sp):
        # alpha <= 10 and beta <= 10
        phi = Constraint(sp, lambda s: s["alpha"] <= 10 and s["beta"] <= 10)
        assert phi.is_autonomous()

    def test_example_3_non_autonomous(self, sp):
        # beta == alpha + 10
        phi = Constraint(sp, lambda s: s["beta"] == s["alpha"] + 10)
        assert not phi.is_autonomous()

    def test_example_4_non_autonomous(self, sp):
        # alpha <= 10 implies beta == 4
        phi = Constraint(sp, lambda s: s["beta"] == 4 if s["alpha"] <= 10 else True)
        assert not phi.is_autonomous()

    def test_autonomy_witness_is_concrete(self, sp):
        phi = Constraint(sp, lambda s: s["beta"] == s["alpha"])
        witness = phi.autonomy_witness()
        assert witness is not None
        name, s1, s2 = witness
        assert phi(s1) and phi(s2)
        assert not phi(s2.substitute(s1, [name]))

    def test_unsatisfiable_is_vacuously_autonomous(self, sp):
        assert Constraint.false(sp).is_autonomous()


class TestRelativeAutonomy:
    """Sections 5.3/5.4: A-autonomy via substitution (Theorem 5-1)."""

    @pytest.fixture
    def sp(self):
        return Space(
            {"a1": range(4), "a2": range(4), "m1": range(4), "m2": range(4)}
        )

    def test_paired_constraint(self, sp):
        # a1 == a2 and m1 == m2 (the section 5.4 example).
        phi = Constraint(
            sp, lambda s: s["a1"] == s["a2"] and s["m1"] == s["m2"]
        )
        assert phi.is_autonomous_relative_to({"a1", "a2"})
        assert phi.is_autonomous_relative_to({"m1", "m2"})
        # Also q-autonomous for unconstrained objects (see section 5.4):
        # here every single unconstrained-of-others set works.
        assert not phi.is_autonomous_relative_to({"a1"})
        assert not phi.is_autonomous()

    def test_relative_autonomy_witness(self, sp):
        phi = Constraint(sp, lambda s: s["a1"] == s["m1"])
        witness = phi.relative_autonomy_witness({"a1"})
        assert witness is not None
        s1, s2 = witness
        assert phi(s1) and phi(s2)
        assert not phi(s2.substitute(s1, {"a1"}))

    def test_autonomous_implies_relatively_autonomous_everywhere(self, sp):
        phi = Constraint(sp, lambda s: s["a1"] < 2 and s["m1"] > 1)
        assert phi.is_autonomous()
        for name in sp.names:
            assert phi.is_autonomous_relative_to({name})

    def test_whole_space_clump_always_autonomous(self, sp):
        phi = Constraint(sp, lambda s: s["a1"] + s["a2"] == s["m1"])
        assert phi.is_autonomous_relative_to(set(sp.names))


class TestVarietyElimination:
    def test_eliminates_variety(self, space):
        phi = Constraint.equals(space, "alpha", 13)
        assert phi.eliminates_variety_in({"alpha"})
        assert not phi.eliminates_variety_in({"beta"})

    def test_unsatisfiable_eliminates_everything(self, space):
        assert Constraint.false(space).eliminates_variety_in({"alpha", "beta"})


class TestInvarianceAndAfter:
    @pytest.fixture
    def system(self):
        b = SystemBuilder().ranged("alpha", lo=0, hi=12).ranged(
            "beta", lo=-4, hi=8
        )
        b.op_assign("delta", "beta", var("alpha") - 4)
        return b.build()

    def test_invariance(self, system):
        phi = Constraint(system.space, lambda s: s["alpha"] < 10)
        assert phi.is_invariant(system)  # delta never writes alpha
        psi = Constraint(system.space, lambda s: s["beta"] == 0)
        assert not psi.is_invariant(system)
        witness = psi.invariance_witness(system)
        state, op_name, successor = witness
        assert psi(state) and not psi(successor)
        assert op_name == "delta"

    def test_after_section_6_2_example(self, system):
        # phi == alpha < 10; [delta]phi == alpha < 10 and beta == alpha - 4.
        phi = Constraint(system.space, lambda s: s["alpha"] < 10)
        after = phi.after(History.of(system.operation("delta")))
        expected = Constraint(
            system.space,
            lambda s: s["alpha"] < 10 and s["beta"] == s["alpha"] - 4,
        )
        assert after.equivalent(expected)

    def test_after_empty_history_is_phi(self, system):
        phi = Constraint(system.space, lambda s: s["alpha"] < 10)
        assert phi.after(History.empty()).equivalent(phi)

    def test_theorem_6_2_invariant_strictness(self, system):
        phi = Constraint(system.space, lambda s: s["alpha"] < 10)
        h = History.of(system.operation("delta"))
        assert phi.after(h).implies(phi)

    def test_after_need_not_be_autonomous(self, system):
        # Section 6.2's remark: [H]phi may lose autonomy.
        phi = Constraint(system.space, lambda s: s["alpha"] < 10)
        assert phi.is_autonomous()
        after = phi.after(History.of(system.operation("delta")))
        assert not after.is_autonomous()
