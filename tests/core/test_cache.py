"""Unit tests for the shared bounded-LRU memo primitive."""

import pytest

from repro import obs
from repro.core.cache import LRUCache


def test_get_returns_default_on_miss():
    cache = LRUCache(4, "test.evictions")
    assert cache.get("missing") is None
    sentinel = object()
    assert cache.get("missing", sentinel) is sentinel


def test_put_first_writer_wins():
    cache = LRUCache(4, "test.evictions")
    assert cache.put("k", 1) == 1
    # A second writer for the same key gets the stored value back.
    assert cache.put("k", 2) == 1
    assert cache.get("k") == 1


def test_none_is_a_cacheable_value():
    cache = LRUCache(4, "test.evictions")
    cache.put("k", None)
    assert "k" in cache
    missing = object()
    assert cache.get("k", missing) is None


def test_eviction_is_lru_and_get_refreshes():
    cache = LRUCache(2, "test.evictions")
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # refresh: "b" is now least recently used
    cache.put("c", 3)
    assert "a" in cache
    assert "b" not in cache
    assert "c" in cache
    assert cache.evictions == 1


def test_stats_shape():
    cache = LRUCache(2, "test.evictions")
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)
    assert cache.stats() == {"size": 2, "capacity": 2, "evictions": 1}
    assert len(cache) == 2


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        LRUCache(0, "test.evictions")


def test_evictions_reported_on_counter():
    obs.enable(reset=True)
    try:
        cache = LRUCache(1, "test.evictions")
        cache.put("a", 1)
        cache.put("b", 2)
        snap = obs.snapshot()
        assert snap.counters.get("test.evictions") == 1
        assert snap.gauges.get("test.evictions") == 1
    finally:
        obs.disable()
