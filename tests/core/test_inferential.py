"""Unit tests for Inferential Dependency (section 7.2)."""

import pytest

from repro.core.constraints import Constraint
from repro.core.dependency import transmits
from repro.core.inferential import (
    contingently_depends,
    inferential_paths,
    inferentially_depends,
    knowledge_sets,
)
from repro.core.system import History
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


@pytest.fixture
def copy_system():
    b = SystemBuilder().integers("alpha1", "alpha2", "beta", bits=1)
    b.op_assign("delta", "beta", var("alpha1"))
    return b.build()


class TestKnowledgeSets:
    def test_copy_reveals_source(self, copy_system):
        table = knowledge_sets(
            copy_system, {"alpha1"}, "beta", copy_system.operation("delta")
        )
        # Observing beta = v pins alpha1 = v.
        assert table[0] == frozenset({(0,)})
        assert table[1] == frozenset({(1,)})

    def test_unread_object_unrevealed(self, copy_system):
        table = knowledge_sets(
            copy_system, {"alpha2"}, "beta", copy_system.operation("delta")
        )
        for posterior in table.values():
            assert posterior == frozenset({(0,), (1,)})


class TestSection52Example:
    """beta <- alpha1 under alpha1 = alpha2: strong dependency denies the
    singletons, inferential dependency affirms both (the paper's stated
    behavior for the Inferential model)."""

    def test_divergence_from_strong_dependency(self, copy_system):
        phi = Constraint(
            copy_system.space,
            lambda s: s["alpha1"] == s["alpha2"],
            name="a1=a2",
        )
        delta = copy_system.operation("delta")
        for source in ("alpha1", "alpha2"):
            assert not transmits(copy_system, {source}, "beta", delta, phi)
            inference = inferentially_depends(
                copy_system, {source}, "beta", delta, phi
            )
            assert inference is not None, source
            assert len(inference.posterior) == 1  # beta pins the value


class TestContingentTransmission:
    """The mod-sum example: contingent-only transmission (section 7.2)."""

    @pytest.fixture
    def modsum(self):
        b = SystemBuilder().integers("a1", "a2", "beta", bits=2)
        b.op_assign("delta", "beta", (var("a1") + var("a2")) % 4)
        return b.build()

    def test_noncontingent_says_nothing_about_singleton(self, modsum):
        delta = modsum.operation("delta")
        assert inferentially_depends(modsum, {"a1"}, "beta", delta) is None

    def test_contingent_affirms_singleton(self, modsum):
        delta = modsum.operation("delta")
        assert contingently_depends(modsum, {"a1"}, "beta", delta) is not None

    def test_pair_transmits_under_both(self, modsum):
        delta = modsum.operation("delta")
        assert inferentially_depends(modsum, {"a1", "a2"}, "beta", delta)
        assert contingently_depends(modsum, {"a1", "a2"}, "beta", delta)


class TestContingentEqualsStrong:
    def test_agreement_on_examples(self, copy_system):
        delta = copy_system.operation("delta")
        phi = Constraint(
            copy_system.space,
            lambda s: s["alpha1"] == s["alpha2"],
            name="a1=a2",
        )
        for source in ("alpha1", "alpha2"):
            for constraint in (None, phi):
                strong = bool(
                    transmits(copy_system, {source}, "beta", delta, constraint)
                )
                contingent = (
                    contingently_depends(
                        copy_system, {source}, "beta", delta, constraint
                    )
                    is not None
                )
                assert strong == contingent


class TestMonotonicityFailure:
    """Section 7.2: 'imposing phi adds an information path (from alpha2
    to beta)' — inferential dependency is not monotone in the
    constraint."""

    @pytest.fixture
    def tagged(self):
        """Objects are (tag, payload) pairs encoded as 2-bit ints: the
        high bit is the tag.  delta: beta <- alpha1."""
        b = SystemBuilder().integers("alpha1", "alpha2", "beta", bits=2)
        b.op_assign("delta", "beta", var("alpha1"))
        return b.build()

    def test_constraint_adds_inferential_path(self, tagged):
        delta = tagged.operation("delta")
        tag = lambda v: v >> 1
        phi = Constraint(
            tagged.space,
            lambda s: tag(s["alpha1"]) == tag(s["alpha2"]),
            name="a1.tag=a2.tag",
        )
        h = History.of(delta)
        before = inferential_paths(tagged, h, None)
        after = inferential_paths(tagged, h, phi)
        assert ("alpha2", "beta") not in before
        assert ("alpha2", "beta") in after  # the added path
        # The direct path is present in both.
        assert ("alpha1", "beta") in before and ("alpha1", "beta") in after

    def test_inference_is_partial_for_tag_coupling(self, tagged):
        """Observing beta reveals alpha2's tag but not its payload: the
        posterior shrinks to the half sharing the tag."""
        delta = tagged.operation("delta")
        tag = lambda v: v >> 1
        phi = Constraint(
            tagged.space,
            lambda s: tag(s["alpha1"]) == tag(s["alpha2"]),
            name="a1.tag=a2.tag",
        )
        inference = inferentially_depends(
            tagged, {"alpha2"}, "beta", delta, phi
        )
        assert inference is not None
        assert len(inference.prior) == 4
        assert len(inference.posterior) == 2
