"""Unit tests for the Worth measure (section 3.6)."""

import pytest

from repro.core.constraints import Constraint
from repro.core.worth import WorthMeasure, WorthOrder
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


@pytest.fixture
def two_channel():
    """Section 3.6's shape: two guarded channels into beta.

    d1: if r1 then beta <- alpha     (channel from alpha)
    d2: if r2 then beta <- m         (channel from m)
    """
    b = SystemBuilder().booleans("r1", "r2", "alpha", "m", "beta")
    b.op_if("d1", var("r1"), "beta", var("alpha"))
    b.op_if("d2", var("r2"), "beta", var("m"))
    return b.build()


class TestWorth:
    def test_unconstrained_worth_contains_both_channels(self, two_channel):
        measure = WorthMeasure(two_channel)
        w = measure.worth(None)
        assert w.permits({"alpha"}, "beta")
        assert w.permits({"m"}, "beta")

    def test_targeted_solution_preserves_other_channel(self, two_channel):
        """phi1 (close only channel 1) is as worthy as possible: it removes
        the alpha path and nothing else."""
        measure = WorthMeasure(two_channel)
        phi1 = Constraint(two_channel.space, lambda s: not s["r1"], name="~r1")
        w = measure.worth(phi1)
        assert not w.permits({"alpha"}, "beta")
        assert w.permits({"m"}, "beta")

    def test_blunt_solution_is_less_worthy(self, two_channel):
        """phi2 closes everything into beta — solves the problem but
        eliminates the m path too (the paper's phi2)."""
        measure = WorthMeasure(two_channel)
        phi1 = Constraint(two_channel.space, lambda s: not s["r1"], name="~r1")
        phi2 = Constraint(
            two_channel.space,
            lambda s: not s["r1"] and not s["r2"],
            name="~r1&~r2",
        )
        assert measure.compare(phi2, phi1) is WorthOrder.LESS
        assert measure.compare(phi1, phi2) is WorthOrder.GREATER

    def test_equal_worth_for_equivalent_restrictions(self, two_channel):
        measure = WorthMeasure(two_channel)
        phi_a = Constraint(two_channel.space, lambda s: not s["r1"], name="a")
        phi_b = Constraint(
            two_channel.space, lambda s: s["r1"] is False, name="b"
        )
        assert measure.compare(phi_a, phi_b) is WorthOrder.EQUAL

    def test_incomparable_solutions(self, two_channel):
        measure = WorthMeasure(two_channel)
        only1 = Constraint(two_channel.space, lambda s: not s["r1"], name="~r1")
        only2 = Constraint(two_channel.space, lambda s: not s["r2"], name="~r2")
        assert measure.compare(only1, only2) is WorthOrder.INCOMPARABLE

    def test_worth_describe_lists_paths(self, two_channel):
        measure = WorthMeasure(two_channel)
        text = measure.worth(None).describe()
        assert "paths" in text and "beta" in text

    def test_monotonicity_theorem_2_3(self, two_channel):
        """Def 3-2: the Worth measure is monotonic because dependency is
        monotone in the constraint."""
        measure = WorthMeasure(two_channel)
        family = [
            Constraint.true(two_channel.space),
            Constraint(two_channel.space, lambda s: not s["r1"], name="~r1"),
            Constraint(
                two_channel.space,
                lambda s: not s["r1"] and not s["r2"],
                name="~r1&~r2",
            ),
        ]
        assert measure.monotonicity_counterexample(family) is None

    def test_custom_source_family(self, two_channel):
        measure = WorthMeasure(
            two_channel, sources=[frozenset({"alpha", "m"})]
        )
        w = measure.worth(None)
        assert w.permits({"alpha", "m"}, "beta")
        assert len({a for a, _ in w.paths}) == 1
