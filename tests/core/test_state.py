"""Unit tests for states and spaces (section 1.2 definitions)."""

import pytest

from repro.core.errors import (
    DomainError,
    SpaceError,
    StateError,
    UnknownObjectError,
)
from repro.core.state import Space, State, boolean_space, integer_space


class TestState:
    def test_mapping_protocol(self):
        s = State({"b": 2, "a": 1})
        assert s["a"] == 1
        assert s["b"] == 2
        assert len(s) == 2
        assert list(s) == ["a", "b"]  # lexicographic
        assert dict(s) == {"a": 1, "b": 2}

    def test_names_sorted_lexicographically(self):
        s = State({"zeta": 0, "alpha": 1, "mu": 2})
        assert s.names == ("alpha", "mu", "zeta")

    def test_missing_name_raises_keyerror(self):
        s = State({"a": 1})
        with pytest.raises(KeyError):
            s["missing"]

    def test_equality_and_hash(self):
        s1 = State({"a": 1, "b": 2})
        s2 = State({"b": 2, "a": 1})
        s3 = State({"a": 1, "b": 3})
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert s1 != s3
        assert len({s1, s2, s3}) == 2

    def test_immutability(self):
        s = State({"a": 1})
        with pytest.raises(AttributeError):
            s._values = (9,)

    def test_project_is_sigma_dot_a(self):
        s = State({"a": 1, "b": 2, "c": 3})
        assert s.project({"c", "a"}) == (1, 3)  # lexicographic order of A
        assert s.project([]) == ()

    def test_restrict_away(self):
        s = State({"a": 1, "b": 2, "c": 3})
        assert s.restrict_away({"b"}) == (1, 3)
        assert s.restrict_away(set()) == (1, 2, 3)

    def test_equal_except_at_def_1_1(self):
        s1 = State({"a": 1, "b": 2, "c": 3})
        s2 = State({"a": 9, "b": 2, "c": 3})
        s3 = State({"a": 9, "b": 7, "c": 3})
        assert s1.equal_except_at(s2, {"a"})
        assert not s1.equal_except_at(s3, {"a"})
        assert s1.equal_except_at(s3, {"a", "b"})
        # Equal states are equal-except-at any set, including the empty set.
        assert s1.equal_except_at(s1, set())

    def test_equal_except_at_different_shapes(self):
        with pytest.raises(StateError):
            State({"a": 1}).equal_except_at(State({"b": 1}), set())

    def test_differs_at(self):
        s1 = State({"a": 1, "b": 2, "c": 3})
        s2 = State({"a": 9, "b": 2, "c": 0})
        assert s1.differs_at(s2) == frozenset({"a", "c"})
        assert s1.differs_at(s1) == frozenset()

    def test_substitute_def_5_3(self):
        # sigma2 <|A sigma1: like sigma2 but with sigma1's values at A.
        sigma1 = State({"a1": 1, "a2": 1, "m": 2, "q": 3})
        sigma2 = State({"a1": 101, "a2": 101, "m": 102, "q": 103})
        combined = sigma2.substitute(sigma1, {"a1", "a2"})
        assert combined["a1"] == 1 and combined["a2"] == 1
        assert combined["m"] == 102 and combined["q"] == 103

    def test_substitute_unknown_name(self):
        s = State({"a": 1})
        with pytest.raises(StateError):
            s.substitute(s, {"zzz"})

    def test_replace(self):
        s = State({"a": 1, "b": 2})
        assert s.replace(a=5) == State({"a": 5, "b": 2})
        with pytest.raises(StateError):
            s.replace(zzz=1)


class TestSpace:
    def test_size_and_enumeration(self):
        sp = Space({"a": range(3), "b": (False, True)})
        assert sp.size == 6
        states = list(sp.states())
        assert len(states) == 6
        assert len(set(states)) == 6
        assert all(s in sp for s in states)

    def test_enumeration_deterministic(self):
        sp = Space({"a": range(3), "b": range(2)})
        assert list(sp.states()) == list(sp.states())

    def test_empty_space_rejected(self):
        with pytest.raises(SpaceError):
            Space({})

    def test_empty_domain_rejected(self):
        with pytest.raises(SpaceError):
            Space({"a": ()})

    def test_duplicate_domain_values_rejected(self):
        with pytest.raises(SpaceError):
            Space({"a": (1, 1)})

    def test_state_constructor_validates(self):
        sp = Space({"a": range(2)})
        assert sp.state(a=1)["a"] == 1
        with pytest.raises(DomainError):
            sp.state(a=7)
        with pytest.raises(SpaceError):
            sp.state()  # missing value
        with pytest.raises(UnknownObjectError):
            sp.state(a=0, zzz=1)

    def test_membership(self):
        sp = Space({"a": range(2), "b": range(2)})
        assert sp.state(a=0, b=1) in sp
        assert State({"a": 5, "b": 0}) not in sp
        assert State({"a": 0}) not in sp  # wrong shape
        assert "not a state" not in sp

    def test_domain_lookup(self):
        sp = Space({"a": (10, 20)})
        assert sp.domain("a") == (10, 20)
        with pytest.raises(UnknownObjectError):
            sp.domain("b")

    def test_check_names(self):
        sp = Space({"a": range(2), "b": range(2)})
        assert sp.check_names(["a"]) == frozenset({"a"})
        with pytest.raises(UnknownObjectError):
            sp.check_names(["a", "nope"])

    def test_variants_enumerates_equivalence_class(self):
        sp = Space({"a": range(3), "b": range(2)})
        base = sp.state(a=0, b=0)
        variants = list(sp.variants(base, {"a"}))
        assert len(variants) == 3
        assert all(v.equal_except_at(base, {"a"}) for v in variants)
        assert base in variants

    def test_restrict(self):
        sp = Space({"a": range(4), "b": range(4)})
        smaller = sp.restrict(a=(0, 1))
        assert smaller.size == 8
        with pytest.raises(UnknownObjectError):
            sp.restrict(zzz=(1,))

    def test_with_objects(self):
        sp = Space({"a": range(2)})
        bigger = sp.with_objects(b=range(3))
        assert bigger.size == 6
        with pytest.raises(SpaceError):
            sp.with_objects(a=range(2))

    def test_immutability(self):
        sp = Space({"a": range(2)})
        with pytest.raises(AttributeError):
            sp._names = ()


class TestFactories:
    def test_boolean_space(self):
        sp = boolean_space("p", "q", "r")
        assert sp.size == 8
        assert sp.domain("p") == (False, True)

    def test_integer_space(self):
        sp = integer_space(3, "x", "y")
        assert sp.domain("x") == tuple(range(8))
        assert sp.size == 64

    def test_integer_space_bad_bits(self):
        with pytest.raises(SpaceError):
            integer_space(0, "x")
