"""Unit tests for trusted-operation declassification (section 7.5)."""

import pytest

from repro.core.constraints import Constraint
from repro.core.errors import ConstraintError
from repro.core.problems import TrustedDeclassificationProblem
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, when
from repro.lang.expr import var


@pytest.fixture
def declass_system():
    """A secret can reach 'out' two ways: via the vetted 'release'
    operation, or via an unvetted scratch relay."""
    b = SystemBuilder().booleans("secret", "scratch", "out", "vetted")
    b.op_cmd("release", when(var("vetted"), assign("out", var("secret"))))
    b.op_assign("stash", "scratch", var("secret"))
    b.op_assign("leak", "out", var("scratch"))
    return b.build()


class TestTrustedDeclassification:
    def test_unknown_trusted_op_rejected(self, declass_system):
        with pytest.raises(ConstraintError):
            TrustedDeclassificationProblem(
                declass_system, {"secret"}, {"out"}, {"nope"}
            )

    def test_unmediated_relay_fails(self, declass_system):
        """Trusting only 'release' is not enough while the scratch relay
        remains."""
        problem = TrustedDeclassificationProblem(
            declass_system, {"secret"}, {"out"}, {"release"}
        )
        verdict = problem.verdict(Constraint.true(declass_system.space))
        assert not verdict
        assert any("WITHOUT" in r for r in verdict.reasons)
        assert problem.unmediated_paths() == [("secret", "out")]

    def test_constraining_the_relay_solves(self, declass_system):
        """Close the unvetted relay (deny the stash) and every remaining
        secret->out flow passes through the trusted release."""
        problem = TrustedDeclassificationProblem(
            declass_system, {"secret"}, {"out"}, {"release", "stash"}
        )
        # Trusting both relay hops would be too lax; trust release + stash
        # still leaves 'leak', but leak alone cannot read the secret.
        assert problem.is_solution(Constraint.true(declass_system.space))

    def test_flow_still_possible_through_trusted_op(self, declass_system):
        """Declassification allows, not forbids: the full system still
        transmits secret -> out."""
        from repro.core.reachability import depends_ever

        assert depends_ever(declass_system, {"secret"}, "out")

    def test_trusting_everything_is_vacuously_solved(self, declass_system):
        problem = TrustedDeclassificationProblem(
            declass_system,
            {"secret"},
            {"out"},
            set(declass_system.operation_names),
        )
        assert problem.is_solution(Constraint.true(declass_system.space))

    def test_empty_trusted_set_equals_confinement(self, declass_system):
        """With no trusted operations the problem degenerates to plain
        confinement on the full system."""
        from repro.core.problems import ConfinementProblem

        trustless = TrustedDeclassificationProblem(
            declass_system, {"secret"}, {"out"}, set()
        )
        plain = ConfinementProblem(
            declass_system, confined={"secret"}, spies={"out"}
        )
        phi = Constraint(
            declass_system.space,
            lambda s: not s["vetted"] and not s["scratch"] and not s["secret"],
            name="locked",
        )
        for candidate in (Constraint.true(declass_system.space), phi):
            assert trustless.is_solution(candidate) == plain.is_solution(
                candidate
            )
