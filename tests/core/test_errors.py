"""Unit tests for the exception hierarchy."""

import pytest

from repro.core import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [
            errors.SpaceError,
            errors.StateError,
            errors.OperationError,
            errors.ConstraintError,
            errors.CoverError,
            errors.ProofError,
            errors.ProgramError,
            errors.DistributionError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, errors.ReproError)

    def test_fine_grained_subclassing(self):
        assert issubclass(errors.UnknownObjectError, errors.SpaceError)
        assert issubclass(errors.DomainError, errors.SpaceError)
        assert issubclass(errors.EmptyConstraintError, errors.ConstraintError)
        assert issubclass(errors.ParseError, errors.ProgramError)
        assert issubclass(errors.EvaluationError, errors.ProgramError)


class TestPayloads:
    def test_unknown_object_error_carries_context(self):
        exc = errors.UnknownObjectError("ghost", ("a", "b"))
        assert exc.name == "ghost"
        assert exc.known == ("a", "b")
        assert "ghost" in str(exc) and "a" in str(exc)

    def test_domain_error_carries_context(self):
        exc = errors.DomainError("x", 99)
        assert exc.name == "x" and exc.value == 99
        assert "99" in str(exc)

    def test_parse_error_line_prefix(self):
        exc = errors.ParseError("bad token", line=3)
        assert exc.line == 3
        assert str(exc).startswith("line 3:")
        plain = errors.ParseError("bad token")
        assert plain.line is None

    def test_single_catch_point(self):
        """A caller catching ReproError sees every library failure."""
        from repro.core.state import Space

        with pytest.raises(errors.ReproError):
            Space({})
