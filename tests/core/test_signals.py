"""Cooperative interrupt handling (PR-9 satellite 2).

Unit level: :func:`interrupt_token` wires SIGINT/SIGTERM to a
:class:`CancellationToken`, restores handlers on exit, and degrades to
an un-wired token off the main thread.  End-to-end: a ``repro program``
run on a state space far too big to finish, interrupted mid-run, exits
130 with an INTERRUPTED verdict instead of a traceback — and with a
store attached, completed closures survive the interrupt.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.budget import BudgetExceededError, ExecutionBudget
from repro.core.engine import DependencyEngine
from repro.core.signals import EXIT_INTERRUPTED, interrupt_token
from repro.core.store import PersistentStore
from repro.systems.program import build_program_system

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def test_signal_cancels_token_and_restores_handler():
    before = signal.getsignal(signal.SIGINT)
    with interrupt_token() as token:
        assert not token.cancelled
        os.kill(os.getpid(), signal.SIGINT)
        for _ in range(100):
            if token.cancelled:
                break
            time.sleep(0.01)
        assert token.cancelled
        # First signal also restored the previous handler, so a second
        # Ctrl-C falls through to the default (force-kill) path.
        assert signal.getsignal(signal.SIGINT) is before
    assert signal.getsignal(signal.SIGINT) is before


def test_handlers_restored_on_clean_exit():
    before_int = signal.getsignal(signal.SIGINT)
    before_term = signal.getsignal(signal.SIGTERM)
    with interrupt_token() as token:
        assert signal.getsignal(signal.SIGINT) is not before_int
        assert not token.cancelled
    assert signal.getsignal(signal.SIGINT) is before_int
    assert signal.getsignal(signal.SIGTERM) is before_term


def test_off_main_thread_yields_unwired_token():
    before = signal.getsignal(signal.SIGINT)
    seen = {}

    def body() -> None:
        with interrupt_token() as token:
            seen["wired"] = signal.getsignal(signal.SIGINT) is not before
            token.cancel()
            seen["cancellable"] = token.cancelled

    thread = threading.Thread(target=body)
    thread.start()
    thread.join(timeout=10)
    assert seen == {"wired": False, "cancellable": True}


def test_cancelled_token_trips_budget_with_cancelled_reason():
    with interrupt_token() as token:
        budget = ExecutionBudget(token=token, check_interval=1)
        meter = budget.start("signals-test")
        token.cancel()
        with pytest.raises(BudgetExceededError) as err:
            meter.check(1, 1)
    assert err.value.partial.reason == "cancelled"


PROGRAM = "t := a > b;\nu := b > a;\nw := a > 30"

# Modest state space (~30k states) so build + compile stay fast, with
# REPRO_KERNEL=scalar forcing the slow Python pair BFS: the run spends
# essentially all its time in the governed loop, where the cancelled
# token trips within one check interval of the signal.
VARS = ["a=0..100", "b=0..100", "t=bool", "u=bool", "w=bool"]


def test_cli_interrupt_exits_130(tmp_path):
    prog = tmp_path / "big.prog"
    prog.write_text(PROGRAM)
    argv = [sys.executable, "-m", "repro", "program", str(prog),
            "--source", "a", "--target", "w"]
    for spec in VARS:
        argv += ["--var", spec]
    env = dict(os.environ, PYTHONPATH=SRC, REPRO_KERNEL="scalar")
    proc = subprocess.Popen(
        argv, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE
    )
    time.sleep(1.5)
    proc.send_signal(signal.SIGINT)
    out, err = proc.communicate(timeout=120)
    assert proc.returncode == EXIT_INTERRUPTED, (out, err)
    assert b"INTERRUPTED" in out
    assert b"Traceback" not in err


def test_interrupt_flush_persists_completed_closures(tmp_path):
    """The flush path: closures finished before the interrupt reach the
    store (exercised in-process; the CLI calls the same helper)."""
    from repro.cli import _flush_on_interrupt

    ps = build_program_system(
        "t := a > b", {"a": (0, 1, 2), "b": (0, 1), "t": (False, True)}
    )
    path = tmp_path / "memo.db"
    from repro.core.engine import shared_engine

    engine = shared_engine(ps.system)
    engine.attach_store(str(path))
    assert engine.depends_ever({"a"}, "t")
    _flush_on_interrupt(ps)
    engine.attach_store(None)
    with PersistentStore(path) as store:
        assert store.stats()["rows"]["closures"] >= 1
