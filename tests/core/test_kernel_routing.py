"""Engine-side kernel selection, hotness ranking, and prewarming.

The engine picks between the scalar and bulk (bitset) compiled kernels
per :data:`~repro.core.compiled.KERNEL_MODES`: explicitly via the
``kernel=`` constructor argument, ambiently via ``REPRO_KERNEL``, or by
the ``auto`` space-size threshold.  Closure demand is counted per
``(A, phi)`` and drives :meth:`hot_closures` / :meth:`prewarm_hot` and
the hottest-first ordering of warm fan-outs.
"""

from __future__ import annotations

import pytest

from repro.core.budget import BudgetExceededError, ExecutionBudget
from repro.core.compiled import BITSET_AUTO_MIN_STATES
from repro.core.engine import ENV_KERNEL, DependencyEngine, _resolve_kernel_mode
from repro.lang.builders import SystemBuilder
from repro.lang.expr import var


def xor_ring(n: int):
    b = SystemBuilder()
    for i in range(n):
        b.integers(f"x{i}", bits=1)
    for i in range(n):
        nxt = f"x{(i + 1) % n}"
        b.op_assign(f"m{i}", nxt, (var(nxt) + var(f"x{i}")) % 2)
    return b.build()


def relay():
    b = SystemBuilder().booleans("a", "m", "b")
    b.op_assign("d1", "m", var("a"))
    b.op_assign("d2", "b", var("m"))
    return b.build()


class TestModeResolution:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(ENV_KERNEL, raising=False)
        assert _resolve_kernel_mode(None) == "auto"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_KERNEL, "bitset")
        assert _resolve_kernel_mode(None) == "bitset"
        # The explicit argument beats the environment.
        assert _resolve_kernel_mode("scalar") == "scalar"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            _resolve_kernel_mode("vectorized")
        with pytest.raises(ValueError):
            DependencyEngine(relay(), kernel="vectorized")

    def test_auto_threshold_routes_by_space_size(self):
        small = DependencyEngine(relay())  # 8 states
        assert small.system.space.size < BITSET_AUTO_MIN_STATES
        assert small._closure_mode() == "scalar"
        big = DependencyEngine(xor_ring(6))  # 64 states
        assert big.system.space.size >= BITSET_AUTO_MIN_STATES
        assert big._closure_mode() == "bitset"

    def test_object_engine_ignores_kernel_mode(self):
        engine = DependencyEngine(relay(), compiled=False, kernel="bitset")
        assert engine._closure_mode() == "scalar"
        result = engine.depends_ever({"a"}, "b")
        assert result.provenance.kernel == "object"

    def test_provenance_tracks_the_closure_kernel(self):
        scalar = DependencyEngine(xor_ring(6), kernel="scalar")
        assert scalar.depends_ever({"x0"}, "x1").provenance.kernel == "compiled"
        bulk = DependencyEngine(xor_ring(6), kernel="bitset")
        assert (
            bulk.depends_ever({"x0"}, "x1").provenance.kernel
            == "compiled-bitset"
        )


class TestHotness:
    def test_hot_closures_ranked_by_request_count(self):
        engine = DependencyEngine(relay())
        engine.depends_ever({"a"}, "b")
        engine.depends_ever({"a"}, "m")  # memo hit, still counts
        engine.depends_ever({"m"}, "b")
        ranked = engine.hot_closures()
        assert ranked[0][0] == (frozenset({"a"}), None)
        assert ranked[0][1] == 2
        assert ranked[1][1] == 1
        assert engine.hot_closures(1) == ranked[:1]

    def test_prewarm_hot_recomputes_budget_tripped_closures(self):
        engine = DependencyEngine(xor_ring(6), kernel="bitset")
        with pytest.raises(BudgetExceededError):
            engine.depends_ever(
                {"x0"}, "x1", budget=ExecutionBudget(max_expanded=0)
            )
        assert engine.cache_stats()["closures"]["size"] == 0
        assert engine.prewarm_hot(4) == 1
        assert engine.cache_stats()["closures"]["size"] == 1
        # Now a hit, and nothing left to prewarm.
        assert bool(engine.depends_ever({"x0"}, "x1")) == bool(
            DependencyEngine(xor_ring(6), kernel="scalar").depends_ever(
                {"x0"}, "x1"
            )
        )
        assert engine.prewarm_hot(4) == 0

    def test_cache_stats_includes_kernel_and_hotness_sections(self):
        engine = DependencyEngine(relay())
        stats = engine.cache_stats()
        for key in ("kernel_composed", "kernel_sat_ids", "hot_closures"):
            assert key in stats
        # Before compilation the kernel memos report empty at capacity.
        assert stats["kernel_composed"]["size"] == 0
        assert stats["kernel_composed"]["capacity"] > 0
        engine.depends_ever({"a"}, "b")
        stats = engine.cache_stats()
        assert stats["hot_closures"]["size"] == 1
