"""Functional contract of the serve layer: routes, verdict parity with
the CLI path, quotas, shedding, deadline propagation, drain.

The chaos counterparts (injected worker kill, store corruption, storms)
live in ``tests/chaos/test_serve_chaos.py``; this file pins the sunny-day
and plain-overload behavior every chaos test builds on.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cli import parse_domain
from repro.core import faults
from repro.serve.admission import AdmissionController, RequestQuota, ShedError
from repro.serve.breaker import CLOSED, OPEN, CircuitBreaker
from repro.systems.program import build_program_system, program_transmits

from tests.serve.helpers import PROGRAM, VARS, create_session, rpc, serving


def _cli_verdict(source: str, target: str) -> bool:
    domains = dict(parse_domain(f"{n}={s}") for n, s in VARS.items())
    ps = build_program_system(PROGRAM, domains)
    return bool(program_transmits(ps, {source}, target))


def test_query_verdicts_match_cli_path():
    async def body():
        async with serving() as server:
            key = await create_session(server)
            for source, target in [
                ("secret", "out"), ("limit", "out"), ("out", "secret"),
            ]:
                status, doc = await rpc(
                    server.port, "POST", "/v1/query",
                    {"session": key, "source": source, "target": target},
                )
                assert status == 200
                expected = "flow" if _cli_verdict(source, target) else "no_flow"
                assert doc["verdict"] == expected, (source, target, doc)
            status, doc = await rpc(server.port, "GET", "/healthz")
            assert status == 200 and doc["status"] == "ok"

    asyncio.run(body())


def test_session_reuse_and_inline_program_land_on_same_engine():
    async def body():
        async with serving() as server:
            key = await create_session(server)
            key2 = await create_session(server)
            assert key2 == key  # content-keyed: same program, one session
            status, doc = await rpc(
                server.port, "POST", "/v1/query",
                {"program": PROGRAM, "vars": VARS,
                 "source": "secret", "target": "out"},
            )
            assert status == 200 and doc["session"] == key
            assert server.registry.stats()["count"] == 1

    asyncio.run(body())


def test_protocol_errors():
    async def body():
        async with serving() as server:
            checks = [
                ("GET", "/nope", None, 404),
                ("PUT", "/healthz", None, 405),
                ("POST", "/v1/query", {"source": "a"}, 400),
                ("POST", "/v1/query",
                 {"session": "missing", "source": "a", "target": "b"}, 404),
                ("POST", "/v1/sessions", {"program": "", "vars": VARS}, 400),
                ("POST", "/v1/sessions",
                 {"program": "x := y +", "vars": {"x": "0,1", "y": "0,1"}},
                 400),
            ]
            for method, path, doc, expected in checks:
                status, _ = await rpc(server.port, method, path, doc)
                assert status == expected, (method, path, status)
            # Malformed JSON straight onto the socket.
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(
                b"POST /v1/query HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 5\r\nConnection: close\r\n\r\n{{{{{"
            )
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 30)
            writer.close()
            assert b" 400 " in raw.split(b"\r\n", 1)[0]

    asyncio.run(body())


def test_queue_saturation_sheds_instead_of_queueing():
    async def body():
        plan = faults.FaultPlan(
            specs=tuple(
                faults.FaultSpec.parse(f"delay:serve.request:{n}:0.5")
                for n in range(1, 9)
            ),
            # No stamp: each spec fires at most once in-process, and each
            # targets a distinct request ordinal anyway.
        )
        async with serving(max_concurrency=1, max_queue=1,
                           default_queue_wait_ms=150.0) as server:
            key = await create_session(server)
            with faults.active_plan(plan):
                results = await asyncio.gather(*[
                    rpc(server.port, "POST", "/v1/query",
                        {"session": key, "source": "secret", "target": "out"})
                    for _ in range(6)
                ])
            statuses = sorted(s for s, _ in results)
            # One runs, one waits (and times out of its 150ms wait while
            # the runner sleeps 500ms), the rest bounce off the full
            # queue.  Every shed is explicit, nothing hangs.
            assert statuses.count(429) >= 3, statuses
            assert all(s in (200, 429, 503) for s in statuses), statuses
            for status, doc in results:
                if status == 200:
                    assert doc["verdict"] == "flow"
                else:
                    assert doc.get("shed"), doc
            # The server recovers: next request is served normally.
            status, doc = await rpc(
                server.port, "POST", "/v1/query",
                {"session": key, "source": "secret", "target": "out"},
            )
            assert (status, doc["verdict"]) == (200, "flow")

    asyncio.run(body())


def test_deadline_propagation_trips_to_unknown():
    async def body():
        async with serving() as server:
            key = await create_session(server)
            # A 1ms deadline cannot admit + compute a cold closure; the
            # budget trips cooperatively and the answer is an honest 504.
            status, doc = await rpc(
                server.port, "POST", "/v1/query",
                {"session": key, "source": "secret", "target": "out",
                 "quota": {"deadline_ms": 1}},
            )
            assert status == 504, doc
            assert doc["verdict"] == "unknown"
            assert doc["reason"] in ("deadline", "cancelled")
            # Budget trips are never memoized: the same query with a
            # sane deadline now computes and answers correctly.
            status, doc = await rpc(
                server.port, "POST", "/v1/query",
                {"session": key, "source": "secret", "target": "out"},
            )
            assert (status, doc["verdict"]) == (200, "flow")

    asyncio.run(body())


def test_client_state_cap_is_honest_unknown_at_200():
    async def body():
        async with serving() as server:
            key = await create_session(server)
            status, doc = await rpc(
                server.port, "POST", "/v1/query",
                {"session": key, "source": "secret", "target": "out",
                 "quota": {"max_states": 1}},
            )
            # The client asked for at most one expansion: trip is the
            # requested outcome, not a server failure.
            assert status == 200 and doc["verdict"] == "unknown"
            assert doc["reason"] == "max_expanded"

    asyncio.run(body())


def test_drain_finishes_inflight_and_flushes_store(tmp_path):
    async def body():
        db = str(tmp_path / "memo.db")
        async with serving(store=db) as server:
            key = await create_session(server)
            status, doc = await rpc(
                server.port, "POST", "/v1/query",
                {"session": key, "source": "secret", "target": "out"},
            )
            assert (status, doc["verdict"]) == (200, "flow")
            await server.drain()
            assert server.drain_flushed >= 1
            with pytest.raises(OSError):
                await rpc(server.port, "GET", "/healthz")
        # A restarted server hydrates the same session warm: the closure
        # arrives as a store row, no BFS.
        async with serving(store=db) as server2:
            key2 = await create_session(server2)
            assert key2 == key
            status, doc = await rpc(
                server2.port, "POST", "/v1/query",
                {"session": key2, "source": "secret", "target": "out"},
            )
            assert (status, doc["verdict"]) == (200, "flow")
            session = server2.registry.get(key2)
            assert session.engine.store.hits >= 1

    asyncio.run(body())


def test_readyz_reflects_draining():
    async def body():
        async with serving() as server:
            status, doc = await rpc(server.port, "GET", "/readyz")
            assert status == 200 and doc["ready"]
            server.draining = True  # simulate: drain() closes the socket
            status, doc = await rpc(server.port, "GET", "/readyz")
            assert status == 503 and not doc["ready"]
            server.draining = False

    asyncio.run(body())


# -- unit corners -------------------------------------------------------------


def test_quota_parsing_and_validation():
    quota = RequestQuota.from_doc(
        {"quota": {"deadline_ms": 250, "max_states": 10, "queue_wait_ms": 50}},
        5000.0, 1000.0,
    )
    assert (quota.deadline_ms, quota.max_states, quota.queue_wait_ms) == (
        250.0, 10, 50.0,
    )
    defaults = RequestQuota.from_doc({}, 5000.0, 1000.0)
    assert defaults.deadline_ms == 5000.0
    assert defaults.max_states is None
    for bad in (
        {"quota": {"deadline_ms": 0}},
        {"quota": {"deadline_ms": -5}},
        {"quota": {"max_states": 0}},
        {"quota": {"queue_wait_ms": -1}},
        {"quota": 7},
    ):
        with pytest.raises(ValueError):
            RequestQuota.from_doc(bad, 5000.0, 1000.0)


def test_admission_controller_bounds():
    async def body():
        controller = AdmissionController(max_concurrency=1, max_queue=0)
        async with controller.admit(0.1):
            with pytest.raises(ShedError) as err:
                async with controller.admit(0.1):
                    pass
            assert err.value.status == 429
        # Slot free again: admission succeeds.
        async with controller.admit(0.1):
            assert controller.inflight == 1
        assert controller.stats()["shed_queue_full"] == 1

    asyncio.run(body())


def test_breaker_transitions():
    clock = [0.0]
    breaker = CircuitBreaker(backoff_base=1.0, backoff_cap=4.0,
                             clock=lambda: clock[0])
    assert breaker.state == CLOSED
    assert breaker.executor_hint() == "process"
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.executor_hint() == "thread"
    assert not breaker.should_probe()  # cooldown not elapsed
    clock[0] = 1.5
    assert breaker.should_probe()
    breaker.begin_probe()
    breaker.probe_failed()  # backoff doubles: 2.0s from now
    clock[0] = 2.0
    assert not breaker.should_probe()
    clock[0] = 4.0
    assert breaker.should_probe()
    breaker.begin_probe()
    breaker.probe_succeeded()
    assert breaker.state == CLOSED
    stats = breaker.stats()
    assert stats["trips"] == 1 and stats["recoveries"] == 1
