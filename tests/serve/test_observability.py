"""PR-10 serve-layer observability contract: trace IDs end to end
(headers, spans, provenance, access log, flight recorder), the
``/metrics`` Prometheus exposition, and the ``repro stats`` views over
access logs and flight dumps."""

from __future__ import annotations

import asyncio
import json
import re

import pytest

from repro import obs
from repro.cli import main as cli_main
from repro.obs import metrics

from tests.serve.helpers import PROGRAM, VARS, create_session, rpc, serving

_TRACE_RE = re.compile(r"^[0-9a-f]{16}$")


@pytest.fixture(autouse=True)
def clean_telemetry():
    """The collector is module-global; leave it as we found it (other
    serve tests run with telemetry off)."""
    was_enabled = obs.is_enabled()
    obs.disable()
    obs.reset()
    yield
    obs.reset()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()


async def raw_rpc(
    port: int,
    method: str,
    path: str,
    doc: dict | None = None,
    headers: dict[str, str] | None = None,
) -> tuple[int, dict[str, str], bytes]:
    """Like helpers.rpc but keeps the response headers and raw body —
    the trace header and the non-JSON ``/metrics`` body are part of the
    contract under test."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        body = b"" if doc is None else json.dumps(doc).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n"
        )
        for name, value in (headers or {}).items():
            head += f"{name}: {value}\r\n"
        writer.write(head.encode() + b"\r\n" + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), 60)
    finally:
        writer.close()
    header_blob, _, payload = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    resp_headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        resp_headers[name.strip().lower()] = value.strip()
    return status, resp_headers, payload


class TestTraceHeader:
    def test_every_response_carries_a_minted_trace_id(self):
        async def body():
            async with serving() as server:
                status, headers, _ = await raw_rpc(
                    server.port, "GET", "/healthz"
                )
                assert status == 200
                assert _TRACE_RE.fullmatch(headers["x-trace-id"])

        asyncio.run(body())

    def test_client_supplied_trace_id_is_honored_and_echoed(self):
        async def body():
            async with serving() as server:
                _, headers, _ = await raw_rpc(
                    server.port, "GET", "/healthz",
                    headers={"X-Trace-Id": "caller-trace-01"},
                )
                assert headers["x-trace-id"] == "caller-trace-01"

        asyncio.run(body())

    def test_invalid_client_trace_id_is_replaced(self):
        async def body():
            async with serving() as server:
                for bad in ("has space", "x" * 65):
                    _, headers, _ = await raw_rpc(
                        server.port, "GET", "/healthz",
                        headers={"X-Trace-Id": bad},
                    )
                    assert _TRACE_RE.fullmatch(headers["x-trace-id"])

        asyncio.run(body())

    def test_query_provenance_carries_the_request_trace(self):
        async def body():
            async with serving() as server:
                key = await create_session(server)
                status, headers, payload = await raw_rpc(
                    server.port, "POST", "/v1/query",
                    {"session": key, "source": "secret", "target": "out"},
                    headers={"X-Trace-Id": "prov-trace-01"},
                )
                doc = json.loads(payload)
                assert status == 200 and doc["verdict"] == "flow"
                assert headers["x-trace-id"] == "prov-trace-01"
                assert "trace=prov-trace-01" in doc["provenance"]

        asyncio.run(body())


class TestAccessLog:
    def test_protocol_errors_still_produce_access_lines(self):
        async def body():
            async with serving() as server:
                await rpc(server.port, "GET", "/nope")
                await rpc(server.port, "PUT", "/healthz")
                await rpc(server.port, "POST", "/v1/query", {"source": "a"})
                tail = server.access_log.tail()
                statuses = [line["status"] for line in tail]
                assert statuses == [404, 405, 400]
                assert all(line["trace"] for line in tail)
                assert all(line["type"] == "access" for line in tail)

        asyncio.run(body())

    def test_access_lines_reach_the_jsonl_file(self, tmp_path):
        async def body():
            path = str(tmp_path / "access.jsonl")
            async with serving(access_log=path) as server:
                key = await create_session(server)
                await raw_rpc(
                    server.port, "POST", "/v1/query",
                    {"session": key, "source": "secret", "target": "out"},
                    headers={"X-Trace-Id": "file-trace-01"},
                )
            lines = [
                json.loads(line) for line in open(path, encoding="utf-8")
            ]
            q = next(line for line in lines if line["path"] == "/v1/query")
            assert q["trace"] == "file-trace-01"
            assert q["status"] == 200 and q["verdict"] == "flow"
            assert q["session"] == key
            return path

        path = asyncio.run(body())
        # Satellite: `repro stats` summarizes the access JSONL directly.
        assert cli_main(["stats", path]) == 0

    def test_unwritable_access_log_is_fail_open(self, tmp_path):
        async def body():
            bad = str(tmp_path / "no" / "such" / "dir" / "a.jsonl")
            async with serving(access_log=bad) as server:
                status, _ = await rpc(server.port, "GET", "/healthz")
                assert status == 200
                stats = server.access_log.stats()
                assert stats["write_errors"] >= 1
                assert stats["ring"] >= 1  # the in-memory tail survives

        asyncio.run(body())


class TestMetricsEndpoint:
    def test_metrics_is_valid_prometheus_exposition(self):
        async def body():
            async with serving() as server:
                key = await create_session(server)
                await rpc(
                    server.port, "POST", "/v1/query",
                    {"session": key, "source": "secret", "target": "out"},
                )
                status, headers, payload = await raw_rpc(
                    server.port, "GET", "/metrics"
                )
                assert status == 200
                assert headers["content-type"] == metrics.CONTENT_TYPE
                text = payload.decode("utf-8")
                assert metrics.lint(
                    text,
                    require=[
                        "repro_serve_request_seconds",
                        "repro_serve_requests_total",
                    ],
                ) == []
                # Live gauges the collector does not own ride along.
                assert "repro_serve_sessions_resident 1" in text

        asyncio.run(body())

    def test_request_histogram_counts_every_request(self):
        async def body():
            async with serving() as server:
                for _ in range(3):
                    await rpc(server.port, "GET", "/healthz")
                _, _, payload = await raw_rpc(server.port, "GET", "/metrics")
                count = next(
                    int(line.rsplit(" ", 1)[1])
                    for line in payload.decode().splitlines()
                    if line.startswith("repro_serve_request_seconds_count")
                )
                assert count >= 3

        asyncio.run(body())


class TestFlightRecorder:
    def test_504_joins_access_log_flight_and_spans(self, tmp_path):
        """The acceptance path: a deadline-tripped request appears in
        the access log and the flight recorder, and the flight record's
        span tree carries the same trace id as the request."""
        async def body():
            obs.enable(reset=True)
            async with serving() as server:
                key = await create_session(server)
                status, headers, payload = await raw_rpc(
                    server.port, "POST", "/v1/query",
                    {"session": key, "source": "secret", "target": "out",
                     "quota": {"deadline_ms": 1}},
                    headers={"X-Trace-Id": "deadline-trace-01"},
                )
                doc = json.loads(payload)
                assert status == 504, doc
                assert headers["x-trace-id"] == "deadline-trace-01"
                # Access log: the 504 line carries the trace and the
                # exhausted budget.
                line = next(
                    l for l in server.access_log.tail()
                    if l["status"] == 504
                )
                assert line["trace"] == "deadline-trace-01"
                assert line["budget"] == "exhausted"
                # Flight recorder: same trace, reason deadline, and a
                # captured span tree whose every span carries the trace.
                _, flight = await rpc(
                    server.port, "GET", "/stats?flight=1"
                )
                rec = next(
                    r for r in flight["flight"]
                    if r["trace"] == "deadline-trace-01"
                )
                assert rec["reason"] == "deadline"
                assert rec["status"] == 504
                assert rec["spans"], "504 must retain its span tree"
                names = {s["name"] for s in rec["spans"]}
                assert "serve.query" in names
                assert all(
                    s["trace"] == "deadline-trace-01" for s in rec["spans"]
                )
                # The same spans are in the live collector, same trace.
                live = {
                    s.name for s in obs.snapshot().spans
                    if s.trace_id == "deadline-trace-01"
                }
                assert "serve.query" in live
                return flight

        flight = asyncio.run(body())
        # Satellite: `repro stats --flight` renders the dump offline.
        dump = tmp_path / "flight.json"
        dump.write_text(json.dumps(flight["flight"]))
        assert cli_main(["stats", "--flight", str(dump)]) == 0

    def test_shed_requests_are_recorded_with_empty_trees(self):
        async def body():
            async with serving(max_concurrency=1, max_queue=0) as server:
                key = await create_session(server)
                # The shed test is arrival-counted on inflight+waiting;
                # pin it at capacity so the next arrival bounces 429.
                server.admission.inflight = 1
                try:
                    status, headers, payload = await raw_rpc(
                        server.port, "POST", "/v1/query",
                        {"session": key, "source": "secret",
                         "target": "out"},
                        headers={"X-Trace-Id": "shed-trace-01"},
                    )
                finally:
                    server.admission.inflight = 0
                assert status == 429, payload
                _, flight = await rpc(server.port, "GET", "/stats?flight=1")
                rec = next(
                    r for r in flight["flight"]
                    if r["trace"] == "shed-trace-01"
                )
                assert rec["reason"] == "shed" and rec["status"] == 429
                # Shed before any work ran: an empty tree is the record.
                assert rec["spans"] == []
                line = next(
                    l for l in server.access_log.tail()
                    if l["trace"] == "shed-trace-01"
                )
                assert line["shed"] is True

        asyncio.run(body())

    def test_prewarm_session_spans_carry_the_request_trace(self):
        """Pool-worker (or degraded thread/serial) closure spans from
        the prewarm fan-out absorb under the creating request's trace."""
        async def body():
            obs.enable(reset=True)
            async with serving() as server:
                status, headers, payload = await raw_rpc(
                    server.port, "POST", "/v1/sessions",
                    {"program": PROGRAM, "vars": VARS, "prewarm": True},
                    headers={"X-Trace-Id": "sess-trace-01"},
                )
                assert status == 200, payload
                names = {
                    s.name for s in obs.snapshot().spans
                    if s.trace_id == "sess-trace-01"
                }
                assert "serve.session.create" in names
                assert "serve.warm" in names and "engine.warm" in names
                # Whichever ladder rung ran the closures, their spans
                # carry the request's trace.
                assert names & {
                    "worker.closure", "engine.closure", "kernel.closure"
                }, names

        asyncio.run(body())

    def test_slow_request_threshold_records_successes(self):
        async def body():
            async with serving(slow_request_ms=0.0) as server:
                status, _ = await rpc(server.port, "GET", "/healthz")
                assert status == 200
                rec = server.flight.dump()[-1]
                assert rec["reason"] == "slow" and rec["status"] == 200

        asyncio.run(body())


class TestStatsSections:
    def test_stats_exposes_hists_access_and_flight(self):
        async def body():
            obs.enable(reset=True)
            async with serving() as server:
                key = await create_session(server)
                await rpc(
                    server.port, "POST", "/v1/query",
                    {"session": key, "source": "secret", "target": "out"},
                )
                _, stats = await rpc(server.port, "GET", "/stats")
                hists = stats["telemetry"]["hists"]
                assert "serve.request.seconds" in hists
                for col in ("count", "p50", "p95", "p99"):
                    assert col in hists["serve.request.seconds"]
                assert stats["access"]["lines"] >= 2
                assert "retained" in stats["flight"]

        asyncio.run(body())
