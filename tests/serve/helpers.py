"""Shared plumbing for the service tests: an in-process server context
and a tiny raw-socket JSON client (the tests deliberately speak HTTP
bytes themselves, so the server's wire format is part of the contract).
"""

from __future__ import annotations

import asyncio
import json
from contextlib import asynccontextmanager

from repro.serve.app import ReproServer, ServeConfig

PROGRAM = "gate := secret > limit;\nif gate then out := 1 else out := 0"
VARS = {"secret": "0..3", "limit": "0,1", "gate": "bool", "out": "0,1"}


async def rpc(
    port: int,
    method: str,
    path: str,
    doc: dict | None = None,
    host: str = "127.0.0.1",
) -> tuple[int, dict]:
    """One request over a fresh connection; returns (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b"" if doc is None else json.dumps(doc).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), 60)
    finally:
        writer.close()
    header, _, payload = raw.partition(b"\r\n\r\n")
    return int(header.split()[1]), json.loads(payload)


@asynccontextmanager
async def serving(**overrides):
    """A started :class:`ReproServer` on an ephemeral port; drains on
    exit unless the test already drained it."""
    config = ServeConfig(port=0, **overrides)
    server = ReproServer(config)
    await server.start()
    try:
        yield server
    finally:
        if not server.draining:
            await server.drain()


async def create_session(server, prewarm: bool = False) -> str:
    status, doc = await rpc(
        server.port,
        "POST",
        "/v1/sessions",
        {"program": PROGRAM, "vars": VARS, "prewarm": prewarm},
    )
    assert status == 200, doc
    return doc["session"]
