#!/usr/bin/env python3
"""Audit a system for covert channels, qualitatively and quantitatively.

Section 7.3 warns (after Rotenberg 73) that protection mechanisms can
*introduce* information paths: the rights matrix itself is state an
observer can sense.  We build an access-matrix system with a grant
operation, draw the exact information-flow graph, find the covert path
through the matrix entry, and measure its bandwidth with the section 7.4
channel measures.

Run:  python examples/covert_channel_audit.py
"""

from repro.analysis.graph import exact_flow_graph, render_dot
from repro.analysis.report import Table
from repro.core.system import History
from repro.quantitative import (
    StateDistribution,
    bits_transmitted,
    bits_transmitted_averaged,
)
from repro.systems.access_matrix import (
    READ,
    AccessMatrixSystem,
    entry_name,
)


def build() -> AccessMatrixSystem:
    base_kwargs = dict(
        subjects=["hi", "lo"],
        files={"hidata": (0, 1), "lodata": (0, 1)},
        entries=[("lo", "hidata"), ("lo", "lodata")],
        copy_operations=[("lo", "lodata", "hidata")],
        fixed_rights={
            ("lo", "lo"): frozenset({"s"}),
            ("hi", "hidata"): frozenset({READ}),
            ("hi", "hi"): frozenset({"s"}),
        },
    )
    helper = AccessMatrixSystem(**base_kwargs)
    # 'hi' grants 'lo' read access to hidata — a protection-state change
    # that is itself observable downstream.
    grant = helper.grant_operation("hi", READ, "lo", "hidata")
    return AccessMatrixSystem(**base_kwargs, extra_operations=[grant])


def main() -> None:
    ams = build()
    graph = exact_flow_graph(ams.system)
    print("exact information-flow graph:")
    print(render_dot(graph))

    matrix_entry = entry_name("lo", "hidata")
    table = Table(
        ["source", "target", "flows?", "shortest witness"],
        title="Channels into lodata",
    )
    for source in ams.space.names:
        if source == "lodata":
            continue
        if graph.has_edge(source, "lodata"):
            witness = graph.edges[source, "lodata"]["history"]
            table.add(source, "lodata", True, " ".join(witness))
        else:
            table.add(source, "lodata", False, "-")
    table.echo()

    print(
        f"\nNote the covert channel: the matrix entry {matrix_entry!r} "
        "transmits to lodata (whether the copy fires reveals the right)."
    )

    # Quantify both channels over the single copy step: the data channel
    # (hidata's value) and the covert channel (the matrix entry's value,
    # revealed by whether the copy fires).
    copy_op = ams.system.operation("copy(lo,lodata,hidata)")
    h = History.of(copy_op)
    dist = StateDistribution.uniform_over_space(ams.space)
    bw = Table(
        ["source", "equivocation measure", "averaged measure"],
        title="Channel bandwidth into lodata over copy (bits)",
    )
    for source in ("hidata", matrix_entry):
        bw.add(
            source,
            bits_transmitted(dist, {source}, "lodata", h),
            bits_transmitted_averaged(dist, {source}, "lodata", h),
        )
    bw.echo()
    print(
        "\nThe covert channel is *contingent* (section 7.2): lodata's "
        "value alone says nothing about the right (equivocation measure "
        "0), but with the other objects held fixed the right's variety "
        "does reach lodata (averaged measure > 0) — which is why strong "
        "dependency flags the path."
    )


if __name__ == "__main__":
    main()
