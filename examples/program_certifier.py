#!/usr/bin/env python3
"""Certify a sequential program free of a secret-to-public flow
(section 6.5's technique as a user-facing tool).

We take a small program in the mini-language, compile it to a flowchart
system, attach Floyd assertions, and run the Theorem 6-7 proof that no
information flows from ``secret`` to ``public`` for inputs satisfying the
entry assertion — then cross-check with the exact model checker and show
where the syntactic taint baseline over-approximates.

Run:  python examples/program_certifier.py
"""

from repro.analysis.report import Table
from repro.baselines.taint import taint_closure
from repro.core.constraints import Constraint
from repro.systems.program import (
    build_program_system,
    program_transmits,
    prove_program_no_flow,
)

SOURCE = """
gate := secret > limit;
if gate then audit := 1 else audit := 0;
if audit > 0 then public := 0 else public := temp
"""


def main() -> None:
    ps = build_program_system(
        SOURCE,
        {
            "secret": range(4),
            "limit": range(4),
            "gate": (False, True),
            "audit": (0, 1),
            "temp": (0, 1),
            "public": (0, 1),
        },
    )
    print("compiled flowchart:")
    for pc in sorted(ps.flowchart.nodes):
        print("  ", ps.flowchart.nodes[pc])

    sp = ps.space

    # Entry assertion: the secret never exceeds the audit limit, so the
    # gate is always false and the public write comes from temp only.
    entry = Constraint(sp, lambda s: s["secret"] <= s["limit"], name="sec<=lim")

    table = Table(["entry assertion", "secret |> public?"],
                  title="Exact strong dependency on the flowchart system")
    for phi, label in ((None, "tt"), (entry, entry.name)):
        result = program_transmits(ps, {"secret"}, "public", phi)
        table.add(label, bool(result))
    table.echo()

    # Floyd proof under the entry assertion.  The network records what is
    # true at each node when the entry assertion holds: the gate is false
    # from node 2 on, so the then-branch (nodes 3/4) and the audited write
    # (nodes 7/8) are unreachable — their assertions are 'false'.
    def network(sp):
        safe = lambda s: s["secret"] <= s["limit"]
        no_gate = lambda s: safe(s) and not s["gate"]
        no_audit = lambda s: no_gate(s) and s["audit"] == 0
        unreachable = lambda s: False
        return {
            1: Constraint(sp, safe, name="safe"),
            2: Constraint(sp, no_gate, name="safe&~gate"),
            3: Constraint(sp, unreachable, name="ff"),
            4: Constraint(sp, unreachable, name="ff"),
            5: Constraint(sp, no_gate, name="safe&~gate"),
            6: Constraint(sp, no_audit, name="safe&audit=0"),
            7: Constraint(sp, unreachable, name="ff"),
            8: Constraint(sp, unreachable, name="ff"),
            9: Constraint(sp, no_audit, name="safe&audit=0"),
            10: Constraint.true(sp),
        }

    proof = prove_program_no_flow(
        ps, network(sp), {"secret"}, "public", cover_style="global"
    )
    print("\nFloyd/Theorem 6-7 certificate valid?", proof.valid)

    # Baseline comparison: taint cannot see the entry assertion at all.
    tainted = taint_closure(ps.system, {"secret"})
    print("\ntaint closure from 'secret':", sorted(tainted))
    print(
        "taint flags secret -> public even under the safe entry "
        "assertion (it is state-insensitive)."
    )


if __name__ == "__main__":
    main()
