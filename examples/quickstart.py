#!/usr/bin/env python3
"""Quickstart: define a system, detect a flow, constrain it away, prove it.

The running example is the paper's guarded copy (section 3.2)::

    delta: if m then beta <- alpha

We ask three questions the library is built to answer:

1. *Can* information flow from alpha to beta?         (strong dependency)
2. Which initial constraints *eliminate* that flow?   (information problems)
3. Can we *prove* a solution correct without          (strong dependency
   enumerating histories?                              induction)

Run:  python examples/quickstart.py
"""

from repro import Constraint, SystemBuilder, transmits, var
from repro.core.induction import prove_no_dependency
from repro.core.problems import NoTransmissionProblem
from repro.core.reachability import depends_ever


def main() -> None:
    # -- 1. Define the computational system ---------------------------------
    builder = SystemBuilder()
    builder.booleans("m")
    builder.integers("alpha", "beta", bits=2)
    builder.op_if("delta", var("m"), "beta", var("alpha"))
    system = builder.build()
    delta = system.operation("delta")
    print(f"system: {system}")

    # -- 2. Detect the flow --------------------------------------------------
    result = transmits(system, {"alpha"}, "beta", delta)
    print("\nalpha |> beta over delta?", bool(result))
    print(result.witness.describe())

    # -- 3. Constrain it away -------------------------------------------------
    # The obvious solution: forbid m initially.
    guard_off = builder.constraint(lambda s: not s["m"], name="~m")
    print(
        "\ngiven ~m, alpha |> beta over any history?",
        bool(depends_ever(system, {"alpha"}, "beta", guard_off)),
    )

    # The degenerate solution the paper warns about: freeze the source.
    frozen = Constraint.equals(system.space, "alpha", 3)
    problem = NoTransmissionProblem(
        system, {"alpha"}, "beta", require_independent=True
    )
    print("\nis 'alpha = 3' accepted as a solution?",
          problem.is_solution(frozen))
    print("is '~m' accepted as a solution?", problem.is_solution(guard_off))

    # -- 4. Prove it inductively ----------------------------------------------
    # ~m is autonomous and invariant, so Corollary 4-2 proves the absence
    # of transmission over EVERY history from per-operation checks alone.
    proof = prove_no_dependency(system, guard_off, "alpha", "beta")
    print()
    print(proof.describe())


if __name__ == "__main__":
    main()
