#!/usr/bin/env python3
"""The Confinement Problem on an access-matrix system (sections 1.1, 3.4).

A customer gives a *service* private data.  The service writes results to
a shared drop file a *spy* can read.  We model the protection state as a
Lampson access matrix (section 1.3), pose the Confinement Problem, search
for a maximal solution, and compare candidate solutions by Worth
(section 3.6).

Run:  python examples/confinement_service.py
"""

from repro.analysis.report import Table
from repro.analysis.solver import is_maximal
from repro.core.constraints import Constraint
from repro.core.problems import ConfinementProblem
from repro.core.reachability import depends_ever
from repro.core.worth import WorthMeasure
from repro.systems.access_matrix import (
    READ,
    WRITE,
    AccessMatrixSystem,
)


def build_service() -> AccessMatrixSystem:
    """One subject ("service") that can copy between the private file, its
    scratch file, and the public drop; rights are dynamic state."""
    return AccessMatrixSystem(
        subjects=["service"],
        files={"private": (0, 1), "scratch": (0, 1), "drop": (0, 1)},
        entries=[
            ("service", "private"),
            ("service", "scratch"),
            ("service", "drop"),
        ],
        copy_operations=[
            ("service", "scratch", "private"),  # stash the secret
            ("service", "drop", "scratch"),  # publish scratch
            ("service", "drop", "private"),  # publish directly
            ("service", "scratch", "drop"),  # read back public data
        ],
        fixed_rights={("service", "service"): frozenset({"s"})},
    )


def main() -> None:
    ams = build_service()
    problem = ConfinementProblem(
        ams.system, confined={"private"}, spies={"drop"}
    )

    print("Forbidden information paths:", problem.forbidden_paths())
    print(
        "Unconstrained system confined?",
        problem.is_solution(Constraint.true(ams.space)),
    )

    # Candidate solutions, from blunt to surgical.
    no_read_private = ams.missing_right_constraint(READ, "service", "private")
    no_write_drop = ams.missing_right_constraint(WRITE, "service", "drop")
    surgical = ams.deny_constraint(
        [
            ("service", "private", "drop"),  # direct publish
            ("service", "private", "scratch"),  # stash (first relay hop)
        ],
        name="deny-private-copies",
    )

    table = Table(
        ["candidate", "solves?", "maximal?", "paths kept"],
        title="Confinement candidates",
    )
    measure = WorthMeasure(ams.system)
    for phi in (no_read_private, no_write_drop, surgical):
        solves = problem.is_solution(phi)
        table.add(
            phi.name,
            solves,
            is_maximal(problem, phi) if solves else "-",
            len(measure.worth(phi).paths),
        )
    table.echo()

    # The initial-vs-invariant subtlety (section 3.3): constraining the
    # *content* of the scratch file initially does nothing — the secret is
    # copied into scratch after the constraint was checked.
    scratch_frozen = Constraint.equals(ams.space, "scratch", 0)
    leak = depends_ever(ams.system, {"private"}, "drop", scratch_frozen)
    print("\nFreezing scratch's initial content still leaks?", bool(leak))
    if leak:
        print("  witness history:", [op.name for op in leak.witness.history])

    # Declassification (section 7.5): trust the service for this path.
    trusted = ConfinementProblem(
        ams.system,
        confined={"private"},
        spies={"drop"},
        declassifiers={("private", "drop")},
    )
    print(
        "\nWith a trusted declassifier, tt solves the problem?",
        trusted.is_solution(Constraint.true(ams.space)),
    )


if __name__ == "__main__":
    main()
