#!/usr/bin/env python3
"""Verified writers: the Hydra-flavoured integrity scenario the
formalism grew out of (sections 1.1 and 2.6).

A sensitive configuration object must only be altered by *verified*
procedures.  We build the capability system, state the paper's
"complex but autonomous" initial constraint, check that it is autonomous
AND invariant (thanks to the mechanism refusing capability transfers to
unverified procedures), verify the behavioral guarantee, and finish with
the information-flow view.

Run:  python examples/verified_writers.py
"""

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.reachability import depends_ever
from repro.systems.hydra import VerifiedWritersSystem, cap_name


def main() -> None:
    vw = VerifiedWritersSystem(
        procedures={"installer": True, "plugin": False},
        objects={"config": (0, 1), "staging": (0, 1)},
        sensitive={"config"},
        writes=[
            ("installer", "config", "staging"),
            ("plugin", "config", "staging"),
            ("plugin", "staging", "config"),
        ],
        transfers=[("plugin", "installer", "config")],
    )
    print("operations:", ", ".join(vw.system.operation_names))

    phi = vw.integrity_constraint()
    problem = vw.integrity_problem()

    table = Table(
        ["check", "result"],
        title="Verified-writers integrity (the sec 2.6 scenario)",
    )
    table.add("constraint is autonomous (as the paper remarks)",
              phi.is_autonomous())
    table.add("constraint is invariant (the mechanism's doing)",
              phi.is_invariant(vw.system))
    table.add("integrity enforced from phi-states", problem.enforces(phi))
    unconstrained = problem.enforcement_counterexample(
        Constraint.true(vw.space)
    )
    table.add("integrity holds without phi", unconstrained is None)
    table.echo()

    if unconstrained is not None:
        state, op = unconstrained
        print(
            f"\nwithout phi, {op.name} alters config from a state where "
            f"{cap_name('plugin', 'config')} = "
            f"{state[cap_name('plugin', 'config')]}"
        )

    # The information-flow view: under phi, staging's variety still
    # reaches config — but only through the verified installer.
    print(
        "\nstaging |> config given phi:",
        bool(depends_ever(vw.system, {"staging"}, "config", phi)),
    )
    print(
        "plugin's capability bit |> config given phi:",
        bool(
            depends_ever(
                vw.system, {cap_name("plugin", "config")}, "config", phi
            )
        ),
    )


if __name__ == "__main__":
    main()
