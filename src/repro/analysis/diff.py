"""``repro diff``: which verdicts changed between two system versions?

The composed-system-evolution workload (More/Naumov's collaboration
networks, Neovius et al.'s service dependencies — PAPERS.md) asks the
same question after every small change: *the system evolved slightly;
which secrets leak now that didn't, and which stopped?*  Recomputing
every closure from cold answers it at full price.  This module answers
it at the price of the change:

1. Compile both versions and compare their canonical content
   (:func:`repro.core.store.system_hash` and the per-operation delta
   hashes).  When the two versions share their space and operation
   names, the changed successor *entries* form a state bitset.
2. Sweep the old version's closures.  A closure whose touched-states
   bitset (:meth:`CompiledClosure.touched_states`) avoids every changed
   entry replays **bit-identically** under the new version — the BFS
   would read only agreeing table entries — so it is *carried across*
   (:meth:`DependencyEngine.adopt_closure`, which also persists it
   under the new version's hash when a store is attached).  Only the
   invalidated frontier — closures that actually read a changed entry —
   is recomputed (``store.invalidate`` counter).
3. Compare per-target verdicts closure by closure and report exactly
   which ``(A, beta)`` answers flipped.

The soundness argument (docs/FORMALISM.md, "Persistent memoization")
gives the key property the property suite checks: every changed verdict
necessarily belongs to an invalidated closure, so the report is
identical to a full recompute.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro import obs
from repro.core.compiled import CompiledClosure
from repro.core.constraints import Constraint
from repro.core.engine import DependencyEngine
from repro.core.errors import ReproError
from repro.core.store import (
    PersistentStore,
    bitset_count,
    bitset_intersects,
    changed_op_indices,
    changed_state_bitset,
    system_hash,
)
from repro.core.system import System

#: Version stamp of the JSON report layout (docs/diff.schema.json).
DIFF_SCHEMA_VERSION = 1


@dataclass(frozen=True, slots=True)
class VerdictChange:
    """One flipped answer: ``A |>_phi beta`` before vs after."""

    sources: tuple[str, ...]
    target: str
    constraint: str
    before: bool
    after: bool
    #: Whether the closure this verdict came from was recomputed (it
    #: always is when the report is sound — the invalidation property
    #: tests assert exactly this).
    recomputed: bool

    def to_json(self) -> dict:
        return {
            "sources": list(self.sources),
            "target": self.target,
            "constraint": self.constraint,
            "before": self.before,
            "after": self.after,
        }


@dataclass(frozen=True, slots=True)
class DiffReport:
    """The outcome of one two-version sweep (:func:`diff_systems`)."""

    old_hash: str
    new_hash: str
    comparable: bool
    changed_operations: tuple[str, ...]
    changed_states: int
    closures_total: int
    closures_reused: int
    closures_recomputed: int
    verdicts_checked: int
    changed: tuple[VerdictChange, ...]

    @property
    def recompute_fraction(self) -> float:
        """Share of closures the delta actually invalidated — the
        incrementality the persistence bench bounds (<20% for a
        one-operation delta on the gated family)."""
        if not self.closures_total:
            return 0.0
        return self.closures_recomputed / self.closures_total

    def to_json(self) -> dict:
        return {
            "schema_version": DIFF_SCHEMA_VERSION,
            "old_hash": self.old_hash,
            "new_hash": self.new_hash,
            "comparable": self.comparable,
            "changed_operations": list(self.changed_operations),
            "changed_states": self.changed_states,
            "closures": {
                "total": self.closures_total,
                "reused": self.closures_reused,
                "recomputed": self.closures_recomputed,
            },
            "verdicts": {
                "checked": self.verdicts_checked,
                "changed": [change.to_json() for change in self.changed],
            },
        }

    def to_json_text(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    def describe(self) -> str:
        lines = [
            f"old system   {self.old_hash}",
            f"new system   {self.new_hash}",
            f"changed ops  {', '.join(self.changed_operations) or '(none)'}"
            f"  ({self.changed_states} changed table entries)",
            f"closures     {self.closures_total} total: "
            f"{self.closures_reused} reused, "
            f"{self.closures_recomputed} recomputed "
            f"({self.recompute_fraction:.0%})",
            f"verdicts     {self.verdicts_checked} checked, "
            f"{len(self.changed)} changed",
        ]
        if not self.comparable:
            lines.insert(2, "versions are not delta-comparable: full recompute")
        for change in self.changed:
            arrow = "now FLOWS" if change.after else "no longer flows"
            lines.append(
                f"  {{{', '.join(change.sources)}}} -> {change.target} "
                f"[{change.constraint}]: {arrow} "
                f"({change.before} -> {change.after})"
            )
        return "\n".join(lines)


def _constraint_pairs(
    constraints,
) -> list[tuple[Constraint | None, Constraint | None]]:
    """Normalize the ``constraints`` argument: each item is either one
    constraint applied to both versions (spaces compare by value, so a
    constraint built against either space binds to both) or an explicit
    ``(old, new)`` pair."""
    if constraints is None:
        return [(None, None)]
    out: list[tuple[Constraint | None, Constraint | None]] = []
    for item in constraints:
        if item is None or isinstance(item, Constraint):
            out.append((item, item))
        else:
            phi_old, phi_new = item
            out.append((phi_old, phi_new))
    return out


def _sat_equal(
    e_old: DependencyEngine,
    e_new: DependencyEngine,
    phi_old: Constraint | None,
    phi_new: Constraint | None,
) -> bool:
    """Closure reuse additionally requires the Def 2-8 seeds to match,
    and those depend on sat(phi): the two resolved constraints must
    satisfy the same state ids."""
    sat_old = e_old.compiled_system().sat_ids(phi_old)
    sat_new = e_new.compiled_system().sat_ids(phi_new)
    if sat_old is None or sat_new is None:
        return sat_old is None and sat_new is None
    return sat_old == sat_new


def diff_systems(
    old: System,
    new: System,
    constraints: Sequence | None = None,
    sources: Iterable[Iterable[str]] | None = None,
    store: "PersistentStore | str | None" = None,
    kernel: str | None = None,
) -> DiffReport:
    """Compare every ``(A, phi)`` dependency verdict of two system
    versions, reusing every closure the delta provably left intact.

    ``sources`` defaults to the singleton family (one closure per
    object); ``constraints`` is a sequence of constraints or
    ``(old, new)`` constraint pairs (default: unconstrained).  With a
    ``store`` (instance or path) both versions read and write the
    persistent memo store, so repeated diffs of the same pair are pure
    row fetches and surviving closures are persisted under the new hash.

    The two versions must share their object space (names and domains);
    operations may change behaviour, be added, renamed or removed.
    Reuse applies when the operation *names* also match (a pure-delta
    change); otherwise everything recomputes and the report still
    compares verdicts.
    """
    if old.space != new.space:
        raise ReproError(
            "diff requires both versions to share one object space "
            f"(got {old.space!r} vs {new.space!r})"
        )
    store = PersistentStore.coerce(store)
    e_old = DependencyEngine(old, store=store, kernel=kernel)
    e_new = DependencyEngine(new, store=store, kernel=kernel)
    k_old = e_old.compiled_system().kernel
    k_new = e_new.compiled_system().kernel
    old_hash = system_hash(k_old)
    new_hash = system_hash(k_new)
    comparable = k_old.op_names == k_new.op_names
    if comparable:
        changed_idx = changed_op_indices(k_old.successors, k_new.successors)
        changed_ops = tuple(k_old.op_names[d] for d in changed_idx)
        delta = changed_state_bitset(
            k_old.n, k_old.successors, k_new.successors, changed_idx
        )
        changed_states = bitset_count(delta)
    else:
        changed_ops = tuple(
            sorted(set(k_old.op_names) ^ set(k_new.op_names))
        )
        delta = b""
        changed_states = k_new.n
    family = (
        [frozenset(a) for a in sources]
        if sources is not None
        else [frozenset([name]) for name in new.space.names]
    )
    pairs = _constraint_pairs(constraints)
    names = new.space.names
    reused = 0
    recomputed = 0
    checked = 0
    changes: list[VerdictChange] = []
    with obs.span(
        "diff.compare", old=old_hash, new=new_hash, closures=len(family) * len(pairs)
    ):
        for phi_old, phi_new in pairs:
            phi_name = e_new._resolve(phi_new).name
            reusable_phi = comparable and _sat_equal(e_old, e_new, phi_old, phi_new)
            for source_set in family:
                c_old = e_old._closure(source_set, phi_old)
                before = c_old.first_differing()
                if (
                    reusable_phi
                    and isinstance(c_old, CompiledClosure)
                    and not bitset_intersects(c_old.touched_states(), delta)
                ):
                    c_new = e_new.adopt_closure(
                        source_set,
                        phi_new,
                        c_old.order,
                        c_old.parents,
                        c_old.kernel_path,
                    )
                    reused += 1
                    was_recomputed = False
                else:
                    c_new = e_new._closure(source_set, phi_new)
                    recomputed += 1
                    was_recomputed = True
                    if comparable:
                        obs.count("store.invalidate")
                after = c_new.first_differing()
                for target in names:
                    verdict_before = target in before
                    verdict_after = target in after
                    checked += 1
                    if verdict_before != verdict_after:
                        changes.append(
                            VerdictChange(
                                sources=tuple(sorted(source_set)),
                                target=target,
                                constraint=phi_name,
                                before=verdict_before,
                                after=verdict_after,
                                recomputed=was_recomputed,
                            )
                        )
    return DiffReport(
        old_hash=old_hash,
        new_hash=new_hash,
        comparable=comparable,
        changed_operations=changed_ops,
        changed_states=changed_states,
        closures_total=reused + recomputed,
        closures_reused=reused,
        closures_recomputed=recomputed,
        verdicts_checked=checked,
        changed=tuple(changes),
    )
