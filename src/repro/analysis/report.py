"""Plain-text tables for benchmark output.

Every benchmark prints the rows/series the corresponding paper example
reports; :class:`Table` keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


class Table:
    """An aligned plain-text table.

    >>> t = Table(["system", "flow?"])
    >>> t.add("copy", True)
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    system | flow?
    ------ | -----
    copy   | yes
    """

    def __init__(self, headers: Sequence[str], title: str | None = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_format(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths)).rstrip()
        )
        lines.append(" | ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)

    def echo(self) -> None:
        print()
        print(self.render())


def _format(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, frozenset | set):
        return "{" + ", ".join(sorted(map(str, cell))) + "}"
    return str(cell)


def bullet_list(items: Iterable[object], indent: str = "  - ") -> str:
    return "\n".join(f"{indent}{item}" for item in items)
