"""Random finite systems and constraints, for theorem fuzzing.

The paper proves its theorems by hand; this reproduction additionally
*model-checks* them over machine-generated systems (the E21 experiment).
Generation is seeded-``random.Random`` based so every run is replayable.

Generated operations are structured guarded commands (so the syntactic
baselines can analyze them too); generated constraints come in three
flavours — random subset, autonomous (product of per-object subsets), and
equality-coupled (non-autonomous) — because the theorems' hypotheses
discriminate exactly along those lines.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.constraints import Constraint
from repro.core.state import Space, State
from repro.core.system import History, System
from repro.lang.cmd import Command, assign, seq, skip, when
from repro.lang.expr import Expr, const, var
from repro.lang.ops import StructuredOperation


def random_space(
    rng: random.Random, n_objects: int = 3, domain_size: int = 2
) -> Space:
    """A space of ``n_objects`` objects named x0.. with integer domains."""
    return Space(
        {f"x{i}": tuple(range(domain_size)) for i in range(n_objects)}
    )


def _random_expr(rng: random.Random, names: Sequence[str], domain: Sequence[int]) -> Expr:
    """A small random integer expression over the given names."""
    kind = rng.random()
    if kind < 0.45:
        return var(rng.choice(names))
    if kind < 0.65:
        return const(rng.choice(domain))
    left = var(rng.choice(names))
    right = var(rng.choice(names))
    top = len(domain)
    if rng.random() < 0.5:
        return (left + right) % top
    return (left * right) % top


def _random_guard(rng: random.Random, names: Sequence[str], domain: Sequence[int]) -> Expr:
    left = var(rng.choice(names))
    if rng.random() < 0.5:
        return left == const(rng.choice(domain))
    return left <= var(rng.choice(names))


def _random_command(
    rng: random.Random, names: Sequence[str], domain: Sequence[int], depth: int = 2
) -> Command:
    kind = rng.random()
    if depth <= 0 or kind < 0.45:
        target = rng.choice(names)
        return assign(target, _random_expr(rng, names, domain))
    if kind < 0.75:
        return when(
            _random_guard(rng, names, domain),
            _random_command(rng, names, domain, depth - 1),
            _random_command(rng, names, domain, depth - 1)
            if rng.random() < 0.5
            else None,
        )
    return seq(
        _random_command(rng, names, domain, depth - 1),
        _random_command(rng, names, domain, depth - 1),
    )


def random_system(
    rng: random.Random,
    n_objects: int = 3,
    domain_size: int = 2,
    n_operations: int = 2,
) -> System:
    """A random system of guarded-command operations over a small space."""
    space = random_space(rng, n_objects, domain_size)
    names = list(space.names)
    domain = list(range(domain_size))
    operations = [
        StructuredOperation(
            f"d{i}", _random_command(rng, names, domain)
        )
        for i in range(n_operations)
    ]
    return System(space, operations)


def random_constraint(
    rng: random.Random, space: Space, flavour: str = "subset"
) -> Constraint:
    """A random constraint of the requested flavour.

    - ``subset``: each state kept independently with probability 1/2
      (generally non-autonomous);
    - ``autonomous``: a product of random non-empty per-object value sets
      (autonomous by construction, Def 5-4);
    - ``coupled``: two random objects forced equal (non-autonomous but
      relatively autonomous for the pair, section 5.3).
    """
    if flavour == "subset":
        kept = frozenset(s for s in space.states() if rng.random() < 0.5)
        if not kept:
            kept = frozenset([next(iter(space.states()))])
        return Constraint.from_states(space, kept, name="random-subset")
    if flavour == "autonomous":
        allowed: dict[str, frozenset] = {}
        for name in space.names:
            domain = list(space.domain(name))
            chosen = [v for v in domain if rng.random() < 0.6]
            if not chosen:
                chosen = [rng.choice(domain)]
            allowed[name] = frozenset(chosen)
        return Constraint(
            space,
            lambda s, allowed=allowed: all(
                s[n] in allowed[n] for n in allowed
            ),
            name="random-autonomous",
        )
    if flavour == "coupled":
        first, second = rng.sample(list(space.names), 2)
        return Constraint(
            space,
            lambda s, a=first, b=second: s[a] == s[b],
            name=f"{first}={second}",
        )
    raise ValueError(f"unknown constraint flavour {flavour!r}")


def random_history(
    rng: random.Random, system: System, max_length: int = 3
) -> History:
    length = rng.randint(0, max_length)
    return History(
        rng.choice(system.operations) for _ in range(length)
    )


def random_invariant_constraint(
    rng: random.Random, system: System, flavour: str = "subset"
) -> Constraint:
    """A random constraint *closed* under the system's operations: take a
    random constraint's satisfying set and shrink it to its largest
    invariant subset (the greatest fixpoint of removing escaping states)."""
    base = random_constraint(rng, system.space, flavour)
    kept = set(base.satisfying)
    changed = True
    while changed:
        changed = False
        for state in list(kept):
            if any(op(state) not in kept for op in system.operations):
                kept.discard(state)
                changed = True
    if not kept:
        # Fall back to a singleton orbit closure: follow one state until
        # the orbit closes, then keep the whole orbit.
        start = next(iter(system.space.states()))
        orbit = {start}
        frontier = [start]
        while frontier:
            state = frontier.pop()
            for op in system.operations:
                successor = op(state)
                if successor not in orbit:
                    orbit.add(successor)
                    frontier.append(successor)
        kept = orbit
    return Constraint.from_states(
        system.space, kept, name=f"inv({base.name})"
    )
