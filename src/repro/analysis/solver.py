"""Solution search: maximal solutions and the join property (section 3.5).

Every information problem in :mod:`repro.core.problems` is *antitone*:
restricting a solution further (shrinking its satisfying set) preserves
solution-hood, because strong dependency is monotone in the constraint
(Theorem 2-3).  Maximal solutions are therefore maximal satisfying *sets*,
and a single greedy pass over the state space finds one:

    start from a seed solution; try adding each state in turn, keeping it
    iff the result is still a solution.

Antitonicity makes one pass sufficient — a state rejected against a
smaller set would also be rejected against any superset.

Section 3.5's headline facts are all reachable from here:

- information problems generally lack the join property, so *different
  greedy orders find genuinely different maximal solutions*
  (:func:`maximal_solutions` collects them);
- adding the A-independence requirement restores the join property
  (Theorem 3-1) and with it unique maximal solutions.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.constraints import Constraint
from repro.core.problems import InformationProblem
from repro.core.state import Space, State


def greedy_maximal_solution(
    problem: InformationProblem,
    space: Space,
    seed: Constraint | None = None,
    order: Sequence[State] | None = None,
    name: str = "phi_max",
    group_key=None,
) -> Constraint:
    """Grow a maximal solution from ``seed`` (default: the empty
    constraint, vacuously a solution) following ``order`` (default: the
    space's enumeration order).

    ``group_key`` (state -> hashable) makes growth proceed by whole
    groups of states instead of singletons.  Use it when the problem
    carries a structural side-condition that no strict subset of a group
    can meet — e.g. A-independence (Def 3-1), where any admissible
    satisfying set is a union of complete ``=/A=`` equivalence classes:
    pass ``lambda s: s.restrict_away(A)``.

    >>> from repro.lang.builders import SystemBuilder
    >>> from repro.lang.expr import var
    >>> from repro.core.problems import NoTransmissionProblem
    >>> b = SystemBuilder().booleans("m").integers("alpha", "beta", bits=1)
    >>> _ = b.op_if("delta", var("m"), "beta", var("alpha"))
    >>> system = b.build()
    >>> problem = NoTransmissionProblem(system, {"alpha"}, "beta")
    >>> phi = greedy_maximal_solution(problem, system.space)
    >>> problem.is_solution(phi) and is_maximal(problem, phi)
    True
    """
    chosen: set[State] = set(seed.satisfying) if seed is not None else set()
    if seed is not None and not problem.is_solution(seed):
        raise ValueError(f"seed {seed.name!r} is not itself a solution")
    sequence = list(order) if order is not None else list(space.states())
    if group_key is None:
        groups = [[state] for state in sequence]
    else:
        keyed: dict[object, list[State]] = {}
        for state in sequence:
            keyed.setdefault(group_key(state), []).append(state)
        groups = list(keyed.values())
    for group in groups:
        additions = [s for s in group if s not in chosen]
        if not additions:
            continue
        candidate = Constraint.from_states(space, chosen | set(additions))
        if problem.is_solution(candidate):
            chosen.update(additions)
    return Constraint.from_states(space, chosen, name=name)


def is_maximal(problem: InformationProblem, phi: Constraint) -> bool:
    """No strictly-less-restrictive constraint solves the problem.

    By antitonicity it suffices that no *single* additional state can be
    admitted.
    """
    if not problem.is_solution(phi):
        return False
    current = set(phi.satisfying)
    for state in phi.space.states():
        if state in current:
            continue
        grown = Constraint.from_states(phi.space, current | {state})
        if problem.is_solution(grown):
            return False
    return True


def maximal_solutions(
    problem: InformationProblem,
    space: Space,
    attempts: int | None = None,
    group_key=None,
) -> list[Constraint]:
    """Collect distinct maximal solutions by greedy growth from rotated
    state orders (each rotation starts the pass at a different state).

    Not guaranteed to enumerate *every* maximal solution — there can be
    exponentially many — but reliably exhibits multiplicity where the join
    property fails (the section 3.5 phenomenon), and exactly one solution
    where it holds.
    """
    states = list(space.states())
    if attempts is None:
        attempts = len(states)
    found: list[Constraint] = []
    seen: set[frozenset[State]] = set()
    for shift in range(min(attempts, len(states))):
        order = states[shift:] + states[:shift]
        solution = greedy_maximal_solution(
            problem, space, order=order, name=f"phi_max[{shift}]",
            group_key=group_key,
        )
        key = solution.satisfying
        if key not in seen:
            seen.add(key)
            found.append(solution)
    return found


def join_property_counterexample(
    problem: InformationProblem, candidates: Iterable[Constraint]
) -> tuple[Constraint, Constraint] | None:
    """Two solutions among ``candidates`` whose join is not a solution —
    the section 3.5 failure — or None."""
    solutions = [phi for phi in candidates if problem.is_solution(phi)]
    for i, phi1 in enumerate(solutions):
        for phi2 in solutions[i + 1 :]:
            if not problem.is_solution(phi1 | phi2):
                return (phi1, phi2)
    return None


def repair_constraint(
    problem: InformationProblem,
    phi: Constraint,
    group_key=None,
    name: str | None = None,
) -> Constraint:
    """Weaken a *failing* candidate into a solution contained in it.

    For antitone problems every subset of a solution is a solution, so a
    greedy pass restricted to phi's satisfying states finds a solution
    maximal *within phi* — the natural "repair" when an operator's
    intended policy turns out to leak.

    >>> from repro.lang.builders import SystemBuilder
    >>> from repro.lang.expr import var
    >>> from repro.core.problems import NoTransmissionProblem
    >>> b = SystemBuilder().booleans("m").integers("alpha", "beta", bits=1)
    >>> _ = b.op_if("delta", var("m"), "beta", var("alpha"))
    >>> system = b.build()
    >>> problem = NoTransmissionProblem(system, {"alpha"}, "beta")
    >>> broken = Constraint.true(system.space)
    >>> fixed = repair_constraint(problem, broken)
    >>> problem.is_solution(fixed) and fixed.implies(broken)
    True
    """
    order = [s for s in phi.space.states() if phi(s)]
    repaired = greedy_maximal_solution(
        problem,
        phi.space,
        order=order,
        name=name or f"repair({phi.name})",
        group_key=group_key,
    )
    # Greedy growth only ever adds states from `order`, hence from phi.
    return repaired


def has_unique_maximal_solution(
    problem: InformationProblem, space: Space
) -> bool:
    """True when greedy growth finds the same maximal solution from every
    rotation — the observable signature of the join property holding
    (Theorem 3-1 problems)."""
    return len(maximal_solutions(problem, space)) == 1
