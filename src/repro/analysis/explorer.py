"""Exploration utilities: reachability, dependency matrices, fixpoints.

The exact existential-history dependency decision lives in
:mod:`repro.core.reachability` (the core formalism needs it); this module
re-exports it and adds the batch/exploration conveniences used by the
solver, the graphs, and the benches.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.core.constraints import Constraint
from repro.core.engine import shared_engine
from repro.core.reachability import (  # noqa: F401  (re-exported API)
    dependency_closure,
    depends_ever,
    depends_ever_set,
)
from repro.core.state import State
from repro.core.system import System


def reachable_states(
    system: System, initial: Iterable[State]
) -> frozenset[State]:
    """All states reachable from ``initial`` under any history (BFS)."""
    seen: set[State] = set(initial)
    frontier: deque[State] = deque(seen)
    while frontier:
        state = frontier.popleft()
        for op in system.operations:
            successor = op(state)
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return frozenset(seen)


def reachable_constraint(
    system: System, phi: Constraint, name: str | None = None
) -> Constraint:
    """The strongest constraint closed under the operations and containing
    phi — i.e. the union of every ``[H]phi``.  This is the "invariant
    envelope" of section 6.4's discussion (which the oscillator example
    shows is strictly weaker than an inductive cover)."""
    states = reachable_states(system, phi.satisfying)
    return Constraint.from_states(
        system.space, states, name=name or f"reach({phi.name})"
    )


def dependency_matrix(
    system: System,
    constraint: Constraint | None = None,
    max_workers: int | None = None,
) -> dict[str, dict[str, bool]]:
    """``matrix[x][y]`` iff ``x |>_phi y`` over some history (exact).

    One pair-graph BFS per *row* via the shared
    :class:`~repro.core.engine.DependencyEngine` (the reachable pair set
    is target-independent); pass ``max_workers`` to fan the independent
    row closures out across a thread pool.
    """
    return shared_engine(system).matrix(constraint, max_workers=max_workers)


def image_set_orbit(
    system: System, phi: Constraint, limit: int = 10_000
) -> list[frozenset[State]]:
    """All distinct image sets ``[H]phi`` reachable from phi (BFS order).

    Finite for finite systems; this is what decides Def 6-2 exactly and is
    exposed for inspection/ablation benches.
    """
    initial = frozenset(phi.satisfying)
    seen: list[frozenset[State]] = [initial]
    seen_set = {initial}
    frontier: deque[frozenset[State]] = deque([initial])
    while frontier:
        image = frontier.popleft()
        for op in system.operations:
            successor = frozenset(op(s) for s in image)
            if successor not in seen_set:
                if len(seen) >= limit:
                    raise RuntimeError("image-set orbit exceeded limit")
                seen.append(successor)
                seen_set.add(successor)
                frontier.append(successor)
    return seen
