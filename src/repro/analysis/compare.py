"""Analyzer shootout: every flow analysis in the repertoire on one query.

:func:`compare_analyzers` runs the exact decision and all applicable
baselines against one ``does A ever reach beta?`` question, returning a
verdict per analyzer plus agreement flags — the comparison matrix behind
benchmark E28 and a convenient debugging tool ("which analysis is lying
to me, and in which direction?").

Analyzers and their contracts:

- ``exact``          — pair-graph strong dependency; ground truth.
- ``transitive``     — Denning/Case semantic per-op flows closed
                       transitively; sound, over-approximate.
- ``static``         — syntax-only certification flows; sound,
                       over-approximates even the transitive baseline.
- ``taint``          — dynamic taint closure; sound, over-approximate.
- ``millen-initial`` — constraint-aware per-op flows (UNSOUND for
                       non-invariant constraints; reported, not trusted).
- ``millen-envelope``— the sound repair.
- ``jones-lipton``   — transformed-system certification at a length
                       bound; certificates are sound, non-certification
                       is inconclusive.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.baselines.denning import TransitiveFlowAnalysis
from repro.baselines.jones_lipton import certify_no_transmission
from repro.baselines.millen import MillenAnalysis
from repro.baselines.static_flow import StaticFlowAnalysis
from repro.baselines.taint import taint_closure
from repro.core.constraints import Constraint
from repro.core.engine import shared_engine
from repro.core.errors import OperationError
from repro.core.system import System


@dataclass(frozen=True)
class AnalyzerVerdict:
    analyzer: str
    claims_flow: bool | None  # None = inconclusive / not applicable
    note: str = ""

    @property
    def label(self) -> str:
        if self.claims_flow is None:
            return f"n/a ({self.note})" if self.note else "n/a"
        return "flow" if self.claims_flow else "no flow"


@dataclass(frozen=True)
class Comparison:
    source: str
    target: str
    truth: bool
    verdicts: tuple[AnalyzerVerdict, ...]

    def sound(self, analyzer: str) -> bool | None:
        """True iff the analyzer did not miss a real flow (its 'no flow'
        verdicts may be trusted only if this holds)."""
        for verdict in self.verdicts:
            if verdict.analyzer == analyzer:
                if verdict.claims_flow is None:
                    return None
                return verdict.claims_flow or not self.truth
        raise KeyError(analyzer)

    def false_positive(self, analyzer: str) -> bool | None:
        for verdict in self.verdicts:
            if verdict.analyzer == analyzer:
                if verdict.claims_flow is None:
                    return None
                return verdict.claims_flow and not self.truth
        raise KeyError(analyzer)


def compare_analyzers(
    system: System,
    source: str,
    target: str,
    constraint: Constraint | None = None,
    jones_lipton_bound: int = 3,
) -> Comparison:
    """Run every applicable analyzer on ``source |>_phi target``.

    Baselines that require command bodies (static, taint) report
    not-applicable for opaque operations; the Millen modes require a
    constraint and report not-applicable without one.
    """
    phi = constraint if constraint is not None else Constraint.true(system.space)
    # The shared engine memoizes the ({source}, constraint) pair closure, so
    # sweeping the shootout over every target of one source costs one BFS.
    truth = bool(shared_engine(system).depends_ever({source}, target, constraint))
    verdicts: list[AnalyzerVerdict] = [
        AnalyzerVerdict("exact", truth, "ground truth"),
    ]

    transitive = TransitiveFlowAnalysis(system)
    verdicts.append(
        AnalyzerVerdict("transitive", transitive.flows_ever(source, target))
    )

    try:
        static = StaticFlowAnalysis(system)
        verdicts.append(
            AnalyzerVerdict("static", static.flows_ever(source, target))
        )
    except OperationError:
        verdicts.append(AnalyzerVerdict("static", None, "opaque operations"))

    try:
        tainted = taint_closure(system, {source})
        verdicts.append(AnalyzerVerdict("taint", target in tainted))
    except OperationError:
        verdicts.append(AnalyzerVerdict("taint", None, "opaque operations"))

    if constraint is not None:
        for mode in ("initial", "envelope"):
            analysis = MillenAnalysis(system, constraint, mode=mode)
            verdicts.append(
                AnalyzerVerdict(
                    f"millen-{mode}", analysis.flows_ever(source, target)
                )
            )
    else:
        verdicts.append(AnalyzerVerdict("millen-initial", None, "no constraint"))
        verdicts.append(AnalyzerVerdict("millen-envelope", None, "no constraint"))

    jl = certify_no_transmission(
        system, source, target, max_length=jones_lipton_bound, constraint=phi
    )
    verdicts.append(
        AnalyzerVerdict(
            "jones-lipton",
            None if not jl.certified else False,
            "" if jl.certified else "no certificate (inconclusive)",
        )
    )

    return Comparison(
        source=source, target=target, truth=truth, verdicts=tuple(verdicts)
    )


def comparison_matrix(
    cases: Iterable[tuple[str, System, str, str, Constraint | None]],
) -> list[tuple[str, Comparison]]:
    """Run the shootout over a labelled corpus of (name, system, source,
    target, constraint) cases."""
    return [
        (name, compare_analyzers(system, source, target, constraint))
        for name, system, source, target, constraint in cases
    ]
