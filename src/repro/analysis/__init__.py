"""Analysis tooling: explorers, flow graphs, solution search, fuzzing."""

from repro.analysis.audit import AuditReport, PathFinding, audit_system
from repro.analysis.compare import (
    AnalyzerVerdict,
    Comparison,
    compare_analyzers,
    comparison_matrix,
)
from repro.analysis.diff import (
    DIFF_SCHEMA_VERSION,
    DiffReport,
    VerdictChange,
    diff_systems,
)
from repro.analysis.explorer import (
    dependency_matrix,
    image_set_orbit,
    reachable_constraint,
    reachable_states,
)
from repro.analysis.graph import (
    eliminated_paths,
    exact_flow_graph,
    per_operation_graph,
    render_dot,
)
from repro.analysis.random_systems import (
    random_constraint,
    random_history,
    random_invariant_constraint,
    random_space,
    random_system,
)
from repro.analysis.report import Table, bullet_list
from repro.analysis.solver import (
    greedy_maximal_solution,
    has_unique_maximal_solution,
    is_maximal,
    join_property_counterexample,
    maximal_solutions,
    repair_constraint,
)

__all__ = [
    "AnalyzerVerdict",
    "AuditReport",
    "Comparison",
    "DIFF_SCHEMA_VERSION",
    "DiffReport",
    "VerdictChange",
    "compare_analyzers",
    "comparison_matrix",
    "diff_systems",
    "PathFinding",
    "Table",
    "audit_system",
    "bullet_list",
    "dependency_matrix",
    "eliminated_paths",
    "exact_flow_graph",
    "greedy_maximal_solution",
    "has_unique_maximal_solution",
    "image_set_orbit",
    "is_maximal",
    "join_property_counterexample",
    "maximal_solutions",
    "per_operation_graph",
    "random_constraint",
    "repair_constraint",
    "random_history",
    "random_invariant_constraint",
    "random_space",
    "random_system",
    "reachable_constraint",
    "reachable_states",
    "render_dot",
]
