"""One-call system audit: everything the formalism can say, structured.

:func:`audit_system` is the "just tell me about my system" entry point a
downstream user reaches for first: it classifies the constraint,
checks invariance, computes the exact flow matrix, evaluates a policy
(forbidden paths), and reports which proof technique certifies each
absent path.  The result renders as text via :meth:`AuditReport.describe`.

Under an :class:`~repro.core.budget.ExecutionBudget` the audit *degrades*
instead of aborting: a row whose pair-graph closure exhausts its budget
falls back to the one-step flow relation — an **under-approximation** of
``|>_phi`` (a one-step flow is a length-1 witness, so ``flows=True`` from
it is exact; its absence proves nothing) — and rows the fallback cannot
decide carry verdict ``"unknown"``.  A report with unknown *forbidden*
rows is not ``ok``: absence-of-evidence never certifies a policy.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro import obs
from repro.analysis.report import Table
from repro.core.budget import BudgetExceededError, ExecutionBudget
from repro.core.constraints import Constraint
from repro.core.engine import shared_engine
from repro.core.induction import (
    prove_no_dependency,
    prove_no_dependency_nonautonomous,
)
from repro.core.system import System
from repro.obs.provenance import Provenance


@dataclass(frozen=True)
class PathFinding:
    """One (source, target) cell of the audit.

    ``verdict`` records how the cell was decided: ``"exact"`` (pair-graph
    closure), ``"one-step"`` (budget-degraded but sound — a length-1
    witness), or ``"unknown"`` (budget exhausted, nothing established;
    ``flows`` is ``False`` only as a placeholder in that case).
    ``provenance`` carries the machine-readable lineage of the verdict —
    which kernel decided it, memo hit or fresh BFS, budget state (see
    :class:`repro.obs.provenance.Provenance`).  Every cell has one.
    """

    source: str
    target: str
    flows: bool
    witness_history: tuple[str, ...] = ()
    forbidden: bool = False
    certificate: str = ""  # which technique certifies absence, if any
    verdict: str = "exact"  # "exact" | "one-step" | "unknown"
    provenance: Provenance | None = None


@dataclass(frozen=True)
class AuditReport:
    constraint_name: str
    autonomous: bool
    invariant: bool
    relative_clumps: tuple[frozenset[str], ...]
    findings: tuple[PathFinding, ...] = field(default_factory=tuple)
    execution: str = ""  # rendered ExecutionLog, when the audit was governed

    @property
    def violations(self) -> tuple[PathFinding, ...]:
        """Forbidden paths that flow."""
        return tuple(f for f in self.findings if f.forbidden and f.flows)

    @property
    def unknowns(self) -> tuple[PathFinding, ...]:
        """Cells the budget left undecided."""
        return tuple(f for f in self.findings if f.verdict == "unknown")

    @property
    def ok(self) -> bool:
        """No forbidden path flows *and* none is left unknown — an audit
        that ran out of budget on a policy-relevant row cannot certify
        the policy."""
        return not self.violations and not any(
            f.forbidden for f in self.unknowns
        )

    def describe(self) -> str:
        lines = [
            f"constraint: {self.constraint_name}",
            f"  autonomous: {self.autonomous}   invariant: {self.invariant}",
        ]
        if self.relative_clumps:
            clumps = ", ".join(
                "{" + ",".join(sorted(c)) + "}" for c in self.relative_clumps
            )
            lines.append(f"  autonomous relative to: {clumps}")
        table = Table(["source", "target", "flows?", "policy", "evidence", "via"])
        for f in self.findings:
            policy = "FORBIDDEN" if f.forbidden else "-"
            shown: object = "?" if f.verdict == "unknown" else f.flows
            if f.flows:
                evidence = (
                    " ".join(f.witness_history) or f.certificate or "<lambda>"
                )
            else:
                evidence = f.certificate or "exact search"
            via = f.provenance.short() if f.provenance is not None else "-"
            table.add(f.source, f.target, shown, policy, evidence, via)
        lines.append(table.render())
        bits: list[str] = []
        if self.violations:
            bits.append(f"{len(self.violations)} forbidden path(s) flow")
        unknown_forbidden = [f for f in self.unknowns if f.forbidden]
        if unknown_forbidden:
            bits.append(
                f"{len(unknown_forbidden)} forbidden path(s) "
                "UNKNOWN (budget exhausted)"
            )
        lines.append(
            "VERDICT: " + ("; ".join(bits) if bits else "no policy violations")
        )
        if self.execution:
            lines.append(self.execution)
        return "\n".join(lines)


def _minimal_clumps(phi: Constraint, max_size: int = 2):
    """Small object sets phi is autonomous relative to (informational)."""
    import itertools

    names = phi.space.names
    found: list[frozenset[str]] = []
    for size in range(2, max_size + 1):
        for combo in itertools.combinations(names, size):
            clump = frozenset(combo)
            if any(existing <= clump for existing in found):
                continue
            if phi.is_autonomous_relative_to(clump):
                found.append(clump)
    return tuple(found)


def audit_system(
    system: System,
    constraint: Constraint | None = None,
    forbidden: Iterable[tuple[str, str]] = (),
    find_clumps: bool = False,
    budget: ExecutionBudget | None = None,
    max_workers: int | None = None,
) -> AuditReport:
    """Audit every singleton information path of a system.

    ``forbidden`` marks policy pairs; for absent paths the audit attaches
    the cheapest certificate that works — Corollary 4-2 when the
    constraint is autonomous and invariant, Corollary 5-6 when merely
    invariant, otherwise the exact pair-graph search itself.

    ``budget`` governs every closure and sweep; exhausted rows degrade to
    the one-step flow under-approximation (see module docstring) instead
    of failing the whole audit, and the report carries the engine's
    execution log.  ``max_workers`` fans the per-row closures out across
    the engine's fault-tolerant process pool.

    >>> from repro.lang.builders import SystemBuilder
    >>> from repro.lang.expr import var
    >>> b = SystemBuilder().booleans("a", "b")
    >>> _ = b.op_assign("copy", "b", var("a"))
    >>> report = audit_system(b.build(), forbidden=[("a", "b")])
    >>> report.ok
    False
    """
    phi = constraint if constraint is not None else Constraint.true(system.space)
    forbidden_set = {tuple(pair) for pair in forbidden}
    autonomous = phi.is_autonomous()
    invariant = phi.is_invariant(system)
    clumps = (
        _minimal_clumps(phi) if (find_clumps and not autonomous) else ()
    )

    engine = shared_engine(system)
    names = system.space.names

    # One shared pair-graph closure per source row answers every target;
    # warm them up front (fanned out when max_workers is set).  A budget
    # trip here is fine — completed rows stay memoized, exhausted rows
    # degrade per-cell below.
    try:
        engine.closure(constraint, max_workers=max_workers, budget=budget)
    except BudgetExceededError:
        pass

    # The one-step flow relation, fetched lazily the first time a row
    # exhausts its budget.  Sound fallback: a one-step flow is a
    # length-1 witness of |>_phi, so a positive cell is exact.
    step_flows: dict[str, frozenset[tuple[str, str]]] | None = None
    step_failed = False

    def one_step() -> dict[str, frozenset[tuple[str, str]]] | None:
        nonlocal step_flows, step_failed
        if step_flows is None and not step_failed:
            try:
                step_flows = dict(engine.operation_flows(constraint, budget))
            except BudgetExceededError:
                step_failed = True
        return None if step_failed else step_flows

    findings: list[PathFinding] = []
    for source in names:
        for target in names:
            if source == target:
                continue
            certificate = ""
            history: tuple[str, ...] = ()
            verdict = "exact"
            provenance: Provenance | None = None
            with obs.span("audit.cell", source=source, target=target):
                try:
                    result = engine.depends_ever(
                        {source}, target, constraint, budget
                    )
                    flows = bool(result)
                    provenance = result.provenance
                    if flows:
                        history = tuple(
                            op.name for op in result.witness.history
                        )
                    else:
                        if autonomous and invariant:
                            proof = prove_no_dependency(
                                system, phi, source, target, budget
                            )
                            if proof.valid:
                                certificate = "Corollary 4-2"
                        if not certificate and invariant:
                            proof = prove_no_dependency_nonautonomous(
                                system, phi, {source}, target, budget
                            )
                            if proof.valid:
                                certificate = "Corollary 5-6"
                        if not certificate:
                            certificate = "exact pair-graph search"
                except BudgetExceededError:
                    step = one_step()
                    op_name = (
                        next(
                            (
                                name
                                for name, pairs in step.items()
                                if (source, target) in pairs
                            ),
                            None,
                        )
                        if step is not None
                        else None
                    )
                    if op_name is not None:
                        flows = True
                        history = (op_name,)
                        verdict = "one-step"
                        certificate = "one-step flow (budget-degraded)"
                        provenance = Provenance(
                            kernel="one-step",
                            budget="exhausted",
                            witness_length=1,
                        )
                    else:
                        flows = False
                        verdict = "unknown"
                        certificate = (
                            "budget exhausted (one-step under-approximation)"
                        )
                        provenance = Provenance(
                            kernel="unknown", budget="exhausted"
                        )
            findings.append(
                PathFinding(
                    source=source,
                    target=target,
                    flows=flows,
                    witness_history=history,
                    forbidden=(source, target) in forbidden_set,
                    certificate=certificate,
                    verdict=verdict,
                    provenance=provenance,
                )
            )
    execution = (
        engine.execution_log.describe()
        if (budget is not None or max_workers is not None)
        else ""
    )
    return AuditReport(
        constraint_name=phi.name,
        autonomous=autonomous,
        invariant=invariant,
        relative_clumps=clumps,
        findings=tuple(findings),
        execution=execution,
    )
