"""One-call system audit: everything the formalism can say, structured.

:func:`audit_system` is the "just tell me about my system" entry point a
downstream user reaches for first: it classifies the constraint,
checks invariance, computes the exact flow matrix, evaluates a policy
(forbidden paths), and reports which proof technique certifies each
absent path.  The result renders as text via :meth:`AuditReport.describe`.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.analysis.report import Table
from repro.core.constraints import Constraint
from repro.core.engine import shared_engine
from repro.core.induction import (
    prove_no_dependency,
    prove_no_dependency_nonautonomous,
)
from repro.core.system import System


@dataclass(frozen=True)
class PathFinding:
    """One (source, target) cell of the audit."""

    source: str
    target: str
    flows: bool
    witness_history: tuple[str, ...] = ()
    forbidden: bool = False
    certificate: str = ""  # which technique certifies absence, if any


@dataclass(frozen=True)
class AuditReport:
    constraint_name: str
    autonomous: bool
    invariant: bool
    relative_clumps: tuple[frozenset[str], ...]
    findings: tuple[PathFinding, ...] = field(default_factory=tuple)

    @property
    def violations(self) -> tuple[PathFinding, ...]:
        """Forbidden paths that flow."""
        return tuple(f for f in self.findings if f.forbidden and f.flows)

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        lines = [
            f"constraint: {self.constraint_name}",
            f"  autonomous: {self.autonomous}   invariant: {self.invariant}",
        ]
        if self.relative_clumps:
            clumps = ", ".join(
                "{" + ",".join(sorted(c)) + "}" for c in self.relative_clumps
            )
            lines.append(f"  autonomous relative to: {clumps}")
        table = Table(["source", "target", "flows?", "policy", "evidence"])
        for f in self.findings:
            policy = "FORBIDDEN" if f.forbidden else "-"
            if f.flows:
                evidence = " ".join(f.witness_history) or "<lambda>"
            else:
                evidence = f.certificate or "exact search"
            table.add(f.source, f.target, f.flows, policy, evidence)
        lines.append(table.render())
        lines.append(
            "VERDICT: "
            + ("no policy violations" if self.ok else
               f"{len(self.violations)} forbidden path(s) flow")
        )
        return "\n".join(lines)


def _minimal_clumps(phi: Constraint, max_size: int = 2):
    """Small object sets phi is autonomous relative to (informational)."""
    import itertools

    names = phi.space.names
    found: list[frozenset[str]] = []
    for size in range(2, max_size + 1):
        for combo in itertools.combinations(names, size):
            clump = frozenset(combo)
            if any(existing <= clump for existing in found):
                continue
            if phi.is_autonomous_relative_to(clump):
                found.append(clump)
    return tuple(found)


def audit_system(
    system: System,
    constraint: Constraint | None = None,
    forbidden: Iterable[tuple[str, str]] = (),
    find_clumps: bool = False,
) -> AuditReport:
    """Audit every singleton information path of a system.

    ``forbidden`` marks policy pairs; for absent paths the audit attaches
    the cheapest certificate that works — Corollary 4-2 when the
    constraint is autonomous and invariant, Corollary 5-6 when merely
    invariant, otherwise the exact pair-graph search itself.

    >>> from repro.lang.builders import SystemBuilder
    >>> from repro.lang.expr import var
    >>> b = SystemBuilder().booleans("a", "b")
    >>> _ = b.op_assign("copy", "b", var("a"))
    >>> report = audit_system(b.build(), forbidden=[("a", "b")])
    >>> report.ok
    False
    """
    phi = constraint if constraint is not None else Constraint.true(system.space)
    forbidden_set = {tuple(pair) for pair in forbidden}
    autonomous = phi.is_autonomous()
    invariant = phi.is_invariant(system)
    clumps = (
        _minimal_clumps(phi) if (find_clumps and not autonomous) else ()
    )

    # One shared pair-graph closure per source row answers every target.
    flow_results = shared_engine(system).closure(constraint)
    findings: list[PathFinding] = []
    for source in system.space.names:
        for target in system.space.names:
            if source == target:
                continue
            result = flow_results[(frozenset([source]), target)]
            certificate = ""
            history: tuple[str, ...] = ()
            if result:
                history = tuple(
                    op.name for op in result.witness.history
                )
            else:
                if autonomous and invariant:
                    proof = prove_no_dependency(system, phi, source, target)
                    if proof.valid:
                        certificate = "Corollary 4-2"
                if not certificate and invariant:
                    proof = prove_no_dependency_nonautonomous(
                        system, phi, {source}, target
                    )
                    if proof.valid:
                        certificate = "Corollary 5-6"
                if not certificate:
                    certificate = "exact pair-graph search"
            findings.append(
                PathFinding(
                    source=source,
                    target=target,
                    flows=bool(result),
                    witness_history=history,
                    forbidden=(source, target) in forbidden_set,
                    certificate=certificate,
                )
            )
    return AuditReport(
        constraint_name=phi.name,
        autonomous=autonomous,
        invariant=invariant,
        relative_clumps=clumps,
        findings=tuple(findings),
    )
