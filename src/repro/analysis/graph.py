"""Information-flow graphs over a system's objects.

Thin networkx layer: nodes are object names, edges are exact
existential-history dependencies (or single-operation dependencies, for
the per-operation view the induction theorems consume).  Handy for
visualizing which paths a candidate solution eliminates.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

from repro.core.constraints import Constraint
from repro.core.engine import shared_engine
from repro.core.system import System


def exact_flow_graph(
    system: System, constraint: Constraint | None = None
) -> nx.DiGraph:
    """Edges ``x -> y`` iff ``x |>_phi y`` holds over *some* history
    (pair-graph exact).  Edge attribute ``history`` records a shortest
    witness as operation names.

    All n^2 cells come from n shared pair-graph closures (one per source
    object) via the :class:`~repro.core.engine.DependencyEngine`.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(system.space.names)
    results = shared_engine(system).closure(constraint)
    for x in system.space.names:
        for y in system.space.names:
            result = results[(frozenset([x]), y)]
            if result:
                graph.add_edge(
                    x, y, history=[op.name for op in result.witness.history]
                )
    return graph


def per_operation_graph(
    system: System, constraint: Constraint | None = None
) -> nx.MultiDiGraph:
    """One edge per (operation, x, y) with ``x |>^delta y`` — the raw
    per-operation flow relation, labelled by operation name."""
    graph = nx.MultiDiGraph()
    graph.add_nodes_from(system.space.names)
    flows = shared_engine(system).operation_flows(constraint)
    for op in system.operations:
        for x, y in sorted(flows[op.name]):
            graph.add_edge(x, y, operation=op.name)
    return graph


def eliminated_paths(
    system: System,
    phi: Constraint,
    baseline: Constraint | None = None,
) -> frozenset[tuple[str, str]]:
    """Paths present under ``baseline`` (default: unconstrained) but absent
    under ``phi`` — what the solution *buys* (cf. Worth, section 3.6)."""
    before = exact_flow_graph(system, baseline)
    after = exact_flow_graph(system, phi)
    return frozenset(set(before.edges()) - set(after.edges()))


def render_dot(graph: nx.DiGraph, highlight: Iterable[tuple[str, str]] = ()) -> str:
    """A minimal GraphViz dot rendering (no external dependency)."""
    marked = set(highlight)
    lines = ["digraph flows {"]
    for node in sorted(graph.nodes()):
        lines.append(f'  "{node}";')
    for x, y in sorted(graph.edges()):
        style = ' [color=red]' if (x, y) in marked else ""
        lines.append(f'  "{x}" -> "{y}"{style};')
    lines.append("}")
    return "\n".join(lines)
