"""Mechanisms and observers (section 7.3).

The paper's work-in-progress chapter sketches a *mechanism* formalism:
what an observer of an object can infer depends on what of the behavior
``<sigma, H>`` they can see.  Strong dependency implicitly assumes the
observer of beta knows the executed history (section 6.5's discussion);
under weaker observers, information paths disappear.

This module makes the observation model explicit:

- an :class:`Observer` maps a behavior to the *observation* it yields
  (any hashable value);
- :func:`observed_transmits` generalizes Def 2-10: information is
  transmitted from A to the observer iff two phi-states equal except at A
  produce different observations;
- stock observers reproduce the paper's cases:
  :func:`value_observer` (see beta's final value only),
  :func:`history_observer` (final value + the executed history — strong
  dependency's implicit assumption), and
  :func:`timed_observer` (final value + only the *time*, i.e. history
  length — section 6.5's "ordinarily we might instead assume beta's
  observer can only detect the passage of time").

With these, the section 6.5 two-branch program is provably safe for the
timed observer and provably leaky for the history observer — the claim
the paper defers to future work, discharged by enumeration (see
benchmark E19 and the mechanism tests).

The module also provides :func:`restrict_operations` — the simplest
mechanism in the paper's sense (an augmented system exposing a subset of
the base operations) — and :func:`added_paths`, which detects the
Rotenberg phenomenon: a mechanism *adding* information paths.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.core.constraints import Constraint
from repro.core.state import State, Value
from repro.core.system import History, Operation, System

Observation = Value
Observer = Callable[[State, History], Observation]


def value_observer(*names: str) -> Observer:
    """Observe only the final values of the named objects."""
    chosen = tuple(sorted(names))

    def observe(initial: State, history: History) -> Observation:
        final = history(initial)
        return tuple(final[n] for n in chosen)

    # For a *fixed* history the observation is a function of the final
    # values at `chosen` alone, which lets observed_transmits run on the
    # engine's batched fixed-history tables instead of re-executing the
    # observer per state.
    observe.final_value_names = chosen  # type: ignore[attr-defined]
    return observe


def history_observer(*names: str) -> Observer:
    """Observe the final values *and* the executed history — the
    assumption under which observed transmission coincides with strong
    dependency (section 6.5)."""
    base = value_observer(*names)

    def observe(initial: State, history: History) -> Observation:
        return (base(initial, history), tuple(op.name for op in history))

    # Both runs of a fixed H contribute the same history component, so
    # observations differ iff the final values do.
    observe.final_value_names = base.final_value_names  # type: ignore[attr-defined]
    return observe


def timed_observer(*names: str) -> Observer:
    """Observe the final values and only the *passage of time* (the
    history's length), not its contents."""
    base = value_observer(*names)

    def observe(initial: State, history: History) -> Observation:
        return (base(initial, history), len(history))

    # len(H) is shared by both runs of a fixed H — final values decide.
    observe.final_value_names = base.final_value_names  # type: ignore[attr-defined]
    return observe


def trace_observer(*names: str) -> Observer:
    """Observe the named objects at *every* step (the strongest
    object-local observer: a full trace of beta)."""
    chosen = tuple(sorted(names))

    def observe(initial: State, history: History) -> Observation:
        out = [tuple(initial[n] for n in chosen)]
        state = initial
        for op in history:
            state = op(state)
            out.append(tuple(state[n] for n in chosen))
        return tuple(out)

    return observe


@dataclass(frozen=True)
class ObservedWitness:
    """Two runs the observer can tell apart, differing only at A."""

    sigma1: State
    sigma2: State
    history: History
    observation1: Observation
    observation2: Observation


def observed_transmits(
    system: System,
    sources: Iterable[str],
    observer: Observer,
    history: History | Operation,
    constraint: Constraint | None = None,
) -> ObservedWitness | None:
    """Generalized Def 2-10: can A's variety reach the *observer* over
    this history?  Returns a witness or None.

    With ``observer = history_observer(beta)`` this coincides with
    ``transmits(system, A, beta, history, phi)`` for any fixed history
    (both runs execute the same H, so the history component never
    distinguishes) — the identification section 6.5 makes implicitly.

    Observers whose observation of a fixed history is a function of the
    final values at known objects (the stock value/history/timed
    observers advertise theirs via ``final_value_names``) are decided on
    the engine's batched fixed-history tables: one memoized query per
    observed object instead of an observer call per state.  Arbitrary
    observers (e.g. :func:`trace_observer`) take the generic scan below.
    """
    if isinstance(history, Operation):
        history = History.of(history)
    source_set = system.space.check_names(sources)
    observed = getattr(observer, "final_value_names", None)
    if observed is not None:
        from repro.core.engine import shared_engine  # lazy: avoid cycles
        from repro.core.errors import ForeignOperationError

        try:
            engine = shared_engine(system)
            for target in observed:
                result = engine.depends_history(
                    source_set, target, history, constraint
                )
                if result:
                    w = result.witness
                    return ObservedWitness(
                        w.sigma1,
                        w.sigma2,
                        history,
                        observer(w.sigma1, history),
                        observer(w.sigma2, history),
                    )
            return None
        except ForeignOperationError:
            pass  # composite operations: fall back to the direct scan
    phi = constraint if constraint is not None else Constraint.true(system.space)
    buckets: dict[tuple[Value, ...], list[State]] = {}
    for state in phi.states():
        buckets.setdefault(state.restrict_away(source_set), []).append(state)
    for bucket in buckets.values():
        first: State | None = None
        first_obs: Observation = None
        for state in bucket:
            obs = observer(state, history)
            if first is None:
                first, first_obs = state, obs
            elif obs != first_obs:
                return ObservedWitness(first, state, history, first_obs, obs)
    return None


def observed_transmits_ever(
    system: System,
    sources: Iterable[str],
    observer: Observer,
    max_length: int,
    constraint: Constraint | None = None,
) -> ObservedWitness | None:
    """Bounded existential-history form of :func:`observed_transmits`.

    Observation functions are arbitrary, so no pair-graph fixpoint is
    available in general; the bound must cover the interesting histories
    (for pc-guarded program systems, the program length).
    """
    for history in system.histories(max_length):
        witness = observed_transmits(
            system, sources, observer, history, constraint
        )
        if witness is not None:
            return witness
    return None


# -- mechanisms -------------------------------------------------------------------


def restrict_operations(
    system: System, allowed: Iterable[str], check_closed: bool = False
) -> System:
    """The simplest mechanism: an augmented system exposing only a subset
    of the base operations (e.g. hiding a raw write behind a guarded
    entry point)."""
    names = set(allowed)
    return System(
        system.space,
        [op for op in system.operations if op.name in names],
        check_closed=check_closed,
    )


def added_paths(
    base: System,
    augmented: System,
    constraint: Constraint | None = None,
) -> frozenset[tuple[str, str]]:
    """Information paths present in the augmented system but not the base
    — the Rotenberg 73 covert-channel phenomenon the paper warns about.

    Both systems must share a space.  Paths are singleton-source exact
    dependencies (pair-graph decision).
    """
    from repro.core.reachability import depends_ever

    if base.space != augmented.space:
        raise ValueError("base and augmented systems are over different spaces")
    out: set[tuple[str, str]] = set()
    for x in base.space.names:
        for y in base.space.names:
            before = bool(depends_ever(base, {x}, y, constraint))
            after = bool(depends_ever(augmented, {x}, y, constraint))
            if after and not before:
                out.add((x, y))
    return frozenset(out)
