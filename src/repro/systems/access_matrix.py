"""The access-matrix protection substrate (section 1.3).

Protection in operating systems is modelled with a matrix of rights
(Lampson 71): before an operation accesses an object, the matrix entry
``<executor, object>`` is checked for the appropriate right.  The paper's
simple system has three rights:

- ``s`` (subject): ``s in <x, x>`` allows x to execute operations,
- ``r`` (read):    ``r in <x, alpha>`` allows x to read file alpha,
- ``w`` (write):   ``w in <x, beta>`` allows x to write file beta,

and the canonical guarded operation::

    copy(user, fnew, fold):
        if s in <user, user> and r in <user, fold> and w in <user, fnew>
        then fnew <- fold

This module builds :class:`~repro.core.system.System` instances in which
matrix entries are themselves state objects (named ``M[x,y]``), so both
file contents *and* protection state participate in the information-flow
analysis — exactly the setting of the paper's sections 3.5/3.6 examples
and of the Hydra work the formalism grew out of.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.core.constraints import Constraint
from repro.core.errors import SpaceError
from repro.core.state import Space, State, Value
from repro.core.system import Operation, System

#: The three rights of the paper's simple system.
SUBJECT = "s"
READ = "r"
WRITE = "w"
ALL_RIGHTS = frozenset({SUBJECT, READ, WRITE})


def entry_name(executor: str, target: str) -> str:
    """The state-object name of matrix entry ``<executor, target>``."""
    return f"M[{executor},{target}]"


def is_entry_name(name: str) -> bool:
    return name.startswith("M[") and name.endswith("]")


def rights_domain(rights: Iterable[str] = ALL_RIGHTS) -> tuple[frozenset[str], ...]:
    """All subsets of the given rights, as a deterministic domain tuple."""
    items = sorted(set(rights))
    subsets: list[frozenset[str]] = [frozenset()]
    for right in items:
        subsets += [subset | {right} for subset in subsets]
    return tuple(subsets)


class AccessMatrixSystem:
    """A computational system over files plus an explicit rights matrix.

    Parameters
    ----------
    subjects:
        Names of potential executors (appear as matrix rows).
    files:
        Mapping file name -> finite content domain.
    entries:
        Which matrix entries are *mutable state* with the full rights
        domain.  Entries not listed are fixed to the rights given in
        ``fixed_rights`` (default: no rights), keeping the state space
        small.  Use ``entries="all"`` for a fully dynamic matrix.
    copy_operations:
        Triples ``(user, fnew, fold)`` to install as guarded copy
        operations (the section 1.3 ``copy``).

    >>> ams = AccessMatrixSystem(
    ...     subjects=["x"],
    ...     files={"alpha": (0, 1), "beta": (0, 1)},
    ...     entries=[("x", "x"), ("x", "alpha"), ("x", "beta")],
    ...     copy_operations=[("x", "beta", "alpha")],
    ... )
    >>> "copy(x,beta,alpha)" in ams.system.operation_names
    True
    """

    def __init__(
        self,
        subjects: Sequence[str],
        files: Mapping[str, Iterable[Value]],
        entries: Iterable[tuple[str, str]] | str = (),
        copy_operations: Iterable[tuple[str, str, str]] = (),
        fixed_rights: Mapping[tuple[str, str], frozenset[str]] | None = None,
        extra_operations: Iterable[Operation] = (),
    ) -> None:
        self.subjects = tuple(subjects)
        self.files = {name: tuple(domain) for name, domain in files.items()}
        overlap = set(self.subjects) & set(self.files)
        if overlap:
            raise SpaceError(f"names used as both subject and file: {sorted(overlap)!r}")

        all_parties = tuple(self.subjects) + tuple(self.files)
        if entries == "all":
            entry_pairs = [(x, y) for x in self.subjects for y in all_parties]
        else:
            entry_pairs = list(entries)  # type: ignore[arg-type]
        for x, y in entry_pairs:
            if x not in self.subjects:
                raise SpaceError(f"matrix row {x!r} is not a subject")
            if y not in all_parties:
                raise SpaceError(f"matrix column {y!r} is unknown")
        self.dynamic_entries = tuple(entry_pairs)
        self.fixed_rights = dict(fixed_rights or {})

        domains: dict[str, Iterable[Value]] = dict(self.files)
        for x, y in entry_pairs:
            domains[entry_name(x, y)] = rights_domain()
        self.space = Space(domains)

        operations = [
            self._copy_operation(user, fnew, fold)
            for user, fnew, fold in copy_operations
        ]
        operations.extend(extra_operations)
        self.system = System(self.space, operations)

    # -- rights ------------------------------------------------------------------

    def rights(self, state: State, executor: str, target: str) -> frozenset[str]:
        """``<executor, target>(sigma)``: the rights in the matrix entry.

        Dynamic entries read from the state; others return the configured
        fixed rights (default none)."""
        if (executor, target) in self.dynamic_entries:
            return state[entry_name(executor, target)]  # type: ignore[return-value]
        return self.fixed_rights.get((executor, target), frozenset())

    def has_right(
        self, state: State, right: str, executor: str, target: str
    ) -> bool:
        """``right in <executor, target>(sigma)``."""
        return right in self.rights(state, executor, target)

    # -- operations -----------------------------------------------------------------

    def _copy_operation(self, user: str, fnew: str, fold: str) -> Operation:
        """Section 1.3's guarded copy."""
        for f in (fnew, fold):
            if f not in self.files:
                raise SpaceError(f"{f!r} is not a file")

        def run(state: State) -> State:
            allowed = (
                self.has_right(state, SUBJECT, user, user)
                and self.has_right(state, READ, user, fold)
                and self.has_right(state, WRITE, user, fnew)
            )
            if allowed:
                return state.replace(**{fnew: state[fold]})
            return state

        return Operation(
            f"copy({user},{fnew},{fold})",
            run,
            description=(
                f"if s in <{user},{user}> and r in <{user},{fold}> and "
                f"w in <{user},{fnew}> then {fnew} <- {fold}"
            ),
        )

    def grant_operation(
        self, granter: str, right: str, beneficiary: str, target: str
    ) -> Operation:
        """A rights-transfer operation: if granter has the right over
        target, add it to <beneficiary, target>.  Models the matrix
        *itself* as an information channel (Rotenberg 73's warning)."""
        entry = entry_name(beneficiary, target)
        if (beneficiary, target) not in self.dynamic_entries:
            raise SpaceError(
                f"entry <{beneficiary},{target}> is not dynamic; "
                "grant would not be expressible as a state change"
            )

        def run(state: State) -> State:
            if self.has_right(state, right, granter, target):
                updated = state[entry] | {right}  # type: ignore[operator]
                return state.replace(**{entry: frozenset(updated)})
            return state

        return Operation(
            f"grant({granter},{right},{beneficiary},{target})",
            run,
            description=(
                f"if {right} in <{granter},{target}> then "
                f"<{beneficiary},{target}> +:= {right}"
            ),
        )

    # -- constraints ------------------------------------------------------------------

    def deny_constraint(
        self, denials: Iterable[tuple[str, str, str]], name: str = "deny"
    ) -> Constraint:
        """The paper's maximal-solution shape (section 3.5): a disjunction
        of *missing* rights per triple, conjoined over triples.

        Each triple ``(user, fold, fnew)`` contributes::

            s not in <user,user> or r not in <user,fold> or
            w not in <user,fnew>
        """
        triples = list(denials)

        def holds(state: State) -> bool:
            for user, fold, fnew in triples:
                if (
                    self.has_right(state, SUBJECT, user, user)
                    and self.has_right(state, READ, user, fold)
                    and self.has_right(state, WRITE, user, fnew)
                ):
                    return False
            return True

        return Constraint(self.space, holds, name=name)

    def missing_right_constraint(
        self, right: str, executor: str, target: str
    ) -> Constraint:
        """``right not in <executor, target>`` as an initial constraint
        (e.g. the paper's phi1: r not in <x, alpha>)."""
        return Constraint(
            self.space,
            lambda s: not self.has_right(s, right, executor, target),
            name=f"{right} not in <{executor},{target}>",
        )
