"""Run-time label mechanisms (section 7.3).

The paper surveys two kinds of run-time mechanisms that prevent
transmission:

- the **star-property** mechanism (Bell & LaPadula 73): classifications
  of ordinary objects are *fixed*, and writes are permitted only upward.
  Denning 75 showed such mechanisms prevent downward transmission without
  adding covert channels — reproducible here with Corollary 4-3.
- **varying classifications** (Adept-50, Weissman 69): an object's label
  rises to the join of the labels of the data that reached it.  Denning
  76 showed the naive version leaks covertly: when the label is raised
  *conditionally* on the data observed, the label itself becomes a
  channel.  The paper's remark — raise unconditionally / constrain the
  initial state — removes the channel.

Both mechanisms are provided as system generators so the claims are
checkable by the exact dependency engine (benchmark E23).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.errors import SpaceError
from repro.core.state import Space, State, Value
from repro.core.system import Operation, System
from repro.systems.security import Lattice


def label_name(obj: str) -> str:
    """State-object name of ``obj``'s current classification label."""
    return f"lbl[{obj}]"


class StaticLabelSystem:
    """Fixed classifications; copies generated only along the order.

    The mechanism is *static*: the generator refuses to emit any
    downward copy, so the system contains only label-respecting
    operations — the star-property enforced at system-construction time.

    >>> from repro.systems.security import TotalOrderLattice
    >>> s = StaticLabelSystem(
    ...     {"lo": 0, "hi": 1}, TotalOrderLattice([0, 1]), domain=(0, 1)
    ... )
    >>> sorted(s.system.operation_names)
    ['copy(hi,lo)']
    """

    def __init__(
        self,
        classification: Mapping[str, object],
        lattice: Lattice,
        domain: Iterable[Value] = (0, 1),
    ) -> None:
        self.classification = dict(classification)
        self.lattice = lattice
        values = tuple(domain)
        self.space = Space({name: values for name in self.classification})
        operations = []
        for target in self.classification:
            for source in self.classification:
                if source == target:
                    continue
                if lattice.leq(
                    self.classification[source], self.classification[target]
                ):
                    operations.append(self._copy(target, source))
        self.system = System(self.space, operations)

    def _copy(self, target: str, source: str) -> Operation:
        return Operation(
            f"copy({target},{source})",
            lambda s, t=target, src=source: s.replace(**{t: s[src]}),
            description=f"{target} <- {source} (upward only)",
        )

    def relation(self):
        """Corollary 4-3's q: ``Cls(x) <= Cls(y)``."""
        return lambda x, y: self.lattice.leq(
            self.classification[x], self.classification[y]
        )


class HighWaterMarkSystem:
    """Varying classifications: each object carries a label that rises to
    the join of the labels of data that reached it.

    Every object contributes two state objects: its data (``name``) and
    its current label (``lbl[name]``).  The generated operation models a
    Trojan-style *conditional read*: the reader copies the source only
    when the source's data is "interesting" (non-zero) — exactly the
    data-dependent access pattern Denning 76 used to exhibit Adept-50's
    covert leak.  Two mechanism styles:

    - ``observe`` (the Adept-50 bug): the reader's label rises to the
      join only when the transfer *actually happens*.  Whether the label
      rose now depends on the secret data — the label itself becomes a
      covert channel (``data[hi] |> lbl[lo]``).
    - ``safe`` (raise-on-attempt): the reader's label rises to the join
      unconditionally when the operation runs, whether or not the data
      moved.  The label then depends only on which operations ran, never
      on data — no covert label channel.

    In both styles the mechanism's *intended* guarantee is the high-water
    property: any object holding secret-derived data carries a label at
    least the secret's — checkable with :meth:`high_water_invariant` under
    :meth:`constrained_start`, the paper's "initial properties of an
    access matrix" remedy (section 7.3).
    """

    def __init__(
        self,
        objects: Iterable[str],
        lattice: Lattice,
        domain: Iterable[Value] = (0, 1),
        style: str = "observe",
    ) -> None:
        names = list(objects)
        if len(set(names)) != len(names):
            raise SpaceError("duplicate object names")
        if style not in ("observe", "safe"):
            raise SpaceError(f"unknown style {style!r}")
        self.objects = tuple(names)
        self.lattice = lattice
        values = tuple(domain)
        domains: dict[str, Iterable[Value]] = {}
        for name in names:
            domains[name] = values
            domains[label_name(name)] = tuple(lattice.elements)
        self.space = Space(domains)
        operations = []
        for reader in names:
            for source in names:
                if reader == source:
                    continue
                operations.append(self._conditional_read(reader, source, style))
        self.system = System(self.space, operations)

    def _conditional_read(
        self, reader: str, source: str, style: str
    ) -> Operation:
        """The Trojan's conditional read: copy only when the source data
        is non-zero; raise the label per the mechanism style."""

        def run(state: State) -> State:
            src_lbl = state[label_name(source)]
            rdr_lbl = state[label_name(reader)]
            raised = self.lattice.join(rdr_lbl, src_lbl)
            fires = state[source] != 0
            changes: dict[str, Value] = {}
            if fires:
                changes[reader] = state[source]
            if fires or style == "safe":
                changes[label_name(reader)] = raised
            if not changes:
                return state
            return state.replace(**changes)

        verb = "raise on transfer" if style == "observe" else "raise on attempt"
        return Operation(
            f"condread({reader},{source})",
            run,
            description=f"if {source} != 0 then {reader} <- {source}; {verb}",
        )

    def constrained_start(self, classification: Mapping[str, object]):
        """The initial constraint pinning labels to a configuration —
        the paper's 'initial properties of an access matrix'."""
        from repro.core.constraints import Constraint

        pinned = {label_name(n): c for n, c in classification.items()}
        return Constraint(
            self.space,
            lambda s: all(s[k] == v for k, v in pinned.items()),
            name="labels-initialized",
        )

    def high_water_invariant(
        self, classification: Mapping[str, object]
    ) -> "Operation | None":
        """The mechanism's intended guarantee, checked over every state
        reachable from a :meth:`constrained_start` state: any object whose
        data could derive from a source classified ``c`` must carry a
        label >= c whenever it actually received such data.

        Concretely (and checkably): after any history, an object's label
        dominates the label every transferred-in source had at transfer
        time.  We verify the standard consequence — a reader whose data
        equals a non-zero value last written from ``source`` has
        ``lbl >= classification[source]`` — by exploring reachable states
        with provenance tracking.  Returns a violating (state, operation)
        pair or None.
        """
        from repro.core.problems import EnforcementProblem

        def step_ok(state: State, op: Operation) -> bool:
            successor = op(state)
            # Whenever data moved from source to reader, the reader's new
            # label must dominate the source's label at transfer time.
            for reader in self.objects:
                for source in self.objects:
                    if reader == source:
                        continue
                    if op.name != f"condread({reader},{source})":
                        continue
                    if successor[reader] != state[reader]:  # transfer fired
                        if not self.lattice.leq(
                            state[label_name(source)],
                            successor[label_name(reader)],
                        ):
                            return False
            return True

        problem = EnforcementProblem(self.system, step_ok, name="high-water")
        phi = self.constrained_start(classification)
        return problem.enforcement_counterexample(phi)
