"""A Hydra-flavoured verified-writers substrate (sections 1.1 and 2.6).

The formalism grew out of the Hydra operating system's protection work
(Wulf 74; Cohen & Jefferson 75).  Section 2.6 recalls one problem from
Cohen 76: *guarantee that a set of "sensitive" objects can only be
altered by certain processes executing verified programs* — and notes
that the initial constraint on the protection state that guaranteed it
"was quite complex, but autonomous nonetheless".

This module reconstructs a small version of that setting:

- *procedures* execute on behalf of the system; each is (statically)
  **verified** or not — verification is part of a procedure's identity,
  not mutable state;
- per-(procedure, object) **write capabilities** are mutable state
  objects ``cap[p,o]``;
- ``write(p, o, src)`` stores ``src`` into ``o`` when p holds the
  capability;
- ``transfer(p, q, o)`` propagates p's capability on o to q — and the
  *mechanism* only mints transfer operations whose recipient is
  verified (a static check, in the spirit of Hydra's type-checked
  capability amplification).

The paper's "complex but autonomous" constraint is
:meth:`integrity_constraint`: for every unverified procedure and every
sensitive object, the capability is initially absent.  It constrains one
state object at a time (a conjunction of per-``cap[p,o]`` conditions), so
it is autonomous — and, thanks to the restricted transfer operations, it
is invariant, making the full Strong Dependency Induction toolkit
applicable.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.constraints import Constraint
from repro.core.errors import SpaceError
from repro.core.problems import EnforcementProblem
from repro.core.state import Space, State, Value
from repro.core.system import Operation, System


def cap_name(procedure: str, obj: str) -> str:
    """State-object name of the write capability ``<procedure, obj>``."""
    return f"cap[{procedure},{obj}]"


class VerifiedWritersSystem:
    """The verified-writers protection scenario.

    Parameters
    ----------
    procedures:
        Mapping procedure name -> verified? (static).
    objects:
        Mapping data-object name -> finite content domain.
    sensitive:
        The objects whose integrity is to be protected.
    writes:
        Triples ``(procedure, target, source)`` to install as guarded
        write operations.
    transfers:
        Triples ``(giver, receiver, object)``; receivers must be
        verified (the static mechanism) or construction fails.
    """

    def __init__(
        self,
        procedures: Mapping[str, bool],
        objects: Mapping[str, Iterable[Value]],
        sensitive: Iterable[str],
        writes: Iterable[tuple[str, str, str]] = (),
        transfers: Iterable[tuple[str, str, str]] = (),
    ) -> None:
        self.procedures = dict(procedures)
        self.objects = {name: tuple(dom) for name, dom in objects.items()}
        self.sensitive = frozenset(sensitive)
        unknown = self.sensitive - set(self.objects)
        if unknown:
            raise SpaceError(f"unknown sensitive objects {sorted(unknown)!r}")

        domains: dict[str, Iterable[Value]] = dict(self.objects)
        self._write_triples = list(writes)
        self._transfer_triples = list(transfers)
        needed_caps: set[str] = set()
        for p, target, _source in self._write_triples:
            self._check_procedure(p)
            needed_caps.add(cap_name(p, target))
        for giver, receiver, obj in self._transfer_triples:
            self._check_procedure(giver)
            self._check_procedure(receiver)
            if not self.procedures[receiver]:
                raise SpaceError(
                    f"transfer to unverified procedure {receiver!r}: the "
                    "mechanism refuses to mint this operation"
                )
            needed_caps.add(cap_name(giver, obj))
            needed_caps.add(cap_name(receiver, obj))
        for cap in sorted(needed_caps):
            domains[cap] = (False, True)
        self.space = Space(domains)

        operations = [
            self._write_op(p, target, source)
            for p, target, source in self._write_triples
        ]
        operations += [
            self._transfer_op(giver, receiver, obj)
            for giver, receiver, obj in self._transfer_triples
        ]
        self.system = System(self.space, operations)

    def _check_procedure(self, name: str) -> None:
        if name not in self.procedures:
            raise SpaceError(f"unknown procedure {name!r}")

    def _write_op(self, p: str, target: str, source: str) -> Operation:
        cap = cap_name(p, target)

        def run(state: State) -> State:
            if state[cap]:
                return state.replace(**{target: state[source]})
            return state

        return Operation(
            f"write({p},{target},{source})",
            run,
            description=f"if cap[{p},{target}] then {target} <- {source}",
        )

    def _transfer_op(self, giver: str, receiver: str, obj: str) -> Operation:
        give_cap = cap_name(giver, obj)
        recv_cap = cap_name(receiver, obj)

        def run(state: State) -> State:
            if state[give_cap]:
                return state.replace(**{recv_cap: True})
            return state

        return Operation(
            f"transfer({giver},{receiver},{obj})",
            run,
            description=f"if cap[{giver},{obj}] then cap[{receiver},{obj}] <- tt",
        )

    # -- the paper's constraint and problem --------------------------------------

    def integrity_constraint(self) -> Constraint:
        """Section 2.6's 'complex but autonomous' constraint: every
        unverified procedure initially lacks every capability on every
        sensitive object.  A conjunction of single-object conditions —
        autonomous by construction."""
        forbidden = [
            cap_name(p, obj)
            for p, verified in self.procedures.items()
            if not verified
            for obj in sorted(self.sensitive)
            if cap_name(p, obj) in set(self.space.names)
        ]

        return Constraint(
            self.space,
            lambda s: all(not s[cap] for cap in forbidden),
            name="unverified-have-no-sensitive-caps",
        )

    def integrity_problem(self) -> EnforcementProblem:
        """The behavioral statement: sensitive objects are altered only by
        verified procedures' writes (Def 1-4 enforcement)."""

        writes_by_op = {
            f"write({p},{target},{source})": (p, target)
            for p, target, source in self._write_triples
        }

        def step_ok(state: State, op: Operation) -> bool:
            meta = writes_by_op.get(op.name)
            if meta is None:
                return True  # transfers never touch data objects
            p, target = meta
            if target not in self.sensitive:
                return True
            successor = op(state)
            if successor[target] == state[target]:
                return True  # no alteration occurred
            return self.procedures[p]

        return EnforcementProblem(
            self.system, step_ok, name="verified-writers-only"
        )
