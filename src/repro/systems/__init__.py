"""Substrate systems: access matrices, pointer chains, oscillators,
security lattices, and sequential programs."""

from repro.systems.access_matrix import (
    ALL_RIGHTS,
    READ,
    SUBJECT,
    WRITE,
    AccessMatrixSystem,
    entry_name,
    rights_domain,
)
from repro.systems.hydra import VerifiedWritersSystem, cap_name
from repro.systems.labels import (
    HighWaterMarkSystem,
    StaticLabelSystem,
    label_name,
)
from repro.systems.mechanism import (
    ObservedWitness,
    added_paths,
    history_observer,
    observed_transmits,
    observed_transmits_ever,
    restrict_operations,
    timed_observer,
    trace_observer,
    value_observer,
)
from repro.systems.oscillator import OscillatorParts, build_oscillator
from repro.systems.pointer import PointerSystem, data_name, ptr_name
from repro.systems.security import (
    Lattice,
    PowersetLattice,
    ProductLattice,
    TotalOrderLattice,
    classification_relation,
)

__all__ = [
    "ALL_RIGHTS",
    "AccessMatrixSystem",
    "HighWaterMarkSystem",
    "Lattice",
    "ObservedWitness",
    "StaticLabelSystem",
    "added_paths",
    "history_observer",
    "label_name",
    "observed_transmits",
    "observed_transmits_ever",
    "restrict_operations",
    "timed_observer",
    "trace_observer",
    "value_observer",
    "OscillatorParts",
    "PointerSystem",
    "PowersetLattice",
    "ProductLattice",
    "READ",
    "SUBJECT",
    "TotalOrderLattice",
    "VerifiedWritersSystem",
    "cap_name",
    "WRITE",
    "build_oscillator",
    "classification_relation",
    "data_name",
    "entry_name",
    "ptr_name",
    "rights_domain",
]
