"""Classification lattices for the Security Problem (section 3.4).

The paper's Security Problem requires ``Cls(alpha) <= Cls(beta)`` whenever
information can be transmitted from alpha to beta.  Classifications "need
not be a single value, but could be a vector of clearance/classification
values, in which case <= would describe a partial rather than a total
order" — i.e. Denning's lattice model.

This module provides:

- :class:`TotalOrderLattice` — classic unclassified < confidential <
  secret < top-secret chains;
- :class:`PowersetLattice` — category sets ordered by inclusion;
- :class:`ProductLattice` — (level, categories) pairs, the full
  military-style lattice;
- :func:`classification_relation` — the Corollary 4-3 relation ``q`` for a
  classification assignment, ready to hand to
  :func:`repro.core.induction.prove_via_relation`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence

from repro.core.errors import ConstraintError


class Lattice:
    """A partial order with meet/join over a finite carrier.

    Subclasses define :meth:`leq`; meet/join are computed by search, which
    is fine for the small lattices security labels use.
    """

    def __init__(self, elements: Iterable[object]) -> None:
        self.elements = tuple(elements)
        if not self.elements:
            raise ConstraintError("a lattice needs at least one element")

    def leq(self, a: object, b: object) -> bool:
        raise NotImplementedError

    def _bound(self, a: object, b: object, upper: bool) -> object:
        def dominates(c: object) -> bool:
            if upper:
                return self.leq(a, c) and self.leq(b, c)
            return self.leq(c, a) and self.leq(c, b)

        candidates = [c for c in self.elements if dominates(c)]
        if not candidates:
            raise ConstraintError("lattice bound does not exist")
        best = candidates[0]
        for c in candidates[1:]:
            if (upper and self.leq(c, best)) or (not upper and self.leq(best, c)):
                best = c
        # Verify 'best' is really least/greatest (lattice well-formedness).
        for c in candidates:
            ok = self.leq(best, c) if upper else self.leq(c, best)
            if not ok:
                raise ConstraintError("carrier is not a lattice for these elements")
        return best

    def join(self, a: object, b: object) -> object:
        """Least upper bound."""
        return self._bound(a, b, upper=True)

    def meet(self, a: object, b: object) -> object:
        """Greatest lower bound."""
        return self._bound(a, b, upper=False)

    def is_valid_order(self) -> bool:
        """Reflexive, antisymmetric, transitive over the carrier."""
        els = self.elements
        for a in els:
            if not self.leq(a, a):
                return False
        for a in els:
            for b in els:
                if a != b and self.leq(a, b) and self.leq(b, a):
                    return False
                if not self.leq(a, b):
                    continue
                for c in els:
                    if self.leq(b, c) and not self.leq(a, c):
                        return False
        return True


class TotalOrderLattice(Lattice):
    """Levels ordered by their position in the given sequence.

    >>> lat = TotalOrderLattice(["U", "C", "S", "TS"])
    >>> lat.leq("U", "S"), lat.leq("S", "U")
    (True, False)
    """

    def __init__(self, levels: Sequence[object]) -> None:
        super().__init__(levels)
        self._rank = {level: i for i, level in enumerate(levels)}
        if len(self._rank) != len(levels):
            raise ConstraintError("duplicate levels")

    def leq(self, a: object, b: object) -> bool:
        return self._rank[a] <= self._rank[b]


class PowersetLattice(Lattice):
    """Frozensets of categories ordered by inclusion.

    >>> lat = PowersetLattice(["crypto", "nuclear"])
    >>> lat.leq(frozenset(), frozenset({"crypto"}))
    True
    """

    def __init__(self, categories: Iterable[str]) -> None:
        cats = sorted(set(categories))
        subsets: list[frozenset[str]] = [frozenset()]
        for cat in cats:
            subsets += [s | {cat} for s in subsets]
        super().__init__(subsets)

    def leq(self, a: object, b: object) -> bool:
        return a <= b  # type: ignore[operator]

    def join(self, a: object, b: object) -> object:
        return a | b  # type: ignore[operator]

    def meet(self, a: object, b: object) -> object:
        return a & b  # type: ignore[operator]


class ProductLattice(Lattice):
    """Component-wise product of two lattices — e.g. (level, categories).

    >>> lat = ProductLattice(TotalOrderLattice([0, 1]), PowersetLattice(["c"]))
    >>> lat.leq((0, frozenset()), (1, frozenset({"c"})))
    True
    >>> lat.leq((1, frozenset()), (0, frozenset({"c"})))
    False
    """

    def __init__(self, left: Lattice, right: Lattice) -> None:
        self.left = left
        self.right = right
        super().__init__(
            (a, b) for a in left.elements for b in right.elements
        )

    def leq(self, a: object, b: object) -> bool:
        return self.left.leq(a[0], b[0]) and self.right.leq(a[1], b[1])  # type: ignore[index]

    def join(self, a: object, b: object) -> object:
        return (self.left.join(a[0], b[0]), self.right.join(a[1], b[1]))  # type: ignore[index]

    def meet(self, a: object, b: object) -> object:
        return (self.left.meet(a[0], b[0]), self.right.meet(a[1], b[1]))  # type: ignore[index]


def classification_relation(
    classification: Mapping[str, object], lattice: Lattice
) -> Callable[[str, str], bool]:
    """The Corollary 4-3 relation ``q(x, y) = Cls(x) <= Cls(y)`` for a
    per-object classification.  Reflexive and transitive by construction
    (it inherits both from the lattice order)."""

    def q(x: str, y: str) -> bool:
        return lattice.leq(classification[x], classification[y])

    return q
