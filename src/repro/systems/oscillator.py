"""The oscillating system of section 6.4.

::

    delta: (beta <- alpha ; alpha <- -alpha)
    phi(sigma) == sigma.alpha = k

alpha flips sign on every step, so phi is *not* invariant; the most
restrictive invariant envelope ``alpha in {k, -k}`` re-admits variety and
fails to prove confinement.  The inductive cover ``{alpha = k, alpha = -k}``
(Theorem 6-7) succeeds.  This module packages the family so the example
and its ablation (envelope vs cover) are one import away.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import Constraint
from repro.core.covers import InductiveCover
from repro.core.errors import SpaceError
from repro.core.system import System
from repro.lang.builders import SystemBuilder
from repro.lang.cmd import assign, seq
from repro.lang.expr import var


@dataclass(frozen=True)
class OscillatorParts:
    """Everything the section 6.4 discussion needs, prebuilt."""

    system: System
    phi: Constraint  # alpha = k (non-invariant)
    envelope: Constraint  # alpha in {k, -k} (invariant but too weak)
    cover: InductiveCover  # {alpha = k, alpha = -k}


def build_oscillator(k: int = 1, extra_values: int = 1) -> OscillatorParts:
    """Build the oscillator over the domain {-k..k-ish} scaled small.

    ``extra_values`` adds symmetric values beyond +-k so that the envelope
    constraint is a strict subset of the space (k=37 in the paper; any
    nonzero k behaves identically).
    """
    if k <= 0:
        raise SpaceError("k must be positive")
    magnitudes = sorted({k} | {k + i for i in range(1, extra_values + 1)})
    domain = sorted({v for m in magnitudes for v in (m, -m)} | {0})
    b = SystemBuilder().obj("alpha", domain).obj("beta", domain)
    b.op_cmd(
        "delta",
        seq(assign("beta", var("alpha")), assign("alpha", 0 - var("alpha"))),
    )
    system = b.build()
    space = system.space
    phi = Constraint.equals(space, "alpha", k).renamed(f"alpha={k}")
    envelope = Constraint(
        space, lambda s: s["alpha"] in (k, -k), name=f"alpha=+-{k}"
    )
    cover = InductiveCover(
        [
            Constraint.equals(space, "alpha", k).renamed(f"alpha={k}"),
            Constraint.equals(space, "alpha", -k).renamed(f"alpha={-k}"),
        ]
    )
    return OscillatorParts(system=system, phi=phi, envelope=envelope, cover=cover)
