"""Statement AST for the mini-language of section 6.5.

Programs are structured statements (skip / assignment / conditional /
while / sequence) over the expression language of
:mod:`repro.lang.expr`.  They can be executed directly
(:mod:`repro.systems.program.semantics`) or compiled to a flowchart
computational system with an explicit program counter
(:mod:`repro.systems.program.flowchart`) — the paper's Lipton-style
modelling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.expr import Expr, coerce


class Stmt:
    """Base class for statements."""

    def reads(self) -> frozenset[str]:
        """Variables the statement may read (guards included)."""
        raise NotImplementedError

    def writes(self) -> frozenset[str]:
        """Variables the statement may write."""
        raise NotImplementedError


@dataclass(frozen=True)
class SkipStmt(Stmt):
    def reads(self) -> frozenset[str]:
        return frozenset()

    def writes(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class AssignStmt(Stmt):
    target: str
    expr: Expr

    def reads(self) -> frozenset[str]:
        return self.expr.reads()

    def writes(self) -> frozenset[str]:
        return frozenset([self.target])

    def __repr__(self) -> str:
        return f"{self.target} := {self.expr!r}"


@dataclass(frozen=True)
class SeqStmt(Stmt):
    parts: tuple[Stmt, ...]

    def reads(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for part in self.parts:
            out |= part.reads()
        return out

    def writes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for part in self.parts:
            out |= part.writes()
        return out

    def __repr__(self) -> str:
        return "; ".join(map(repr, self.parts))


@dataclass(frozen=True)
class IfStmt(Stmt):
    cond: Expr
    then_stmt: Stmt
    else_stmt: Stmt

    def reads(self) -> frozenset[str]:
        return self.cond.reads() | self.then_stmt.reads() | self.else_stmt.reads()

    def writes(self) -> frozenset[str]:
        return self.then_stmt.writes() | self.else_stmt.writes()

    def __repr__(self) -> str:
        if isinstance(self.else_stmt, SkipStmt):
            return f"if {self.cond!r} then {{ {self.then_stmt!r} }}"
        return (
            f"if {self.cond!r} then {{ {self.then_stmt!r} }} "
            f"else {{ {self.else_stmt!r} }}"
        )


@dataclass(frozen=True)
class WhileStmt(Stmt):
    cond: Expr
    body: Stmt

    def reads(self) -> frozenset[str]:
        return self.cond.reads() | self.body.reads()

    def writes(self) -> frozenset[str]:
        return self.body.writes()

    def __repr__(self) -> str:
        return f"while {self.cond!r} do {{ {self.body!r} }}"


def p_skip() -> SkipStmt:
    return SkipStmt()


def p_assign(target: str, expr: object) -> AssignStmt:
    return AssignStmt(target, coerce(expr))


def p_seq(*parts: Stmt) -> Stmt:
    flat: list[Stmt] = []
    for part in parts:
        if isinstance(part, SeqStmt):
            flat.extend(part.parts)
        elif not isinstance(part, SkipStmt):
            flat.append(part)
    if not flat:
        return SkipStmt()
    if len(flat) == 1:
        return flat[0]
    return SeqStmt(tuple(flat))


def p_if(cond: object, then_stmt: Stmt, else_stmt: Stmt | None = None) -> IfStmt:
    return IfStmt(
        coerce(cond), then_stmt, else_stmt if else_stmt is not None else SkipStmt()
    )


def p_while(cond: object, body: Stmt) -> WhileStmt:
    return WhileStmt(coerce(cond), body)
