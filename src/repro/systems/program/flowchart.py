"""Flowchart programs with an explicit program counter (section 6.5).

Following the paper (after Lipton 73), a flowchart program is modelled as a
computational system with one operation per statement::

    delta_i:  if pc = i then (effect_i ; pc <- successor)

so arbitrary operation sequences are permitted but only the operation whose
guard matches the pc has any effect — program order emerges from the pc.

Node kinds:

- :class:`AssignNode` — ``x := e; pc <- next`` (``e`` may be conditional,
  matching the paper's combined test-assign nodes),
- :class:`TestNode` — ``pc <- true_next if cond else false_next``,
- :class:`JumpNode` — ``pc <- next`` (compiled from control joins).

A :class:`Flowchart` is built either directly (to transcribe the paper's
figures node for node) or by compiling a structured
:class:`~repro.systems.program.ast.Stmt` via :func:`compile_program`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.core.constraints import Constraint
from repro.core.errors import ProgramError
from repro.core.state import Space, State, Value
from repro.core.system import Operation, System
from repro.lang.expr import Expr, coerce
from repro.systems.program.ast import (
    AssignStmt,
    IfStmt,
    SeqStmt,
    SkipStmt,
    Stmt,
    WhileStmt,
)

PC = "pc"


@dataclass(frozen=True)
class AssignNode:
    """``pc = pc_  ->  target := expr ; pc <- next``."""

    pc: int
    target: str
    expr: Expr
    next: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "expr", coerce(self.expr))

    def successors(self) -> tuple[int, ...]:
        return (self.next,)

    def __repr__(self) -> str:
        return f"[{self.pc}] {self.target} := {self.expr!r} -> {self.next}"


@dataclass(frozen=True)
class TestNode:
    """``pc = pc_  ->  pc <- (true_next if cond else false_next)``."""

    __test__ = False  # not a pytest test class despite the name

    pc: int
    cond: Expr
    true_next: int
    false_next: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "cond", coerce(self.cond))

    def successors(self) -> tuple[int, ...]:
        return (self.true_next, self.false_next)

    def __repr__(self) -> str:
        return (
            f"[{self.pc}] if {self.cond!r} -> {self.true_next} "
            f"else {self.false_next}"
        )


@dataclass(frozen=True)
class JumpNode:
    """``pc = pc_  ->  pc <- next``."""

    pc: int
    next: int

    def successors(self) -> tuple[int, ...]:
        return (self.next,)

    def __repr__(self) -> str:
        return f"[{self.pc}] goto {self.next}"


Node = AssignNode | TestNode | JumpNode


class Flowchart:
    """A flowchart program: numbered nodes, an entry pc, and a halt pc."""

    def __init__(
        self, nodes: Iterable[Node], entry: int = 1, halt: int | None = None
    ) -> None:
        node_list = list(nodes)
        self.nodes: dict[int, Node] = {}
        for node in node_list:
            if node.pc in self.nodes:
                raise ProgramError(f"duplicate pc {node.pc}")
            self.nodes[node.pc] = node
        if not self.nodes:
            raise ProgramError("a flowchart needs at least one node")
        self.entry = entry
        self.halt = halt if halt is not None else max(self.nodes) + 1
        if self.halt in self.nodes:
            raise ProgramError("halt pc collides with a node")
        if entry not in self.nodes and entry != self.halt:
            raise ProgramError(f"entry pc {entry} has no node")
        for node in self.nodes.values():
            for succ in node.successors():
                if succ not in self.nodes and succ != self.halt:
                    raise ProgramError(
                        f"node {node!r} jumps to undefined pc {succ}"
                    )

    @property
    def pc_domain(self) -> tuple[int, ...]:
        return tuple(sorted(set(self.nodes) | {self.halt, self.entry}))

    def variables(self) -> frozenset[str]:
        """Program variables mentioned by any node."""
        out: set[str] = set()
        for node in self.nodes.values():
            if isinstance(node, AssignNode):
                out.add(node.target)
                out |= node.expr.reads()
            elif isinstance(node, TestNode):
                out |= node.cond.reads()
        return frozenset(out)

    # -- system construction --------------------------------------------------------

    def space(self, domains: Mapping[str, Iterable[Value]]) -> Space:
        """State space: the program variables plus the pc."""
        missing = self.variables() - set(domains)
        if missing:
            raise ProgramError(
                f"no domain given for program variables {sorted(missing)!r}"
            )
        merged: dict[str, Iterable[Value]] = {
            name: tuple(values) for name, values in domains.items()
        }
        if PC in merged:
            raise ProgramError("'pc' is reserved")
        merged[PC] = self.pc_domain
        return Space(merged)

    def _node_operation(self, node: Node) -> Operation:
        # Operations are built as guarded *commands*, so the syntactic
        # baselines (taint, flow extraction) can analyze program systems.
        from repro.lang.cmd import assign as cmd_assign, seq as cmd_seq, when
        from repro.lang.expr import if_expr, var
        from repro.lang.ops import StructuredOperation

        guard = var(PC) == node.pc
        if isinstance(node, AssignNode):
            body = cmd_seq(
                cmd_assign(node.target, node.expr), cmd_assign(PC, node.next)
            )
        elif isinstance(node, TestNode):
            body = cmd_assign(
                PC, if_expr(node.cond, node.true_next, node.false_next)
            )
        else:
            body = cmd_assign(PC, node.next)
        return StructuredOperation(
            f"delta{node.pc}",
            when(guard, body),
            description=f"if pc = {node.pc} then ({body!r})",
        )

    def to_system(self, domains: Mapping[str, Iterable[Value]]) -> System:
        """One pc-guarded operation per node, over variables + pc."""
        space = self.space(domains)
        return System(
            space,
            [self._node_operation(self.nodes[pc]) for pc in sorted(self.nodes)],
        )

    def step_operation(self) -> Operation:
        """The *sequential control mechanism* (sections 6.5/7.3): a single
        operation that executes whichever node the pc selects (no-op at
        halt).  Histories of the step system are program runs of a given
        length — the execution model under which an observer sees only
        the passage of time, not which instruction ran."""
        per_node = {
            pc: self._node_operation(node) for pc, node in self.nodes.items()
        }

        def run(state: State) -> State:
            op = per_node.get(state[PC])  # type: ignore[arg-type]
            if op is None:
                return state  # halted
            return op(state)

        return Operation(
            "step", run, description="execute the node selected by the pc"
        )

    def to_step_system(self, domains: Mapping[str, Iterable[Value]]) -> System:
        """The mechanism-mediated system: only ``step`` is exposed."""
        return System(self.space(domains), [self.step_operation()])

    def entry_constraint(
        self, space: Space, extra: Constraint | None = None
    ) -> Constraint:
        """``phi(sigma) == sigma.pc = entry [and entry-assertion]``
        — the section 6.5 constraint guaranteeing execution begins at
        "start"."""
        at_entry = Constraint.equals(space, PC, self.entry).renamed(
            f"pc={self.entry}"
        )
        if extra is None:
            return at_entry
        return (extra & at_entry).renamed(f"({extra.name} & pc={self.entry})")

    # -- direct execution ----------------------------------------------------------------

    def run_to_halt(self, state: State, fuel: int = 10_000) -> State:
        """Execute from the state's own pc until the halt pc."""
        steps = 0
        while state[PC] != self.halt:
            node = self.nodes.get(state[PC])  # type: ignore[arg-type]
            if node is None:
                raise ProgramError(f"pc {state[PC]!r} has no node")
            state = self._node_operation(node)(state)
            steps += 1
            if steps > fuel:
                raise ProgramError("flowchart execution fuel exhausted")
        return state


def compile_program(stmt: Stmt, entry: int = 1) -> Flowchart:
    """Compile a structured statement into a flowchart.

    Standard single-pass compilation with backpatching; node numbering is
    program order starting at ``entry``.

    >>> from repro.systems.program.ast import p_assign, p_if, p_seq
    >>> from repro.lang.expr import var
    >>> fc = compile_program(p_seq(
    ...     p_assign("t", var("q") > 2),
    ...     p_if(var("t"), p_assign("b", var("a"))),
    ... ))
    >>> len(fc.nodes), fc.halt
    (3, 4)
    """
    instructions: list[dict] = []

    def emit(kind: str, **fields) -> int:
        instructions.append({"kind": kind, **fields})
        return len(instructions) - 1

    def comp(s: Stmt) -> None:
        if isinstance(s, SkipStmt):
            return
        if isinstance(s, AssignStmt):
            emit("assign", target=s.target, expr=s.expr)
            return
        if isinstance(s, SeqStmt):
            for part in s.parts:
                comp(part)
            return
        if isinstance(s, IfStmt):
            test_index = emit("test", cond=s.cond)
            comp(s.then_stmt)
            if isinstance(s.else_stmt, SkipStmt):
                instructions[test_index]["false_target"] = len(instructions)
            else:
                jump_index = emit("jump")
                instructions[test_index]["false_target"] = len(instructions)
                comp(s.else_stmt)
                instructions[jump_index]["target"] = len(instructions)
            return
        if isinstance(s, WhileStmt):
            test_index = emit("test", cond=s.cond)
            comp(s.body)
            emit("jump", target=test_index)
            instructions[test_index]["false_target"] = len(instructions)
            return
        raise ProgramError(f"cannot compile {s!r}")

    comp(stmt)
    if not instructions:
        # A pure skip program: a single jump to halt keeps the shape valid.
        emit("jump", target=1)

    def pc_of(index: int) -> int:
        return entry + index

    nodes: list[Node] = []
    for index, ins in enumerate(instructions):
        if ins["kind"] == "assign":
            nodes.append(
                AssignNode(pc_of(index), ins["target"], ins["expr"], pc_of(index + 1))
            )
        elif ins["kind"] == "test":
            nodes.append(
                TestNode(
                    pc_of(index),
                    ins["cond"],
                    pc_of(index + 1),
                    pc_of(ins["false_target"]),
                )
            )
        else:
            nodes.append(JumpNode(pc_of(index), pc_of(ins["target"])))
    return Flowchart(nodes, entry=entry, halt=pc_of(len(instructions)))
