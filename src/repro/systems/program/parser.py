"""A small parser for the mini-language.

Grammar (semicolon sequences, C-ish precedence)::

    program  := stmt (';' stmt)* [';']
    stmt     := 'skip'
              | IDENT ':=' expr
              | 'if' expr 'then' block ['else' block]
              | 'while' expr 'do' block
    block    := stmt | '{' program '}'
    expr     := or_e
    or_e     := and_e ('or' and_e)*
    and_e    := not_e ('and' not_e)*
    not_e    := 'not' not_e | cmp_e
    cmp_e    := add_e [('<' | '<=' | '>' | '>=' | '=' | '!=') add_e]
    add_e    := mul_e (('+' | '-') mul_e)*
    mul_e    := atom (('*' | '%' | '/') atom)*
    atom     := INT | 'true' | 'false' | IDENT | '(' expr ')' | '-' atom

Example::

    >>> stmt = parse("if q > 10 then t := true else t := false; "
    ...              "if t then beta := alpha")
    >>> from repro.systems.program.ast import SeqStmt
    >>> isinstance(stmt, SeqStmt)
    True
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.errors import ParseError
from repro.lang.expr import Expr, const, var
from repro.systems.program.ast import (
    Stmt,
    p_assign,
    p_if,
    p_seq,
    p_skip,
    p_while,
)

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<int>\d+)|(?P<ident>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>:=|<=|>=|!=|[-+*/%<>=();{}]))"
)

_KEYWORDS = frozenset(
    {"if", "then", "else", "while", "do", "skip", "true", "false", "and", "or", "not"}
)


@dataclass(frozen=True)
class _Token:
    kind: str  # "int" | "ident" | "op" | "kw" | "eof"
    text: str
    position: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    index = 0
    line = 1
    while index < len(source):
        match = _TOKEN_RE.match(source, index)
        if match is None or match.end() == index:
            rest = source[index:].lstrip()
            if not rest:
                break
            raise ParseError(f"unexpected character {rest[0]!r}", line)
        line += source.count("\n", index, match.start())
        if match.group("int") is not None:
            tokens.append(_Token("int", match.group("int"), line))
        elif match.group("ident") is not None:
            text = match.group("ident")
            kind = "kw" if text in _KEYWORDS else "ident"
            tokens.append(_Token(kind, text, line))
        else:
            tokens.append(_Token("op", match.group("op"), line))
        index = match.end()
    tokens.append(_Token("eof", "", line))
    return tokens


class _Parser:
    def __init__(self, source: str) -> None:
        self.tokens = _tokenize(source)
        self.index = 0

    # -- token helpers -------------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def match(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            return False
        self.advance()
        return True

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text if text is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {token.text or 'end of input'!r}",
                token.position,
            )
        return self.advance()

    # -- grammar ----------------------------------------------------------------

    def program(self) -> Stmt:
        parts = [self.stmt()]
        while self.match("op", ";"):
            if self.peek().kind == "eof" or self.peek().text == "}":
                break  # trailing semicolon
            parts.append(self.stmt())
        return p_seq(*parts)

    def stmt(self) -> Stmt:
        token = self.peek()
        if token.kind == "kw" and token.text == "skip":
            self.advance()
            return p_skip()
        if token.kind == "kw" and token.text == "if":
            self.advance()
            cond = self.expr()
            self.expect("kw", "then")
            then_stmt = self.block()
            else_stmt = self.block() if self.match("kw", "else") else None
            return p_if(cond, then_stmt, else_stmt)
        if token.kind == "kw" and token.text == "while":
            self.advance()
            cond = self.expr()
            self.expect("kw", "do")
            return p_while(cond, self.block())
        if token.kind == "ident":
            name = self.advance().text
            self.expect("op", ":=")
            return p_assign(name, self.expr())
        raise ParseError(
            f"expected a statement, found {token.text or 'end of input'!r}",
            token.position,
        )

    def block(self) -> Stmt:
        if self.match("op", "{"):
            inner = self.program()
            self.expect("op", "}")
            return inner
        return self.stmt()

    def expr(self) -> Expr:
        return self.or_e()

    def or_e(self) -> Expr:
        left = self.and_e()
        while self.match("kw", "or"):
            left = left | self.and_e()
        return left

    def and_e(self) -> Expr:
        left = self.not_e()
        while self.match("kw", "and"):
            left = left & self.not_e()
        return left

    def not_e(self) -> Expr:
        if self.match("kw", "not"):
            return ~self.not_e()
        return self.cmp_e()

    _CMP = {"<": "__lt__", "<=": "__le__", ">": "__gt__", ">=": "__ge__"}

    def cmp_e(self) -> Expr:
        left = self.add_e()
        token = self.peek()
        if token.kind == "op" and token.text in ("<", "<=", ">", ">=", "=", "!="):
            self.advance()
            right = self.add_e()
            if token.text == "=":
                return left == right
            if token.text == "!=":
                return left != right
            return getattr(left, self._CMP[token.text])(right)
        return left

    def add_e(self) -> Expr:
        left = self.mul_e()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("+", "-"):
                self.advance()
                right = self.mul_e()
                left = left + right if token.text == "+" else left - right
            else:
                return left

    def mul_e(self) -> Expr:
        left = self.atom()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("*", "%", "/"):
                self.advance()
                right = self.atom()
                if token.text == "*":
                    left = left * right
                elif token.text == "%":
                    left = left % right
                else:
                    left = left // right
            else:
                return left

    def atom(self) -> Expr:
        token = self.peek()
        if token.kind == "int":
            self.advance()
            return const(int(token.text))
        if token.kind == "kw" and token.text in ("true", "false"):
            self.advance()
            return const(token.text == "true")
        if token.kind == "ident":
            self.advance()
            return var(token.text)
        if self.match("op", "("):
            inner = self.expr()
            self.expect("op", ")")
            return inner
        if self.match("op", "-"):
            return -self.atom()
        raise ParseError(
            f"expected an expression, found {token.text or 'end of input'!r}",
            token.position,
        )


def parse(source: str) -> Stmt:
    """Parse a mini-language program into a statement AST."""
    parser = _Parser(source)
    stmt = parser.program()
    trailing = parser.peek()
    if trailing.kind != "eof":
        raise ParseError(
            f"unexpected trailing input {trailing.text!r}", trailing.position
        )
    return stmt


def parse_expr(source: str) -> Expr:
    """Parse a single expression."""
    parser = _Parser(source)
    expr = parser.expr()
    trailing = parser.peek()
    if trailing.kind != "eof":
        raise ParseError(
            f"unexpected trailing input {trailing.text!r}", trailing.position
        )
    return expr
