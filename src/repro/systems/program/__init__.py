"""Sequential-program substrate: mini-language, flowcharts, Floyd assertions."""

from repro.systems.program.analysis import (
    ProgramSystem,
    build_program_system,
    program_transmits,
    prove_program_no_flow,
)
from repro.systems.program.assertions import FloydAssertions
from repro.systems.program.ast import (
    AssignStmt,
    IfStmt,
    SeqStmt,
    SkipStmt,
    Stmt,
    WhileStmt,
    p_assign,
    p_if,
    p_seq,
    p_skip,
    p_while,
)
from repro.systems.program.flowchart import (
    PC,
    AssignNode,
    Flowchart,
    JumpNode,
    TestNode,
    compile_program,
)
from repro.systems.program.parser import parse, parse_expr
from repro.systems.program.semantics import (
    NonTermination,
    execute,
    semantic_noninterference,
)

__all__ = [
    "PC",
    "AssignNode",
    "AssignStmt",
    "Flowchart",
    "FloydAssertions",
    "IfStmt",
    "JumpNode",
    "NonTermination",
    "ProgramSystem",
    "SeqStmt",
    "SkipStmt",
    "Stmt",
    "TestNode",
    "WhileStmt",
    "build_program_system",
    "compile_program",
    "execute",
    "p_assign",
    "p_if",
    "p_seq",
    "p_skip",
    "p_while",
    "parse",
    "parse_expr",
    "program_transmits",
    "prove_program_no_flow",
    "semantic_noninterference",
]
