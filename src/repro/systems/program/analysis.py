"""End-to-end program information-flow analysis (section 6.5).

Glue between the program substrate and the core proof engines:

- :func:`build_program_system` — parse-or-take a statement, compile to a
  flowchart, and build the pc-guarded computational system.
- :func:`prove_program_no_flow` — the paper's technique: verify a Floyd
  assertion network, form an inductive cover, and discharge Theorem 6-7's
  obligations to conclude ``not A |>_phi beta``.
- :func:`program_transmits` — the *exact* strong-dependency answer for the
  flowchart system (pair-graph reachability), used to cross-check proofs
  and to reproduce the section 6.5 observer discussion.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.core.budget import ExecutionBudget
from repro.core.constraints import Constraint
from repro.core.dependency import DependencyResult
from repro.core.induction import Proof
from repro.core.reachability import depends_ever
from repro.core.state import Value
from repro.core.system import System
from repro.systems.program.assertions import FloydAssertions
from repro.systems.program.ast import Stmt
from repro.systems.program.flowchart import Flowchart, compile_program
from repro.systems.program.parser import parse


@dataclass(frozen=True)
class ProgramSystem:
    """A compiled program plus its computational system."""

    flowchart: Flowchart
    system: System

    @property
    def space(self):
        return self.system.space

    def entry_constraint(self, extra: Constraint | None = None) -> Constraint:
        return self.flowchart.entry_constraint(self.space, extra)


def build_program_system(
    program: str | Stmt | Flowchart,
    domains: Mapping[str, Iterable[Value]],
) -> ProgramSystem:
    """Compile source text, a statement, or a prebuilt flowchart into a
    pc-guarded computational system.

    >>> ps = build_program_system("b := a", {"a": (0, 1), "b": (0, 1)})
    >>> ps.system.operation_names
    ('delta1',)
    """
    if isinstance(program, str):
        flowchart = compile_program(parse(program))
    elif isinstance(program, Stmt):
        flowchart = compile_program(program)
    else:
        flowchart = program
    return ProgramSystem(flowchart, flowchart.to_system(domains))


def prove_program_no_flow(
    ps: ProgramSystem,
    assertions: Mapping[int, Constraint],
    sources: Iterable[str],
    target: str,
    cover_style: str = "global",
) -> Proof:
    """The section 6.5 proof technique, end to end.

    1. Check the Floyd verification conditions for ``assertions``.
    2. Build the inductive cover (``per-pc`` for straight-line flowcharts,
       ``global`` in general).
    3. Apply Theorem 6-7 to conclude ``not A |>_phi beta`` where phi is
       the entry assertion conjoined with ``pc = entry``.

    The returned proof contains all three stages as obligations.

    Stage 3's per-(member, operation) obligations run on the shared
    engine's batched fixed-history tables (one bucket sweep of
    sat(member) per operation answers every intermediate object m), so
    certification cost scales with ``|cover| * |Delta|`` sweeps rather
    than ``|cover| * |Delta| * n`` transmits calls.
    """
    network = FloydAssertions(ps.flowchart, ps.space, assertions)
    vc_proof = network.check(ps.system)
    if cover_style == "per-pc":
        cover = network.per_pc_cover()
    elif cover_style == "global":
        cover = network.global_cover()
    else:
        raise ValueError(f"unknown cover style {cover_style!r}")
    phi = network.entry_constraint()
    main = cover.prove_no_dependency(ps.system, sources, target, phi)
    return Proof(
        conclusion=main.conclusion,
        obligations=(
            *(vc_proof.obligations),
            *(main.obligations),
        ),
    )


def program_transmits(
    ps: ProgramSystem,
    sources: Iterable[str],
    target: str,
    entry_assertion: Constraint | None = None,
    budget: ExecutionBudget | None = None,
) -> DependencyResult:
    """Exact strong dependency on the flowchart system: does any operation
    sequence transmit from ``sources`` to ``target`` given the entry
    constraint?

    Per section 6.5, this assumes the observer of the target knows the
    executed history — so a program that writes ``beta := 0`` on *both*
    branches of a secret test still transmits (the write's timing reveals
    the branch); compare :func:`semantic_noninterference
    <repro.systems.program.semantics.semantic_noninterference>`, the
    whole-program notion under which it does not.

    Under an :class:`~repro.core.budget.ExecutionBudget` the pair-graph
    BFS is governed and may raise
    :class:`~repro.core.budget.BudgetExceededError` (verdict UNKNOWN)
    instead of answering; see the ``--budget-*`` CLI flags.
    """
    phi = ps.entry_constraint(entry_assertion)
    return depends_ever(ps.system, sources, target, phi, budget)
