"""Floyd assertions as inductive covers (section 6.5).

Attach an assertion ``phi_i`` to each statement ``delta_i`` (plus an entry
assertion and an exit assertion).  Their pc-tagged forms ::

    phi_i*(sigma) == phi_i(sigma) and sigma.pc = i

always cover the reachable states: control is always at some node, and a
*verified* assertion network means the assertion there holds.  This makes
``{phi_i*}`` an inductive cover for ``entry-assertion and pc = entry``
(Def 6-2) whenever every node has a single successor (the paper's
flowcharts — tests are folded into conditional assignments).  For general
branching flowcharts the image of a single ``phi_i*`` under a TestNode
spans two pcs and no single member contains it; the *global* Floyd
invariant ``Theta = OR_i phi_i*`` is then the inductive cover to use
(a one-member cover; Theorem 6-7 still applies).

:class:`FloydAssertions` checks the verification conditions and
manufactures both cover styles.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.constraints import Constraint, disjoin
from repro.core.covers import InductiveCover
from repro.core.errors import ProgramError
from repro.core.induction import Obligation, Proof
from repro.core.state import Space
from repro.core.system import System
from repro.systems.program.flowchart import PC, Flowchart


class FloydAssertions:
    """An assertion network for a flowchart program.

    Parameters
    ----------
    flowchart:
        The program.
    space:
        The program system's state space (variables + pc).
    assertions:
        Mapping pc -> assertion over *program variables* (they may mention
        the pc but need not).  Every node pc and the halt pc must be
        covered; use :meth:`trivial` for "no information" points.
    """

    def __init__(
        self,
        flowchart: Flowchart,
        space: Space,
        assertions: Mapping[int, Constraint],
    ) -> None:
        self.flowchart = flowchart
        self.space = space
        needed = set(flowchart.nodes) | {flowchart.halt}
        missing = needed - set(assertions)
        if missing:
            raise ProgramError(
                f"assertions missing for pcs {sorted(missing)!r} "
                "(use trivial() for don't-care points)"
            )
        for pc, phi in assertions.items():
            if phi.space != space:
                raise ProgramError(
                    f"assertion for pc {pc} is over a different space"
                )
        self.assertions = dict(assertions)

    @staticmethod
    def trivial(space: Space) -> Constraint:
        """The always-true assertion."""
        return Constraint.true(space)

    def starred(self, pc: int) -> Constraint:
        """``phi_i* == phi_i and pc = i`` (the paper's phi-star)."""
        phi = self.assertions[pc]
        return Constraint(
            self.space,
            lambda s, phi=phi, pc=pc: s[PC] == pc and phi(s),
            name=f"{phi.name}*pc={pc}",
        )

    # -- verification conditions -------------------------------------------------------

    def check(self, system: System) -> Proof:
        """Floyd's verification conditions, decided exactly: executing any
        node from a state satisfying its starred assertion lands in a state
        satisfying the starred assertion of the new pc."""
        obligations: list[Obligation] = []
        for pc in sorted(self.flowchart.nodes):
            op = system.operation(f"delta{pc}")
            starred = self.starred(pc)
            violation = None
            for state in starred.states():
                successor = op(state)
                succ_pc = successor[PC]
                target = self.assertions.get(succ_pc)  # type: ignore[arg-type]
                if target is None or not target(successor):
                    violation = (state, successor)
                    break
            obligations.append(
                Obligation(
                    f"VC for delta{pc}: "
                    f"{self.assertions[pc].name} is preserved into successors",
                    violation is None,
                    violation,
                )
            )
        return Proof(
            conclusion="Floyd assertion network is verified",
            obligations=tuple(obligations),
        )

    # -- covers -------------------------------------------------------------------------

    def per_pc_cover(self) -> InductiveCover:
        """The paper's cover ``{phi_i*}`` — exact for single-successor
        flowcharts; :meth:`~repro.core.covers.InductiveCover.check` will
        reject it (with a witness) for branching programs."""
        members = [self.starred(pc) for pc in sorted(self.assertions)]
        return InductiveCover(members)

    def global_cover(self) -> InductiveCover:
        """The one-member cover ``{Theta}``, ``Theta = OR_i phi_i*`` — the
        global Floyd invariant; valid for any verified network."""
        theta = disjoin(
            [self.starred(pc) for pc in sorted(self.assertions)],
            name="Theta",
        )
        return InductiveCover([theta])

    def entry_constraint(self) -> Constraint:
        """``entry-assertion and pc = entry``."""
        return self.flowchart.entry_constraint(
            self.space, self.assertions[self.flowchart.entry]
        )
