"""Direct big-step execution of mini-language programs.

Execution against a :class:`~repro.core.state.State` with a fuel bound
(while-loops may diverge); the flowchart compilation in
:mod:`repro.systems.program.flowchart` must agree with this semantics,
which the integration tests check.
"""

from __future__ import annotations

from repro.core.errors import EvaluationError
from repro.core.state import State
from repro.systems.program.ast import (
    AssignStmt,
    IfStmt,
    SeqStmt,
    SkipStmt,
    Stmt,
    WhileStmt,
)


class NonTermination(EvaluationError):
    """Raised when execution exhausts its fuel budget."""


def execute(stmt: Stmt, state: State, fuel: int = 10_000) -> State:
    """Run ``stmt`` to completion; raise :class:`NonTermination` when the
    step budget is exhausted.

    >>> from repro.core.state import Space
    >>> from repro.systems.program.ast import p_assign
    >>> from repro.lang.expr import var
    >>> sp = Space({"x": range(4), "y": range(4)})
    >>> execute(p_assign("y", var("x")), sp.state(x=3, y=0))["y"]
    3
    """
    final, _remaining = _run(stmt, state, fuel)
    return final


def _run(stmt: Stmt, state: State, fuel: int) -> tuple[State, int]:
    if fuel <= 0:
        raise NonTermination("execution fuel exhausted")
    if isinstance(stmt, SkipStmt):
        return state, fuel - 1
    if isinstance(stmt, AssignStmt):
        return state.replace(**{stmt.target: stmt.expr.eval(state)}), fuel - 1
    if isinstance(stmt, SeqStmt):
        for part in stmt.parts:
            state, fuel = _run(part, state, fuel)
        return state, fuel
    if isinstance(stmt, IfStmt):
        branch = stmt.then_stmt if stmt.cond.eval(state) else stmt.else_stmt
        return _run(branch, state, fuel - 1)
    if isinstance(stmt, WhileStmt):
        while stmt.cond.eval(state):
            state, fuel = _run(stmt.body, state, fuel - 1)
            if fuel <= 0:
                raise NonTermination("execution fuel exhausted")
        return state, fuel - 1
    raise EvaluationError(f"unknown statement {stmt!r}")


def semantic_noninterference(
    stmt: Stmt,
    space,
    source: str,
    target: str,
    entry=None,
    fuel: int = 10_000,
) -> tuple[State, State] | None:
    """The *semantic* (whole-program, termination-observing) check: a pair
    of entry states differing only at ``source`` whose final ``target``
    values differ, or None if none exists.

    This is what "looking at the program" concludes in section 6.5's
    two-branch example — it differs from strong dependency on the
    flowchart system, because strong dependency assumes the observer sees
    the history.  Keeping both notions lets the benches reproduce the
    paper's discussion exactly.
    """
    buckets: dict[tuple, list[State]] = {}
    for state in space.states():
        if entry is not None and not entry(state):
            continue
        buckets.setdefault(state.restrict_away({source}), []).append(state)
    for bucket in buckets.values():
        first: State | None = None
        first_out = None
        for state in bucket:
            out = execute(stmt, state, fuel)[target]
            if first is None:
                first, first_out = state, out
            elif out != first_out:
                return (first, state)
    return None
