"""The pointer-chain system of section 4.3.

Each object contains *data* plus a single *pointer* to another object.  Two
operation families act on pairs ``(y, x)``::

    delta1(y, x):  if y.ptr = x then y.data <- x.data
    delta2(y, x):  if y.ptr = x then y.ptr  <- x.ptr

The paper's worked Strong Dependency Induction proof shows: partition the
objects by a predicate ``Chain`` (those that may reach ``alpha`` through
pointers) with ``Chain(alpha)`` and ``not Chain(beta)``; then the
constraint ::

    phi(sigma) == forall y: Chain(sigma.y.ptr) implies Chain(y)

is autonomous and invariant, guarantees there is no pointer chain from
beta to alpha, and — via Corollary 4-3 with
``q(x, y) = Chain(x) implies Chain(y)`` — proves that no information can
ever be transmitted from alpha to beta.

In the state encoding, object ``x`` contributes two state objects:
``data[x]`` (finite content domain) and ``ptr[x]`` (domain: the object
names).  The *source* of the paper's problem is ``data[alpha]``, the
target ``data[beta]``; pointer cells are ordinary objects and participate
in the analysis (delta2 genuinely transmits pointer variety).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

from repro.core.constraints import Constraint
from repro.core.errors import SpaceError
from repro.core.state import Space, State, Value
from repro.core.system import Operation, System


def data_name(obj: str) -> str:
    """State-object name of ``obj.data``."""
    return f"data[{obj}]"


def ptr_name(obj: str) -> str:
    """State-object name of ``obj.ptr``."""
    return f"ptr[{obj}]"


class PointerSystem:
    """The section 4.3 system over a finite set of pointer objects.

    >>> ps = PointerSystem(["a", "b", "c"], data_domain=(0, 1))
    >>> ps.system.space.size
    216
    >>> sorted(ps.system.operation_names)[:2]
    ['copy_data(a,b)', 'copy_data(a,c)']
    """

    def __init__(
        self,
        objects: Sequence[str],
        data_domain: Iterable[Value] = (0, 1),
    ) -> None:
        if len(objects) < 2:
            raise SpaceError("a pointer system needs at least two objects")
        if len(set(objects)) != len(objects):
            raise SpaceError("duplicate object names")
        self.objects = tuple(objects)
        domain = tuple(data_domain)

        domains: dict[str, Iterable[Value]] = {}
        for obj in self.objects:
            domains[data_name(obj)] = domain
            domains[ptr_name(obj)] = self.objects
        self.space = Space(domains)

        operations = []
        for y, x in itertools.permutations(self.objects, 2):
            operations.append(self._copy_data(y, x))
            operations.append(self._copy_ptr(y, x))
        self.system = System(self.space, operations)

    def _copy_data(self, y: str, x: str) -> Operation:
        """delta1(y, x): if y.ptr = x then y.data <- x.data."""

        def run(state: State) -> State:
            if state[ptr_name(y)] == x:
                return state.replace(**{data_name(y): state[data_name(x)]})
            return state

        return Operation(
            f"copy_data({y},{x})",
            run,
            description=f"if {y}.ptr = {x} then {y}.data <- {x}.data",
        )

    def _copy_ptr(self, y: str, x: str) -> Operation:
        """delta2(y, x): if y.ptr = x then y.ptr <- x.ptr."""

        def run(state: State) -> State:
            if state[ptr_name(y)] == x:
                return state.replace(**{ptr_name(y): state[ptr_name(x)]})
            return state

        return Operation(
            f"copy_ptr({y},{x})",
            run,
            description=f"if {y}.ptr = {x} then {y}.ptr <- {x}.ptr",
        )

    # -- the paper's predicates -----------------------------------------------------

    def points(self, state: State, start: str, goal: str) -> bool:
        """``points(start, goal, n)`` for some n >= 0: there is a chain of
        pointers from ``start`` to ``goal`` in ``state`` (section 4.3's
        recursive definition, closed over all lengths)."""
        seen: set[str] = set()
        cursor = start
        while cursor not in seen:
            if cursor == goal:
                return True
            seen.add(cursor)
            cursor = state[ptr_name(cursor)]  # type: ignore[assignment]
        return cursor == goal

    def chain_constraint(self, chain: Iterable[str]) -> Constraint:
        """The paper's phi for a chosen Chain set::

            phi(sigma) == forall y: Chain(sigma.y.ptr) implies Chain(y)

        i.e. no object outside the chain set points into it.  The paper
        proves (and the library's checkers confirm) that this phi is
        autonomous and invariant under both operation families.
        """
        chain_set = frozenset(chain)
        unknown = chain_set - set(self.objects)
        if unknown:
            raise SpaceError(f"unknown chain objects {sorted(unknown)!r}")

        def holds(state: State) -> bool:
            for y in self.objects:
                if state[ptr_name(y)] in chain_set and y not in chain_set:
                    return False
            return True

        return Constraint(
            self.space, holds, name=f"chain-closed({','.join(sorted(chain_set))})"
        )

    def chain_relation(self, chain: Iterable[str]):
        """Corollary 4-3's q over *state-object* names::

            q(x, y) == Chain(x) implies Chain(y)

        Data and pointer cells inherit their object's Chain membership.
        """
        chain_set = frozenset(chain)

        def in_chain(state_object: str) -> bool:
            for obj in self.objects:
                if state_object in (data_name(obj), ptr_name(obj)):
                    return obj in chain_set
            raise SpaceError(f"unknown state object {state_object!r}")

        return lambda x, y: (not in_chain(x)) or in_chain(y)

    def no_chain_witness(
        self, phi: Constraint, start: str, goal: str
    ) -> State | None:
        """A phi-state containing a pointer chain from start to goal, or
        None — used to confirm phi guarantees ``not points(beta, alpha)``."""
        for state in phi.states():
            if self.points(state, start, goal):
                return state
        return None
