"""Verdict provenance: which mechanism produced an engine answer.

"A Theory of Service Dependency" frames dependency evidence as something
*auditable*: a non-flow verdict is only as trustworthy as the mechanism
that established it.  This module gives every public engine answer a
small, always-on record of that mechanism — which kernel path ran
(compiled integer BFS, PR-1 object BFS, or the seed per-state fallback
for foreign operations), whether the answer came from a memoized closure
or a fresh search, how execution was governed, and how long the witness
is when one exists.

Provenance is attached unconditionally (it is a single frozen dataclass
allocation, far below the cost of even a memo hit) and **never**
participates in result equality — two identical verdicts reached through
different paths still compare equal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.telemetry import current_trace

#: The kernel paths a verdict can come from.
KERNEL_PATHS = (
    "compiled",         # integer kernel: canonical unordered pairs / arrays
    "compiled-bitset",  # bulk frontier kernel: bitset visited set, whole-
                        # frontier expansion (witness-identical to compiled)
    "object",           # PR-1 object path (compiled=False engines)
    "seed-fallback",  # direct per-state Def 2-10 checker (foreign operations)
    "one-step",       # budget-degraded audit cell: length-1 witness only
    "unknown",        # budget exhausted, nothing established
)

#: Memo outcomes.
MEMO_OUTCOMES = ("hit", "fresh", "n/a")

#: Budget states.
BUDGET_STATES = ("none", "governed", "exhausted")

#: Persistent-store outcomes (PR 7).  ``off`` — no store attached (the
#: field is omitted from ``describe()``); ``ram`` — the in-RAM memo
#: answered before the disk tier was consulted; ``hit`` — deserialized
#: from disk instead of computed; ``miss`` — disk consulted, absent,
#: computed fresh (and persisted).
STORE_STATES = ("off", "ram", "hit", "miss")


@dataclass(frozen=True, slots=True)
class Provenance:
    """How one dependency verdict was produced.

    ``kernel`` is the decision path (:data:`KERNEL_PATHS`); ``memo``
    says whether the underlying closure/sweep was served from the
    engine's memo (:data:`MEMO_OUTCOMES`); ``budget`` records the
    governance state the query ran under (:data:`BUDGET_STATES`);
    ``witness_length`` is the history length of the positive witness
    (``None`` for negative or unknown verdicts); ``closure_pairs`` is
    the size of the pair closure that answered an existential-history
    query (``None`` for fixed-history sweeps); ``store`` records the
    persistent-store tier's involvement (:data:`STORE_STATES` —
    ``off`` when no store is attached, and omitted from ``describe()``
    so storeless provenance strings are unchanged); ``trace_id`` is the
    request trace the verdict was produced under (auto-filled from the
    ambient trace context, ``None`` outside a traced request and omitted
    from ``describe()`` so untraced provenance strings are unchanged).
    """

    kernel: str
    memo: str = "n/a"
    budget: str = "none"
    witness_length: int | None = None
    closure_pairs: int | None = None
    store: str = "off"
    trace_id: str | None = None

    def __post_init__(self) -> None:
        if self.trace_id is None:
            # Frozen dataclass: bypass the frozen __setattr__ guard.
            object.__setattr__(self, "trace_id", current_trace())

    def describe(self) -> str:
        bits = [f"kernel={self.kernel}", f"memo={self.memo}",
                f"budget={self.budget}"]
        if self.store != "off":
            bits.append(f"store={self.store}")
        if self.witness_length is not None:
            bits.append(f"witness_len={self.witness_length}")
        if self.closure_pairs is not None:
            bits.append(f"closure_pairs={self.closure_pairs}")
        if self.trace_id is not None:
            bits.append(f"trace={self.trace_id}")
        return " ".join(bits)

    def short(self) -> str:
        """Compact ``kernel/memo`` form for table cells."""
        return f"{self.kernel}/{self.memo}"
