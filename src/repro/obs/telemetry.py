"""Zero-dependency telemetry: hierarchical spans, counters and gauges.

The dependency stack is four layers deep (object pair-graph, compiled
integer kernel, batched fixed-history sweeps, budget-governed execution)
and, before this module, emitted exactly one coarse signal — the
:class:`~repro.core.budget.ExecutionLog`.  This module supplies the
tracing/metrics vocabulary every serving stack needs, with the two
properties the hot loops demand:

- **Off by default, and free when off.**  The module-level
  :data:`_ENABLED` flag is read once per instrumentation point; a
  disabled :func:`span` returns the shared :data:`NULL_SPAN` singleton
  (no allocation, no clock read) and disabled counters return before
  touching the collector.  The BFS inner loops are *not* instrumented at
  all when disabled — per-expansion statistics (frontier high-water
  marks) are gathered only by the telemetry variant of the loop, which
  is selected once per closure (see ``CompiledKernel.closure``).
- **Thread- and process-safe.**  The collector is lock-protected; spans
  parent through a :class:`contextvars.ContextVar`, so thread-pool and
  asyncio fan-outs nest correctly.  Process-pool workers cannot share
  the collector, so they :func:`export_batch` their finished spans and
  counters (plain picklable tuples) and the parent :func:`absorb_batch`
  merges them — the batch rides the existing ``_warm`` result stream,
  no side channel.

Telemetry **never changes verdicts**: instrumentation only reads the
loop state the algorithms already maintain, and every governed code path
is byte-identical whether or not the collector is live (property-tested
in ``tests/property/test_telemetry_agreement.py``).

Enable with :func:`enable` (or ``REPRO_TELEMETRY=1`` in the
environment); export with :mod:`repro.obs.export` (Chrome
``chrome://tracing`` JSON or a flat JSONL event stream); summarize a
written trace with ``repro stats TRACE``.
"""

from __future__ import annotations

import bisect
import contextvars
import functools
import os
import threading
import time
from collections import deque
from collections.abc import Callable, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field

#: Environment variable that enables telemetry at import time (any
#: non-empty value other than "0").  This is how child processes and CI
#: jobs switch the collector on without code changes.
ENV_FLAG = "REPRO_TELEMETRY"

#: Environment variable bounding the collector's span ring.  A resident
#: service runs with telemetry enabled for days; an unbounded span list
#: would be a slow leak.  The newest spans always win — the oldest are
#: dropped and counted on the ``obs.spans_dropped`` counter.
ENV_MAX_SPANS = "REPRO_TELEMETRY_MAX_SPANS"

_DEFAULT_MAX_SPANS = 65536

#: Category tag stamped on every span record; exporters map it to the
#: Chrome trace ``cat`` field.
CATEGORY = "repro"


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One finished span: a named, timed region of work.

    ``start_ns``/``duration_ns`` come from :func:`time.perf_counter_ns`
    (monotonic); ``parent_id`` is the span id of the enclosing span in
    the same context, or ``None`` for roots.  ``attrs`` holds small
    key→value annotations (source sets, constraint names, memo
    outcomes) — values must be picklable and JSON-serializable.
    ``trace_id`` is the request/trace correlation id active when the
    span closed (see :func:`trace_context`), or ``None`` outside any
    trace — e.g. a CLI run that never minted one.
    """

    name: str
    span_id: int
    parent_id: int | None
    start_ns: int
    duration_ns: int
    pid: int
    tid: int
    attrs: Mapping[str, object] = field(default_factory=dict)
    trace_id: str | None = None


# -- latency histograms -------------------------------------------------------

#: Fixed bucket upper bounds in **seconds** for every latency histogram.
#: Fixed and shared means histograms merge exactly (element-wise count
#: addition) across threads, process-pool workers and scraped servers —
#: the property Prometheus exposition and `absorb_batch` both rely on.
#: One implicit +Inf overflow bucket follows the last bound.
HIST_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Span names whose durations also feed a fixed-bucket histogram on the
#: enabled path (one dict lookup per span exit; the disabled path never
#: allocates a span at all, so its cost is unchanged).
SPAN_HISTOGRAMS = {
    "engine.closure": "engine.closure.seconds",
    "engine.history_sweep": "engine.history_sweep.seconds",
    "worker.closure": "worker.closure.seconds",
    "serve.query": "serve.query.seconds",
    "serve.session.create": "serve.session.seconds",
}

#: Every histogram the stack records (the span-fed ones above plus the
#: explicitly observed service-level ones).
HISTOGRAM_NAMES = tuple(sorted(SPAN_HISTOGRAMS.values())) + (
    "serve.queue_wait.seconds",   # admission: arrival -> execution slot
    "serve.request.seconds",      # full request: read -> response bytes
)


@dataclass(frozen=True)
class Histogram:
    """One immutable fixed-bucket latency histogram.

    ``counts[i]`` is the number of observations with
    ``value <= HIST_BUCKETS[i]`` (non-cumulative, one extra overflow
    slot at the end); ``sum_seconds`` is the exact sum of observed
    values, so mean latency survives the bucketing.
    """

    counts: tuple[int, ...]
    sum_seconds: float

    @property
    def count(self) -> int:
        return sum(self.counts)

    def percentile(self, q: float) -> float | None:
        """The upper bucket bound covering quantile ``q`` (0 < q <= 1),
        or ``None`` for an empty histogram.  Overflow observations
        report the largest finite bound (Prometheus convention)."""
        total = self.count
        if total == 0:
            return None
        rank = q * total
        cumulative = 0
        for i, c in enumerate(self.counts):
            cumulative += c
            if cumulative >= rank:
                return HIST_BUCKETS[min(i, len(HIST_BUCKETS) - 1)]
        return HIST_BUCKETS[-1]

    def merge(self, other: "Histogram") -> "Histogram":
        return Histogram(
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            sum_seconds=self.sum_seconds + other.sum_seconds,
        )


class _Collector:
    """Thread-safe sink for finished spans, counters and gauges.

    Counters accumulate (``+= n``); gauges keep a high-water mark
    (``max``).  Both are plain ``str -> int/float`` dicts so snapshots
    and batches are trivially picklable.
    """

    def __init__(self, max_spans: int | None = None) -> None:
        if max_spans is None:
            try:
                max_spans = int(
                    os.environ.get(ENV_MAX_SPANS, _DEFAULT_MAX_SPANS)
                )
            except ValueError:
                max_spans = _DEFAULT_MAX_SPANS
        self._lock = threading.Lock()
        self._spans: deque[SpanRecord] = deque(maxlen=max(1, max_spans))
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, list] = {}  # name -> [counts list, sum]
        self._next_id = 1

    def new_span_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def add_span(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                # The ring is full: the oldest span is about to fall off.
                self._counters["obs.spans_dropped"] = (
                    self._counters.get("obs.spans_dropped", 0) + 1
                )
            self._spans.append(record)

    def add_count(self, name: str, n: int) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def add_gauge_max(self, name: str, value: float) -> None:
        with self._lock:
            current = self._gauges.get(name)
            if current is None or value > current:
                self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        bucket = bisect.bisect_left(HIST_BUCKETS, seconds)
        with self._lock:
            entry = self._hists.get(name)
            if entry is None:
                entry = [[0] * (len(HIST_BUCKETS) + 1), 0.0]
                self._hists[name] = entry
            entry[0][bucket] += 1
            entry[1] += seconds

    def merge_hist(self, name: str, counts, sum_seconds: float) -> None:
        with self._lock:
            entry = self._hists.get(name)
            if entry is None:
                entry = [[0] * (len(HIST_BUCKETS) + 1), 0.0]
                self._hists[name] = entry
            for i, c in enumerate(counts):
                entry[0][i] += c
            entry[1] += sum_seconds

    def snapshot(self) -> "TelemetrySnapshot":
        with self._lock:
            return TelemetrySnapshot(
                spans=tuple(self._spans),
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                hists={
                    name: Histogram(counts=tuple(entry[0]), sum_seconds=entry[1])
                    for name, entry in self._hists.items()
                },
            )

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


@dataclass(frozen=True)
class TelemetrySnapshot:
    """An immutable copy of the collector state at one instant."""

    spans: tuple[SpanRecord, ...]
    counters: dict[str, int]
    gauges: dict[str, float]
    hists: dict[str, Histogram] = field(default_factory=dict)


_COLLECTOR = _Collector()

#: The one flag every instrumentation point reads.  Mutated only by
#: :func:`enable` / :func:`disable`; reads are unsynchronized on purpose
#: (a stale read during the enable race loses at most one event).
_ENABLED = False

_CURRENT_SPAN: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

_TRACE_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_obs_trace_id", default=None
)


# -- trace context ------------------------------------------------------------
#
# A trace id is the per-request correlation key: minted once at the edge
# (``serve/http.py`` per HTTP request, or any caller via trace_context),
# carried by contextvar through the engine layers, and stamped on every
# span, access-log line and Provenance record produced underneath it.
# Trace propagation is deliberately NOT gated on _ENABLED — access logs
# and provenance want correlation ids even when span collection is off,
# and a contextvar read costs nanoseconds.


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (random; collision odds are
    negligible at service scale and ids never need to be sequential)."""
    return os.urandom(8).hex()


def current_trace() -> str | None:
    """The trace id active in this context, or ``None`` outside any."""
    return _TRACE_ID.get()


def set_trace(trace_id: str | None) -> contextvars.Token:
    """Install ``trace_id`` in this context; returns the token for
    :func:`reset_trace`.  Use this form from executor threads, where a
    ``with`` block cannot span the thread hop."""
    return _TRACE_ID.set(trace_id)


def reset_trace(token: contextvars.Token) -> None:
    _TRACE_ID.reset(token)


@contextmanager
def trace_context(trace_id: str | None = None):
    """Run a block under a trace id (minting one when not given)::

        with obs.trace_context() as trace_id:
            ... every span/provenance in here carries trace_id ...
    """
    if trace_id is None:
        trace_id = new_trace_id()
    token = _TRACE_ID.set(trace_id)
    try:
        yield trace_id
    finally:
        _TRACE_ID.reset(token)


def enable(reset: bool = False) -> None:
    """Switch the collector on (optionally clearing prior state)."""
    global _ENABLED
    if reset:
        _COLLECTOR.clear()
    _ENABLED = True


def disable() -> None:
    """Switch the collector off.  Already-collected data is kept until
    :func:`reset` — so a CLI run can disable then export."""
    global _ENABLED
    _ENABLED = False


def is_enabled() -> bool:
    return _ENABLED


def reset() -> None:
    """Drop all collected spans, counters and gauges."""
    _COLLECTOR.clear()


def snapshot() -> TelemetrySnapshot:
    """Copy out everything collected so far."""
    return _COLLECTOR.snapshot()


# -- spans --------------------------------------------------------------------


class _NullSpan:
    """The disabled-path span: a reusable, reentrant no-op context
    manager.  A single shared instance serves every disabled call, so
    ``with obs.span(...)`` costs one attribute load when telemetry is
    off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, key: str, value: object) -> None:
        return None


NULL_SPAN = _NullSpan()


class Span:
    """A live span: times a region on the monotonic clock and records a
    :class:`SpanRecord` on exit.  Nesting is tracked per-context via a
    :class:`contextvars.ContextVar`, so spans parent correctly across
    threads (each thread pool task runs in a copied context)."""

    __slots__ = ("name", "attrs", "span_id", "_parent_token", "_start_ns")

    def __init__(self, name: str, attrs: dict[str, object]) -> None:
        self.name = name
        self.attrs = attrs
        self.span_id = _COLLECTOR.new_span_id()
        self._parent_token: contextvars.Token | None = None
        self._start_ns = 0

    def set(self, key: str, value: object) -> None:
        """Attach an attribute mid-span (e.g. a memo outcome discovered
        after entry)."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._parent_token = _CURRENT_SPAN.set(self.span_id)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> None:
        end_ns = time.perf_counter_ns()
        token = self._parent_token
        parent_id = token.old_value if token is not None else None
        if parent_id is contextvars.Token.MISSING:
            parent_id = None
        if token is not None:
            _CURRENT_SPAN.reset(token)
        _COLLECTOR.add_span(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=parent_id,
                start_ns=self._start_ns,
                duration_ns=end_ns - self._start_ns,
                pid=os.getpid(),
                tid=threading.get_ident(),
                attrs=self.attrs,
                trace_id=_TRACE_ID.get(),
            )
        )
        hist = SPAN_HISTOGRAMS.get(self.name)
        if hist is not None:
            _COLLECTOR.observe(hist, (end_ns - self._start_ns) / 1e9)


def span(name: str, **attrs: object) -> Span | _NullSpan:
    """A context manager timing one named region.

    Disabled telemetry returns the shared no-op singleton.  Attribute
    values should be small and JSON-serializable; expensive attrs should
    be computed behind an :func:`is_enabled` guard at the call site.
    """
    if not _ENABLED:
        return NULL_SPAN
    return Span(name, attrs)


def traced(name: str) -> Callable:
    """Decorator form of :func:`span` — wraps the function body in a
    span named ``name`` when telemetry is enabled, and is a plain
    passthrough call when disabled."""

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object):
            if not _ENABLED:
                return fn(*args, **kwargs)
            with Span(name, {}):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# -- counters / gauges --------------------------------------------------------


def count(name: str, n: int = 1) -> None:
    """Increment counter ``name`` by ``n`` (no-op when disabled)."""
    if not _ENABLED:
        return
    _COLLECTOR.add_count(name, n)


def gauge_max(name: str, value: float) -> None:
    """Raise gauge ``name`` to ``value`` if it is a new high-water mark
    (no-op when disabled)."""
    if not _ENABLED:
        return
    _COLLECTOR.add_gauge_max(name, value)


def observe(name: str, seconds: float) -> None:
    """Record one duration into the fixed-bucket histogram ``name``
    (no-op when disabled).  Bucket bounds are :data:`HIST_BUCKETS`."""
    if not _ENABLED:
        return
    _COLLECTOR.observe(name, seconds)


# -- cross-process batches ----------------------------------------------------
#
# Process-pool workers enable telemetry from the pool initializer, run
# their closures under local spans, and ship the batch back as the third
# element of the task result.  Batches are plain tuples of primitives —
# no SpanRecord instances cross the boundary — so absorbing them costs
# one pickle round-trip they already paid for the closure itself.

#: A picklable batch: (span tuples, counters, gauges, histograms).
#: Span tuples are ``(name, span_id, parent_id, start_ns, duration_ns,
#: pid, tid, attrs, trace_id)``; histograms are
#: ``name -> (bucket counts, sum_seconds)``.
Batch = tuple[
    tuple[tuple, ...],
    dict[str, int],
    dict[str, float],
    dict[str, tuple[tuple[int, ...], float]],
]


def export_batch(clear: bool = True) -> Batch:
    """Snapshot the collector as a picklable batch (worker side)."""
    snap = _COLLECTOR.snapshot()
    if clear:
        _COLLECTOR.clear()
    spans = tuple(
        (
            s.name,
            s.span_id,
            s.parent_id,
            s.start_ns,
            s.duration_ns,
            s.pid,
            s.tid,
            dict(s.attrs),
            s.trace_id,
        )
        for s in snap.spans
    )
    hists = {
        name: (hist.counts, hist.sum_seconds)
        for name, hist in snap.hists.items()
    }
    return (spans, snap.counters, snap.gauges, hists)


def absorb_batch(batch: Batch | None) -> None:
    """Merge a worker batch into this process's collector (parent side).

    Worker clocks are per-process (``perf_counter_ns`` has an arbitrary
    epoch per interpreter), so worker spans are **re-based**: the batch
    keeps its internal relative timing but is anchored so its latest
    span ends at absorb time — the moment its results streamed back.
    Span ids are offset into a fresh id range to avoid colliding with
    parent spans; parent links inside the batch are preserved.

    Trace propagation: a worker has no way to know which request's
    fan-out it is serving, so worker spans arrive with ``trace_id=None``
    and are stamped with the trace id active *at absorb time* — the
    absorbing thread is the one running the request's warm fan-out, so
    the stamp lands on the correct request.  Histogram durations are
    clock-difference values and merge exactly, untouched by re-basing.
    """
    if not batch or not _ENABLED:
        return
    spans, counters, gauges = batch[:3]
    hists = batch[3] if len(batch) > 3 else {}
    now_ns = time.perf_counter_ns()
    if spans:
        absorb_trace = _TRACE_ID.get()
        batch_end = max(s[3] + s[4] for s in spans)
        shift = now_ns - batch_end
        ids = {s[1] for s in spans}
        base = _COLLECTOR.new_span_id()
        remap = {old: base + k for k, old in enumerate(sorted(ids))}
        # Reserve the remapped range so later parent spans don't collide.
        for _ in range(len(ids) - 1):
            _COLLECTOR.new_span_id()
        for s in spans:
            name, span_id, parent_id, start_ns, duration_ns, pid, tid, attrs = s[:8]
            trace_id = s[8] if len(s) > 8 else None
            _COLLECTOR.add_span(
                SpanRecord(
                    name=name,
                    span_id=remap[span_id],
                    parent_id=remap.get(parent_id),
                    start_ns=start_ns + shift,
                    duration_ns=duration_ns,
                    pid=pid,
                    tid=tid,
                    attrs=attrs,
                    trace_id=trace_id if trace_id is not None else absorb_trace,
                )
            )
    for name, n in counters.items():
        _COLLECTOR.add_count(name, n)
    for name, value in gauges.items():
        _COLLECTOR.add_gauge_max(name, value)
    for name, (counts, sum_seconds) in hists.items():
        _COLLECTOR.merge_hist(name, counts, sum_seconds)


# -- span/counter taxonomy ----------------------------------------------------

#: The span names the stack emits, for reference and for the trace
#: validator (docs/OBSERVABILITY.md is the prose glossary).
SPAN_NAMES = (
    "engine.closure",          # one (A, phi) pair-graph closure (memo miss)
    "engine.history_sweep",    # one (A, H, phi) fixed-history bucket sweep
    "engine.history_set",      # one (A, H, phi, B) set-target pair scan
    "engine.operation_flows",  # one per-constraint single-step flow matrix
    "engine.warm",             # one batched closure fan-out
    "kernel.closure",          # the compiled integer BFS itself
    "worker.closure",          # a process-pool worker's BFS
    "audit.cell",              # one (source, target) audit cell
    "taint.closure",           # the syntactic taint baseline
    "induction.per_operation_flows",
    "induction.cor4_2",        # prove_no_dependency
    "induction.cor4_3",        # prove_via_relation
    "induction.cor5_6",        # prove_no_dependency_nonautonomous
    "obligation.preconditions",
    "obligation.alternative_a",
    "obligation.alternative_b",
    "obligation.relation_closure",
    "store.load",              # one persistent-store row fetch (+kind attr)
    "store.save",              # one persistent-store row write (+kind attr)
    "diff.compare",            # one repro-diff closure sweep over two versions
    "quant.measure",           # one compiled quantitative measure (+kind attr)
    "quant.channel_matrix",    # one batched channel-matrix sweep
    "quant.capacity",          # one Blahut-Arimoto capacity solve
    "serve.query",             # one service query's engine work
    "serve.session.create",    # build + compile + key one session
    "serve.warm",              # one session prewarm fan-out
    "serve.probe",             # one breaker watchdog pool probe
    "serve.drain",             # the SIGTERM drain sequence
)

#: Counter names (cumulative) and gauge names (high-water marks).
COUNTER_NAMES = (
    "engine.closure.requests",
    "engine.closure.memo_hit",
    "engine.closure.memo_miss",
    "engine.history_table.memo_hit",
    "engine.history_table.memo_miss",
    "engine.history_table.evictions",
    "engine.history_set.memo_hit",
    "engine.history_set.memo_miss",
    "engine.history_set.evictions",
    "engine.step_flows.memo_hit",
    "engine.step_flows.memo_miss",
    "engine.prewarm.runs",
    "engine.prewarm.closures",
    "kernel.pair_expansions",
    "kernel.pairs_discovered",
    "kernel.history_compose.memo_hit",
    "kernel.history_compose.gathers",
    "kernel.history_compose.evictions",
    "kernel.sat_ids.evictions",
    "kernel.bitset.levels",
    "pool.retries",
    "pool.degradations",
    "pool.shm.arenas",
    "pool.shm.fallbacks",
    "budget.trips",
    "execution.reports",
    "execution.reports_dropped",
    "store.hit",
    "store.miss",
    "store.write",
    "store.invalidate",
    "store.evictions",
    "store.degraded",
    "store.corrupt",
    "store.kernel_loads",
    "quant.states_scanned",
    "quant.buckets_scanned",
    "quant.ba_iterations",
    "quant.fallback_object",
    "engine.buckets.evictions",
    "serve.requests",
    "serve.shed",
    "serve.deadline_timeouts",
    "serve.breaker.trips",
    "serve.breaker.probes",
    "serve.breaker.recoveries",
    "serve.sessions.created",
    "serve.sessions.evicted",
    "serve.drain.flushed",
    "serve.access.lines",
    "serve.access.write_errors",
    "serve.flight.recorded",
    "obs.spans_dropped",
)

GAUGE_NAMES = (
    "kernel.frontier_high_water",
    "engine.closure.pairs",
    "engine.history_table.evictions",
    "engine.history_set.evictions",
    "kernel.history_compose.evictions",
    "kernel.sat_ids.evictions",
    "pool.shm.bytes",
    "execution.log_size",
    "store.evictions",
    "store.bytes",
    "serve.queue_depth",
    "serve.inflight",
)


if os.environ.get(ENV_FLAG, "0") not in ("", "0"):
    enable()
