"""Trace exporters and replay: Chrome ``chrome://tracing`` JSON and a
flat JSONL event stream.

Two formats, one snapshot:

- :func:`chrome_trace` / :func:`write_chrome_trace` emit the Chrome
  Trace Event Format (the ``{"traceEvents": [...]}`` object form):
  every span becomes a complete (``"ph": "X"``) event with microsecond
  ``ts``/``dur``, counters become one ``"C"`` event each, and process
  metadata names the tracks.  The file loads directly in
  ``chrome://tracing`` / Perfetto.  ``docs/trace.schema.json`` is the
  checked-in schema CI validates emitted traces against.
- :func:`write_jsonl` emits one JSON object per line (``{"type":
  "span" | "counter" | "gauge" | "hist", ...}``) — the greppable form
  for log pipelines.

:func:`load_trace` reads either format back — plus the service access
log (``{"type": "access", ...}`` JSONL lines, PR 10) — and
:func:`aggregate` reduces the events to per-span-name timing
statistics, histogram percentiles, access-log summaries, and the final
counter/gauge values — the engine behind the ``repro stats``
subcommand.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable

from repro.obs import telemetry
from repro.obs.telemetry import TelemetrySnapshot


def _normalized_spans(snap: TelemetrySnapshot) -> list[dict]:
    """Spans as plain dicts with microsecond timestamps re-based to the
    earliest span start (Chrome renders absolute perf-counter epochs as
    astronomically distant; a zero-based trace stays readable)."""
    if not snap.spans:
        return []
    base_ns = min(s.start_ns for s in snap.spans)
    out = []
    for s in snap.spans:
        out.append(
            {
                "name": s.name,
                "id": s.span_id,
                "parent": s.parent_id,
                "ts_us": (s.start_ns - base_ns) / 1000.0,
                "dur_us": s.duration_ns / 1000.0,
                "pid": s.pid,
                "tid": s.tid,
                "trace": s.trace_id,
                "args": dict(s.attrs),
            }
        )
    return out


def _hist_docs(snap: TelemetrySnapshot) -> dict[str, dict]:
    """Histograms as plain dicts (shared bucket bounds + per-bucket
    counts + running sum) — the picklable/JSON form for both exporters."""
    out: dict[str, dict] = {}
    for name in sorted(snap.hists):
        hist = snap.hists[name]
        out[name] = {
            "buckets": list(telemetry.HIST_BUCKETS),
            "counts": list(hist.counts),
            "sum_seconds": hist.sum_seconds,
        }
    return out


def chrome_trace(snap: TelemetrySnapshot | None = None) -> dict:
    """The collector state (or a given snapshot) as a Chrome trace
    object.  Pure data — callers serialize with :func:`json.dump`."""
    if snap is None:
        snap = telemetry.snapshot()
    spans = _normalized_spans(snap)
    events: list[dict] = []
    pids = sorted({s["pid"] for s in spans}) or [os.getpid()]
    own_pid = os.getpid()
    for pid in pids:
        label = "repro" if pid == own_pid else f"repro worker {pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for s in spans:
        args = dict(s["args"])
        if s["parent"] is not None:
            args["parent_span"] = s["parent"]
        event = {
            "name": s["name"],
            "cat": telemetry.CATEGORY,
            "ph": "X",
            "ts": s["ts_us"],
            "dur": s["dur_us"],
            "pid": s["pid"],
            "tid": s["tid"],
            "args": args,
        }
        if s["trace"] is not None:
            event["trace_id"] = s["trace"]
        events.append(event)
    end_ts = max((s["ts_us"] + s["dur_us"] for s in spans), default=0.0)
    for name in sorted(snap.counters):
        events.append(
            {
                "name": name,
                "cat": telemetry.CATEGORY,
                "ph": "C",
                "ts": end_ts,
                "pid": own_pid,
                "tid": 0,
                "args": {"value": snap.counters[name]},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "counters": dict(snap.counters),
            "gauges": dict(snap.gauges),
            "hists": _hist_docs(snap),
        },
    }


def write_chrome_trace(path: str, snap: TelemetrySnapshot | None = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(snap), handle, indent=1, default=str)
        handle.write("\n")


def jsonl_events(snap: TelemetrySnapshot | None = None) -> Iterable[dict]:
    """The snapshot as a flat event stream (spans, then counters, then
    gauges)."""
    if snap is None:
        snap = telemetry.snapshot()
    for s in _normalized_spans(snap):
        yield {"type": "span", **s}
    for name in sorted(snap.counters):
        yield {"type": "counter", "name": name, "value": snap.counters[name]}
    for name in sorted(snap.gauges):
        yield {"type": "gauge", "name": name, "value": snap.gauges[name]}
    for name, doc in _hist_docs(snap).items():
        yield {"type": "hist", "name": name, **doc}


def write_jsonl(path: str, snap: TelemetrySnapshot | None = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for event in jsonl_events(snap):
            handle.write(json.dumps(event, default=str))
            handle.write("\n")


# -- replay (the `repro stats` engine) ----------------------------------------


def load_trace(path: str) -> list[dict]:
    """Read a trace written by either exporter — or a service access
    log — back into the flat event form: ``{"type": "span", "name",
    "dur_us", ...}`` / ``{"type": "counter" | "gauge", "name",
    "value"}`` / ``{"type": "hist", "name", "buckets", "counts",
    "sum_seconds"}`` / ``{"type": "access", ...}``."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    try:
        # A Chrome trace is one JSON document; JSONL fails here because
        # its second line is "extra data" after the first object.
        data = json.loads(text)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict):
        events: list[dict] = []
        for ev in data.get("traceEvents", []):
            if ev.get("ph") == "X":
                events.append(
                    {
                        "type": "span",
                        "name": ev["name"],
                        "ts_us": ev.get("ts", 0.0),
                        "dur_us": ev.get("dur", 0.0),
                        "pid": ev.get("pid"),
                        "tid": ev.get("tid"),
                        "trace": ev.get("trace_id"),
                        "args": ev.get("args", {}),
                    }
                )
        other = data.get("otherData", {})
        for name, value in sorted(other.get("counters", {}).items()):
            events.append({"type": "counter", "name": name, "value": value})
        for name, value in sorted(other.get("gauges", {}).items()):
            events.append({"type": "gauge", "name": name, "value": value})
        for name, doc in sorted(other.get("hists", {}).items()):
            events.append({"type": "hist", "name": name, **doc})
        return events
    events = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    return events


def _bucket_percentile(
    bounds: list[float], counts: list[float], q: float
) -> float | None:
    """The ``q``-quantile upper bound from cumulative bucket counts
    (``counts`` has one trailing overflow bucket beyond ``bounds``).
    Overflow observations report the largest finite bound — the
    histogram cannot resolve beyond it."""
    total = sum(counts)
    if total <= 0:
        return None
    rank = q * total
    cumulative = 0.0
    for i, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank:
            return bounds[i] if i < len(bounds) else bounds[-1]
    return bounds[-1]


def aggregate(events: Iterable[dict]) -> dict:
    """Reduce a trace to per-span-name statistics and final metric
    values: ``{"spans": {name: {count, total_us, max_us}}, "counters":
    {...}, "gauges": {...}, "hists": {name: {count, sum_seconds, p50,
    p95, p99}}, "access": {count, statuses, traced}}``.

    ``hists`` percentiles are bucket upper bounds (exact merge across
    sources sharing the bucket bounds); ``access`` summarizes service
    access-log lines when the input is an access JSONL."""
    spans: dict[str, dict[str, float]] = {}
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    hists: dict[str, dict] = {}
    access = {"count": 0, "statuses": {}, "traced": 0}
    for ev in events:
        kind = ev.get("type")
        if kind == "span":
            stat = spans.setdefault(
                ev["name"], {"count": 0, "total_us": 0.0, "max_us": 0.0}
            )
            dur = float(ev.get("dur_us", 0.0))
            stat["count"] += 1
            stat["total_us"] += dur
            if dur > stat["max_us"]:
                stat["max_us"] = dur
        elif kind == "counter":
            counters[ev["name"]] = ev["value"]
        elif kind == "gauge":
            gauges[ev["name"]] = ev["value"]
        elif kind == "hist":
            bounds = [float(b) for b in ev.get("buckets", [])]
            counts = [float(c) for c in ev.get("counts", [])]
            hists[ev["name"]] = {
                "count": int(sum(counts)),
                "sum_seconds": float(ev.get("sum_seconds", 0.0)),
                "p50": _bucket_percentile(bounds, counts, 0.50),
                "p95": _bucket_percentile(bounds, counts, 0.95),
                "p99": _bucket_percentile(bounds, counts, 0.99),
            }
        elif kind == "access":
            access["count"] += 1
            status = str(ev.get("status", "?"))
            access["statuses"][status] = access["statuses"].get(status, 0) + 1
            if ev.get("trace"):
                access["traced"] += 1
            dur = ev.get("duration_ms")
            if dur is not None:
                durs = access.setdefault("durations_ms", [])
                durs.append(float(dur))
    result = {"spans": spans, "counters": counters, "gauges": gauges,
              "hists": hists}
    if access["count"]:
        durs = sorted(access.pop("durations_ms", []))
        if durs:
            def pick(q: float) -> float:
                return durs[min(len(durs) - 1, int(q * len(durs)))]
            access["p50_ms"] = pick(0.50)
            access["p95_ms"] = pick(0.95)
            access["p99_ms"] = pick(0.99)
        result["access"] = access
    return result
