"""Prometheus text exposition for the telemetry collector.

:func:`render` turns a :class:`~repro.obs.telemetry.TelemetrySnapshot`
into the Prometheus text exposition format (version 0.0.4): counters as
``<name>_total``, gauges as plain gauges, and the fixed-bucket latency
histograms as standard ``_bucket{le=...}`` / ``_sum`` / ``_count``
families with **cumulative** bucket counts ending in ``le="+Inf"``.
The service's ``/metrics`` endpoint serves exactly this text, so any
Prometheus-compatible scraper works against ``repro serve`` unchanged.

:func:`lint` is the reverse direction: a dependency-free validator for
the exposition format used by ``scripts/validate_metrics.py`` and the CI
metrics-smoke job.  It checks what a scraper would choke on — malformed
sample lines, samples without a ``# TYPE`` declaration, non-cumulative
histogram buckets, missing ``+Inf`` buckets, and ``_count`` samples
disagreeing with their ``+Inf`` bucket.

Everything here is pure string work over an immutable snapshot — no
collector locks are held while rendering.
"""

from __future__ import annotations

import re

from repro.obs import telemetry
from repro.obs.telemetry import HIST_BUCKETS, TelemetrySnapshot

#: The Content-Type the ``/metrics`` endpoint must serve.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Every exposed metric is prefixed so repro metrics never collide with
#: another job's families on a shared Prometheus.
PREFIX = "repro_"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+\d+)?$"
)


def metric_name(name: str) -> str:
    """A telemetry name (``serve.request.seconds``) as a Prometheus
    family name (``repro_serve_request_seconds``)."""
    return PREFIX + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _fmt(value: float) -> str:
    """Prometheus sample values: integers without a trailing ``.0``."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def render(
    snap: TelemetrySnapshot | None = None,
    extra_gauges: dict[str, float] | None = None,
) -> str:
    """The snapshot in Prometheus text exposition format.

    ``extra_gauges`` lets the serving layer add point-in-time values the
    collector does not own (queue depth now, sessions resident, breaker
    state) without routing them through gauge high-water marks.
    """
    if snap is None:
        snap = telemetry.snapshot()
    lines: list[str] = []

    for name in sorted(snap.counters):
        family = metric_name(name) + "_total"
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_fmt(snap.counters[name])}")

    gauges = dict(snap.gauges)
    if extra_gauges:
        gauges.update(extra_gauges)
    for name in sorted(gauges):
        family = metric_name(name)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_fmt(gauges[name])}")

    for name in sorted(snap.hists):
        hist = snap.hists[name]
        family = metric_name(name)
        lines.append(f"# TYPE {family} histogram")
        cumulative = 0
        for bound, count in zip(HIST_BUCKETS, hist.counts):
            cumulative += count
            lines.append(f'{family}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        cumulative += hist.counts[len(HIST_BUCKETS)]
        lines.append(f'{family}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{family}_sum {_fmt(hist.sum_seconds)}")
        lines.append(f"{family}_count {cumulative}")

    return "\n".join(lines) + "\n"


def _base_family(name: str) -> str:
    """The family a sample belongs to: histogram/summary suffixes fold
    into the declared family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def _parse_labels(text: str | None) -> dict[str, str]:
    labels: dict[str, str] = {}
    if not text:
        return labels
    for part in re.findall(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"', text):
        labels[part[0]] = part[1]
    return labels


def lint(text: str, require: tuple[str, ...] | list[str] = ()) -> list[str]:
    """Validate Prometheus text exposition; returns a list of problems
    (empty means valid).

    ``require`` names families (or family prefixes for histograms, e.g.
    ``repro_serve_request_seconds``) that must be present with at least
    one sample — the CI smoke job uses it to assert the request-latency
    histogram actually appeared.
    """
    problems: list[str] = []
    types: dict[str, str] = {}
    seen: set[str] = set()
    buckets: dict[str, list[tuple[float, float]]] = {}
    counts: dict[str, float] = {}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    problems.append(f"line {lineno}: malformed TYPE comment")
                    continue
                family, kind = parts[2], parts[3].strip()
                if not _NAME_OK.match(family):
                    problems.append(
                        f"line {lineno}: invalid family name {family!r}"
                    )
                if kind not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    problems.append(
                        f"line {lineno}: unknown metric type {kind!r}"
                    )
                if family in types:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for {family}"
                    )
                types[family] = kind
            continue
        match = _SAMPLE.match(line)
        if not match:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        family = _base_family(name)
        declared = types.get(family) or types.get(name)
        if declared is None:
            problems.append(
                f"line {lineno}: sample {name} has no preceding TYPE"
            )
            continue
        try:
            value = float(match.group("value").replace("+Inf", "inf"))
        except ValueError:
            problems.append(
                f"line {lineno}: non-numeric value {match.group('value')!r}"
            )
            continue
        seen.add(family if types.get(family) else name)
        if declared == "counter" and value < 0:
            problems.append(f"line {lineno}: negative counter {name}")
        if declared == "histogram":
            labels = _parse_labels(match.group("labels"))
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    problems.append(
                        f"line {lineno}: histogram bucket without le label"
                    )
                else:
                    bound = float("inf") if le == "+Inf" else float(le)
                    buckets.setdefault(family, []).append((bound, value))
            elif name.endswith("_count"):
                counts[family] = value

    for family, pairs in buckets.items():
        bounds = [b for b, _ in pairs]
        values = [v for _, v in pairs]
        if bounds != sorted(bounds):
            problems.append(f"{family}: bucket bounds not sorted")
        if values != sorted(values):
            problems.append(f"{family}: bucket counts not cumulative")
        if not bounds or bounds[-1] != float("inf"):
            problems.append(f"{family}: missing +Inf bucket")
        elif family in counts and counts[family] != values[-1]:
            problems.append(
                f"{family}: _count {counts[family]} != +Inf bucket "
                f"{values[-1]}"
            )

    for family in require:
        if family not in seen:
            problems.append(f"required metric missing: {family}")
    return problems
