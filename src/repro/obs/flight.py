"""Bounded flight recorder: span trees retained for failed requests.

A resident service cannot keep every request's spans — the collector's
span ring (PR 10) constantly overwrites old spans — but the requests an
operator actually needs post-mortems for are exactly the ones that went
wrong: a 504 deadline trip, a 429/503 shed, a breaker transition, a
store-degraded fallback.  The :class:`FlightRecorder` is a small ring of
**complete span trees** captured at failure time, keyed by trace id:
when the serving layer sees a failure status it calls :meth:`record`,
which filters the current collector snapshot down to the request's
trace id (including pool-worker spans absorbed under it) and stores the
tree alongside the access-log facts.

The ring is bounded (default 64 records) so a failure storm costs a
fixed amount of memory; the oldest post-mortems are overwritten first.
Dump it with ``GET /stats?flight=1`` or ``repro stats --flight FILE``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.obs import telemetry
from repro.obs.telemetry import TelemetrySnapshot

#: Default ring capacity — enough for a meaningful failure window,
#: bounded enough that a storm cannot grow memory.
DEFAULT_CAPACITY = 64

#: The reasons the serving layer records flights for.
REASONS = (
    "deadline",        # 504: cooperative deadline tripped
    "shed",            # 429/503: admission controller refused the work
    "breaker",         # circuit breaker open / tripped during the request
    "store-degraded",  # persistent store fell back to compute
    "error",           # unexpected 5xx
    "slow",            # over the slow-request threshold (operator-set)
)


def spans_for_trace(
    trace_id: str, snap: TelemetrySnapshot | None = None
) -> list[dict]:
    """Every collected span carrying ``trace_id``, as plain dicts with
    microsecond timestamps re-based to the trace's earliest span (the
    same normalized form the exporters use)."""
    if snap is None:
        snap = telemetry.snapshot()
    matched = [s for s in snap.spans if s.trace_id == trace_id]
    if not matched:
        return []
    base_ns = min(s.start_ns for s in matched)
    return [
        {
            "name": s.name,
            "id": s.span_id,
            "parent": s.parent_id,
            "ts_us": (s.start_ns - base_ns) / 1000.0,
            "dur_us": s.duration_ns / 1000.0,
            "pid": s.pid,
            "tid": s.tid,
            "trace": s.trace_id,
            "args": dict(s.attrs),
        }
        for s in sorted(matched, key=lambda s: s.start_ns)
    ]


@dataclass(frozen=True)
class FlightRecord:
    """One retained post-mortem: the request facts plus its span tree."""

    trace_id: str
    reason: str
    status: int
    method: str = ""
    path: str = ""
    session: str | None = None
    duration_ms: float | None = None
    recorded_at: float = 0.0
    detail: str = ""
    spans: tuple = ()

    def to_doc(self) -> dict:
        return {
            "trace": self.trace_id,
            "reason": self.reason,
            "status": self.status,
            "method": self.method,
            "path": self.path,
            "session": self.session,
            "duration_ms": self.duration_ms,
            "recorded_at": self.recorded_at,
            "detail": self.detail,
            "spans": list(self.spans),
        }


class FlightRecorder:
    """A thread-safe bounded ring of :class:`FlightRecord`."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._ring: deque[FlightRecord] = deque(maxlen=max(1, capacity))
        self._recorded = 0

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def record(
        self,
        trace_id: str,
        reason: str,
        status: int,
        *,
        method: str = "",
        path: str = "",
        session: str | None = None,
        duration_ms: float | None = None,
        detail: str = "",
        snap: TelemetrySnapshot | None = None,
    ) -> FlightRecord:
        """Capture the span tree for ``trace_id`` right now and retain
        it.  Span capture reads one collector snapshot; with telemetry
        disabled the record still lands, just with an empty tree — the
        access-log facts alone are worth keeping."""
        spans = tuple(spans_for_trace(trace_id, snap)) if trace_id else ()
        rec = FlightRecord(
            trace_id=trace_id,
            reason=reason,
            status=status,
            method=method,
            path=path,
            session=session,
            duration_ms=duration_ms,
            recorded_at=time.time(),
            detail=detail,
            spans=spans,
        )
        with self._lock:
            self._ring.append(rec)
            self._recorded += 1
        telemetry.count("serve.flight.recorded")
        return rec

    def dump(self) -> list[dict]:
        """Every retained record, oldest first, as JSON-able dicts."""
        with self._lock:
            records = list(self._ring)
        return [r.to_doc() for r in records]

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "retained": len(self._ring),
                "recorded": self._recorded,
            }

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
