"""Telemetry for the dependency stack: spans, counters, gauges and
verdict provenance.

Everything is zero-dependency and off by default; ``obs.enable()`` (or
``REPRO_TELEMETRY=1``) switches the collector on without changing a
single verdict.  See :mod:`repro.obs.telemetry` for the collection
model, :mod:`repro.obs.export` for the Chrome-trace / JSONL exporters,
:mod:`repro.obs.provenance` for the per-verdict provenance records, and
``docs/OBSERVABILITY.md`` for the span taxonomy and counter glossary.

Typical use::

    from repro import obs

    obs.enable(reset=True)
    ... run queries ...
    obs.export.write_chrome_trace("trace.json")
    print(obs.export.aggregate(obs.export.jsonl_events()))
"""

from repro.obs import export, schema
from repro.obs.provenance import Provenance
from repro.obs.telemetry import (
    COUNTER_NAMES,
    GAUGE_NAMES,
    NULL_SPAN,
    SPAN_NAMES,
    Span,
    SpanRecord,
    TelemetrySnapshot,
    absorb_batch,
    count,
    disable,
    enable,
    export_batch,
    gauge_max,
    is_enabled,
    reset,
    snapshot,
    span,
    traced,
)

__all__ = [
    "COUNTER_NAMES",
    "GAUGE_NAMES",
    "NULL_SPAN",
    "SPAN_NAMES",
    "Provenance",
    "Span",
    "SpanRecord",
    "TelemetrySnapshot",
    "absorb_batch",
    "count",
    "disable",
    "enable",
    "export",
    "export_batch",
    "gauge_max",
    "is_enabled",
    "reset",
    "schema",
    "snapshot",
    "span",
    "traced",
]
