"""Telemetry for the dependency stack: spans, counters, gauges and
verdict provenance.

Everything is zero-dependency and off by default; ``obs.enable()`` (or
``REPRO_TELEMETRY=1``) switches the collector on without changing a
single verdict.  See :mod:`repro.obs.telemetry` for the collection
model, :mod:`repro.obs.export` for the Chrome-trace / JSONL exporters,
:mod:`repro.obs.provenance` for the per-verdict provenance records, and
``docs/OBSERVABILITY.md`` for the span taxonomy and counter glossary.

Typical use::

    from repro import obs

    obs.enable(reset=True)
    ... run queries ...
    obs.export.write_chrome_trace("trace.json")
    print(obs.export.aggregate(obs.export.jsonl_events()))
"""

from repro.obs import export, flight, metrics, schema
from repro.obs.provenance import Provenance
from repro.obs.telemetry import (
    COUNTER_NAMES,
    GAUGE_NAMES,
    HIST_BUCKETS,
    HISTOGRAM_NAMES,
    NULL_SPAN,
    SPAN_HISTOGRAMS,
    SPAN_NAMES,
    Histogram,
    Span,
    SpanRecord,
    TelemetrySnapshot,
    absorb_batch,
    count,
    current_trace,
    disable,
    enable,
    export_batch,
    gauge_max,
    is_enabled,
    new_trace_id,
    observe,
    reset,
    reset_trace,
    set_trace,
    snapshot,
    span,
    trace_context,
    traced,
)

__all__ = [
    "COUNTER_NAMES",
    "GAUGE_NAMES",
    "HIST_BUCKETS",
    "HISTOGRAM_NAMES",
    "Histogram",
    "NULL_SPAN",
    "SPAN_HISTOGRAMS",
    "SPAN_NAMES",
    "Provenance",
    "Span",
    "SpanRecord",
    "TelemetrySnapshot",
    "absorb_batch",
    "count",
    "current_trace",
    "disable",
    "enable",
    "export",
    "export_batch",
    "flight",
    "gauge_max",
    "is_enabled",
    "metrics",
    "new_trace_id",
    "observe",
    "reset",
    "reset_trace",
    "schema",
    "set_trace",
    "snapshot",
    "span",
    "trace_context",
    "traced",
]
