"""Minimal JSON-Schema-subset validator for trace files.

CI validates every emitted Chrome trace against the checked-in schema
(``docs/trace.schema.json``) before uploading it as a build artifact.
The container has no ``jsonschema`` package, so this module implements
the small subset the trace schema actually uses — ``type``,
``required``, ``properties``, ``items``, ``enum``, ``minimum`` and
``additionalProperties`` (boolean form) — and nothing else.  Unknown
schema keywords are ignored, matching JSON Schema's open-world rule.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

_TYPES = {
    "object": lambda v: isinstance(v, Mapping),
    "array": lambda v: isinstance(v, Sequence) and not isinstance(v, (str, bytes)),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(instance: object, schema: Mapping, path: str = "$") -> list[str]:
    """All violations of ``schema`` by ``instance`` (empty list = valid).

    Each violation is a human-readable string carrying the JSON path, so
    a failing CI job says *where* the trace broke the contract.
    """
    errors: list[str] = []
    declared = schema.get("type")
    if declared is not None:
        types = declared if isinstance(declared, list) else [declared]
        if not any(_TYPES[t](instance) for t in types):
            errors.append(
                f"{path}: expected type {declared}, got "
                f"{type(instance).__name__}"
            )
            return errors  # structural checks below would be nonsense
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']!r}")
    if (
        "minimum" in schema
        and isinstance(instance, (int, float))
        and not isinstance(instance, bool)
        and instance < schema["minimum"]
    ):
        errors.append(f"{path}: {instance!r} < minimum {schema['minimum']!r}")
    if isinstance(instance, Mapping):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required property {key!r}")
        properties = schema.get("properties", {})
        for key, subschema in properties.items():
            if key in instance:
                errors.extend(validate(instance[key], subschema, f"{path}.{key}"))
        if schema.get("additionalProperties") is False:
            for key in instance:
                if key not in properties:
                    errors.append(f"{path}: unexpected property {key!r}")
    if (
        isinstance(instance, Sequence)
        and not isinstance(instance, (str, bytes))
        and "items" in schema
    ):
        for i, item in enumerate(instance):
            errors.extend(validate(item, schema["items"], f"{path}[{i}]"))
    return errors


def check(instance: object, schema: Mapping) -> None:
    """Raise ``ValueError`` listing every violation, or return silently."""
    errors = validate(instance, schema)
    if errors:
        raise ValueError(
            "trace schema validation failed:\n  " + "\n  ".join(errors)
        )
