"""repro — Strong Dependency: information transmission in computational systems.

An executable reproduction of Ellis Cohen's *Strong Dependency* formalism
(CMU TR 1976; SOSP 1977, "Information Transmission in Computational
Systems").  The library turns the paper's definitions into decision
procedures over finite computational systems, its proof techniques into
checkable obligation engines, and its worked examples into regenerable
experiments.

Quick start::

    from repro import SystemBuilder, var, transmits

    b = SystemBuilder().booleans("m").integers("alpha", "beta", bits=2)
    b.op_if("delta", var("m"), "beta", var("alpha"))
    system = b.build()
    delta = system.operation("delta")

    assert transmits(system, {"alpha"}, "beta", delta)          # alpha |> beta
    phi = b.constraint(lambda s: not s["m"], name="~m")
    assert not transmits(system, {"alpha"}, "beta", delta, phi)  # solved

See DESIGN.md for the module map and EXPERIMENTS.md for the experiment
index reproducing each of the paper's worked examples.
"""

from repro.core import (
    Behavior,
    Constraint,
    DependencyResult,
    History,
    Operation,
    ReproError,
    Space,
    State,
    System,
    Witness,
    boolean_space,
    conjoin,
    depends_within,
    disjoin,
    integer_space,
    no_transmission,
    transmits,
    transmits_to_set,
)
from repro.lang import SystemBuilder, assign, const, op, seq, skip, var, when

__version__ = "1.0.0"

__all__ = [
    "Behavior",
    "Constraint",
    "DependencyResult",
    "History",
    "Operation",
    "ReproError",
    "Space",
    "State",
    "System",
    "SystemBuilder",
    "Witness",
    "__version__",
    "assign",
    "boolean_space",
    "conjoin",
    "const",
    "depends_within",
    "disjoin",
    "integer_space",
    "no_transmission",
    "op",
    "seq",
    "skip",
    "transmits",
    "transmits_to_set",
    "var",
    "when",
]
