"""Purely syntactic (certification-style) flow extraction.

Denning's certification mechanism (Denning 75, discussed in section 1.5)
derives flows from program *syntax*: an assignment flows its right-hand
side's reads into its target (explicit), and every guard enclosing the
assignment flows into the target too (implicit).  No state enumeration at
all — the cheapest, least precise analysis in the repertoire.

The paper instead derives per-operation flows from *semantics* ("we will
show how such a definition may be derived from the semantics of a given
operation").  This module implements the syntactic alternative over
:class:`~repro.lang.cmd.Command` bodies so the two can be compared:

- syntactic flows always include the semantic per-operation strong
  dependencies (soundness — property-tested), and
- strictly over-approximate when syntax suggests flows semantics refutes
  (e.g. ``if m then beta <- beta``: syntactically m flows into beta, but
  rewriting beta with itself conveys nothing).

Implementation: abstract dependency semantics.  Track, per object, the
set of *initial* objects its current value may depend on; assignments
rebind, branches join, guards taint everything written beneath them.
"""

from __future__ import annotations

import networkx as nx

from repro.core.errors import OperationError
from repro.core.system import History, Operation, System
from repro.lang.cmd import Assign, Command, If, Seq, Skip
from repro.lang.ops import StructuredOperation

FlowPair = tuple[str, str]
DepMap = dict[str, frozenset[str]]


def _process(command: Command, deps: DepMap, guard_deps: frozenset[str]) -> DepMap:
    """Abstract execution: map each object to the initial objects its
    value may depend on after the command."""
    if isinstance(command, Skip):
        return deps
    if isinstance(command, Assign):
        sources: frozenset[str] = guard_deps
        for read in command.expr.reads():
            sources |= deps.get(read, frozenset([read]))
        updated = dict(deps)
        updated[command.target] = sources
        return updated
    if isinstance(command, Seq):
        for part in command.parts:
            deps = _process(part, deps, guard_deps)
        return deps
    if isinstance(command, If):
        inner = guard_deps
        for read in command.guard.reads():
            inner |= deps.get(read, frozenset([read]))
        then_deps = _process(command.then_cmd, dict(deps), inner)
        else_deps = _process(command.else_cmd, dict(deps), inner)
        merged: DepMap = {}
        for name in set(then_deps) | set(else_deps):
            default = frozenset([name])
            merged[name] = then_deps.get(name, default) | else_deps.get(
                name, default
            )
        return merged
    raise OperationError(f"cannot extract flows from {command!r}")


def command_flows(
    command: Command, objects: tuple[str, ...] | None = None
) -> frozenset[FlowPair]:
    """Syntactic flow pairs ``(initial source, final target)`` of one
    command body, including survival (identity) flows.

    ``objects`` fixes the universe (defaults to the names the command
    mentions); objects untouched by the command flow to themselves.
    """
    universe = (
        tuple(objects)
        if objects is not None
        else tuple(sorted(command.reads() | command.writes()))
    )
    deps: DepMap = {name: frozenset([name]) for name in universe}
    final = _process(command, deps, frozenset())
    return frozenset(
        (source, target)
        for target in universe
        for source in final.get(target, frozenset([target]))
    )


def operation_flows(
    op: Operation, objects: tuple[str, ...] | None = None
) -> frozenset[FlowPair]:
    """Syntactic flows of one operation (requires a command body)."""
    if not isinstance(op, StructuredOperation):
        raise OperationError(
            f"operation {op.name!r} has no command body; syntactic flow "
            "extraction requires StructuredOperation"
        )
    return command_flows(op.command, objects)


class StaticFlowAnalysis:
    """Transitive closure over syntactic per-operation flows — Denning's
    certification discipline as a whole-system analysis."""

    def __init__(self, system: System) -> None:
        self.system = system
        names = system.space.names
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(names)
        self._per_op: dict[str, frozenset[FlowPair]] = {}
        for op in system.operations:
            pairs = operation_flows(op, names)
            self._per_op[op.name] = pairs
            self._graph.add_edges_from(pairs)

    def operation_flows(self, op_name: str) -> frozenset[FlowPair]:
        return self._per_op[op_name]

    def flows_ever(self, source: str, target: str) -> bool:
        if source == target:
            return True
        return nx.has_path(self._graph, source, target)

    def flow_over_history(self, history: History) -> frozenset[FlowPair]:
        """Relational composition of syntactic per-operation flows."""
        names = self.system.space.names
        relation: set[FlowPair] = {(n, n) for n in names}
        for op in history:
            step = self._per_op[op.name]
            relation = {
                (x, z) for (x, m) in relation for (m2, z) in step if m == m2
            }
        return frozenset(relation)

    def flows_over_history(
        self, sources, target: str, history: History
    ) -> bool:
        relation = self.flow_over_history(history)
        return any((alpha, target) in relation for alpha in sources)


def certify_lattice(
    system: System,
    classification,
    leq,
) -> list[tuple[str, str, str]]:
    """Denning-style lattice certification: every syntactic per-operation
    flow must go up the classification order.

    Returns the violations as ``(operation, source, target)`` triples —
    empty means *certified*.  Certification is sound (syntactic flows
    cover semantic ones) and incomplete (it may reject secure systems,
    e.g. the self-rewrite pattern); Corollary 4-3 is the semantic
    counterpart (`repro.core.induction.prove_via_relation`).
    """
    analysis = StaticFlowAnalysis(system)
    violations: list[tuple[str, str, str]] = []
    for op in system.operations:
        for source, target in sorted(analysis.operation_flows(op.name)):
            if not leq(classification[source], classification[target]):
                violations.append((op.name, source, target))
    return violations
