"""Comparator baselines: transitive flow (Denning/Case), dynamic taint,
and the Jones-Lipton transformed-system test."""

from repro.baselines.denning import TransitiveFlowAnalysis, precision_report
from repro.baselines.millen import MillenAnalysis, soundness_violations
from repro.baselines.static_flow import StaticFlowAnalysis, command_flows, operation_flows
from repro.baselines.jones_lipton import (
    SurveillanceResult,
    certify_no_transmission,
    frozen_operation,
)
from repro.baselines.taint import (
    taint_after,
    taint_closure,
    taint_reaches,
)

__all__ = [
    "MillenAnalysis",
    "StaticFlowAnalysis",
    "SurveillanceResult",
    "TransitiveFlowAnalysis",
    "certify_no_transmission",
    "command_flows",
    "operation_flows",
    "frozen_operation",
    "precision_report",
    "taint_after",
    "taint_closure",
    "soundness_violations",
    "taint_reaches",
]
