"""Dynamic taint tracking — a syntactic runtime baseline.

Taint tracking labels objects and propagates labels through command
structure: an assignment taints its target with the taint of everything
the right-hand side reads, plus the taints of every guard controlling the
assignment (the classic handling of *implicit flows*, cf. Denning 75's
"implicit flow" and Jones & Lipton 75's "negative inference").

Taint is an over-approximation of strong dependency along a single
history: per-state it is insensitive to values (a guarded assignment
taints even when the guard is false — else untaken-branch leaks are
missed), so the benches can exhibit both its soundness and its imprecision
against the semantic checker.

Only :class:`~repro.lang.ops.StructuredOperation` bodies can be tracked —
taint is a *syntactic* technique and needs the command AST.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro import obs
from repro.core.errors import OperationError
from repro.core.system import History, Operation, System
from repro.lang.cmd import Assign, Command, If, Seq, Skip
from repro.lang.ops import StructuredOperation

TaintSet = frozenset[str]


def _taint_command(
    command: Command, tainted: set[str], guard_taint: bool
) -> None:
    """Propagate taint through one command, in place.

    ``guard_taint`` records whether any enclosing guard read a tainted
    object; every write under a tainted guard becomes tainted (implicit
    flow).
    """
    if isinstance(command, Skip):
        return
    if isinstance(command, Assign):
        rhs_tainted = bool(command.expr.reads() & tainted)
        if rhs_tainted or guard_taint:
            tainted.add(command.target)
        else:
            tainted.discard(command.target)
        return
    if isinstance(command, Seq):
        for part in command.parts:
            _taint_command(part, tainted, guard_taint)
        return
    if isinstance(command, If):
        inner_guard = guard_taint or bool(command.guard.reads() & tainted)
        # Conservative join of both branches: anything either branch might
        # taint becomes tainted; untainting requires both branches to
        # untaint, which this simple tracker does not attempt.
        before = set(tainted)
        then_set = set(before)
        _taint_command(command.then_cmd, then_set, inner_guard)
        else_set = set(before)
        _taint_command(command.else_cmd, else_set, inner_guard)
        tainted.clear()
        tainted.update(then_set | else_set)
        return
    raise OperationError(f"cannot taint-track command {command!r}")


def taint_after(
    history: History | Operation, initial_tainted: Iterable[str]
) -> TaintSet:
    """Run the taint tracker over a history of structured operations.

    >>> from repro.lang.ops import assign_op
    >>> from repro.lang.expr import var
    >>> d1 = assign_op("d1", "m", var("a"))
    >>> d2 = assign_op("d2", "b", var("m"))
    >>> sorted(taint_after(History.of(d1, d2), {"a"}))
    ['a', 'b', 'm']
    """
    if isinstance(history, Operation):
        history = History.of(history)
    tainted = set(initial_tainted)
    for op in history:
        if not isinstance(op, StructuredOperation):
            raise OperationError(
                f"operation {op.name!r} has no command body; taint tracking "
                "requires StructuredOperation"
            )
        _taint_command(op.command, tainted, guard_taint=False)
    return frozenset(tainted)


def taint_reaches(
    history: History | Operation,
    sources: Iterable[str],
    target: str,
) -> bool:
    """Does taint from ``sources`` reach ``target`` over ``history``?"""
    return target in taint_after(history, sources)


def taint_closure(
    system: System, sources: Iterable[str]
) -> TaintSet:
    """Objects ever taintable from ``sources`` over *any* history: iterate
    single-operation taint steps to a fixpoint (monotone, so it
    terminates)."""
    with obs.span("taint.closure", sources=",".join(sorted(sources))):
        tainted = frozenset(sources)
        while True:
            expanded = set(tainted)
            for op in system.operations:
                expanded |= taint_after(History.of(op), tainted)
            if frozenset(expanded) == tainted:
                return tainted
            tainted = frozenset(expanded)
