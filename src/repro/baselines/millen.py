"""Millen-style constraint-aware flow certification (section 1.5).

Millen 76 showed how certain information paths may be *ignored in the
face of appropriate constraints*: compute the per-operation flow relation
under the constraint (rather than over all states) and close
transitively.  The paper remarks that its study of constraints
"determin[es] ... its limits (which determines the limits of Millen's
approach as well)".

This module implements the approach and makes the limit precise:

- :class:`MillenAnalysis` with ``mode="initial"`` evaluates every
  per-operation flow under the *initial* constraint phi.  For invariant
  phi this is sound (Theorem 6-2 keeps every reachable state inside
  phi).  For **non-invariant** phi it is *unsound*: an operation can
  first invalidate phi and thereby arm a flow the analysis already ruled
  out (benchmark E26 exhibits the two-operation counterexample).
- ``mode="envelope"`` restores soundness by evaluating flows under the
  reachability envelope of phi (the union of every ``[H]phi`` — computed
  by fixpoint), at the usual cost of precision.

Used with an inductive cover instead of the envelope, the corrected
analysis is exactly the paper's Theorem 6-7 specialization — implemented
in :mod:`repro.core.covers`; this module keeps the *transitive* closure
step so the baseline stays faithful to the flow-model literature.
"""

from __future__ import annotations

import networkx as nx

from repro.core.constraints import Constraint
from repro.core.engine import shared_engine
from repro.core.errors import ConstraintError
from repro.core.system import System


class MillenAnalysis:
    """Constraint-aware transitive flow analysis.

    >>> from repro.lang.builders import SystemBuilder
    >>> from repro.lang.expr import var
    >>> b = SystemBuilder().booleans("g", "a", "bb")
    >>> _ = b.op_if("copy", var("g"), "bb", var("a"))
    >>> system = b.build()
    >>> phi = Constraint(system.space, lambda s: not s["g"], name="~g")
    >>> MillenAnalysis(system, phi).flows_ever("a", "bb")  # phi invariant
    False
    """

    def __init__(
        self,
        system: System,
        constraint: Constraint,
        mode: str = "initial",
    ) -> None:
        if constraint.space != system.space:
            raise ConstraintError(
                "constraint and system are over different spaces"
            )
        if mode not in ("initial", "envelope"):
            raise ConstraintError(f"unknown mode {mode!r}")
        self.system = system
        self.initial_constraint = constraint
        self.mode = mode
        if mode == "initial":
            self.effective_constraint = constraint
        else:
            # Imported here: repro.analysis aggregates comparison tooling
            # that itself imports this module (deferred to break the cycle).
            from repro.analysis.explorer import reachable_constraint

            self.effective_constraint = reachable_constraint(
                system, constraint
            )
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(system.space.names)
        # The engine computes every (operation, x, y) single-step flow from
        # the tabulated transitions in one pass per source object.
        flows = shared_engine(system).operation_flows(self.effective_constraint)
        for op in system.operations:
            for x, y in sorted(flows[op.name]):
                self._graph.add_edge(x, y, operation=op.name)

    def per_operation_flows(self) -> frozenset[tuple[str, str]]:
        return frozenset(self._graph.edges())

    def flows_ever(self, source: str, target: str) -> bool:
        """The analysis's verdict: reachability in the constrained flow
        graph."""
        if source == target:
            return True
        return nx.has_path(self._graph, source, target)

    def certified_absent(self) -> frozenset[tuple[str, str]]:
        """All (source, target) pairs the analysis certifies flow-free."""
        out: set[tuple[str, str]] = set()
        for source in self.system.space.names:
            reachable = nx.descendants(self._graph, source) | {source}
            out.update(
                (source, target)
                for target in self.system.space.names
                if target not in reachable
            )
        return frozenset(out)


def soundness_violations(
    analysis: MillenAnalysis,
) -> list[tuple[str, str]]:
    """Certified-absent pairs that in fact transmit (exact pair-graph
    check under the *initial* constraint) — nonempty exactly when the
    mode/constraint combination is unsound."""
    engine = shared_engine(analysis.system)
    violations = []
    for source, target in sorted(analysis.certified_absent()):
        if engine.depends_ever(
            {source}, target, analysis.initial_constraint
        ):
            violations.append((source, target))
    return violations
