"""A Jones & Lipton (1975) style transformed-system comparator.

Jones & Lipton argue no information is transmitted from alpha to beta if
the system can be *transformed* into one that never accesses alpha yet
gives beta the same values.  The paper (section 1.6) notes Strong
Dependency instead compares the system against itself with alpha's
initial value arbitrarily changed.

This module implements the natural executable version of the
transformed-system test: freeze alpha to a candidate constant ``c`` at
every operation application (so the transformed system never *reads* the
real alpha) and check that beta's trajectory is unchanged for every
initial state and history up to a bound.  If some constant works, the
test certifies non-transmission.

The relationship to strong dependency (verified by the tests and the E21
bench):

- certification is **sound**: a working constant implies
  ``not alpha |>^H beta`` for the checked histories;
- it is **incomplete**: systems exist where every per-constant
  transformation perturbs beta yet no information flows — so the
  comparator can fail to certify paths strong dependency rules out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constraints import Constraint
from repro.core.state import State, Value
from repro.core.system import History, Operation, System


def frozen_operation(op: Operation, name: str, value: Value) -> Operation:
    """The transformed operation: it sees ``name`` as the constant
    ``value`` (never accessing the real object), then restores the real
    object's current value so the transformation cannot *write through*
    the freeze either."""

    def run(state: State) -> State:
        masked = state.replace(**{name: value})
        result = op(masked)
        return result.replace(**{name: state[name]})

    return Operation(f"{op.name}[{name}:={value!r}]", run)


@dataclass(frozen=True)
class SurveillanceResult:
    """Outcome of the transformed-system test for one (alpha, beta) pair."""

    certified: bool
    constant: Value | None
    detail: str


def certify_no_transmission(
    system: System,
    alpha: str,
    beta: str,
    max_length: int,
    constraint: Constraint | None = None,
) -> SurveillanceResult:
    """Try every constant in alpha's domain; certify if some freeze leaves
    beta's behavior identical on all histories up to ``max_length``."""
    system.space.check_names([alpha, beta])
    phi = constraint if constraint is not None else Constraint.true(system.space)
    initial_states = list(phi.states())
    for value in system.space.domain(alpha):
        if _freeze_preserves_beta(
            system, alpha, beta, value, initial_states, max_length
        ):
            return SurveillanceResult(
                True,
                value,
                f"freezing {alpha}:={value!r} preserves {beta} on all "
                f"histories up to length {max_length}",
            )
    return SurveillanceResult(
        False,
        None,
        f"no constant freeze of {alpha} preserves {beta}",
    )


def _freeze_preserves_beta(
    system: System,
    alpha: str,
    beta: str,
    value: Value,
    initial_states: list[State],
    max_length: int,
) -> bool:
    frozen = {
        op.name: frozen_operation(op, alpha, value) for op in system.operations
    }
    # Walk original and transformed systems in lockstep (BFS over histories)
    # comparing beta at every step.
    frontier = [(state, state) for state in initial_states]
    for state, shadow in frontier:
        if state[beta] != shadow[beta]:
            return False
    for _ in range(max_length):
        next_frontier: list[tuple[State, State]] = []
        seen: set[tuple[State, State]] = set()
        for state, shadow in frontier:
            for op in system.operations:
                pair = (op(state), frozen[op.name](shadow))
                if pair[0][beta] != pair[1][beta]:
                    return False
                if pair not in seen:
                    seen.add(pair)
                    next_frontier.append(pair)
        frontier = next_frontier
    return True
