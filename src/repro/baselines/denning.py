"""The Denning/Case transitive flow model (section 1.5) — the baseline the
paper argues against.

Denning 75 and Case 74 sidestep implicit-flow state sensitivity by
defining per-operation flow ``alpha -(delta)-> beta`` state-independently
(there *exists* a state in which delta transmits), and then **assume flow
is transitive** over sequences::

    alpha -(lambda)-> beta  ==  alpha = beta
    alpha -(H delta)-> beta ==  exists m: alpha -(H)-> m and m -(delta)-> beta

The paper derives the per-operation relation from semantics (it is exactly
single-operation strong dependency), and shows the transitivity assumption
over-approximates: in ::

    delta1: if q then m <- alpha
    delta2: if not q then beta <- m

the baseline reports ``alpha -(delta1 delta2)-> beta`` although no
information can flow.  This module implements the baseline faithfully so
the benches can measure that precision gap, plus the Millen 76 variant that
computes per-operation flows *under a constraint*.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx

from repro.core.constraints import Constraint
from repro.core.engine import shared_engine
from repro.core.system import History, System


class TransitiveFlowAnalysis:
    """Flow analysis with the transitive-composition assumption.

    >>> from repro.lang.builders import SystemBuilder
    >>> from repro.lang.expr import var
    >>> b = SystemBuilder().booleans("a", "m", "b")
    >>> _ = b.op_assign("d1", "m", var("a")).op_assign("d2", "b", var("m"))
    >>> system = b.build()
    >>> analysis = TransitiveFlowAnalysis(system)
    >>> analysis.flows_ever("a", "b")
    True
    """

    def __init__(
        self, system: System, constraint: Constraint | None = None
    ) -> None:
        self.system = system
        self.constraint = constraint
        # The engine's single-step flow matrix *is* the baseline's
        # per-operation relation (one bucket pass per source object,
        # shared with every other consumer of the same system).
        step = shared_engine(system).operation_flows(constraint)
        self._per_op: dict[str, frozenset[tuple[str, str]]] = {
            op.name: step[op.name] for op in system.operations
        }

    def operation_flows(self, op_name: str) -> frozenset[tuple[str, str]]:
        """``x -(delta)-> y`` pairs for one operation (derived from
        semantics as the paper proposes: single-operation strong
        dependency)."""
        return self._per_op[op_name]

    def flow_over_history(self, history: History) -> frozenset[tuple[str, str]]:
        """The baseline's flow relation for a specific history, by exact
        relational composition of the per-operation relations (the
        recursive definition in section 1.5)."""
        names = self.system.space.names
        # lambda: identity.
        relation: set[tuple[str, str]] = {(n, n) for n in names}
        for op in history:
            step = self._per_op[op.name]
            relation = {
                (x, z)
                for (x, m) in relation
                for (m2, z) in step
                if m == m2
            }
        return frozenset(relation)

    def flows_over_history(
        self, sources: Iterable[str], target: str, history: History
    ) -> bool:
        relation = self.flow_over_history(history)
        return any((alpha, target) in relation for alpha in sources)

    def flow_graph(self) -> nx.DiGraph:
        """The union of per-operation flow edges (self-loops included)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.system.space.names)
        for pairs in self._per_op.values():
            for x, y in pairs:
                graph.add_edge(x, y)
        return graph

    def flows_ever(self, source: str, target: str) -> bool:
        """Does the baseline predict flow over *some* history?  This is
        graph reachability in the union flow graph: a path
        ``x -> m1 -> ... -> target`` corresponds to the history that fires
        one witnessing operation per edge; self-loops on unwritten objects
        make padding harmless."""
        if source == target:
            return True
        graph = self.flow_graph()
        return nx.has_path(graph, source, target)

    def predicted_paths(self) -> frozenset[tuple[str, str]]:
        """All (source, target) pairs the baseline predicts can ever flow."""
        graph = self.flow_graph()
        out: set[tuple[str, str]] = set()
        for source in self.system.space.names:
            reachable = nx.descendants(graph, source) | {source}
            out.update((source, t) for t in reachable)
        return frozenset(out)


def precision_report(
    system: System,
    exact_paths: frozenset[tuple[str, str]],
    constraint: Constraint | None = None,
) -> dict[str, object]:
    """Compare the transitive baseline against ground truth paths
    (pairs with true existential-history strong dependency).

    Returns counts and the concrete false positives — the measurements
    behind the paper's argument that transitivity over-approximates.
    Soundness (no false negatives) is expected and asserted by tests.
    """
    analysis = TransitiveFlowAnalysis(system, constraint)
    predicted = analysis.predicted_paths()
    false_positives = sorted(predicted - exact_paths)
    false_negatives = sorted(exact_paths - predicted)
    return {
        "predicted": len(predicted),
        "actual": len(exact_paths),
        "false_positives": false_positives,
        "false_negatives": false_negatives,
        "precision": (
            (len(predicted) - len(false_positives)) / len(predicted)
            if predicted
            else 1.0
        ),
    }
