"""Executable statements of the paper's theorems.

Each function decides one theorem's claim for a *concrete* finite system
(and, where applicable, constraint/history), returning a
:class:`TheoremCheck`.  A valid theorem can never produce a failing check;
the random-system fuzzer (:mod:`repro.analysis.random_systems`) and the
hypothesis property tests exercise these across large families of systems,
which is this reproduction's analogue of the paper's hand proofs.

Naming follows the paper: ``thm_2_6`` is Theorem 2-6, etc.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro import obs
from repro.core.constraints import Constraint
from repro.core.dependency import (
    transmits,
    transmits_to_set,
)
from repro.core.state import State
from repro.core.system import History, System


@dataclass(frozen=True)
class TheoremCheck:
    """Outcome of checking one theorem instance."""

    theorem: str
    ok: bool
    detail: str = ""
    counterexample: object = None

    def __bool__(self) -> bool:
        return self.ok


def _ok(name: str, detail: str = "") -> TheoremCheck:
    return TheoremCheck(name, True, detail)


def _fail(name: str, detail: str, counterexample: object = None) -> TheoremCheck:
    return TheoremCheck(name, False, detail, counterexample)


def thm_2_2_source_monotonicity(
    system: System,
    a1: frozenset[str],
    a2: frozenset[str],
    target: str,
    history: History,
    phi: Constraint | None = None,
) -> TheoremCheck:
    """Theorem 2-2: ``A1 <= A2  and  A1 |>_phi^H beta  implies
    A2 |>_phi^H beta``."""
    name = "Thm 2-2 (source monotonicity)"
    if not a1 <= a2:
        return _ok(name, "vacuous: A1 not a subset of A2")
    if transmits(system, a1, target, history, phi) and not transmits(
        system, a2, target, history, phi
    ):
        return _fail(name, f"A1={sorted(a1)} transmits but A2={sorted(a2)} does not")
    return _ok(name)


def thm_2_3_constraint_monotonicity(
    system: System,
    phi1: Constraint,
    phi2: Constraint,
    sources: frozenset[str],
    target: str,
    history: History,
) -> TheoremCheck:
    """Theorem 2-3: ``phi1 <= phi2  and  A |>_phi1^H beta  implies
    A |>_phi2^H beta`` — more variety, more opportunity to transmit."""
    name = "Thm 2-3 (constraint monotonicity)"
    if not phi1.implies(phi2):
        return _ok(name, "vacuous: phi1 does not imply phi2")
    if transmits(system, sources, target, history, phi1) and not transmits(
        system, sources, target, history, phi2
    ):
        return _fail(name, f"{phi1.name} transmits but weaker {phi2.name} does not")
    return _ok(name)


def thm_2_4_no_variety_no_transmission(
    system: System,
    phi: Constraint,
    sources: frozenset[str],
    history: History,
) -> TheoremCheck:
    """Theorem 2-4: if phi eliminates all variety in A, then A transmits to
    no object over any history (checked for the given history against all
    targets)."""
    name = "Thm 2-4 (no variety, no transmission)"
    if not phi.eliminates_variety_in(sources):
        return _ok(name, "vacuous: phi leaves variety in A")
    for target in system.space.names:
        result = transmits(system, sources, target, history, phi)
        if result:
            return _fail(
                name,
                f"A={sorted(sources)} has no variety yet transmits to {target}",
                result.witness,
            )
    return _ok(name)


def thm_2_5_empty_history_reflexive(
    system: System,
    phi: Constraint | None,
    sources: frozenset[str],
) -> TheoremCheck:
    """Theorem 2-5: ``A |>_phi^lambda beta  implies  beta in A`` — the empty
    history transmits only reflexively."""
    name = "Thm 2-5 (empty history)"
    empty = History.empty()
    for target in system.space.names:
        if target in sources:
            continue
        result = transmits(system, sources, target, empty, phi)
        if result:
            return _fail(
                name,
                f"lambda transmits from {sorted(sources)} to outside object "
                f"{target}",
                result.witness,
            )
    return _ok(name)


def thm_2_6_autonomous_decomposition(
    system: System,
    phi: Constraint | None,
    sources: frozenset[str],
    target: str,
    history: History,
) -> TheoremCheck:
    """Theorem 2-6 (and 2-1 with phi = tt): for autonomous phi,
    ``A |>_phi^H beta`` implies some single ``alpha in A`` transmits."""
    name = "Thm 2-6 (singleton source exists)"
    resolved = phi if phi is not None else Constraint.true(system.space)
    if not resolved.is_autonomous():
        return _ok(name, "vacuous: phi not autonomous")
    if not transmits(system, sources, target, history, resolved):
        return _ok(name, "vacuous: A does not transmit")
    for alpha in sources:
        if transmits(system, {alpha}, target, history, resolved):
            return _ok(name)
    return _fail(
        name,
        f"A={sorted(sources)} transmits to {target} but no singleton does",
    )


def thm_3_1_join_property(
    system: System,
    phi1: Constraint,
    phi2: Constraint,
    sources: frozenset[str],
    target: str,
    history_bound: int,
) -> TheoremCheck:
    """Theorem 3-1: for the problem ``not A |>_phi beta  and  phi
    A-independent``, solutions are closed under join.

    Checked over histories up to ``history_bound`` (the theorem is
    per-history; see the appendix proof, which splits on which disjunct a
    pair of states satisfies).
    """
    name = "Thm 3-1 (join property under A-independence)"
    for phi in (phi1, phi2):
        if not phi.is_independent_of(sources):
            return _ok(name, "vacuous: a solution is not A-independent")
    joined = phi1 | phi2
    for history in system.histories(history_bound):
        if transmits(system, sources, target, history, phi1):
            return _ok(name, "vacuous: phi1 is not a solution")
        if transmits(system, sources, target, history, phi2):
            return _ok(name, "vacuous: phi2 is not a solution")
        result = transmits(system, sources, target, history, joined)
        if result:
            return _fail(
                name,
                f"join {joined.name} transmits over {history!r} though both "
                "disjuncts are solutions",
                result.witness,
            )
    return _ok(name)


def thm_4_1_intermediate_object(
    system: System,
    phi: Constraint,
    alpha: str,
    beta: str,
    prefix: History,
    suffix: History,
) -> TheoremCheck:
    """Theorem 4-1: for autonomous invariant phi,
    ``alpha |>_phi^{H H'} beta`` implies some m with ``alpha |>_phi^H m``
    and ``m |>_phi^{H'} beta``."""
    name = "Thm 4-1 (intermediate object)"
    if not (phi.is_autonomous() and phi.is_invariant(system)):
        return _ok(name, "vacuous: phi not autonomous+invariant")
    if not transmits(system, {alpha}, beta, prefix + suffix, phi):
        return _ok(name, "vacuous: no composite dependency")
    for m in system.space.names:
        if transmits(system, {alpha}, m, prefix, phi) and transmits(
            system, {m}, beta, suffix, phi
        ):
            return _ok(name)
    return _fail(name, f"no intermediate object between {alpha} and {beta}")


def thm_4_2_endpoints(
    system: System,
    phi: Constraint,
    alpha: str,
    beta: str,
) -> TheoremCheck:
    """Theorem 4-2: for autonomous invariant phi and alpha != beta, if
    ``alpha |>_phi beta`` over some history, then some operation
    transmits out of alpha (to another object) and some operation
    transmits into beta (from another object)."""
    name = "Thm 4-2 (endpoint operations exist)"
    if alpha == beta:
        return _ok(name, "vacuous: alpha = beta")
    if not (phi.is_autonomous() and phi.is_invariant(system)):
        return _ok(name, "vacuous: phi not autonomous+invariant")
    from repro.core.reachability import depends_ever

    if not depends_ever(system, {alpha}, beta, phi):
        return _ok(name, "vacuous: no dependency over any history")
    from repro.core.engine import shared_engine

    # One operation_flows matrix decides both endpoint existentials.
    step = shared_engine(system).operation_flows(phi)
    out_exists = any(
        (alpha, m) in step[op.name]
        for m in system.space.names
        if m != alpha
        for op in system.operations
    )
    in_exists = any(
        (m, beta) in step[op.name]
        for m in system.space.names
        if m != beta
        for op in system.operations
    )
    if out_exists and in_exists:
        return _ok(name)
    return _fail(
        name,
        f"dependency {alpha} |> {beta} holds but "
        f"out-op={out_exists}, in-op={in_exists}",
    )


def thm_4_3_relation_bound(
    system: System,
    phi: Constraint,
    q,
    history: History,
) -> TheoremCheck:
    """Theorem 4-3 / Corollary 4-3: for autonomous invariant phi and a
    reflexive transitive q closed under per-operation dependency, every
    dependency over ``history`` respects q."""
    name = "Thm 4-3 (relation bounds all histories)"
    names = system.space.names
    if not (phi.is_autonomous() and phi.is_invariant(system)):
        return _ok(name, "vacuous: phi not autonomous+invariant")
    if not all(q(x, x) for x in names):
        return _ok(name, "vacuous: q not reflexive")
    for x in names:
        for y in names:
            if not q(x, y):
                continue
            for z in names:
                if q(y, z) and not q(x, z):
                    return _ok(name, "vacuous: q not transitive")
    from repro.core.engine import shared_engine

    # The closure precondition is exactly the operation_flows matrix
    # restricted outside q: one bucket pass per source object.
    step = shared_engine(system).operation_flows(phi)
    for op in system.operations:
        flows_op = step[op.name]
        for x in names:
            for y in names:
                if not q(x, y) and (x, y) in flows_op:
                    return _ok(name, "vacuous: q not closed per-operation")
    for x in names:
        for y in names:
            if q(x, y):
                continue
            result = transmits(system, {x}, y, history, phi)
            if result:
                return _fail(
                    name,
                    f"{x} |>^H {y} violates q over {history!r}",
                    result.witness,
                )
    return _ok(name)


def thm_4_5_cover(
    system: System,
    phi: Constraint | None,
    members: tuple[Constraint, ...],
    sources: frozenset[str],
    target: str,
    history: History,
) -> TheoremCheck:
    """Theorem 4-5: for an A-independent cover {phi_i},
    ``A |>_phi^H beta`` implies ``A |>_{phi & phi_i}^H beta`` for some i."""
    name = "Thm 4-5 (separation of variety)"
    base = phi if phi is not None else Constraint.true(system.space)
    for member in members:
        if not member.is_independent_of(sources):
            return _ok(name, "vacuous: member not A-independent")
    covered = all(
        any(member(s) for member in members) for s in system.space.states()
    )
    if not covered:
        return _ok(name, "vacuous: members do not cover the space")
    if not transmits(system, sources, target, history, base):
        return _ok(name, "vacuous: no dependency under phi")
    for member in members:
        if transmits(system, sources, target, history, base & member):
            return _ok(name)
    return _fail(name, "dependency under phi survives no cover member")


def thm_5_1_autonomy_characterizations(
    phi: Constraint, names: frozenset[str]
) -> TheoremCheck:
    """Theorem 5-1: the substitution characterization of A-autonomy agrees
    with the decomposition definition (Def 5-2).

    The decomposition direction is checked constructively: when the
    substitution closure holds, ``phi1(s) = exists s' in sat: s' =/A= s``
    (A-independent) and ``phi2(s) = exists s' in sat: s'.A = s.A``
    (A-strict) must satisfy ``phi == phi1 & phi2`` — mirroring the
    appendix proof.
    """
    name = "Thm 5-1 (autonomy characterizations agree)"
    space = phi.space
    closure = phi.is_autonomous_relative_to(names)
    sat = phi.satisfying
    if not sat:
        return _ok(name, "vacuous: phi unsatisfiable")
    rest_parts = {s.restrict_away(names) for s in sat}
    a_parts = {s.project(names) for s in sat}
    phi1 = Constraint(
        space, lambda s: s.restrict_away(names) in rest_parts, name="phi1"
    )
    phi2 = Constraint(space, lambda s: s.project(names) in a_parts, name="phi2")
    decomposes = (phi1 & phi2).equivalent(phi)
    if closure != decomposes:
        return _fail(
            name,
            f"substitution closure={closure} but canonical decomposition "
            f"equivalence={decomposes}",
        )
    if closure and not (
        phi1.is_independent_of(names) and phi2.is_strict_on(names)
    ):
        return _fail(name, "canonical parts lost independence/strictness")
    return _ok(name)


def thm_5_2_clump_decomposition(
    system: System,
    phi: Constraint,
    clumps: tuple[frozenset[str], ...],
    target: str,
    history: History,
) -> TheoremCheck:
    """Theorem 5-2: if phi is A_i-autonomous for each clump, transmission
    from the union implies transmission from some clump."""
    name = "Thm 5-2 (clump decomposition)"
    for clump in clumps:
        if not phi.is_autonomous_relative_to(clump):
            return _ok(name, "vacuous: phi not autonomous for a clump")
    union = frozenset().union(*clumps)
    if not union or target in union:
        return _ok(name, "vacuous: empty union or reflexive target")
    if not transmits(system, union, target, history, phi):
        return _ok(name, "vacuous: union does not transmit")
    for clump in clumps:
        if transmits(system, clump, target, history, phi):
            return _ok(name)
    return _fail(name, "union transmits but no clump does")


def thm_5_3_set_target_projection(
    system: System,
    phi: Constraint | None,
    sources: frozenset[str],
    targets: frozenset[str],
    history: History,
) -> TheoremCheck:
    """Theorem 5-3: ``A |>_phi^H B`` implies ``A |>_phi^H beta`` for every
    beta in B."""
    name = "Thm 5-3 (set-target projection)"
    if not transmits_to_set(system, sources, targets, history, phi):
        return _ok(name, "vacuous: no set-target dependency")
    for beta in targets:
        if not transmits(system, sources, beta, history, phi):
            return _fail(name, f"B-dependency holds but {beta} alone fails")
    return _ok(name)


def thm_5_5_witness_decomposition(
    system: System,
    phi: Constraint,
    sources: frozenset[str],
    target: str,
    prefix: History,
    suffix: History,
) -> TheoremCheck:
    """Theorem 5-5: for invariant phi, a witness pair for ``A |> beta`` over
    ``H H'`` decomposes exactly at ``M = {m | H(s1).m != H(s2).m}``."""
    name = "Thm 5-5 (witness decomposition)"
    if not phi.is_invariant(system):
        return _ok(name, "vacuous: phi not invariant")
    result = transmits(system, sources, target, prefix + suffix, phi)
    if not result:
        return _ok(name, "vacuous: no dependency")
    w = result.witness
    assert w is not None
    mid1, mid2 = prefix(w.sigma1), prefix(w.sigma2)
    middle = mid1.differs_at(mid2)
    if not middle:
        return _fail(name, "witness states agree after prefix yet differ later")
    first = transmits_to_set(system, sources, middle, prefix, phi)
    if not first:
        return _fail(name, f"first leg A |>^H M fails for M={sorted(middle)}")
    second = transmits(system, middle, target, suffix, phi)
    if not second:
        return _fail(name, f"second leg M |>^H' beta fails for M={sorted(middle)}")
    return _ok(name)


def thm_6_1_image_soundness(
    system: System, phi: Constraint, history: History
) -> TheoremCheck:
    """Theorem 6-1: ``phi(s)`` implies ``[H]phi(H(s))``."""
    name = "Thm 6-1 ([H]phi contains the image)"
    after = phi.after(history)
    for state in phi.states():
        if not after(history(state)):
            return _fail(name, f"[H]phi misses image of {state!r}", state)
    return _ok(name)


def thm_6_2_invariant_strictness(
    system: System, phi: Constraint, history: History
) -> TheoremCheck:
    """Theorem 6-2: for invariant phi, ``[H]phi <= phi``."""
    name = "Thm 6-2 ([H]phi <= phi for invariant phi)"
    if not phi.is_invariant(system):
        return _ok(name, "vacuous: phi not invariant")
    if not phi.after(history).implies(phi):
        return _fail(name, "[H]phi escapes phi despite invariance")
    return _ok(name)


def thm_6_3_noninvariant_decomposition(
    system: System,
    phi: Constraint,
    sources: frozenset[str],
    target: str,
    prefix: History,
    suffix: History,
) -> TheoremCheck:
    """Theorem 6-3: ``A |>_phi^{H H'} beta`` implies some M with
    ``A |>_phi^H M`` and ``M |>_{[H]phi}^{H'} beta`` — no invariance
    required."""
    name = "Thm 6-3 (non-invariant decomposition)"
    result = transmits(system, sources, target, prefix + suffix, phi)
    if not result:
        return _ok(name, "vacuous: no dependency")
    w = result.witness
    assert w is not None
    mid1, mid2 = prefix(w.sigma1), prefix(w.sigma2)
    middle = mid1.differs_at(mid2)
    if not middle:
        return _fail(name, "witness states agree after prefix yet differ later")
    first = transmits_to_set(system, sources, middle, prefix, phi)
    if not first:
        return _fail(name, f"first leg fails for M={sorted(middle)}")
    second = transmits(system, middle, target, suffix, phi.after(prefix))
    if not second:
        return _fail(name, f"second leg under [H]phi fails for M={sorted(middle)}")
    return _ok(name)


ALL_THEOREMS = (
    "thm_2_2_source_monotonicity",
    "thm_2_3_constraint_monotonicity",
    "thm_2_4_no_variety_no_transmission",
    "thm_2_5_empty_history_reflexive",
    "thm_2_6_autonomous_decomposition",
    "thm_3_1_join_property",
    "thm_4_1_intermediate_object",
    "thm_4_2_endpoints",
    "thm_4_3_relation_bound",
    "thm_4_5_cover",
    "thm_5_1_autonomy_characterizations",
    "thm_5_2_clump_decomposition",
    "thm_5_3_set_target_projection",
    "thm_5_5_witness_decomposition",
    "thm_6_1_image_soundness",
    "thm_6_2_invariant_strictness",
    "thm_6_3_noninvariant_decomposition",
)

# Each checker runs under a "theorem.<name>" span when telemetry is
# enabled (and is a plain passthrough call when it is not), so a traced
# property-test or audit run shows exactly which theorem obligations the
# time went into.
for _name in ALL_THEOREMS:
    globals()[_name] = obs.traced(f"theorem.{_name}")(globals()[_name])
del _name
