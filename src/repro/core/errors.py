"""Exception hierarchy for the repro library.

All library-specific exceptions derive from :class:`ReproError`, so callers
can catch a single base class.  Errors are deliberately fine-grained: the
formalism is used as a *checker*, and a precise error type (e.g. "this name
is not an object of the space") is the difference between a usable tool and
a confusing one.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpaceError(ReproError):
    """A state space was constructed or used inconsistently."""


class UnknownObjectError(SpaceError):
    """An object name was referenced that the space does not define."""

    def __init__(self, name: str, known: tuple[str, ...]) -> None:
        self.name = name
        self.known = known
        super().__init__(
            f"unknown object name {name!r}; space defines {sorted(known)!r}"
        )


class DomainError(SpaceError):
    """A value outside an object's declared domain was used."""

    def __init__(self, name: str, value: object) -> None:
        self.name = name
        self.value = value
        super().__init__(f"value {value!r} is not in the domain of object {name!r}")


class StateError(ReproError):
    """A state was constructed or combined inconsistently."""


class OperationError(ReproError):
    """An operation misbehaved (e.g. produced a state outside the space)."""


class ForeignOperationError(OperationError):
    """A history refers to an operation object that is not one of the
    system's own operations (e.g. an ad-hoc :meth:`Operation.then`
    composite).  The batched fixed-history engine raises this so callers
    can fall back to the direct per-state evaluation."""

    def __init__(self, op_name: str) -> None:
        self.op_name = op_name
        super().__init__(
            f"operation {op_name!r} is not an operation of the system "
            "(fixed-history compilation needs the system's own operation "
            "objects)"
        )


class ConstraintError(ReproError):
    """A constraint was used with an incompatible space or is unsatisfiable
    where satisfiability was required."""


class EmptyConstraintError(ConstraintError):
    """A computation required at least one state satisfying the constraint,
    but none exists in the space."""


class CoverError(ReproError):
    """A claimed cover fails one of its obligations (raised when a cover is
    *asserted* rather than checked; checking APIs return result objects)."""


class ProofError(ReproError):
    """An inductive proof obligation failed where an exception was requested."""


class ProgramError(ReproError):
    """Errors in the mini-language substrate (parse errors, bad flowcharts)."""


class ParseError(ProgramError):
    """The mini-language parser rejected its input."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class EvaluationError(ProgramError):
    """Expression evaluation failed (unknown variable, type mismatch)."""


class DistributionError(ReproError):
    """A probability distribution over states is malformed."""
