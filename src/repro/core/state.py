"""States and finite state spaces.

The paper models a computational system over states that are vectors of
named *objects* (section 1.2)::

    sigma == <sigma.n1, sigma.n2, ...>

with names in lexicographic order.  This module provides:

- :class:`State` — an immutable, hashable assignment of values to object
  names.  Equality-except-at-a-set (Def 1-1/1-2) and the substitution
  operator ``sigma2 <|A sigma1`` (Def 5-3) are methods on states.
- :class:`Space` — a finite state space: a fixed set of object names, each
  with a finite domain of values.  Strong dependency quantifies over *all*
  pairs of states, which a finite space makes exactly checkable.

Values may be any hashable Python objects (booleans, ints, strings,
frozensets of rights, tuples modelling structured objects, ...).

The paper's abstract spaces are typically infinite; every worked example,
however, only exercises finitely many values per object.  Finite spaces are
the faithful executable substitute: the definitions are universally
quantified over state pairs, and enumeration decides them exactly.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable, Iterator, Mapping

from repro.core.errors import DomainError, SpaceError, StateError, UnknownObjectError

Value = Hashable
ObjectName = str


class State(Mapping[str, Value]):
    """An immutable assignment of values to object names.

    A state is logically the vector ``<sigma.n1, sigma.n2, ...>`` with names
    in lexicographic order (Def in section 1.2).  ``State`` behaves as a
    read-only mapping and is hashable, so states can be set members and dict
    keys — the dependency checkers rely on this heavily.

    >>> s = State({"alpha": 1, "beta": 2})
    >>> s["alpha"]
    1
    >>> s.replace(alpha=9)["alpha"]
    9
    """

    __slots__ = ("_names", "_values", "_hash")

    def __init__(self, assignment: Mapping[str, Value] | Iterable[tuple[str, Value]]):
        items = sorted(dict(assignment).items())
        names = tuple(name for name, _ in items)
        for name in names:
            if not isinstance(name, str):
                raise StateError(f"object names must be strings, got {name!r}")
        object.__setattr__(self, "_names", names)
        object.__setattr__(self, "_values", tuple(value for _, value in items))
        object.__setattr__(self, "_hash", hash((names, self._values)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("State is immutable")

    # -- Mapping protocol ---------------------------------------------------

    def __getitem__(self, name: str) -> Value:
        try:
            index = self._index(name)
        except ValueError:
            raise KeyError(name) from None
        return self._values[index]

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, State):
            return NotImplemented
        return self._names == other._names and self._values == other._values

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={v!r}" for n, v in zip(self._names, self._values))
        return f"State({inner})"

    def _index(self, name: str) -> int:
        # Binary search over the sorted name tuple.
        lo, hi = 0, len(self._names)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._names[mid] < name:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self._names) and self._names[lo] == name:
            return lo
        raise ValueError(name)

    # -- Formalism operations ------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """All object names, in lexicographic order."""
        return self._names

    def project(self, names: Iterable[str]) -> tuple[Value, ...]:
        """``sigma.A``: the vector of values at ``names`` in lexicographic
        order (section 1.2).  Raises :class:`KeyError` for unknown names."""
        return tuple(self[name] for name in sorted(set(names)))

    def restrict_away(self, names: Iterable[str]) -> tuple[Value, ...]:
        """The vector of values at every object *not* in ``names``.

        Two states ``s1, s2`` satisfy ``s1 =/A= s2`` (Def 1-1: equal except
        possibly at A) iff ``s1.restrict_away(A) == s2.restrict_away(A)``.
        This is the partition key used by the dependency checkers.
        """
        excluded = set(names)
        return tuple(
            value
            for name, value in zip(self._names, self._values)
            if name not in excluded
        )

    def equal_except_at(self, other: State, names: Iterable[str]) -> bool:
        """Def 1-1: ``self =/A= other`` — the states may differ only in the
        values of the objects named by ``names``."""
        if self._names != other._names:
            raise StateError("states are over different object sets")
        excluded = set(names)
        return all(
            v1 == v2
            for name, v1, v2 in zip(self._names, self._values, other._values)
            if name not in excluded
        )

    def differs_at(self, other: State) -> frozenset[str]:
        """The set of object names at which the two states differ."""
        if self._names != other._names:
            raise StateError("states are over different object sets")
        return frozenset(
            name
            for name, v1, v2 in zip(self._names, self._values, other._values)
            if v1 != v2
        )

    def substitute(self, source: State, names: Iterable[str]) -> State:
        """Def 5-3: ``self <|A source`` — a state just like ``self`` except
        that it takes the values of ``source`` at ``names``.

        The paper writes this ``sigma2 <|A sigma1`` and uses it to
        characterize relative autonomy (Theorem 5-1).
        """
        if self._names != source._names:
            raise StateError("states are over different object sets")
        chosen = set(names)
        unknown = chosen - set(self._names)
        if unknown:
            raise StateError(f"substitute: unknown object names {sorted(unknown)!r}")
        return State(
            {
                name: (source._values[i] if name in chosen else self._values[i])
                for i, name in enumerate(self._names)
            }
        )

    def replace(self, **changes: Value) -> State:
        """A state like this one with the given objects rebound.

        >>> State({"a": 1, "b": 2}).replace(b=3)["b"]
        3
        """
        unknown = set(changes) - set(self._names)
        if unknown:
            raise StateError(f"replace: unknown object names {sorted(unknown)!r}")
        merged = dict(zip(self._names, self._values))
        merged.update(changes)
        return State(merged)


class Space:
    """A finite state space: object names with finite value domains.

    >>> sp = Space({"alpha": range(4), "m": (False, True)})
    >>> sp.size
    8
    >>> len(list(sp.states()))
    8

    Domains are stored as tuples in their given order (enumeration order is
    deterministic).  ``Space`` instances are immutable and hashable.
    """

    __slots__ = ("_domains", "_domain_sets", "_names", "_size", "_hash")

    def __init__(self, domains: Mapping[str, Iterable[Value]]):
        if not domains:
            raise SpaceError("a space must define at least one object")
        normalized: dict[str, tuple[Value, ...]] = {}
        for name in sorted(domains):
            if not isinstance(name, str) or not name:
                raise SpaceError(f"object names must be non-empty strings: {name!r}")
            values = tuple(domains[name])
            if not values:
                raise SpaceError(f"object {name!r} has an empty domain")
            if len(set(values)) != len(values):
                raise SpaceError(f"object {name!r} has duplicate domain values")
            normalized[name] = values
        object.__setattr__(self, "_domains", normalized)
        # Frozen per-object value sets: membership checks (__contains__,
        # state()) must not rebuild a set per lookup — System._check_closed
        # alone performs |Sigma| * |Delta| of them.
        object.__setattr__(
            self,
            "_domain_sets",
            {name: frozenset(values) for name, values in normalized.items()},
        )
        object.__setattr__(self, "_names", tuple(normalized))
        # The domain product is read in guard/reporting loops; compute it
        # once here instead of on every `size` access.
        size = 1
        for values in normalized.values():
            size *= len(values)
        object.__setattr__(self, "_size", size)
        object.__setattr__(
            self, "_hash", hash(tuple((n, v) for n, v in normalized.items()))
        )

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Space is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Space):
            return NotImplemented
        return self._domains == other._domains

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}:{len(d)}" for n, d in self._domains.items())
        return f"Space({inner})"

    def __contains__(self, state: object) -> bool:
        if not isinstance(state, State):
            return False
        if state.names != self._names:
            return False
        return all(
            state[name] in self._domain_sets[name] for name in self._names
        )

    @property
    def names(self) -> tuple[str, ...]:
        """All object names, lexicographically ordered."""
        return self._names

    @property
    def size(self) -> int:
        """Number of states in the space (product of domain sizes,
        computed once at construction)."""
        return self._size

    def domain(self, name: str) -> tuple[Value, ...]:
        """The domain (the paper's *variety*) of a single object."""
        try:
            return self._domains[name]
        except KeyError:
            raise UnknownObjectError(name, self._names) from None

    def check_names(self, names: Iterable[str]) -> frozenset[str]:
        """Validate that every name exists in the space; return them as a
        frozenset.  Raises :class:`UnknownObjectError` otherwise."""
        result = frozenset(names)
        for name in result:
            if name not in self._domains:
                raise UnknownObjectError(name, self._names)
        return result

    def states(self) -> Iterator[State]:
        """Enumerate every state of the space, deterministically."""
        names = self._names
        for values in itertools.product(*(self._domains[n] for n in names)):
            yield State(zip(names, values))

    def state(self, **values: Value) -> State:
        """Construct a state of this space, validating names and domains.

        Every object of the space must be given a value:

        >>> sp = Space({"a": (0, 1)})
        >>> sp.state(a=1)["a"]
        1
        """
        missing = set(self._names) - set(values)
        if missing:
            raise SpaceError(f"state: missing values for {sorted(missing)!r}")
        extra = set(values) - set(self._names)
        if extra:
            raise UnknownObjectError(sorted(extra)[0], self._names)
        for name, value in values.items():
            if value not in self._domain_sets[name]:
                raise DomainError(name, value)
        return State(values)

    def variants(self, state: State, names: Iterable[str]) -> Iterator[State]:
        """All states that agree with ``state`` except possibly at ``names``.

        This enumerates the equivalence class of ``state`` under
        ``=/A=`` (Def 1-1), including ``state`` itself.
        """
        chosen = sorted(self.check_names(names))
        for values in itertools.product(*(self._domains[n] for n in chosen)):
            yield state.replace(**dict(zip(chosen, values)))

    def restrict(self, **domains: Iterable[Value]) -> Space:
        """A space like this one with some domains replaced.

        Useful for building constrained sub-spaces in tests and examples;
        note that *constraints* (predicates) are the paper's mechanism and
        are usually preferable (see :mod:`repro.core.constraints`).
        """
        merged: dict[str, Iterable[Value]] = dict(self._domains)
        for name, domain in domains.items():
            if name not in self._domains:
                raise UnknownObjectError(name, self._names)
            merged[name] = tuple(domain)
        return Space(merged)

    def with_objects(self, **domains: Iterable[Value]) -> Space:
        """A space extended with additional objects."""
        merged: dict[str, Iterable[Value]] = dict(self._domains)
        for name, domain in domains.items():
            if name in merged:
                raise SpaceError(f"object {name!r} already exists")
            merged[name] = tuple(domain)
        return Space(merged)


def boolean_space(*names: str) -> Space:
    """A space in which every named object is a boolean.

    >>> boolean_space("p", "q").size
    4
    """
    return Space({name: (False, True) for name in names})


def integer_space(bits: int, *names: str) -> Space:
    """A space of unsigned ``bits``-bit integers (the paper's running
    "16 bit integer" examples scale down to small widths for enumeration)."""
    if bits < 1:
        raise SpaceError("bits must be >= 1")
    domain = tuple(range(2**bits))
    return Space({name: domain for name in names})
