"""Computational systems, operations, and histories.

The paper (section 1.2) defines a computational system as a pair
``<Sigma, Delta>`` where ``Sigma`` is the set of states and ``Delta`` the set
of operations; an operation is a total function from states to states, and a
*history* is a finite sequence of operations applied left to right
(Def 1-3)::

    lambda(sigma)   == sigma                (the null history)
    (H delta)(sigma) == delta(H(sigma))

A pair ``<sigma, H>`` is a *behavior* (or computation).

This module keeps operations fully semantic — any callable ``State -> State``
will do — while encouraging named, inspectable operations (see
:mod:`repro.lang.ops` for combinators that build them).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.errors import OperationError, SpaceError
from repro.core.state import Space, State


class Operation:
    """A named total function from states to states.

    >>> from repro.core.state import boolean_space
    >>> sp = boolean_space("a", "b")
    >>> copy = Operation("copy", lambda s: s.replace(b=s["a"]))
    >>> copy(sp.state(a=True, b=False))["b"]
    True
    """

    __slots__ = ("name", "_fn", "description")

    def __init__(
        self,
        name: str,
        fn: Callable[[State], State],
        description: str = "",
    ) -> None:
        if not name:
            raise OperationError("operations must be named")
        self.name = name
        self._fn = fn
        self.description = description

    def __call__(self, state: State) -> State:
        result = self._fn(state)
        if not isinstance(result, State):
            raise OperationError(
                f"operation {self.name!r} returned {type(result).__name__}, "
                "expected State"
            )
        return result

    def __repr__(self) -> str:
        return f"Operation({self.name!r})"

    def then(self, other: Operation) -> Operation:
        """Sequential composition as a single operation (left first)."""
        return Operation(
            f"{self.name};{other.name}",
            lambda s: other(self(s)),
            description=f"{self.name} then {other.name}",
        )


class History(Sequence[Operation]):
    """A finite sequence of operations, applied left to right (Def 1-3).

    Histories are immutable; ``h1 + h2`` concatenates, and ``h(state)``
    applies.  The empty history is the identity (the paper's lambda).

    >>> History.empty().is_empty
    True
    """

    __slots__ = ("_ops",)

    def __init__(self, operations: Iterable[Operation] = ()) -> None:
        self._ops = tuple(operations)
        for op in self._ops:
            if not isinstance(op, Operation):
                raise OperationError(f"history element {op!r} is not an Operation")

    @classmethod
    def empty(cls) -> History:
        """The null history lambda."""
        return cls(())

    @classmethod
    def of(cls, *operations: Operation) -> History:
        """Build a history from operations left to right."""
        return cls(operations)

    @property
    def is_empty(self) -> bool:
        return not self._ops

    def __call__(self, state: State) -> State:
        for op in self._ops:
            state = op(state)
        return state

    def __len__(self) -> int:
        return len(self._ops)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return History(self._ops[index])
        return self._ops[index]

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __add__(self, other: History | Operation) -> History:
        if isinstance(other, Operation):
            return History(self._ops + (other,))
        if isinstance(other, History):
            return History(self._ops + other._ops)
        return NotImplemented

    def __radd__(self, other: Operation) -> History:
        if isinstance(other, Operation):
            return History((other,) + self._ops)
        return NotImplemented

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, History):
            return NotImplemented
        return self._ops == other._ops

    def __hash__(self) -> int:
        return hash(self._ops)

    def __repr__(self) -> str:
        if not self._ops:
            return "History(<lambda>)"
        return "History(" + " ".join(op.name for op in self._ops) + ")"

    def splits(self) -> Iterator[tuple[History, History]]:
        """All ways of writing this history as ``H Hprime`` (used by the
        induction theorems, e.g. Theorem 4-1)."""
        for i in range(len(self._ops) + 1):
            yield History(self._ops[:i]), History(self._ops[i:])


class System:
    """A computational system ``<Sigma, Delta>`` over a finite space.

    ``Sigma`` is the set of states of :attr:`space`; ``Delta`` is the finite
    set of named operations.  A system optionally checks that every operation
    is *closed* over the space (maps space states to space states) — this is
    the executable analogue of operations being functions ``Sigma -> Sigma``.

    >>> from repro.core.state import boolean_space
    >>> sp = boolean_space("a", "b")
    >>> sys_ = System(sp, [Operation("swap", lambda s: s.replace(a=s["b"], b=s["a"]))])
    >>> sorted(sys_.operation_names)
    ['swap']
    """

    # __weakref__ lets repro.core.engine.shared_engine key its process-wide
    # engine table weakly by system, so engines die with their systems.
    __slots__ = ("space", "_operations", "__weakref__")

    def __init__(
        self,
        space: Space,
        operations: Iterable[Operation],
        check_closed: bool = True,
    ) -> None:
        self.space = space
        ops: dict[str, Operation] = {}
        for op in operations:
            if op.name in ops:
                raise SpaceError(f"duplicate operation name {op.name!r}")
            ops[op.name] = op
        self._operations = ops
        if check_closed:
            self._check_closed()

    def _check_closed(self) -> None:
        for state in self.space.states():
            for op in self._operations.values():
                result = op(state)
                if result not in self.space:
                    raise OperationError(
                        f"operation {op.name!r} maps {state!r} to {result!r}, "
                        "which lies outside the space"
                    )

    @property
    def operations(self) -> tuple[Operation, ...]:
        """The operations of the system, in insertion order."""
        return tuple(self._operations.values())

    @property
    def operation_names(self) -> tuple[str, ...]:
        return tuple(self._operations)

    def operation(self, name: str) -> Operation:
        try:
            return self._operations[name]
        except KeyError:
            raise SpaceError(
                f"system has no operation {name!r}; "
                f"known: {sorted(self._operations)!r}"
            ) from None

    def history(self, *names: str) -> History:
        """Build a history from operation names, left to right.

        >>> from repro.core.state import boolean_space
        >>> sp = boolean_space("a")
        >>> ident = Operation("id", lambda s: s)
        >>> System(sp, [ident]).history("id", "id")
        History(id id)
        """
        return History(self.operation(name) for name in names)

    def histories(self, max_length: int) -> Iterator[History]:
        """Enumerate all histories of length 0..max_length.

        The count is ``sum(|Delta|**k)`` — use with small systems, or prefer
        the pair-graph fixpoint in :mod:`repro.analysis.explorer` for exact
        unbounded dependency questions.
        """
        frontier: list[History] = [History.empty()]
        yield History.empty()
        for _ in range(max_length):
            next_frontier: list[History] = []
            for history in frontier:
                for op in self._operations.values():
                    extended = history + op
                    next_frontier.append(extended)
                    yield extended
            frontier = next_frontier

    def __repr__(self) -> str:
        return (
            f"System(space={self.space!r}, "
            f"operations=[{', '.join(self._operations)}])"
        )


class Behavior:
    """A behavior (computation): a pair ``<sigma, H>`` (section 1.2).

    Mostly a convenience for examples and the enforcement-problem machinery:
    ``behavior.trace()`` yields the state sequence the behavior visits.
    """

    __slots__ = ("initial", "history")

    def __init__(self, initial: State, history: History) -> None:
        self.initial = initial
        self.history = history

    def final(self) -> State:
        return self.history(self.initial)

    def trace(self) -> Iterator[State]:
        """The states visited, beginning with the initial state."""
        state = self.initial
        yield state
        for op in self.history:
            state = op(state)
            yield state

    def prefixes(self) -> Iterator[Behavior]:
        """Behaviors for every prefix of the history (including empty)."""
        for i in range(len(self.history) + 1):
            yield Behavior(self.initial, self.history[:i])

    def __repr__(self) -> str:
        return f"Behavior({self.initial!r}, {self.history!r})"


def transition_table(
    system: System, operation: Operation | str
) -> Mapping[State, State]:
    """The full transition function of one operation as a dict.

    This tabulation is the hot-path substrate of the *object-mode*
    dependency engine (``DependencyEngine(system, compiled=False)``):
    each BFS step becomes a dict lookup instead of re-executing semantic
    lambdas.  The default *compiled* engine goes one step further and
    flattens each operation into a dense integer successor array
    (:class:`repro.core.compiled.CompiledSystem`), which is the preferred
    path — O(1) indexed loads, no ``State`` hashing.  The dict form
    remains useful on its own for debugging small systems and for the
    random-system fuzzer, which compares semantic operations against
    explicit tables.
    """
    op = system.operation(operation) if isinstance(operation, str) else operation
    return {state: op(state) for state in system.space.states()}
