"""Bounded memoization primitives shared by the engine and the compiled
substrate.

The dependency stack memoizes aggressively — closures, fixed-history
tables, composed successor arrays, satisfying-id arrays — and PR 5
established the policy: every memo that grows with the *query stream*
(rather than with the system itself) must be bounded, observable, and
safe to evict.  :class:`LRUCache` is that policy as a data structure.
It lived inside :mod:`repro.core.engine` as ``_LRUCache`` until the
compiled substrate (:mod:`repro.core.compiled`) needed the same
bounding for its prefix and constraint memos; importing it from the
engine there would be circular (the engine imports the compiled
module), so it moved here.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro import obs

#: Distinguishes "never computed" from a memoized ``None`` value.
_MISSING = object()


class LRUCache:
    """Bounded memo: an :class:`~collections.OrderedDict` LRU.

    ``get`` refreshes recency; ``put`` keeps first-writer-wins semantics
    (matching the ``setdefault`` idiom of the unbounded dicts it
    replaces) and evicts least-recently-used entries past ``capacity``,
    reporting each eviction on the named telemetry counter and the
    running total as a gauge.  Eviction is safe by construction: every
    entry is recomputable from the closure/bucket machinery, so a cap
    only bounds memory, never correctness.

    The cache carries its own leaf-level lock, so it is safe to consult
    from concurrent threads without (or in addition to) an owner's lock:
    ``move_to_end``/``popitem`` racing unlocked would corrupt the
    underlying :class:`~collections.OrderedDict`.  The serve layer hits
    one session engine — and through it the kernel-side prefix and
    sat-id memos — from many executor threads at once.
    """

    __slots__ = ("capacity", "counter", "evictions", "_data", "_lock")

    def __init__(self, capacity: int, counter: str) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.counter = counter
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key, default=None):
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                return default
            self._data.move_to_end(key)
            return value

    def put(self, key, value):
        """Insert unless present (first writer wins) and return the
        stored value, evicting past ``capacity``."""
        evicted = 0
        with self._lock:
            existing = self._data.get(key, _MISSING)
            if existing is not _MISSING:
                self._data.move_to_end(key)
                return existing
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1
                evicted += 1
            total = self.evictions
        for _ in range(evicted):
            obs.count(self.counter)
        if evicted:
            obs.gauge_max(self.counter, total)
        return value

    def items(self) -> list:
        """A snapshot of ``(key, value)`` entries, oldest first, without
        refreshing recency — the drain/persist paths iterate this."""
        with self._lock:
            return list(self._data.items())

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._data),
                "capacity": self.capacity,
                "evictions": self.evictions,
            }


class ByteMeter:
    """Byte-budget accounting for caches whose entries have real sizes —
    the disk half of the :class:`LRUCache` policy.

    :class:`~repro.core.store.PersistentStore` bounds its on-disk payload
    with the same observable-eviction contract as the in-RAM memos: the
    store reports its payload bytes here, asks :meth:`over_budget`
    whether LRU-by-last-access eviction must run, and records each
    evicted row via :meth:`evicted` (telemetry counter + running total,
    mirroring :class:`LRUCache`).  A ``capacity`` of ``None`` means
    unbounded — accounting still runs so ``stats()`` stays meaningful.
    """

    __slots__ = ("capacity", "counter", "used", "evictions")

    def __init__(self, capacity: int | None, counter: str) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"byte capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.counter = counter
        self.used = 0
        self.evictions = 0

    def set_used(self, nbytes: int) -> None:
        self.used = nbytes

    def over_budget(self) -> bool:
        return self.capacity is not None and self.used > self.capacity

    def evicted(self, nbytes: int) -> None:
        self.used -= nbytes
        self.evictions += 1
        obs.count(self.counter)
        obs.gauge_max(self.counter, self.evictions)

    def stats(self) -> dict[str, int]:
        return {
            "bytes": self.used,
            "capacity_bytes": self.capacity or 0,
            "evictions": self.evictions,
        }
